//! # edgellm — LLM inferencing on edge accelerators, characterized
//!
//! A faithful, laptop-scale reproduction of *“Understanding the Performance
//! and Power of LLM Inferencing on Edge Accelerators”* (Arya & Simmhan,
//! PAISE @ IPDPS 2025): a calibrated simulator of batched LLM inference on
//! the NVIDIA Jetson Orin AGX 64GB, together with a real (executable) tensor,
//! quantization and neural-LM stack used to reproduce the paper's accuracy
//! experiments with genuine arithmetic.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`hw`] — device specs, clocks and the nine Table 2 power modes;
//! * [`models`] — the four paper LLM architectures and their analytics;
//! * [`perf`] — the calibrated mechanistic latency/throughput model;
//! * [`mem`] — shared-memory accounting, KV-cache paging and OoM;
//! * [`power`] — rail power model, jtop-style sampling, energy integration;
//! * [`corpus`] — synthetic WikiText2-like / LongBench-like corpora and BPE;
//! * [`tensor`] — real parallel kernels (GEMM, softmax, rope, quantized GEMM);
//! * [`quant`] — LLM.int8()-style INT8 and NF4-style INT4 codecs;
//! * [`nn`] — a real trainable neural-LM substrate with manual backprop;
//! * [`core`] — the batching runtime and the paper's experiment protocol;
//! * [`governor`] — online SLO-aware power-mode governance: hysteretic
//!   ladder, energy-budget and thermal-headroom policies over a shared
//!   mode cost model (which also scores the offline DVFS search);
//! * [`fleet`] — heterogeneous multi-device fleet serving: routing, faults,
//!   thermal coupling and cloud spillover over the per-device simulators;
//! * [`check`] — deterministic simulation testing: seeded scenarios, fault
//!   injection, invariant oracles and failure minimization (`edgellm-check`);
//! * [`trace`] — span tracing, a metrics registry and Perfetto-exportable
//!   perf/power timelines across all of the above;
//! * [`experiments`] — one driver per paper table/figure plus ground truth.
//!
//! ## Quickstart
//!
//! ```
//! use edgellm::core::{Engine, RunConfig, SequenceSpec};
//! use edgellm::hw::{DeviceSpec, PowerMode, PowerModeId};
//! use edgellm::models::{Llm, Precision};
//!
//! let engine = Engine::orin_agx_64gb();
//! let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
//!     .batch_size(32)
//!     .sequence(SequenceSpec::paper_96())
//!     .power_mode(PowerMode::table2(PowerModeId::MaxN));
//! let m = engine.run_batch(&cfg).unwrap();
//! assert!(m.throughput_tok_s > 100.0);
//! let _ = DeviceSpec::orin_agx_64gb();
//! ```

pub use edgellm_check as check;
pub use edgellm_core as core;
pub use edgellm_corpus as corpus;
pub use edgellm_experiments as experiments;
pub use edgellm_fleet as fleet;
pub use edgellm_governor as governor;
pub use edgellm_hw as hw;
pub use edgellm_mem as mem;
pub use edgellm_models as models;
pub use edgellm_nn as nn;
pub use edgellm_perf as perf;
pub use edgellm_power as power;
pub use edgellm_quant as quant;
pub use edgellm_tensor as tensor;
pub use edgellm_trace as trace;
