//! Quantization explorer: the paper's Table 3 + Fig 3 trade-off on one
//! screen — *really* train a small LM on the synthetic corpus, *really*
//! quantize it with the FP16/INT8/INT4 codecs, measure real perplexity,
//! and pair each precision with its simulated on-device latency/memory.
//!
//! ```sh
//! cargo run --release --example quant_explorer
//! ```

use edgellm::core::perplexity::sliding_window_perplexity;
use edgellm::core::{Engine, RunConfig};
use edgellm::corpus::{BpeTokenizer, CorpusKind, SyntheticCorpus};
use edgellm::models::{Llm, Precision};
use edgellm::nn::quantize::{to_precision, weight_bytes};
use edgellm::nn::{MlpLm, MlpLmConfig, WeightPrecision};

fn main() {
    // Train a small LM on the WikiText2-like corpus (real training).
    println!("Training a 4-gram MLP LM on the synthetic WikiText2 corpus…");
    let corpus = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 40_000, 7);
    let eval = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 10_000, 8);
    let tok = BpeTokenizer::train(&corpus.text, 512);
    let train = tok.encode(&corpus.text);
    let eval_stream = tok.encode(&eval.text);

    let cfg = MlpLmConfig { vocab: 512, context: 4, d_emb: 32, hidden: 96, seed: 1 };
    let mut model = MlpLm::new(cfg);
    let report = model.train(&train, 1200, 64, 3e-3, 2);
    println!(
        "  {} params, loss {:.2} → {:.2} over {} steps\n",
        cfg.param_count(),
        report.initial_loss,
        report.final_loss,
        report.steps
    );

    // Pair each precision's *measured* quality with the *simulated* device
    // cost of its real-model counterpart (Llama-3.1-8B, bs=32, sl=96).
    let engine = Engine::orin_agx_64gb();
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>14}",
        "prec", "real PPL", "weight KB", "device lat s", "device GB"
    );
    for (wp, prec) in [
        (WeightPrecision::Fp32, Precision::Fp32),
        (WeightPrecision::Fp16, Precision::Fp16),
        (WeightPrecision::Int8, Precision::Int8),
        (WeightPrecision::Int4, Precision::Int4),
    ] {
        let q = to_precision(&model, wp);
        let ppl = sliding_window_perplexity(&q, &eval_stream).perplexity;
        let kb = weight_bytes(&model, wp) as f64 / 1e3;
        let (lat, mem) = match engine.run_batch(&RunConfig::new(Llm::Llama31_8b, prec)) {
            Ok(m) => (format!("{:.2}", m.latency_s), format!("{:.1}", m.peak_mem_gb)),
            Err(_) => ("OOM".to_string(), "OOM".to_string()),
        };
        println!("{:<6} {ppl:>12.2} {kb:>12.1} {lat:>14} {mem:>14}", wp.label());
    }
    println!(
        "\nReading the table the paper's way (§3.3 + Table 3): FP16 halves memory for \
         free; INT8 halves it again at a small quality cost but *slower* inference on \
         this class of device; INT4 pays real quality and latency."
    );
}
