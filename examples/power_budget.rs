//! Power-budget planner: search the power-mode space (the nine Table 2
//! modes plus a custom DVFS grid) for the minimum-energy configuration
//! under an instantaneous power cap and a latency ceiling — the paper's
//! future-work suggestion ("leverage them to optimize LLM inferencing on
//! the edge") made concrete.
//!
//! ```sh
//! cargo run --release --example power_budget
//! ```

use edgellm::core::{Engine, RunConfig, RunMetrics, SequenceSpec};
use edgellm::hw::{PowerMode, PowerModeId};
use edgellm::models::{Llm, Precision};

/// Instantaneous power cap (W), e.g. a battery/solar envelope.
const POWER_CAP_W: f64 = 30.0;
/// Latency ceiling for the bs=32, sl=96 batch (s).
const LATENCY_CAP_S: f64 = 30.0;

fn run(engine: &Engine, pm: PowerMode) -> Option<RunMetrics> {
    let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
        .batch_size(32)
        .sequence(SequenceSpec::paper_96())
        .power_mode(pm);
    edgellm::core::Protocol::quick().run(engine, &cfg).ok()
}

fn main() {
    let engine = Engine::orin_agx_64gb();
    println!(
        "Searching power modes for Llama-3.1 FP16 (bs=32, sl=96) under a \
         {POWER_CAP_W:.0} W cap and {LATENCY_CAP_S:.0} s latency ceiling:\n"
    );

    // Stock Table 2 modes first.
    let mut candidates: Vec<(String, RunMetrics)> = Vec::new();
    println!("{:<18} {:>9} {:>9} {:>9}  verdict", "mode", "lat s", "power W", "energy J");
    for id in PowerModeId::ALL {
        let pm = PowerMode::table2(id);
        let label = format!("{} ({})", pm.name, pm.throttle_summary());
        if let Some(m) = run(&engine, pm) {
            let ok = m.median_power_w <= POWER_CAP_W && m.latency_s <= LATENCY_CAP_S;
            println!(
                "{label:<18} {:>9.2} {:>9.1} {:>9.0}  {}",
                m.latency_s,
                m.median_power_w,
                m.energy_j,
                if ok { "feasible" } else { "rejected" }
            );
            if ok {
                candidates.push((label, m));
            }
        }
    }

    // A custom DVFS grid beyond the stock modes.
    for gpu in [500u32, 700, 900, 1100] {
        for mem in [2133u32, 3200] {
            let pm = PowerMode::custom(format!("custom-g{gpu}-m{mem}"), gpu, 2.2, 8, mem);
            let label = pm.name.clone();
            if let Some(m) = run(&engine, pm) {
                if m.median_power_w <= POWER_CAP_W && m.latency_s <= LATENCY_CAP_S {
                    println!(
                        "{label:<18} {:>9.2} {:>9.1} {:>9.0}  feasible (custom)",
                        m.latency_s, m.median_power_w, m.energy_j
                    );
                    candidates.push((label, m));
                }
            }
        }
    }

    match candidates.iter().min_by(|a, b| a.1.energy_j.partial_cmp(&b.1.energy_j).expect("finite"))
    {
        Some((label, m)) => println!(
            "\n→ minimum-energy feasible mode: {label} — {:.0} J at {:.1} W, {:.1} s",
            m.energy_j, m.median_power_w, m.latency_s
        ),
        None => println!("\n→ no mode satisfies the caps; relax the budget"),
    }
}
