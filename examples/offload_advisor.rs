//! Offload advisor: for each model and network condition, should a single
//! request run on the edge device or be shipped to a cloud endpoint?
//! (The paper's conclusion names edge–cloud coupling as future work.)
//!
//! ```sh
//! cargo run --release --example offload_advisor
//! ```

use edgellm::core::{compare_offload, CloudEndpoint, Engine, RunConfig};
use edgellm::models::{Llm, Precision};

fn main() {
    let engine = Engine::orin_agx_64gb();
    let networks = [
        ("datacenter (fiber)", CloudEndpoint::datacenter()),
        ("field link (rural LTE)", CloudEndpoint::field_link()),
        ("degraded (satcom)", {
            let mut e = CloudEndpoint::field_link();
            e.rtt_s = 2.0;
            e.ttft_s = 4.0;
            e.tok_rate = 10.0;
            e
        }),
    ];
    println!("Single request (32 in + 64 out) on {} vs cloud offload:\n", engine.device().name);
    println!(
        "{:<10} {:<22} {:>9} {:>9} {:>9} {:>11}  advice",
        "model", "network", "edge s", "cloud s", "edge J", "cloud J"
    );
    for llm in Llm::ALL {
        let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
        let cfg = RunConfig::new(llm, prec);
        for (name, ep) in &networks {
            let c = compare_offload(&engine, &cfg, ep).expect("bs=1 fits");
            let advice = match (c.local_wins_latency(), c.local_wins_energy()) {
                (true, true) => "stay on edge",
                (false, false) => "offload",
                (true, false) => "edge if latency-critical",
                (false, true) => "edge if battery-critical",
            };
            println!(
                "{:<10} {:<22} {:>9.1} {:>9.1} {:>9.0} {:>11.0}  {advice}",
                llm.short_name(),
                name,
                c.local_latency_s,
                c.cloud_latency_s,
                c.local_energy_j,
                c.cloud_energy_j,
            );
        }
    }
    println!(
        "\nCaveat: offload assumes the prompt may leave the device — the privacy-\n\
         sensitive deployments that motivate the paper (§1) rule it out entirely."
    );
}
