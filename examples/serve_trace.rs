//! Traced serving: run a short online-arrivals workload through the
//! event-driven scheduler with the process-wide trace sink enabled, write
//! the merged serve + power timeline as Chrome trace-event JSON, and
//! print a per-phase time/energy attribution table — the paper's
//! prefill/decode power asymmetry (§3.3), measured per iteration instead
//! of per batch.
//!
//! ```sh
//! cargo run --release --example serve_trace [out.json]
//! ```
//!
//! Open the output in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`: the scheduler track shows prefill/decode/mixed
//! iteration spans, with KV-pool occupancy and the stacked
//! SoC/GPU/CPU/DDR power rails as counter tracks beneath them.

use edgellm::core::serve::{EventScheduler, IterPhase, ServeConfig};
use edgellm::core::{PoissonArrivals, RunConfig};
use edgellm::hw::DeviceSpec;
use edgellm::models::{Llm, Precision};
use edgellm::trace::forensics;
use edgellm::trace::sink;

fn phase_label(p: IterPhase) -> &'static str {
    match p {
        IterPhase::Prefill => "prefill",
        IterPhase::Decode => "decode",
        IterPhase::Mixed => "mixed",
        IterPhase::Idle => "idle",
    }
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "serve_trace.json".to_string());
    let dev = DeviceSpec::orin_agx_64gb();
    let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
    let reqs = PoissonArrivals::paper_shape(2.0).generate(40, 42);

    sink::enable();
    forensics::sink::enable();
    let run = EventScheduler::new(ServeConfig::chunked(16))
        .run(&dev, &cfg, &reqs)
        .expect("serve run failed");
    let events = sink::export(&out).expect("failed to write trace");
    let docs = forensics::sink::take();

    println!(
        "Served {} requests on {} in {:.1} s ({:.1} tok/s, {:.0} J, {} preemptions).\n",
        run.report.requests,
        dev.name,
        run.report.makespan_s,
        run.report.output_tok_s,
        run.report.energy_j,
        run.report.preemptions,
    );

    // Attribute wall time and energy to iteration phases. Energy is the
    // same per-iteration integral the report sums, so the column total
    // matches report.energy_j exactly.
    println!("phase     iterations     time (s)    share     energy (J)    mean power (W)");
    let phases = [IterPhase::Prefill, IterPhase::Decode, IterPhase::Mixed, IterPhase::Idle];
    for phase in phases {
        let (mut iters, mut time_s, mut energy_j) = (0usize, 0.0f64, 0.0f64);
        for it in run.trace.iter().filter(|it| it.phase == phase) {
            iters += 1;
            time_s += it.dt_s;
            energy_j += it.energy_j();
        }
        let mean_w = if time_s > 0.0 { energy_j / time_s } else { 0.0 };
        println!(
            "{:<9} {:>10} {:>12.2} {:>8.1}% {:>13.1} {:>17.1}",
            phase_label(phase),
            iters,
            time_s,
            100.0 * time_s / run.report.makespan_s.max(f64::MIN_POSITIVE),
            energy_j,
            mean_w,
        );
    }
    let total_j: f64 = run.trace.iter().map(|it| it.energy_j()).sum();
    println!("\ntotal iteration energy {total_j:.1} J (report: {:.1} J)", run.report.energy_j);

    // Request-scoped forensics: the same run, reconstructed into
    // per-request timelines. Show the three worst TTFTs with their
    // blame decomposition — where each slow request's wait actually
    // went (queueing vs preemption vs service).
    let rep = forensics::analyze(&docs, 3);
    let a = &rep.runs[0];
    println!("\nworst TTFT (of {} requests, p50 {:.2} s):", a.requests, a.p50_ttft_s);
    println!("rid    ttft (s)   dominant     queue (s)   preempt (s)    J/token");
    for o in &a.worst_ttft {
        println!(
            "{:<5} {:>9.2}   {:<10} {:>11.2} {:>13.2} {:>10.2}",
            o.rid, o.ttft_s, o.dominant, o.blame.queueing_s, o.blame.preemption_s, o.j_per_token,
        );
    }
    println!(
        "energy ledger: {:.1} J total = {:.1} J attributed + {:.1} J idle (residual {:.1e} J)",
        a.total_energy_j, a.attributed_j, a.idle_energy_j, a.residual_j
    );
    println!("wrote {out} ({events} events) — load it at https://ui.perfetto.dev");
}
