//! Quickstart: simulate the paper's default workload on the Orin AGX and
//! decode tokens through the real (executable) transformer substrate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use edgellm::core::{Engine, RunConfig, SequenceSpec};
use edgellm::hw::{PowerMode, PowerModeId};
use edgellm::models::{Llm, Precision};
use edgellm::nn::{TinyCausalLm, TinyConfig};

fn main() {
    // --- 1. Simulate the paper's default configuration -----------------
    // Llama-3.1-8B, FP16, batch 32, sequence 96 (32 in + 64 out), MaxN.
    let engine = Engine::orin_agx_64gb();
    let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
        .batch_size(32)
        .sequence(SequenceSpec::paper_96())
        .power_mode(PowerMode::table2(PowerModeId::MaxN));
    let m = engine.run_batch(&cfg).expect("fits on the 64 GB Orin");
    println!("Llama-3.1-8B FP16, bs=32, sl=96 on {}:", engine.device().name);
    println!("  latency        {:8.2} s   (paper Table 4: 9.96 s)", m.latency_s);
    println!("  throughput     {:8.1} tok/s (paper: 308.5)", m.throughput_tok_s);
    println!("  peak memory    {:8.2} GB  (paper: 17.12)", m.peak_mem_gb);
    println!("  median power   {:8.1} W", m.median_power_w);
    println!("  energy         {:8.0} J", m.energy_j);

    // --- 2. What-if: drop to the PM-H power mode ------------------------
    let low = engine
        .run_batch(&cfg.clone().power_mode(PowerMode::table2(PowerModeId::H)))
        .expect("still fits");
    println!(
        "\nUnder PM-H (memory 665 MHz): latency ×{:.1}, power −{:.0}%, energy +{:.0}% \
         — the paper's §3.4 trade-off",
        low.latency_s / m.latency_s,
        (1.0 - low.median_power_w / m.median_power_w) * 100.0,
        (low.energy_j / m.energy_j - 1.0) * 100.0
    );

    // --- 3. Decode real tokens through the executable substrate ---------
    let model = TinyCausalLm::new(TinyConfig::small(42));
    let generated = model.generate_greedy(&[1, 2, 3], 12);
    println!("\nReal transformer decode (random weights, KV-cached): {generated:?}");
    let int8 = model.to_precision(edgellm::nn::WeightPrecision::Int8);
    println!(
        "Same prompt under real INT8 weights:                 {:?}",
        int8.generate_greedy(&[1, 2, 3], 12)
    );
}
