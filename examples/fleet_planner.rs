//! Fleet planner: given a heterogeneous rack of Jetson boards serving one
//! Poisson request stream, which routing policy should the front-end run?
//! Compares round-robin, join-shortest-queue, least-KV-pressure,
//! energy-greedy consolidation and deadline-aware cloud spillover on the
//! same trace, then rehearses a mid-run dropout of the strongest board to
//! show the fault path re-routes everything with nothing lost.
//!
//! ```sh
//! cargo run --release --example fleet_planner
//! ```

use edgellm::core::{CloudEndpoint, PoissonArrivals, RunConfig};
use edgellm::fleet::{
    run_fleet, EnergyGreedy, FaultPlan, FleetConfig, FleetDevice, JoinShortestQueue,
    LeastKvPressure, RoundRobin, RoutingPolicy, SloAware,
};
use edgellm::hw::{DeviceSpec, PowerMode};
use edgellm::models::{Llm, Precision};

/// Requests in the trace.
const N_REQS: usize = 60;
/// Mean arrival rate (req/s).
const RATE: f64 = 1.5;
/// End-to-end latency deadline (s).
const SLO_S: f64 = 30.0;
/// Arrival-trace seed.
const SEED: u64 = 42;

/// One strong FP16 board and two weaker INT4 boards — the mixed rack an
/// edge deployment accretes over hardware generations.
fn rack() -> Vec<FleetDevice> {
    let nx = DeviceSpec::orin_nx_16gb();
    let xav = DeviceSpec::xavier_agx_32gb();
    vec![
        FleetDevice::new(
            DeviceSpec::orin_agx_64gb(),
            RunConfig::new(Llm::Llama31_8b, Precision::Fp16),
        )
        .named("orin-agx-64"),
        FleetDevice::new(
            nx.clone(),
            RunConfig::new(Llm::Llama31_8b, Precision::Int4).power_mode(PowerMode::maxn_for(&nx)),
        )
        .named("orin-nx-16"),
        FleetDevice::new(
            xav.clone(),
            RunConfig::new(Llm::Llama31_8b, Precision::Int4).power_mode(PowerMode::maxn_for(&xav)),
        )
        .named("xavier-agx-32"),
    ]
}

fn main() {
    let reqs = PoissonArrivals::paper_shape(RATE).generate(N_REQS, SEED);
    println!(
        "Routing {N_REQS} Poisson requests ({RATE} req/s, {SLO_S:.0} s SLO) across a \
         mixed Orin-AGX / Orin-NX / Xavier rack, Llama-3.1-8B:\n"
    );
    println!(
        "  {:<20} {:>6} {:>8} {:>10} {:>10} {:>8} {:>6}",
        "policy", "tok/s", "mean lat", "p95 lat", "energy J", "J/tok", "SLO"
    );

    let policies: Vec<(Box<dyn RoutingPolicy>, bool)> = vec![
        (Box::new(RoundRobin::default()), false),
        (Box::new(JoinShortestQueue), false),
        (Box::new(LeastKvPressure), false),
        (Box::new(EnergyGreedy::default()), false),
        (Box::new(SloAware::new(SLO_S)), true),
    ];
    for (policy, with_cloud) in policies {
        let cfg = FleetConfig {
            slo_latency_s: SLO_S,
            cloud: with_cloud.then(CloudEndpoint::datacenter),
            faults: FaultPlan::none(),
        };
        let r = run_fleet(rack(), policy, cfg, &reqs).expect("rack serves the model");
        println!(
            "  {:<20} {:>6.1} {:>7.1}s {:>9.1}s {:>10.0} {:>6.2} {:>5.0}%",
            r.policy,
            r.output_tok_s,
            r.mean_latency_s,
            r.p95_latency_s,
            r.energy_j,
            r.energy_per_token_j,
            r.slo_attainment * 100.0
        );
    }

    println!(
        "\nEnergy-greedy consolidates onto the most efficient board and spills by \
         backlog watermark; blind round-robin parks a third of the stream on the \
         slow Xavier and pays for it in both SLO and J/token.\n"
    );

    // Fault rehearsal: the strongest board drops out 5 s in, back at 25 s.
    let cfg = FleetConfig {
        slo_latency_s: SLO_S,
        cloud: None,
        faults: FaultPlan::none().outage(0, 5.0, 25.0),
    };
    let r =
        run_fleet(rack(), Box::new(JoinShortestQueue), cfg, &reqs).expect("rack serves the model");
    println!(
        "Dropout rehearsal (join-shortest-queue, orin-agx-64 down 5–25 s): \
         {} of {} completed, {} lost, {} in-flight requests re-routed.",
        r.completed, r.submitted, r.lost, r.reroutes
    );
    for d in &r.devices {
        println!(
            "  {:<14} routed {:>3}  completed {:>3}  {:>5} tokens  {:>6.0} J",
            d.name, d.routed, d.completed, d.output_tokens, d.energy_j
        );
    }
}
