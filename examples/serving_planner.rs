//! Serving planner: choose the batch size that maximizes throughput under
//! a per-request latency SLO — the operational question behind the paper's
//! Fig 1 trade-off ("larger batch sizes improve GPU efficiency, but ...").
//!
//! ```sh
//! cargo run --release --example serving_planner
//! ```

use edgellm::core::{Engine, RunConfig, SequenceSpec, StaticBatcher};
use edgellm::models::{Llm, Precision};

/// Requests waiting in the queue.
const QUEUE: usize = 256;
/// Per-request completion SLO in seconds (includes queueing delay).
const SLO_S: f64 = 60.0;

fn main() {
    let engine = Engine::orin_agx_64gb();
    println!(
        "Planning batched serving of {QUEUE} requests (sl=96) under a {SLO_S:.0} s \
         mean-completion SLO on {}:\n",
        engine.device().name
    );

    for llm in Llm::ALL {
        let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
        let mut best: Option<(u64, f64, f64)> = None;
        println!("{} ({prec:?}):", llm.arch().name);
        for bs in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let cfg = RunConfig::new(llm, prec).batch_size(bs).sequence(SequenceSpec::paper_96());
            let report = match StaticBatcher::new(QUEUE).run(&engine, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    println!("  bs={bs:<3}  {e}");
                    continue;
                }
            };
            let ok = report.mean_request_latency_s <= SLO_S;
            println!(
                "  bs={bs:<3}  makespan {:7.1} s  mean-latency {:7.1} s  \
                 {:7.1} tok/s  energy {:7.0} J  {}",
                report.makespan_s,
                report.mean_request_latency_s,
                report.throughput_tok_s,
                report.energy_j,
                if ok { "meets SLO" } else { "violates SLO" }
            );
            if ok {
                let better = best.is_none_or(|(_, tp, _)| report.throughput_tok_s > tp);
                if better {
                    best = Some((bs, report.throughput_tok_s, report.energy_j));
                }
            }
        }
        match best {
            Some((bs, tp, e)) => println!(
                "  → pick bs={bs}: {tp:.1} tok/s at {e:.0} J within the SLO\n"
            ),
            None => println!("  → no batch size meets the SLO for this model\n"),
        }
    }
}
