//! Serving planner: choose the batch size that maximizes throughput under
//! a per-request latency SLO — the operational question behind the paper's
//! Fig 1 trade-off ("larger batch sizes improve GPU efficiency, but ...").
//! Then, for the online-arrivals version of the same question, compare the
//! serving policies of the event-driven scheduler: static batch formation,
//! iteration-level admission with blocking prefill, and chunked prefill.
//!
//! ```sh
//! cargo run --release --example serving_planner
//! ```

use edgellm::core::serve::{EventScheduler, ServeConfig};
use edgellm::core::{
    ContinuousBatcher, Engine, PoissonArrivals, RunConfig, SequenceSpec, StaticBatcher,
};
use edgellm::models::{Llm, Precision};

/// Requests waiting in the queue.
const QUEUE: usize = 256;
/// Per-request completion SLO in seconds (includes queueing delay).
const SLO_S: f64 = 60.0;

fn main() {
    let engine = Engine::orin_agx_64gb();
    println!(
        "Planning batched serving of {QUEUE} requests (sl=96) under a {SLO_S:.0} s \
         mean-completion SLO on {}:\n",
        engine.device().name
    );

    for llm in Llm::ALL {
        let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
        let mut best: Option<(u64, f64, f64)> = None;
        println!("{} ({prec:?}):", llm.arch().name);
        for bs in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let cfg = RunConfig::new(llm, prec).batch_size(bs).sequence(SequenceSpec::paper_96());
            let report = match StaticBatcher::new(QUEUE).run(&engine, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    println!("  bs={bs:<3}  {e}");
                    continue;
                }
            };
            let ok = report.mean_request_latency_s <= SLO_S;
            println!(
                "  bs={bs:<3}  makespan {:7.1} s  mean-latency {:7.1} s  \
                 {:7.1} tok/s  energy {:7.0} J  {}",
                report.makespan_s,
                report.mean_request_latency_s,
                report.throughput_tok_s,
                report.energy_j,
                if ok { "meets SLO" } else { "violates SLO" }
            );
            if ok {
                let better = best.is_none_or(|(_, tp, _)| report.throughput_tok_s > tp);
                if better {
                    best = Some((bs, report.throughput_tok_s, report.energy_j));
                }
            }
        }
        match best {
            Some((bs, tp, e)) => {
                println!("  → pick bs={bs}: {tp:.1} tok/s at {e:.0} J within the SLO\n")
            }
            None => println!("  → no batch size meets the SLO for this model\n"),
        }
    }

    online_policies(&engine);
}

/// Online arrivals: how much does the serving policy itself buy, holding the
/// model (Llama-3.1-8B FP16) and the arrival trace fixed?
fn online_policies(engine: &Engine) {
    const N_REQS: usize = 60;
    const SEED: u64 = 2;
    let dev = engine.device();
    let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
    println!(
        "Online serving policies, Llama-3.1-8B FP16 on {}, {N_REQS} Poisson \
         requests (in 32 / out 64):\n",
        dev.name
    );
    println!(
        "  {:>6}  {:<9} {:>9} {:>10} {:>9} {:>9} {:>8}",
        "req/s", "policy", "mean lat", "mean TTFT", "stall s", "energy J", "preempt"
    );
    for rate in [0.5, 1.5, 3.0] {
        let reqs = PoissonArrivals::paper_shape(rate).generate(N_REQS, SEED);
        let stat = ContinuousBatcher::new(16).run_static(dev, &cfg, &reqs).expect("model fits");
        let block = EventScheduler::new(ServeConfig::blocking(16))
            .run(dev, &cfg, &reqs)
            .expect("model fits");
        let chunked = EventScheduler::new(ServeConfig::chunked(16))
            .run(dev, &cfg, &reqs)
            .expect("model fits");
        for (name, r) in
            [("static", &stat), ("blocking", &block.report), ("chunked", &chunked.report)]
        {
            println!(
                "  {rate:>6.1}  {name:<9} {:>8.1}s {:>9.2}s {:>8.2}s {:>9.0} {:>8}",
                r.mean_latency_s, r.mean_ttft_s, r.prefill_stall_s, r.energy_j, r.preemptions
            );
        }
        println!();
    }
    println!(
        "Chunked prefill folds prompt processing into the decode batch, so \
         admissions stop stalling live sequences; the KV pool preempts (and \
         later recomputes) the youngest sequence instead of worst-casing \
         admission, and every iteration is billed through the rail power model."
    );
}
