//! Governor planner: print the static power-mode ladder (each rung's
//! decode rate, busy/idle power and J/token at the representative
//! operating point), then pit the online governors — hysteretic SLO
//! ladder, energy budget, thermal headroom — against the best static
//! rung on one bursty request stream.
//!
//! The static table answers "which one mode should I pin?"; the governed
//! runs answer "what does riding the ladder online buy on a workload
//! with idle gaps?".
//!
//! ```sh
//! cargo run --release --example governor_planner
//! ```

use edgellm::core::serve::{ServeConfig, ServeSim};
use edgellm::core::{Request, RunConfig};
use edgellm::governor::{
    EnergyBudget, Governor, GovernorPolicy, HystereticLadder, ModeLadder, SloSpec, ThermalHeadroom,
};
use edgellm::hw::DeviceSpec;
use edgellm::models::{Llm, Precision};
use edgellm::power::ThermalModel;

const LLM: Llm = Llm::Llama31_8b;
const PRECISION: Precision = Precision::Fp16;
const SLO: SloSpec = SloSpec { ttft_s: 8.0, tbt_s: 0.5 };

/// Three 5-request bursts with long idle gaps — the shape where a
/// static mode must either waste idle watts (fast rung) or blow the
/// SLO (slow rung), and an online governor can do neither.
fn bursty() -> Vec<Request> {
    let mut reqs = Vec::new();
    for (b, t0) in [0.0, 45.0, 90.0].into_iter().enumerate() {
        for i in 0..5u64 {
            reqs.push(Request {
                id: (b as u64) * 5 + i,
                arrival_s: t0,
                input_tokens: 64,
                output_tokens: 48,
            });
        }
    }
    reqs
}

fn governed(
    dev: &DeviceSpec,
    ladder: &ModeLadder,
    policy: Option<Box<dyn GovernorPolicy>>,
    start_rung: usize,
) -> (f64, f64, usize) {
    let cfg = RunConfig::new(LLM, PRECISION).power_mode(ladder.rung(start_rung).mode.clone());
    let reqs = bursty();
    let mut sim = ServeSim::new(ServeConfig::chunked(16), dev, &cfg, &reqs).unwrap();
    match policy {
        Some(p) => {
            let mut gov = Governor::new(p, dev, LLM, PRECISION, &cfg.power_mode);
            while let Some(t) = sim.next_event_s() {
                sim.step_governed(t, &mut gov).unwrap();
            }
            let audit = gov.audit();
            (sim.energy_j(), sim.now(), audit.decisions.len())
        }
        None => {
            while let Some(t) = sim.next_event_s() {
                sim.step(t).unwrap();
            }
            (sim.energy_j(), sim.now(), 0)
        }
    }
}

fn main() {
    let dev = DeviceSpec::orin_agx_64gb();
    let ladder = ModeLadder::stock(&dev, LLM, PRECISION);

    println!("Static ladder — Orin AGX, Llama-3.1-8B FP16, Table 2 modes sorted by busy power:\n");
    println!(
        "{:<6} {:<8} {:>9} {:>9} {:>9} {:>9}",
        "rung", "mode", "tok/s", "busy W", "idle W", "J/tok"
    );
    for i in 0..ladder.len() {
        let r = ladder.rung(i);
        println!(
            "{i:<6} {:<8} {:>9.2} {:>9.1} {:>9.1} {:>9.2}",
            r.mode.name,
            r.cost.decode_tok_s,
            r.cost.busy_power_w,
            r.cost.idle_power_w,
            r.cost.energy_per_token_j
        );
    }

    println!("\nBursty stream (3 bursts × 5 reqs, 45 s apart) — statics vs online governors:\n");
    println!("{:<14} {:>10} {:>12} {:>10}", "config", "energy J", "makespan s", "decisions");
    let mut best_static = f64::INFINITY;
    for i in 0..ladder.len() {
        let (e, mk, _) = governed(&dev, &ladder, None, i);
        // Fast rungs finish sooner but idle hotter; the slow floor may
        // miss the SLO entirely — energy alone is an incomplete story,
        // which is exactly why the experiment tracks attainment too.
        println!(
            "{:<14} {:>10.0} {:>12.1} {:>10}",
            format!("static:{}", ladder.rung(i).mode.name),
            e,
            mk,
            "-"
        );
        best_static = best_static.min(e);
    }
    let thermal_model = ThermalModel::orin_agx_passive();
    let policies: [(&str, Box<dyn GovernorPolicy>); 3] = [
        ("ladder", Box::new(HystereticLadder::new(SLO))),
        ("budget", Box::new(EnergyBudget::new(ladder.rung(0).cost.peak_power_w * 1.5))),
        ("thermal", Box::new(ThermalHeadroom::new(thermal_model, 6.0))),
    ];
    for (name, p) in policies {
        let (e, mk, n) = governed(&dev, &ladder, Some(p), 0);
        let delta = 100.0 * (best_static - e) / best_static;
        println!("{:<14} {:>10.0} {:>12.1} {:>10}   ({delta:+.0}% vs best static)", name, e, mk, n);
    }
    println!(
        "\n→ run the full comparison (steady/bursty/adversarial + SLO attainment):\n  \
         cargo run --release -p edgellm-experiments --bin edgellm -- run ext-governor"
    );
}
