//! Offline, in-tree implementation of the `rayon` data-parallelism API —
//! a **real** work-splitting substrate, not a sequential stand-in.
//!
//! The build environment has no registry access, so this crate provides the
//! entry points the workspace uses (`par_iter`, `par_iter_mut`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter`, [`join`], [`current_num_threads`]) on
//! top of a small fork/join pool built from scoped `std::thread`s:
//!
//! * **Work splitting** — each parallel call partitions its index range into
//!   contiguous runs, spawns one scoped worker per run (the calling thread
//!   executes the first run itself), and joins them before returning. Scoped
//!   threads mean borrowed data flows into workers with no `'static` bound
//!   and no `unsafe`.
//! * **Thread count** — `std::thread::available_parallelism()` by default,
//!   overridden process-wide by the `EDGELLM_THREADS` environment variable
//!   (read once) and per-call-tree by [`with_num_threads`] (used by the
//!   determinism test suites to compare thread counts inside one process).
//! * **Determinism contract** — results are **bit-identical across thread
//!   counts**. Element-wise operations (`for_each`, `map`+`collect`) write
//!   disjoint outputs whose values never depend on the partition, and
//!   ordered reductions (`sum`) always combine fixed-size chunk partials in
//!   chunk order, where the chunk boundaries are a pure function of the
//!   input length — never of the thread count.
//! * **Nested parallelism** — a parallel region entered from inside another
//!   parallel region runs sequentially on the worker that reached it (a
//!   cheap stand-in for rayon's work stealing that bounds the total thread
//!   count to one scope's worth).

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

thread_local! {
    /// True while this thread is executing inside a parallel region; nested
    /// regions run sequentially instead of spawning a second generation of
    /// workers.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
    /// Per-call-tree override installed by [`with_num_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Process-wide worker budget: `EDGELLM_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("EDGELLM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Number of worker threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    THREAD_OVERRIDE.with(|o| o.get()).unwrap_or_else(env_threads)
}

/// Run `f` with the thread budget forced to `n` for every parallel call
/// made (directly) from the current thread. Used by the determinism suites
/// to compare `EDGELLM_THREADS=1,2,8` inside a single process.
///
/// # Panics
/// If `n == 0`.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be positive");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(n))));
    f()
}

fn in_parallel_region() -> bool {
    IN_REGION.with(|c| c.get())
}

/// RAII marker for "this thread is a parallel worker right now".
struct RegionGuard(bool);

impl RegionGuard {
    fn enter() -> Self {
        RegionGuard(IN_REGION.with(|c| c.replace(true)))
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.0;
        IN_REGION.with(|c| c.set(prev));
    }
}

// ---------------------------------------------------------------------------
// Partitioning and the scoped-thread executor
// ---------------------------------------------------------------------------

/// Ceiling on the number of reduction chunks per parallel call. Reduction
/// chunk boundaries depend only on the input length — never on the thread
/// count — which is what makes ordered reductions bit-identical at any
/// parallelism.
const MAX_CHUNKS: usize = 64;

/// Split `0..len` into at most `parts` contiguous ranges, balanced to ±1.
fn partition(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.min(len);
    if parts == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Thread-level partition of `units` work units for the current budget.
fn thread_runs(units: usize) -> Vec<Range<usize>> {
    partition(units, current_num_threads())
}

/// Fixed reduction-chunk partition of `len` items (thread-count independent).
fn reduce_chunks(len: usize) -> Vec<Range<usize>> {
    partition(len, MAX_CHUNKS)
}

/// Execute `f` over every part — in parallel when the budget allows —
/// returning results in part order. Part 0 runs on the calling thread; the
/// rest each get one scoped worker. Worker panics propagate to the caller.
fn run_parts<P: Send, R: Send>(parts: Vec<P>, f: impl Fn(P) -> R + Sync) -> Vec<R> {
    if parts.len() <= 1 || in_parallel_region() || current_num_threads() <= 1 {
        return parts.into_iter().map(f).collect();
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut iter = parts.into_iter();
        let first = iter.next().expect("parts checked nonempty");
        let handles: Vec<_> = iter
            .map(|p| {
                s.spawn(move || {
                    let _g = RegionGuard::enter();
                    f(p)
                })
            })
            .collect();
        let r0 = {
            let _g = RegionGuard::enter();
            f(first)
        };
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(r0);
        for h in handles {
            out.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
        out
    })
}

/// Run two closures, potentially in parallel, returning both results
/// (mirrors `rayon::join`). Nested joins run sequentially.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if in_parallel_region() || current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let _g = RegionGuard::enter();
            b()
        });
        let ra = {
            let _g = RegionGuard::enter();
            a()
        };
        (ra, hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
    })
}

/// Reborrow a slice as per-run `(base_index, segment)` parts.
fn split_ref<'a, T>(s: &'a [T], runs: &[Range<usize>]) -> Vec<(usize, &'a [T])> {
    runs.iter().map(|r| (r.start, &s[r.clone()])).collect()
}

/// Split a mutable slice into disjoint per-run `(base_index, segment)` parts.
fn split_mut<'a, T>(mut s: &'a mut [T], runs: &[Range<usize>]) -> Vec<(usize, &'a mut [T])> {
    let mut out = Vec::with_capacity(runs.len());
    let mut consumed = 0;
    for r in runs {
        let (head, tail) = s.split_at_mut(r.end - consumed);
        out.push((r.start, head));
        consumed = r.end;
        s = tail;
    }
    out
}

/// Split an owned vector into per-run `(base_index, sub_vec)` parts.
fn split_vec<T>(mut v: Vec<T>, runs: &[Range<usize>]) -> Vec<(usize, Vec<T>)> {
    let mut out: Vec<(usize, Vec<T>)> = Vec::with_capacity(runs.len());
    for r in runs.iter().rev() {
        out.push((r.start, v.split_off(r.start)));
    }
    out.reverse();
    out
}

// ---------------------------------------------------------------------------
// Entry-point traits (same names/import paths as the old sequential shim)
// ---------------------------------------------------------------------------

/// Borrowing parallel views over slice-like containers.
///
/// Implemented for `[T]`, which covers slices directly and `Vec<T>` /
/// arrays through deref and unsize coercion.
pub trait ParallelSliceOps {
    /// Element type.
    type Item;
    /// Shared parallel iteration (`rayon`'s `par_iter`).
    fn par_iter(&self) -> ParIter<'_, Self::Item>;
    /// Exclusive parallel iteration (`rayon`'s `par_iter_mut`).
    fn par_iter_mut(&mut self) -> ParIterMut<'_, Self::Item>;
    /// Non-overlapping shared chunks (`rayon`'s `par_chunks`).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, Self::Item>;
    /// Non-overlapping exclusive chunks (`rayon`'s `par_chunks_mut`).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, Self::Item>;
}

impl<T> ParallelSliceOps for [T] {
    type Item = T;
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { s: self }
    }
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { s: self }
    }
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks { s: self, size: chunk_size }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { s: self, size: chunk_size }
    }
}

/// Consuming conversion into a parallel iterator. The blanket impl buffers
/// arbitrary `IntoIterator` sources into a `Vec` (free for `Vec` itself)
/// and parallelizes from there.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> IntoParIter<I::Item> {
        IntoParIter { items: self.into_iter().collect() }
    }
}

// ---------------------------------------------------------------------------
// Shared iteration: ParIter and adapters
// ---------------------------------------------------------------------------

/// Parallel shared iterator over a slice.
pub struct ParIter<'a, T> {
    s: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Map each element through `f` (parallel at the terminal operation).
    pub fn map<R, F>(self, f: F) -> MapSlice<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        MapSlice { s: self.s, f }
    }

    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumSlice<'a, T> {
        EnumSlice { s: self.s }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let parts = split_ref(self.s, &thread_runs(self.s.len()));
        run_parts(parts, |(_, seg)| seg.iter().for_each(&f));
    }
}

/// `par_iter().map(f)` — a mapped parallel slice iterator.
pub struct MapSlice<'a, T, F> {
    s: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> MapSlice<'a, T, F> {
    /// Collect mapped values in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = &self.f;
        let parts = split_ref(self.s, &thread_runs(self.s.len()));
        let vecs = run_parts(parts, |(_, seg)| seg.iter().map(f).collect::<Vec<R>>());
        vecs.into_iter().flatten().collect()
    }

    /// Ordered parallel reduction: sums fixed-size chunk partials in chunk
    /// order, so the result is bit-identical at any thread count.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R> + std::iter::Sum<S> + Send,
    {
        let f = &self.f;
        let chunks = reduce_chunks(self.s.len());
        let groups: Vec<Vec<&'a [T]>> = thread_runs(chunks.len())
            .iter()
            .map(|run| chunks[run.clone()].iter().map(|c| &self.s[c.clone()]).collect())
            .collect();
        let partials = run_parts(groups, |segs| {
            segs.into_iter().map(|seg| seg.iter().map(f).sum::<S>()).collect::<Vec<S>>()
        });
        partials.into_iter().flatten().sum()
    }

    /// Apply the mapped function for its side effect.
    pub fn for_each(self, sink: impl Fn(R) + Sync) {
        let f = &self.f;
        let parts = split_ref(self.s, &thread_runs(self.s.len()));
        run_parts(parts, |(_, seg)| seg.iter().for_each(|x| sink(f(x))));
    }
}

/// `par_iter().enumerate()` — indexed shared iteration.
pub struct EnumSlice<'a, T> {
    s: &'a [T],
}

impl<'a, T: Sync> EnumSlice<'a, T> {
    /// Apply `f` to every `(index, element)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a T)) + Sync,
    {
        let parts = split_ref(self.s, &thread_runs(self.s.len()));
        run_parts(parts, |(base, seg)| {
            seg.iter().enumerate().for_each(|(i, x)| f((base + i, x)));
        });
    }
}

// ---------------------------------------------------------------------------
// Exclusive iteration: ParIterMut and adapters
// ---------------------------------------------------------------------------

/// Parallel exclusive iterator over a slice.
pub struct ParIterMut<'a, T> {
    s: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumSliceMut<'a, T> {
        EnumSliceMut { s: self.s }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let runs = thread_runs(self.s.len());
        let parts = split_mut(self.s, &runs);
        run_parts(parts, |(_, seg)| seg.iter_mut().for_each(&f));
    }
}

/// `par_iter_mut().enumerate()` — indexed exclusive iteration.
pub struct EnumSliceMut<'a, T> {
    s: &'a mut [T],
}

impl<'a, T: Send> EnumSliceMut<'a, T> {
    /// Apply `f` to every `(index, element)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let runs = thread_runs(self.s.len());
        let parts = split_mut(self.s, &runs);
        run_parts(parts, |(base, seg)| {
            seg.iter_mut().enumerate().for_each(|(i, x)| f((base + i, x)));
        });
    }
}

// ---------------------------------------------------------------------------
// Chunked iteration: ParChunks / ParChunksMut and adapters
// ---------------------------------------------------------------------------

/// Parallel iterator over non-overlapping shared chunks.
pub struct ParChunks<'a, T> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }

    /// True when there are no chunks.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumChunks<'a, T> {
        EnumChunks { s: self.s, size: self.size }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// `par_chunks().enumerate()` — indexed shared chunks.
pub struct EnumChunks<'a, T> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> EnumChunks<'a, T> {
    /// Apply `f` to every `(chunk_index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a [T])) + Sync,
    {
        let size = self.size;
        let runs = thread_runs(self.s.len().div_ceil(size));
        let parts: Vec<(usize, &'a [T])> = runs
            .iter()
            .map(|r| (r.start, &self.s[r.start * size..(r.end * size).min(self.s.len())]))
            .collect();
        run_parts(parts, |(base, seg)| {
            seg.chunks(size).enumerate().for_each(|(i, c)| f((base + i, c)));
        });
    }
}

/// Parallel iterator over non-overlapping exclusive chunks.
pub struct ParChunksMut<'a, T> {
    s: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }

    /// True when there are no chunks.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut { s: self.s, size: self.size }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// `par_chunks_mut().enumerate()` — indexed exclusive chunks.
pub struct EnumChunksMut<'a, T> {
    s: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> EnumChunksMut<'a, T> {
    /// Apply `f` to every `(chunk_index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let size = self.size;
        let n_chunks = self.s.len().div_ceil(size);
        let runs = thread_runs(n_chunks);
        let len = self.s.len();
        // Scale chunk-index runs to element ranges aligned on chunk bounds.
        let elem_runs: Vec<Range<usize>> =
            runs.iter().map(|r| (r.start * size).min(len)..(r.end * size).min(len)).collect();
        let mut parts = split_mut(self.s, &elem_runs);
        // Re-base each part on its chunk index rather than element index.
        for (part, run) in parts.iter_mut().zip(&runs) {
            part.0 = run.start;
        }
        run_parts(parts, |(base, seg)| {
            seg.chunks_mut(size).enumerate().for_each(|(i, c)| f((base + i, c)));
        });
    }
}

// ---------------------------------------------------------------------------
// Consuming iteration: IntoParIter and adapters
// ---------------------------------------------------------------------------

/// Parallel iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Map each owned element through `f`.
    pub fn map<R, F>(self, f: F) -> MapVec<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        MapVec { items: self.items, f }
    }

    /// Apply `f` to every owned element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let runs = thread_runs(self.items.len());
        let parts = split_vec(self.items, &runs);
        run_parts(parts, |(_, seg)| seg.into_iter().for_each(&f));
    }

    /// Ordered parallel reduction over owned items (fixed chunk boundaries;
    /// bit-identical at any thread count).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        self.map(|x| x).sum()
    }

    /// Collect the items (identity map) in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// `into_par_iter().map(f)` — a mapped parallel owning iterator.
pub struct MapVec<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> MapVec<T, F> {
    /// Collect mapped values in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = &self.f;
        let runs = thread_runs(self.items.len());
        let parts = split_vec(self.items, &runs);
        let vecs = run_parts(parts, |(_, seg)| seg.into_iter().map(f).collect::<Vec<R>>());
        vecs.into_iter().flatten().collect()
    }

    /// Ordered parallel reduction: sums fixed-size chunk partials in chunk
    /// order, so the result is bit-identical at any thread count.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R> + std::iter::Sum<S> + Send,
    {
        let f = &self.f;
        let chunks = reduce_chunks(self.items.len());
        // Group whole chunks per thread run; each worker emits one partial
        // per chunk, combined afterwards in chunk order.
        let chunk_runs = thread_runs(chunks.len());
        let elem_runs: Vec<Range<usize>> =
            chunk_runs.iter().map(|r| chunks[r.start].start..chunks[r.end - 1].end).collect();
        let sizes: Vec<Vec<usize>> = chunk_runs
            .iter()
            .map(|r| chunks[r.clone()].iter().map(|c| c.end - c.start).collect())
            .collect();
        let parts: Vec<(Vec<usize>, Vec<T>)> = split_vec(self.items, &elem_runs)
            .into_iter()
            .zip(sizes)
            .map(|((_, seg), sz)| (sz, seg))
            .collect();
        let partials = run_parts(parts, |(sz, seg)| {
            let mut out = Vec::with_capacity(sz.len());
            let mut it = seg.into_iter();
            for n in sz {
                out.push(it.by_ref().take(n).map(f).sum::<S>());
            }
            out
        });
        partials.into_iter().flatten().sum()
    }
}

/// The glob-importable surface, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceOps};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn slice_and_vec_entry_points_resolve() {
        let arr = [1u64, 2, 3, 4];
        let doubled: Vec<u64> = arr.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut v = vec![0f32; 6];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.iter_mut().for_each(|x| *x = i as f32));
        assert_eq!(v, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);

        let sum: u64 = (0u64..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn with_num_threads_overrides_and_restores() {
        let outer = super::current_num_threads();
        super::with_num_threads(3, || {
            assert_eq!(super::current_num_threads(), 3);
            super::with_num_threads(7, || assert_eq!(super::current_num_threads(), 7));
            assert_eq!(super::current_num_threads(), 3);
        });
        assert_eq!(super::current_num_threads(), outer);
    }

    #[test]
    fn work_actually_splits_across_threads() {
        // With a budget of 4, a large-enough for_each must observe more
        // than one distinct worker thread.
        use std::sync::Mutex;
        let seen = Mutex::new(std::collections::HashSet::new());
        let v: Vec<u32> = (0..1024).collect();
        super::with_num_threads(4, || {
            v.par_iter().for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(seen.lock().unwrap().len() > 1, "expected multiple worker threads");
    }

    #[test]
    fn map_collect_preserves_order_at_any_thread_count() {
        let v: Vec<usize> = (0..1000).collect();
        for t in [1, 2, 3, 8] {
            let out: Vec<usize> =
                super::with_num_threads(t, || v.par_iter().map(|&x| x * x).collect());
            assert_eq!(out, v.iter().map(|&x| x * x).collect::<Vec<_>>(), "threads={t}");
        }
    }

    #[test]
    fn f32_sum_is_bit_identical_across_thread_counts() {
        // Pathologically mixed magnitudes: any change in combination order
        // would change the bits of the result.
        let v: Vec<f32> = (0..10_000)
            .map(|i| if i % 3 == 0 { 1e-7 * i as f32 } else { 1e4 - i as f32 * 0.37 })
            .collect();
        let sums: Vec<u32> = [1usize, 2, 5, 8]
            .iter()
            .map(|&t| {
                super::with_num_threads(t, || v.par_iter().map(|&x| x).sum::<f32>()).to_bits()
            })
            .collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]), "sums differ across thread counts");
    }

    #[test]
    fn into_par_iter_moves_items_and_orders_results() {
        let items: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let out: Vec<usize> =
            super::with_num_threads(4, || items.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], 2);
        assert_eq!(out[10], 3);
    }

    #[test]
    fn collect_into_hashmap_works() {
        let keys = [1u32, 2, 3];
        let m: HashMap<u32, u32> = keys.par_iter().map(|&k| (k, k * 10)).collect();
        assert_eq!(m[&2], 20);
    }

    #[test]
    fn par_iter_mut_enumerate_covers_every_index_once() {
        let mut v = vec![0usize; 513];
        super::with_num_threads(4, || {
            v.par_iter_mut().enumerate().for_each(|(i, x)| *x += i + 1);
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn chunks_mut_sees_ragged_tail() {
        let mut v = vec![0u8; 10];
        super::with_num_threads(3, || {
            v.par_chunks_mut(4).enumerate().for_each(|(i, c)| {
                c.iter_mut().for_each(|x| *x = i as u8 + 1);
            });
        });
        assert_eq!(v, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn par_chunks_shared_enumerates_in_order() {
        let v: Vec<u32> = (0..9).collect();
        let total = AtomicUsize::new(0);
        v.par_chunks(2).enumerate().for_each(|(i, c)| {
            total.fetch_add(i + c.len(), Ordering::Relaxed);
        });
        // 5 chunks: indices 0+1+2+3+4 = 10, lens 2+2+2+2+1 = 9.
        assert_eq!(total.load(Ordering::Relaxed), 19);
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        // Nested joins degrade gracefully to sequential.
        let (x, (y, z)) = super::join(|| 7, || super::join(|| 8, || 9));
        assert_eq!((x, y, z), (7, 8, 9));
    }

    #[test]
    fn nested_parallel_regions_serialize() {
        // An inner parallel call from a worker must not spawn further
        // threads; it should still produce correct, ordered output.
        let outer: Vec<u32> = (0..8).collect();
        let inner: Vec<u32> = (0..64).collect();
        let got: Vec<u32> = super::with_num_threads(4, || {
            outer.par_iter().map(|&o| inner.par_iter().map(|&i| i).sum::<u32>() + o).collect()
        });
        let want: Vec<u32> = (0..8).map(|o| 2016 + o).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let empty: [u64; 0] = [];
        let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let s: u64 = Vec::<u64>::new().into_par_iter().sum();
        assert_eq!(s, 0);
        let mut nothing: Vec<u8> = Vec::new();
        nothing.par_chunks_mut(4).enumerate().for_each(|_| unreachable!());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let v: Vec<u32> = (0..256).collect();
        super::with_num_threads(4, || {
            v.par_iter().for_each(|&x| {
                if x == 255 {
                    panic!("boom");
                }
            });
        });
    }

    #[test]
    fn partition_is_balanced_and_total() {
        for len in [0usize, 1, 7, 64, 65, 1000] {
            for parts in [1usize, 2, 7, 64] {
                let p = super::partition(len, parts);
                let total: usize = p.iter().map(|r| r.end - r.start).sum();
                assert_eq!(total, len);
                if let (Some(min), Some(max)) = (
                    p.iter().map(|r| r.end - r.start).min(),
                    p.iter().map(|r| r.end - r.start).max(),
                ) {
                    assert!(max - min <= 1, "unbalanced partition {p:?}");
                }
            }
        }
    }
}
