//! Offline, sequential stand-in for the `rayon` data-parallelism API.
//!
//! The build environment has no registry access, so this crate provides
//! the `par_iter`/`par_iter_mut`/`par_chunks_mut`/`into_par_iter` entry
//! points the workspace uses and maps each to the equivalent standard
//! iterator. Results are bit-identical to what a single rayon worker
//! would produce; only wall-clock parallelism is lost.

/// Number of worker threads a real pool would use on this machine.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Consuming conversion into a (sequential) "parallel" iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Consume `self` into an iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Borrowing "parallel" views over slice-like containers.
///
/// Implemented for `[T]`, which covers slices directly and `Vec<T>` /
/// arrays through deref and unsize coercion.
pub trait ParallelSliceOps {
    /// Element type.
    type Item;
    /// Shared iteration (`rayon`'s `par_iter`).
    fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
    /// Exclusive iteration (`rayon`'s `par_iter_mut`).
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, Self::Item>;
    /// Non-overlapping shared chunks (`rayon`'s `par_chunks`).
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, Self::Item>;
    /// Non-overlapping exclusive chunks (`rayon`'s `par_chunks_mut`).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, Self::Item>;
}

impl<T> ParallelSliceOps for [T] {
    type Item = T;
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// The glob-importable surface, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceOps};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_and_vec_entry_points_resolve() {
        let arr = [1u64, 2, 3, 4];
        let doubled: Vec<u64> = arr.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut v = vec![0f32; 6];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.iter_mut().for_each(|x| *x = i as f32));
        assert_eq!(v, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);

        let sum: u64 = (0u64..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
