//! Offline, minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate provides
//! the API the workspace's benches use — `Criterion::default()
//! .sample_size(n)`, `bench_function`, `benchmark_group`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!` — with a simple wall-clock
//! timer instead of criterion's statistical machinery. Each benchmark
//! runs `sample_size` timed iterations after a short warmup and reports
//! the mean and best iteration time.

use std::time::{Duration, Instant};

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// (mean, best) per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: stabilize caches/branch predictors and reach steady state.
        let warmup = (self.sample_size / 10).max(1);
        for _ in 0..warmup {
            std::hint::black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            let dt = start.elapsed();
            total += dt;
            best = best.min(dt);
        }
        self.result = Some((total / self.sample_size as u32, best));
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { sample_size: self.sample_size, result: None };
        f(&mut b);
        report(id.as_ref(), b.result);
        self
    }

    /// Open a named group; member benchmarks render as `group/name`.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.as_ref().to_string() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside this group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.parent.bench_function(full, f);
        self
    }

    /// No-op, for upstream API compatibility.
    pub fn finish(self) {}
}

fn report(id: &str, result: Option<(Duration, Duration)>) {
    match result {
        Some((mean, best)) => {
            eprintln!("bench {id:<56} mean {:>12.3?}  best {:>12.3?}", mean, best)
        }
        None => eprintln!("bench {id:<56} (no measurement)"),
    }
}

/// Define a benchmark group function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench entry point (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run_closures() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("unit/sum", |b| {
            b.iter(|| {
                runs += 1;
                (0u64..100).sum::<u64>()
            })
        });
        assert!(runs >= 3);
        let mut g = c.benchmark_group("grp");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
