//! Offline, deterministic subset of the `proptest` property-testing API.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of `proptest` the workspace uses: the `proptest!` macro,
//! range/tuple/`Just`/`prop_oneof!`/`collection::vec`/`bool::ANY`
//! strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion family.
//!
//! Differences from upstream, by design:
//! - **Deterministic**: every case's RNG is seeded from the test's module
//!   path, name and case index, so a property either always passes or
//!   always fails — no flaky CI, no persistence files.
//! - **No shrinking**: a failure reports the case seed instead of a
//!   minimized input. Re-running reproduces it exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategies over the primitive `bool` (mirrors `proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// Uniform strategy over `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// The canonical instance, as in `proptest::bool::ANY`.
    pub const ANY: Any = Any;
}

/// Everything a property-test file needs, as in `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Discard the current case (counts as rejected, not failed) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Build a [`strategy::Union`] choosing uniformly among the listed
/// strategies (mirrors `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __union = $crate::strategy::Union::empty();
        $(__union.push($strat);)+
        __union
    }};
}

/// Define property tests (mirrors the `proptest!` block macro).
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to a
/// plain test that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases: u32 = __config.cases;
            let __max_attempts: u32 = __cases.saturating_mul(16).saturating_add(64);
            let mut __accepted: u32 = 0;
            let mut __attempt: u32 = 0;
            while __accepted < __cases {
                assert!(
                    __attempt < __max_attempts,
                    "proptest '{}': too many rejected cases ({} accepted of {})",
                    stringify!($name),
                    __accepted,
                    __cases
                );
                let __seed = $crate::test_runner::derive_case_seed(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempt,
                );
                __attempt += 1;
                let mut __rng = $crate::test_runner::rng_from_seed(__seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed at case {} (seed {:#x}):\n{}",
                            stringify!($name),
                            __accepted,
                            __seed,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Ranges honor bounds; tuples compose.
        #[test]
        fn ranges_and_tuples(x in 3u64..17, pair in (0u32..8, -2.0f64..2.0)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(pair.0 < 8);
            prop_assert!((-2.0..2.0).contains(&pair.1));
        }

        /// `prop_oneof!` only yields listed values; assume rejects work.
        #[test]
        fn oneof_and_assume(v in prop_oneof![Just(1u8), Just(4u8), Just(9u8)], keep in crate::bool::ANY) {
            prop_assume!(keep || v != 9);
            prop_assert!(v == 1 || v == 4 || (v == 9 && keep));
        }

        /// Collection sizes stay within the requested range.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::derive_case_seed("m::t", 3);
        let b = crate::test_runner::derive_case_seed("m::t", 3);
        let c = crate::test_runner::derive_case_seed("m::t", 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
