//! Case execution plumbing: configuration, outcomes, deterministic seeds.

use rand::rngs::StdRng;

/// Per-block configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated: abort the test with this message.
    Fail(String),
    /// A `prop_assume!` filtered this input out: draw another case.
    Reject(String),
}

/// FNV-1a hash of the fully-qualified test name.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic seed for one case of one property: a hash of the test's
/// module path + name mixed with the case index. No global state, no
/// wall clock — re-running always replays the identical sequence.
pub fn derive_case_seed(qualified_name: &str, case: u32) -> u64 {
    let mut z = fnv1a(qualified_name) ^ ((case as u64) << 32 | 0x5DEE_CE66);
    // SplitMix64 finalizer for avalanche across case indices.
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the case RNG (fully qualified so macro expansions need no
/// trait imports at the call site).
pub fn rng_from_seed(seed: u64) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(seed)
}
