//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use rand::{rngs::StdRng, Rng};

/// Strategy for `Vec`s with lengths drawn from a half-open range.
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, size)` — a `Vec` whose length is uniform in `size` and
/// whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range in collection::vec");
    VecStrategy { element, size }
}
