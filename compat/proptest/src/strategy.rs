//! Value-generation strategies.

use rand::{rngs::StdRng, Rng};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking; a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value for the current case.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// An empty union; `push` at least one alternative before use.
    pub fn empty() -> Self {
        Union { options: Vec::new() }
    }

    /// Add one alternative.
    pub fn push<S: Strategy<Value = T> + 'static>(&mut self, strat: S) {
        self.options.push(Box::new(strat));
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one alternative");
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}
numeric_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
