//! Offline, API-compatible subset of the `rand` crate (0.8-style surface).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), the [`Rng`] convenience methods
//! (`gen`, `gen_range`, `gen_bool`) and a uniform distribution
//! ([`distributions::Uniform`]).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha-based `StdRng`, but every consumer
//! in this workspace only relies on *determinism* and *statistical
//! quality*, never on the exact upstream stream.

pub mod distributions;
pub mod rngs;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw words.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough draw in `[0, span)` via 128-bit widening multiply.
fn mul_bounded(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + mul_bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: any word is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + mul_bounded(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// The user-facing convenience surface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.12)).count();
        assert!((900..1500).contains(&hits), "hits {hits}");
    }
}
