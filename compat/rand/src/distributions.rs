//! Distribution sampling (`rand::distributions` subset).

use crate::{RngCore, SampleRange};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a fixed interval.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Uniform over the half-open interval `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new requires lo < hi");
        Uniform { lo, hi, inclusive: false }
    }

    /// Uniform over the closed interval `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
        Uniform { lo, hi, inclusive: true }
    }
}

macro_rules! uniform_distribution {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Uniform<$t> {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                if self.inclusive {
                    (self.lo..=self.hi).sample_from(rng)
                } else {
                    (self.lo..self.hi).sample_from(rng)
                }
            }
        }
    )*};
}
uniform_distribution!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
