//! Cross-thread-count trace determinism.
//!
//! The exporter promises that two identical simulations serialize to
//! byte-identical Chrome JSON at any parallelism (`EDGELLM_THREADS=1`,
//! `2`, `8`, …). These tests pin that end to end for the two simulated
//! timeline producers — the serving scheduler recording through the
//! process-wide sink, and the fleet co-simulator's explicit
//! [`FleetSim::run_traced`] — using `rayon::with_num_threads`, the
//! in-process equivalent of the `EDGELLM_THREADS` environment override.
//!
//! Scope: simulated (event-clock) timelines only. Wall-clock kernel
//! spans (the `trace` cargo feature) measure real elapsed time and are
//! deliberately outside this guarantee.

use std::sync::Mutex;

use edgellm::core::serve::{EventScheduler, ServeConfig};
use edgellm::core::{PoissonArrivals, RunConfig};
use edgellm::fleet::{FaultPlan, FleetConfig, FleetDevice, FleetSim, JoinShortestQueue};
use edgellm::hw::DeviceSpec;
use edgellm::models::{Llm, Precision};
use edgellm::trace::sink;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Run one online-arrivals serving workload with the trace sink enabled
/// and return the exported JSON. Serialized: the sink is process-global.
fn serve_trace_json(threads: usize) -> String {
    static LOCK: Mutex<()> = Mutex::new(());
    let _g = LOCK.lock().expect("sink lock");
    rayon::with_num_threads(threads, || {
        sink::disable();
        let _ = sink::take();
        sink::enable();
        let dev = DeviceSpec::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let reqs = PoissonArrivals::paper_shape(2.0).generate(12, 42);
        EventScheduler::new(ServeConfig::chunked(16))
            .run(&dev, &cfg, &reqs)
            .expect("serve run succeeds");
        sink::disable();
        sink::take().to_chrome_json()
    })
}

/// Run one two-device fleet (with an outage, so routing and evacuation
/// instants are on the timeline too) and return the exported JSON.
fn fleet_trace_json(threads: usize) -> String {
    rayon::with_num_threads(threads, || {
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let members = vec![
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg.clone()).named("agx-0"),
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg).named("agx-1"),
        ];
        let reqs = PoissonArrivals::paper_shape(2.0).generate(16, 7);
        let faults = FaultPlan::none().outage(0, 3.0, 1e9);
        let fleet_cfg = FleetConfig { faults, ..FleetConfig::default() };
        let sim = FleetSim::new(members, Box::new(JoinShortestQueue), fleet_cfg, &reqs)
            .expect("fleet builds");
        let (_report, trace) = sim.run_traced().expect("fleet run succeeds");
        trace.to_chrome_json()
    })
}

#[test]
fn serve_timeline_is_byte_identical_across_thread_counts() {
    let reference = serve_trace_json(THREAD_COUNTS[0]);
    assert!(!reference.is_empty());
    edgellm::trace::validate_chrome_trace(&reference).expect("schema-valid serve trace");
    assert!(reference.contains("\"decode\""), "scheduler iteration spans present");
    for &t in &THREAD_COUNTS[1..] {
        assert_eq!(
            reference,
            serve_trace_json(t),
            "serve trace diverges between {} and {t} threads",
            THREAD_COUNTS[0]
        );
    }
}

#[test]
fn fleet_timeline_is_byte_identical_across_thread_counts() {
    let reference = fleet_trace_json(THREAD_COUNTS[0]);
    assert!(!reference.is_empty());
    edgellm::trace::validate_chrome_trace(&reference).expect("schema-valid fleet trace");
    assert!(reference.contains("\"route\""), "router instants present");
    for &t in &THREAD_COUNTS[1..] {
        assert_eq!(
            reference,
            fleet_trace_json(t),
            "fleet trace diverges between {} and {t} threads",
            THREAD_COUNTS[0]
        );
    }
}

#[test]
fn repeated_runs_are_byte_identical_at_fixed_threads() {
    assert_eq!(fleet_trace_json(2), fleet_trace_json(2), "same seed, same bytes");
}
