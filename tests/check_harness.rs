//! Tier-1 coverage for the `edgellm-check` deterministic simulation-
//! testing harness: the checked-in seed corpus runs clean, outcomes are
//! digest-identical at any parallelism, and serve/fleet telemetry under
//! *active fault plans* (outages plus the mid-run knobs: KV shrink,
//! power flip, cancellation, clock skew) is byte-identical across
//! `EDGELLM_THREADS=1/2/8` — exercised in-process via
//! `rayon::with_num_threads`, the same override the env var reaches.
//!
//! The simulators are single-threaded by design (the thread knob only
//! shards tensor kernels), so any divergence here means nondeterminism
//! leaked into the serving or fleet paths — exactly what would make an
//! `edgellm-check --seed N` reproducer useless.

use edgellm::check::corpus;
use edgellm::check::runner::{run_scenario, Outcome};
use edgellm::check::scenario::Scenario;
use edgellm::check::Repro;
use edgellm::core::serve::{ServeConfig, ServeSim};
use edgellm::core::{PoissonArrivals, RunConfig};
use edgellm::fleet::{FaultPlan, FleetConfig, FleetDevice, FleetSim, JoinShortestQueue};
use edgellm::hw::{DeviceSpec, PowerModeRegistry};
use edgellm::models::{Llm, Precision};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn corpus_seeds_run_clean_and_digest_identically_across_thread_counts() {
    let seeds = corpus::default_seeds();
    assert!(seeds.len() >= 16, "corpus carries at least the PR-gate matrix");
    let reference: Vec<u64> = rayon::with_num_threads(THREAD_COUNTS[0], || {
        seeds
            .iter()
            .map(|&s| {
                let out = run_scenario(&Scenario::from_seed(s));
                assert!(matches!(out, Outcome::Clean(_)), "corpus seed {s} must be clean: {out}");
                out.digest()
            })
            .collect()
    });
    for &t in &THREAD_COUNTS[1..] {
        let digests: Vec<u64> = rayon::with_num_threads(t, || {
            seeds.iter().map(|&s| run_scenario(&Scenario::from_seed(s)).digest()).collect()
        });
        assert_eq!(reference, digests, "outcome digests diverge at {t} threads");
    }
}

#[test]
fn replaying_a_full_repro_reproduces_the_outcome_digest() {
    for &seed in &corpus::default_seeds()[..4] {
        let direct = run_scenario(&Scenario::from_seed(seed));
        let replayed = run_scenario(&Repro::full(seed).materialize());
        assert_eq!(direct.digest(), replayed.digest(), "seed {seed} replay drifts");
    }
}

/// Drive one single-device serving sim with every mid-run knob active —
/// a KV-pool shrink mid-decode, a power-mode flip, a cancellation — and
/// return its full audit, formatted. Byte-compared across parallelism.
fn faulted_serve_audit(threads: usize) -> String {
    rayon::with_num_threads(threads, || {
        let dev = DeviceSpec::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let reqs = PoissonArrivals::paper_shape(2.0).generate(12, 42);
        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        let pool = 8 * 160 * kv_per_token;
        let mut sim =
            ServeSim::new(ServeConfig::chunked(8).kv_pool_cap(pool), &dev, &cfg, &reqs).unwrap();
        let registry = PowerModeRegistry::stock_for(dev.clone());
        let mut fired = 0u32;
        while let Some(now) = sim.next_event_s() {
            if fired == 0 && now > 2.0 {
                sim.cancel(reqs[3].id);
                fired = 1;
            } else if fired == 1 && now > 4.0 {
                let target = sim.kv_total_blocks() / 2;
                sim.shrink_kv_pool(target);
                fired = 2;
            } else if fired == 2 && now > 6.0 {
                let mode = registry.iter().nth(2).unwrap().clone();
                sim.set_power_mode(&mode).unwrap();
                fired = 3;
            }
            sim.step(now).unwrap();
        }
        format!("{:?}", sim.audit())
    })
}

#[test]
fn faulted_serve_audit_is_byte_identical_across_thread_counts() {
    let reference = faulted_serve_audit(THREAD_COUNTS[0]);
    assert!(reference.contains("cancelled: [("), "the cancellation actually landed");
    for &t in &THREAD_COUNTS[1..] {
        assert_eq!(
            reference,
            faulted_serve_audit(t),
            "faulted serve audit diverges between {} and {t} threads",
            THREAD_COUNTS[0]
        );
    }
}

/// Run a two-device fleet under an active fault plan spanning every
/// event kind — outage, KV shrink, power flip, cancellation, clock
/// skew — and export the Perfetto timeline.
fn faulted_fleet_trace_json(threads: usize) -> String {
    rayon::with_num_threads(threads, || {
        let agx = DeviceSpec::orin_agx_64gb();
        let nx = DeviceSpec::orin_nx_16gb();
        let agx_cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
            .power_mode(edgellm::hw::PowerMode::maxn_for(&agx));
        let nx_cfg = RunConfig::new(Llm::Llama31_8b, Precision::Int4)
            .power_mode(edgellm::hw::PowerMode::maxn_for(&nx));
        let members = vec![
            FleetDevice::new(agx.clone(), agx_cfg).named("agx-0"),
            FleetDevice::new(nx.clone(), nx_cfg).named("nx-1"),
        ];
        let reqs = PoissonArrivals::paper_shape(2.0).generate(16, 7);
        let faults = FaultPlan::none()
            .outage(0, 3.0, 9.0)
            .kv_shrink(1, 2.0, 500)
            .power_flip(1, 4.0, 3)
            .cancel(reqs[5].arrival_s + 0.05, reqs[5].id)
            .clock_skew(0, 10.0, 750);
        let fleet_cfg = FleetConfig { faults, ..FleetConfig::default() };
        let sim = FleetSim::new(members, Box::new(JoinShortestQueue), fleet_cfg, &reqs)
            .expect("fleet builds");
        let (_report, trace) = sim.run_traced().expect("fleet run succeeds");
        trace.to_chrome_json()
    })
}

#[test]
fn faulted_fleet_timeline_is_byte_identical_across_thread_counts() {
    let reference = faulted_fleet_trace_json(THREAD_COUNTS[0]);
    edgellm::trace::validate_chrome_trace(&reference).expect("schema-valid fleet trace");
    for mark in ["\"down\"", "\"kv_shrink\"", "\"power_flip\"", "\"cancel\"", "\"clock_skew\""] {
        assert!(reference.contains(mark), "fault mark {mark} missing from timeline");
    }
    for &t in &THREAD_COUNTS[1..] {
        assert_eq!(
            reference,
            faulted_fleet_trace_json(t),
            "faulted fleet trace diverges between {} and {t} threads",
            THREAD_COUNTS[0]
        );
    }
}

#[test]
fn smoke_matrix_has_no_violations() {
    // The CI `check-smoke` gate in library form: seeds 0..16 plus the
    // governor-active and prefix-cache smoke seeds, whatever their
    // outcome class, must never violate an invariant.
    for seed in (0..16u64).chain(corpus::GOVERNOR_SMOKE_SEEDS).chain(corpus::PREFIX_SMOKE_SEEDS) {
        let out = run_scenario(&Scenario::from_seed(seed));
        assert!(!out.is_violation(), "seed {seed}: {out}");
    }
}

#[test]
fn prefix_smoke_reports_are_byte_identical_across_thread_counts() {
    // Prefix-cache seeds run with the kv-sharing and kv-refcount
    // oracles armed; the full formatted reports (hit counters included)
    // must agree byte-for-byte between 1 and 8 threads, and every seed
    // must record real cache reuse.
    let render = |threads: usize| {
        rayon::with_num_threads(threads, || {
            corpus::PREFIX_SMOKE_SEEDS
                .iter()
                .map(|&s| {
                    let out = run_scenario(&Scenario::from_seed(s));
                    match &out {
                        Outcome::Clean(stats) => assert!(
                            stats.cache_hit_tokens > 0,
                            "prefix smoke seed {s} must hit the cache"
                        ),
                        other => panic!("prefix smoke seed {s} must be clean: {other}"),
                    }
                    format!("seed {s}: {out}")
                })
                .collect::<Vec<_>>()
                .join("\n")
        })
    };
    assert_eq!(render(1), render(8), "prefix smoke reports diverge across thread counts");
}
