//! Speculative decoding end-to-end guarantees, spanning crates.
//!
//! The hard contract (ISSUE 10): draft-and-verify decode must be an
//! *invisible* optimization. Three layers are pinned here:
//!
//! * **nn** — `generate_speculative` emits a token stream bitwise
//!   identical to `generate_greedy` at every weight precision
//!   (f32/f16/int8/int4) and every thread count (`EDGELLM_THREADS` =
//!   1/2/8, exercised in-process via `rayon::with_num_threads`, the
//!   same override the env var reaches).
//! * **mem/serve** — rejected drafts are appended to the paged KV and
//!   rolled back block-exactly: pools conserve blocks under rollback,
//!   preemption, and deliberate KV pressure, and the full
//!   `edgellm-check` oracle battery stays clean.
//! * **forensics** — the per-request energy ledger still partitions the
//!   energy integral exactly (1e-9) when drafted-then-rejected work is
//!   billed to the requests that drafted it.

use edgellm::check::oracles::check_serve;
use edgellm::core::serve::{ServeConfig, ServeSim};
use edgellm::core::{PoissonArrivals, RunConfig};
use edgellm::hw::DeviceSpec;
use edgellm::models::{Llm, Precision};
use edgellm::nn::{PromptLookupDrafter, TinyCausalLm, TinyConfig};
use edgellm::quant::WeightPrecision;
use proptest::prelude::*;

fn drain(mut sim: ServeSim) -> ServeSim {
    while let Some(now) = sim.next_event_s() {
        sim.step(now).unwrap();
    }
    sim
}

fn setup() -> (DeviceSpec, RunConfig) {
    (DeviceSpec::orin_agx_64gb(), RunConfig::new(Llm::Llama31_8b, Precision::Fp16))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Speculative decode is bitwise-identical to plain greedy decode at
    /// every weight precision and every thread count. A repetitive
    /// prompt suffix gives the prompt-lookup drafter real matches, so
    /// both the accept and the reject/rollback paths run.
    #[test]
    fn speculative_stream_is_bitwise_greedy_across_precisions_and_threads(
        seed in 0u64..40,
        k in 1usize..8,
        n in 4usize..28,
        period in 2u64..5,
    ) {
        let prompt: Vec<u32> = (0..10u64)
            .map(|i| ((seed.wrapping_mul(97).wrapping_add(i % period)) % 256) as u32)
            .collect();
        for prec in [
            None,
            Some(WeightPrecision::Fp16),
            Some(WeightPrecision::Int8),
            Some(WeightPrecision::Int4),
        ] {
            // (greedy stream, speculative stream, counters) per thread
            // count; every observation must agree with every other.
            let observe = |threads: usize| {
                rayon::with_num_threads(threads, || {
                    let base = TinyCausalLm::new(TinyConfig::small(seed));
                    let m = match prec {
                        None => base,
                        Some(p) => base.to_precision(p),
                    };
                    let plain = m.generate_greedy(&prompt, n);
                    let (spec, stats) =
                        m.generate_speculative(&prompt, n, &PromptLookupDrafter::default(), k);
                    (plain, spec, stats)
                })
            };
            let t1 = observe(1);
            prop_assert_eq!(&t1.0, &t1.1, "spec != greedy at {:?} k={}", prec, k);
            prop_assert_eq!(
                t1.2.drafted, t1.2.accepted + t1.2.rolled_back,
                "draft partition at {:?}", prec
            );
            for threads in [2usize, 8] {
                let tn = observe(threads);
                prop_assert_eq!(&t1.0, &tn.0, "greedy moved across threads at {:?}", prec);
                prop_assert_eq!(&t1.1, &tn.1, "spec moved across threads at {:?}", prec);
                prop_assert_eq!(t1.2, tn.2, "counters moved across threads at {:?}", prec);
            }
        }
    }

    /// KV blocks are conserved under speculative rollback: every block
    /// taken for a drafted-then-rejected token returns to the pool, with
    /// and without deliberate KV pressure (which adds preemption and the
    /// secure-kv draft-degradation path on top), and the full oracle
    /// battery stays clean.
    #[test]
    fn kv_blocks_conserve_under_rollback_and_pressure(
        seed in 0u64..200,
        k in 1u64..8,
        alpha_pct in 5u64..95,
        pool_seqs in 0u64..10,
    ) {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.5).generate(12, seed);
        let mut serve = ServeConfig::chunked(8)
            .with_speculation(k, alpha_pct as f64 / 100.0);
        // 0 and 1 leave the pool uncapped; 2..10 cap it at that many
        // 160-token sequences' worth of blocks (real pressure).
        if pool_seqs >= 2 {
            serve = serve.kv_pool_cap(pool_seqs * 160 * Llm::Llama31_8b.arch().kv_bytes_per_token());
        }
        let sim = drain(ServeSim::new(serve, &dev, &cfg, &reqs).unwrap());
        let audit = sim.audit();
        prop_assert_eq!(audit.completions.len(), 12);
        prop_assert_eq!(audit.kv_blocks_allocated, audit.kv_blocks_freed);
        prop_assert_eq!(audit.kv_blocks_in_use, 0);
        prop_assert_eq!(audit.spec_drafted, audit.spec_accepted + audit.spec_rolled_back);
        let violations = check_serve(&audit, &reqs);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    /// The forensic energy ledger still partitions exactly with
    /// speculation on: per-request attributed shares (including the
    /// verify rows billed for drafted-then-rejected tokens) plus the
    /// idle remainder reproduce the energy integral at 1e-9.
    #[test]
    fn energy_ledger_partitions_exactly_with_speculation_on(
        seed in 0u64..200,
        k in 1u64..8,
        alpha_pct in 5u64..95,
    ) {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(2.0).generate(10, seed);
        let serve = ServeConfig::chunked(16).with_speculation(k, alpha_pct as f64 / 100.0);
        let sim = drain(ServeSim::new(serve, &dev, &cfg, &reqs).unwrap());
        let f = sim.forensics();
        prop_assert_eq!(f.req_energy.len(), 10, "every request holds an energy share");
        let attributed: f64 = f.req_energy.iter().map(|&(_, e)| e).sum();
        let total = attributed + f.idle_energy_j;
        prop_assert!(
            (total - sim.energy_j()).abs() <= 1e-9 * (1.0 + sim.energy_j().abs()),
            "attributed {} + idle {} != integral {}",
            attributed, f.idle_energy_j, sim.energy_j()
        );
    }
}

/// Speculation must never make a workload *fail* that plain decode
/// serves: same completions, same output totals, never more preemptions
/// than blocks would force, and a makespan no worse — on the paper
/// workload at a healthy acceptance rate it is strictly better.
#[test]
fn speculative_serving_dominates_plain_at_high_alpha() {
    let (dev, cfg) = setup();
    let reqs = PoissonArrivals::paper_shape(1.0).generate(16, 11);
    let plain = drain(ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap());
    let spec = drain(
        ServeSim::new(ServeConfig::chunked(16).with_speculation(4, 0.8), &dev, &cfg, &reqs)
            .unwrap(),
    );
    assert_eq!(spec.completions().len(), plain.completions().len());
    assert_eq!(spec.served_output_tokens(), plain.served_output_tokens());
    assert!(
        spec.now() < plain.now(),
        "speculative makespan {} must beat plain {} at α=0.8",
        spec.now(),
        plain.now()
    );
    assert!(
        spec.energy_j() < plain.energy_j(),
        "fewer weight streams must cost less energy: {} vs {}",
        spec.energy_j(),
        plain.energy_j()
    );
}
