//! Request-scoped forensics: energy-ledger reconciliation, cross-thread
//! byte-identity, the SLO-breach flight dump, and the bursty governed
//! fleet acceptance scenario.
//!
//! The central promise under test: for any run, the per-request energy
//! shares plus the idle integral reconstruct the report's power integral
//! exactly (Σ per-request J + idle J == `report.energy_j` to 1e-9
//! relative), and the forensic artifacts — exports, analyses, flight
//! dumps — are byte-identical at any `EDGELLM_THREADS`.
//!
//! Every test here serializes on one lock: the flight recorder and the
//! forensics sink are process-global, and byte-identity claims need the
//! event window to themselves.

use std::sync::Mutex;

use edgellm::core::serve::{ServeConfig, ServeSim};
use edgellm::core::{PoissonArrivals, Request, RunConfig};
use edgellm::fleet::{FaultPlan, FleetConfig, FleetDevice, FleetSim, JoinShortestQueue};
use edgellm::governor::{HystereticLadder, ModeLadder, SloSpec};
use edgellm::hw::DeviceSpec;
use edgellm::models::{Llm, Precision};
use edgellm::trace::forensics::{self, ForensicsLog};
use proptest::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// `|total − idle − Σ per-request| ≤ 1e-9 · max(|total|, 1)`.
fn assert_ledger_reconciles(log: &ForensicsLog, what: &str) {
    let attributed: f64 = log.req_energy.iter().map(|&(_, e)| e).sum();
    let residual = log.total_energy_j - log.idle_energy_j - attributed;
    let tol = 1e-9 * log.total_energy_j.abs().max(1.0);
    assert!(
        residual.abs() <= tol,
        "{what}: energy ledger does not reconcile: total {} = idle {} + attributed {} + residual {residual}",
        log.total_energy_j,
        log.idle_energy_j,
        attributed
    );
}

/// Drive one standalone serve simulation to completion and return its
/// forensic log alongside the report's energy integral.
fn serve_log(cfg: ServeConfig, rate: f64, count: usize, seed: u64) -> (ForensicsLog, f64) {
    let dev = DeviceSpec::orin_agx_64gb();
    let run_cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
    let reqs = PoissonArrivals::paper_shape(rate).generate(count, seed);
    let mut sim = ServeSim::new(cfg, &dev, &run_cfg, &reqs).expect("AGX serves Llama FP16");
    while let Some(t) = sim.next_event_s() {
        sim.step(t).expect("static mode steps");
    }
    let energy = sim.report().energy_j;
    (sim.forensics(), energy)
}

/// Three bursts of fifteen identical requests with long idle gaps — the
/// governed-fleet acceptance workload (mirrors `ext-governor`'s bursty
/// pattern, scaled up so each burst overflows the admission batch).
fn bursty_requests() -> Vec<Request> {
    let mut reqs = Vec::new();
    for (b, t0) in [0.0, 45.0, 90.0].into_iter().enumerate() {
        for i in 0..15u64 {
            reqs.push(Request {
                id: (b as u64) * 15 + i,
                arrival_s: t0,
                input_tokens: 64,
                output_tokens: 48,
            });
        }
    }
    reqs
}

/// A two-member fleet, one self-governed and starting on the mode
/// ladder's floor rung, both admitting at most four requests at a
/// time: the shape whose forensics mix queueing, governor downclocks
/// and routing on one timeline. Each fifteen-request burst overflows
/// the batch, so late arrivals queue behind a full decode wave and
/// their TTFTs tower over the burst leaders' — guaranteed outliers.
fn governed_pair() -> Vec<FleetDevice> {
    let dev = DeviceSpec::orin_agx_64gb();
    let ladder = ModeLadder::stock(&dev, Llm::Llama31_8b, Precision::Fp16);
    let floor = ladder.rung(0).mode.clone();
    let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16).power_mode(floor);
    vec![
        FleetDevice::new(dev.clone(), cfg.clone())
            .named("governed")
            .serve(ServeConfig::chunked(4))
            .governed(Box::new(HystereticLadder::new(SloSpec { ttft_s: 8.0, tbt_s: 0.5 }))),
        FleetDevice::new(dev, cfg).named("static").serve(ServeConfig::chunked(4)),
    ]
}

/// Run the bursty governed fleet and return `(report energy, forensic
/// export JSON, flight dump)` — everything the byte-identity and
/// acceptance tests compare.
fn governed_fleet_artifacts(threads: usize) -> (f64, String, String) {
    rayon::with_num_threads(threads, || {
        forensics::flight::clear();
        forensics::sink::disable();
        let _ = forensics::sink::take();
        forensics::sink::enable();
        let sim = FleetSim::new(
            governed_pair(),
            Box::new(JoinShortestQueue),
            FleetConfig::default(),
            &bursty_requests(),
        )
        .expect("fleet builds");
        let report = sim.run().expect("fleet drains");
        forensics::sink::disable();
        let docs = forensics::sink::take();
        assert_eq!(docs.len(), 1, "one fleet run, one document");
        (report.energy_j, forensics::export_forensics(&docs), forensics::flight::dump())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random serve scenarios the per-request energy attribution sums
    /// to the report's power integral within 1e-9 relative, for both
    /// prefill disciplines, and reconstruction preserves the residual.
    #[test]
    fn serve_energy_attribution_reconciles(
        rate in 0.5f64..4.0,
        count in 4usize..20,
        seed in 0u64..500,
        chunked in proptest::bool::ANY,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cfg = if chunked { ServeConfig::chunked(16) } else { ServeConfig::blocking(16) };
        let (log, report_energy_j) = serve_log(cfg, rate, count, seed);
        prop_assert!(
            (log.total_energy_j - report_energy_j).abs() <= 1e-9 * report_energy_j.max(1.0),
            "forensic total {} vs report {}", log.total_energy_j, report_energy_j
        );
        assert_ledger_reconciles(&log, "serve");
        let doc = forensics::reconstruct(&log);
        prop_assert!(doc.residual_j.abs() <= 1e-9 * log.total_energy_j.abs().max(1.0));
        prop_assert_eq!(doc.requests.len(), count, "every request reconstructs");
        for r in &doc.requests {
            prop_assert!(r.completed, "rid {} completes", r.rid);
            prop_assert!(r.energy_j > 0.0, "rid {} burned energy", r.rid);
            prop_assert!(r.ttft_s.is_some() && r.latency_s.is_some());
        }
    }

    /// Fleet runs reconcile too: device integrals plus cloud-offload
    /// energy, with faults stirring re-routes into the timeline.
    #[test]
    fn fleet_energy_attribution_reconciles(
        rate in 1.0f64..3.0,
        count in 6usize..16,
        seed in 0u64..200,
        outage in proptest::bool::ANY,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let members = vec![
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg.clone()).named("agx-0"),
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg).named("agx-1"),
        ];
        let faults =
            if outage { FaultPlan::none().outage(0, 3.0, 1e9) } else { FaultPlan::none() };
        let fleet_cfg = FleetConfig { faults, ..FleetConfig::default() };
        let reqs = PoissonArrivals::paper_shape(rate).generate(count, seed);
        let sim = FleetSim::new(members, Box::new(JoinShortestQueue), fleet_cfg, &reqs)
            .expect("fleet builds");
        let (log, report_energy_j) = fleet_log_and_energy(sim);
        assert_ledger_reconciles(&log, "fleet");
        prop_assert!(
            (log.total_energy_j - report_energy_j).abs() <= 1e-9 * report_energy_j.max(1.0),
            "forensic total {} vs fleet report {}", log.total_energy_j, report_energy_j
        );
    }
}

/// Run a fleet to completion and return a ledger-shaped view of its
/// forensic document plus the report's energy integral. `run()` consumes
/// the simulator, so the document travels through the process sink.
fn fleet_log_and_energy(sim: FleetSim) -> (ForensicsLog, f64) {
    forensics::sink::disable();
    let _ = forensics::sink::take();
    forensics::sink::enable();
    let report = sim.run().expect("fleet drains");
    forensics::sink::disable();
    let docs = forensics::sink::take();
    assert_eq!(docs.len(), 1);
    let d = &docs[0];
    let log = ForensicsLog {
        label: d.label.clone(),
        events: Vec::new(),
        req_energy: d.requests.iter().map(|r| (r.rid, r.energy_j)).collect(),
        idle_energy_j: d.idle_energy_j,
        cloud_energy_j: d.cloud_energy_j,
        total_energy_j: d.total_energy_j,
    };
    (log, report.energy_j)
}

/// Acceptance: on the bursty governed fleet, `analyze` names a nonzero
/// blame component for every request whose TTFT exceeds 2× p50, and the
/// energy ledger reconciles to 1e-9.
#[test]
fn bursty_governed_fleet_blames_every_ttft_outlier() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (report_energy_j, export, _dump) = governed_fleet_artifacts(1);
    let docs = forensics::parse_forensics(&export).expect("export parses");
    let stats = forensics::validate_forensics(&export).expect("export is schema-valid");
    assert_eq!(stats.runs, 1);
    let doc = &docs[0];
    assert_eq!(doc.requests.len(), 45, "all bursty requests reconstruct");
    assert!(
        (doc.total_energy_j - report_energy_j).abs() <= 1e-9 * report_energy_j.max(1.0),
        "forensic total {} vs report {}",
        doc.total_energy_j,
        report_energy_j
    );
    assert!(
        doc.residual_j.abs() <= 1e-9 * doc.total_energy_j.max(1.0),
        "ledger reconciles: residual {}",
        doc.residual_j
    );
    let rep = forensics::analyze(std::slice::from_ref(doc), 3);
    let run = &rep.runs[0];
    assert!(!run.outliers.is_empty(), "bursts must produce TTFT outliers (p50 {})", run.p50_ttft_s);
    for o in &run.outliers {
        assert!(
            o.blame.names_nonzero_wait(),
            "outlier rid {} (ttft {:.3}s > 2x p50 {:.3}s) has no named wait blame: {:?}",
            o.rid,
            o.ttft_s,
            run.p50_ttft_s,
            o.blame
        );
    }
    // The human-readable report names the outliers table.
    assert!(rep.render().contains("TTFT outliers"));
}

/// Forensic exports and flight dumps are byte-identical across
/// `EDGELLM_THREADS` — same bytes at 1, 2 and 8 workers.
#[test]
fn forensic_artifacts_are_byte_identical_across_thread_counts() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (energy, export, dump) = governed_fleet_artifacts(THREAD_COUNTS[0]);
    assert!(!dump.is_empty());
    for &t in &THREAD_COUNTS[1..] {
        let (e, x, d) = governed_fleet_artifacts(t);
        assert_eq!(energy.to_bits(), e.to_bits(), "report energy diverges at {t} threads");
        assert_eq!(export, x, "forensics export diverges at {t} threads");
        assert_eq!(dump, d, "flight dump diverges at {t} threads");
    }
}

/// The first SLO breach of a run dumps the flight-recorder window to
/// `EDGELLM_FLIGHT_DUMP`.
#[test]
fn slo_breach_dumps_flight_window() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join("edgellm-flight-breach-test.txt");
    let _ = std::fs::remove_file(&path);
    std::env::set_var("EDGELLM_FLIGHT_DUMP", &path);
    forensics::flight::clear();
    // One modest device, everything at once, a 2-second deadline: the
    // tail blows the SLO and the device dumps its window.
    let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
    let members = vec![FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg).named("solo")];
    let reqs: Vec<Request> = (0..8)
        .map(|i| Request { id: i, arrival_s: 0.0, input_tokens: 64, output_tokens: 48 })
        .collect();
    let fleet_cfg = FleetConfig { slo_latency_s: 2.0, ..FleetConfig::default() };
    let report = FleetSim::new(members, Box::new(JoinShortestQueue), fleet_cfg, &reqs)
        .expect("fleet builds")
        .run()
        .expect("fleet drains");
    std::env::remove_var("EDGELLM_FLIGHT_DUMP");
    assert_eq!(report.completed, 8);
    let body = std::fs::read_to_string(&path).expect("breach dump written");
    let _ = std::fs::remove_file(&path);
    assert!(body.starts_with("SLO breach in run"), "dump header: {}", &body[..60.min(body.len())]);
    assert!(body.contains("admitted"), "dump carries lifecycle events");
}
