//! End-to-end integration tests: every experiment driver reproduces its
//! paper artifact's shape, across the whole crate stack.

use edgellm::experiments::runner::{run_experiment, ExperimentOpts};

fn assert_experiment_passes(id: &str) {
    let r = run_experiment(id, ExperimentOpts { fast: true, ..Default::default() })
        .unwrap_or_else(|| panic!("unknown experiment {id}"));
    assert!(r.all_pass(), "{id} shape checks failed:\n{}", r.render());
}

#[test]
fn tab1_model_memory_reproduces() {
    assert_experiment_passes("tab1");
}

#[test]
fn tab2_power_modes_reproduce() {
    assert_experiment_passes("tab2");
}

#[test]
fn fig1_batch_sweep_wikitext_reproduces() {
    assert_experiment_passes("fig1");
}

#[test]
fn fig7_batch_sweep_longbench_reproduces() {
    assert_experiment_passes("fig7");
}

#[test]
fn fig2_seqlen_sweep_longbench_reproduces() {
    assert_experiment_passes("fig2");
}

#[test]
fn fig9_seqlen_sweep_wikitext_reproduces() {
    assert_experiment_passes("fig9");
}

#[test]
fn fig3_quantization_reproduces() {
    assert_experiment_passes("fig3");
}

#[test]
fn fig4_power_energy_llama_reproduces() {
    assert_experiment_passes("fig4");
}

#[test]
fn fig10_power_energy_all_reproduces() {
    assert_experiment_passes("fig10");
}

#[test]
fn fig5_power_modes_reproduce() {
    assert_experiment_passes("fig5");
}

// tab3 trains four models; keep it in one test with the driver's own
// tolerance (≤2 noisy ordinal misses, OoM cells exact).
#[test]
fn tab3_perplexity_reproduces() {
    let r = run_experiment("tab3", ExperimentOpts { fast: true, ..Default::default() })
        .expect("known id");
    let failed: Vec<_> = r.checks.iter().filter(|c| !c.pass).collect();
    assert!(
        failed.len() <= 2 && failed.iter().all(|c| !c.claim.contains("OoM")),
        "tab3:\n{}",
        r.render()
    );
}

#[test]
fn csv_emission_works_end_to_end() {
    let r = run_experiment("tab2", ExperimentOpts { fast: true, ..Default::default() })
        .expect("known id");
    let dir = std::env::temp_dir().join("edgellm_csv_test");
    let paths = r.write_csv(&dir).expect("csv written");
    assert!(!paths.is_empty());
    let contents = std::fs::read_to_string(&paths[0]).expect("readable");
    assert!(contents.starts_with("mode,"));
    std::fs::remove_dir_all(&dir).ok();
}
