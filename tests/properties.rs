//! Property-based tests (proptest) on the core invariants, spanning
//! crates: numeric codecs, quantization error ordering, performance-model
//! monotonicities, allocator safety and energy integration.

use edgellm::check::oracles::{check_fleet, check_serve};
use edgellm::core::serve::{EventScheduler, ServeConfig, ServeSim};
use edgellm::core::{Engine, PoissonArrivals, RunConfig, SequenceSpec};
use edgellm::corpus::{BpeTokenizer, CorpusKind, SyntheticCorpus};
use edgellm::fleet::{run_fleet, FaultPlan, FleetConfig, FleetDevice, FleetSim, JoinShortestQueue};
use edgellm::hw::{DeviceSpec, PowerMode};
use edgellm::mem::KvBlockAllocator;
use edgellm::models::{Llm, Precision};
use edgellm::nn::{KvCache, TinyCausalLm, TinyConfig};
use edgellm::perf::PerfModel;
use edgellm::power::{median_power_w, sample_timeline, trapezoid_energy_j, Phase};
use edgellm::quant::{QuantError, QuantizedWeights, WeightPrecision};
use edgellm::tensor::{f16_to_f32, f32_to_f16, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// f16 round-trip error is within half an ulp for normal-range values.
    #[test]
    fn f16_roundtrip_relative_error(v in -6.0e4f32..6.0e4f32) {
        let rt = f16_to_f32(f32_to_f16(v));
        // Normal range: relative error ≤ 2^-11; near zero: absolute
        // error below the smallest subnormal step.
        if v.abs() > 1e-4 {
            prop_assert!((rt - v).abs() <= v.abs() * 4.9e-4, "{v} → {rt}");
        } else {
            prop_assert!((rt - v).abs() <= 6.0e-8, "{v} → {rt}");
        }
    }

    /// f16 conversion is monotone: a ≤ b ⇒ rt(a) ≤ rt(b).
    #[test]
    fn f16_conversion_is_monotone(a in -1.0e4f32..1.0e4, b in -1.0e4f32..1.0e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(f16_to_f32(f32_to_f16(lo)) <= f16_to_f32(f32_to_f16(hi)));
    }

    /// Quantization error is ordered fp16 ≤ int8 ≤ int4 on random weights.
    #[test]
    fn quant_error_ladder(seed in 0u64..1000, scale in 0.01f32..0.5) {
        let w = Matrix::rand_normal(24, 128, scale, seed);
        let e16 = QuantError::measure(&w, WeightPrecision::Fp16).mse;
        let e8 = QuantError::measure(&w, WeightPrecision::Int8).mse;
        let e4 = QuantError::measure(&w, WeightPrecision::Int4).mse;
        prop_assert!(e16 <= e8 * 1.001, "fp16 {e16} vs int8 {e8}");
        prop_assert!(e8 <= e4 * 1.001, "int8 {e8} vs int4 {e4}");
    }

    /// Quantized products stay within an error bound that shrinks with
    /// precision (relative to output magnitude).
    #[test]
    fn quantized_matmul_bounded(seed in 0u64..200) {
        let w = Matrix::rand_normal(16, 64, 0.1, seed);
        let x = Matrix::rand_kaiming(4, 64, seed ^ 0xABCD);
        let exact = edgellm::tensor::matmul::matmul_nt(&x, &w);
        let norm = exact.frob_norm() + 1e-3;
        for (p, tol) in [
            (WeightPrecision::Fp16, 0.01f32),
            (WeightPrecision::Int8, 0.05),
            (WeightPrecision::Int4, 0.30),
        ] {
            let approx = QuantizedWeights::quantize(&w, p).matmul_nt(&x);
            let mut diff = approx.clone();
            diff.axpy(-1.0, &exact);
            prop_assert!(diff.frob_norm() <= tol * norm,
                "{p:?}: {} vs bound {}", diff.frob_norm(), tol * norm);
        }
    }

    /// Latency is monotone in batch size and sequence length.
    #[test]
    fn latency_monotone(bs in 1u64..128, extra in 1u64..64) {
        let dev = DeviceSpec::orin_agx_64gb();
        let m = PerfModel::new(dev.clone(), Llm::Llama31_8b, Precision::Fp16, dev.max_clocks());
        prop_assert!(m.latency_s(bs + extra, 32, 64) > m.latency_s(bs, 32, 64));
        prop_assert!(m.latency_s(bs, 32, 64 + extra) > m.latency_s(bs, 32, 64));
    }

    /// Downclocking any domain never speeds inference up.
    #[test]
    fn downclocking_never_helps(
        gpu in 200u32..1301,
        cpu in 6u32..22,
        mem in 600u32..3200,
    ) {
        let dev = DeviceSpec::orin_agx_64gb();
        let maxn = PerfModel::new(dev.clone(), Llm::MistralSmall24b, Precision::Fp16, dev.max_clocks());
        let pm = PowerMode::custom("t", gpu, cpu as f64 / 10.0, 12, mem);
        prop_assume!(pm.validate(&dev).is_ok());
        let throttled = PerfModel::new(dev.clone(), Llm::MistralSmall24b, Precision::Fp16, pm.clocks);
        prop_assert!(throttled.latency_s(32, 32, 64) >= maxn.latency_s(32, 32, 64) - 1e-9);
    }

    /// KV allocator: blocks are conserved across arbitrary workloads.
    #[test]
    fn kv_allocator_conserves_blocks(ops in proptest::collection::vec((0u32..8, 1u64..64), 1..40)) {
        let mut a = KvBlockAllocator::new(1 << 22, 16, 1024); // 256 blocks
        let total = a.total_blocks();
        let mut live: std::collections::HashSet<u32> = Default::default();
        for (seq, tokens) in ops {
            if live.contains(&seq) && tokens % 3 == 0 {
                a.release(seq).unwrap();
                live.remove(&seq);
            } else {
                a.register(seq);
                live.insert(seq);
                let _ = a.append(seq, tokens); // may exhaust: fine
            }
            let held = total - a.free_blocks();
            prop_assert!(held <= total);
            prop_assert!(a.used_bytes() <= a.reserved_bytes());
        }
        for s in live {
            a.release(s).unwrap();
        }
        prop_assert_eq!(a.free_blocks(), total);
        prop_assert_eq!(a.fragmentation(), 0.0);
    }

    /// Trapezoidal energy of any sampled timeline is bounded by
    /// min/max power × duration, and median lies between the extremes.
    #[test]
    fn energy_and_median_bounds(
        powers in proptest::collection::vec(5.0f64..60.0, 1..6),
        dur in 0.5f64..30.0,
        seed in 0u64..500,
    ) {
        let phases: Vec<Phase> = powers
            .iter()
            .map(|&p| Phase { duration_s: dur, power_w: p })
            .collect();
        let trace = sample_timeline(&phases, 2.0, seed);
        let total: f64 = phases.iter().map(|p| p.duration_s).sum();
        let lo = powers.iter().cloned().fold(f64::INFINITY, f64::min) * 0.97;
        let hi = powers.iter().cloned().fold(0.0, f64::max) * 1.03;
        let e = trapezoid_energy_j(&trace);
        prop_assert!(e >= lo * total && e <= hi * total, "E {e} outside [{}, {}]",
            lo * total, hi * total);
        let med = median_power_w(&trace);
        prop_assert!(med >= lo && med <= hi);
    }

    /// BPE round-trips any synthetic corpus drawn from either profile.
    #[test]
    fn bpe_roundtrip_any_seed(seed in 0u64..50, wiki in proptest::bool::ANY) {
        let kind = if wiki { CorpusKind::WikiText2Like } else { CorpusKind::LongBenchLike };
        let c = SyntheticCorpus::generate(kind, 1500, seed);
        let tok = BpeTokenizer::train(&c.text, 300);
        prop_assert_eq!(tok.decode(&tok.encode(&c.text)), c.text);
    }

    /// Serve scheduler: every generated token is accounted exactly once
    /// and KV blocks balance at drain — even when a deliberately tiny KV
    /// pool forces preemption/recompute cycles mid-decode. The invariants
    /// themselves live in `edgellm::check::oracles` (shared with the
    /// `edgellm-check` fuzzing harness); the explicit assertions below
    /// restate the originals so a regression names the quantity directly.
    #[test]
    fn serve_conserves_tokens_and_kv_under_preemption(
        n in 6usize..16,
        seed in 0u64..200,
        pool_seqs in 3u64..7,
    ) {
        let dev = DeviceSpec::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let mut arr = PoissonArrivals::paper_shape(4.0);
        arr.input_tokens = 48;
        arr.output_tokens = 96;
        arr.shape_jitter = 0.0;
        let reqs = arr.generate(n, seed);
        let pool = pool_seqs * 144 * cfg.llm.arch().kv_bytes_per_token();
        let mut sim = ServeSim::new(ServeConfig::chunked(8).kv_pool_cap(pool), &dev, &cfg, &reqs)
            .unwrap();
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        let audit = sim.audit();
        let violations = check_serve(&audit, &reqs);
        prop_assert!(violations.is_empty(), "oracles: {violations:?}");
        let r = sim.finish();
        let submitted: u64 = reqs.iter().map(|q| q.output_tokens).sum();
        prop_assert_eq!(r.report.requests, n);
        prop_assert_eq!(r.served_output_tokens, submitted);
        prop_assert_eq!(r.kv_blocks_allocated, r.kv_blocks_freed);
        let last = r.trace.last().unwrap();
        prop_assert_eq!(last.kv_blocks_used, 0, "pool must drain");
    }

    /// Makespan is monotone in offered load: compressing the same arrival
    /// trace (identical request shapes, same seed) can only finish the
    /// workload sooner.
    #[test]
    fn serve_makespan_monotone_in_load(
        seed in 0u64..100,
        lo_rate in 0.2f64..0.8,
        mult in 2.0f64..5.0,
    ) {
        let dev = DeviceSpec::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let lo_reqs = PoissonArrivals::paper_shape(lo_rate).generate(24, seed);
        let hi_reqs = PoissonArrivals::paper_shape(lo_rate * mult).generate(24, seed);
        let sched = EventScheduler::new(ServeConfig::chunked(16));
        let lo = sched.run(&dev, &cfg, &lo_reqs).unwrap();
        let hi = sched.run(&dev, &cfg, &hi_reqs).unwrap();
        prop_assert!(
            hi.report.makespan_s <= lo.report.makespan_s + 1e-9,
            "hi-load {} vs lo-load {}", hi.report.makespan_s, lo.report.makespan_s
        );
    }

    /// Chunked prefill never meaningfully worsens mean TTFT versus
    /// blocking prefill, and wins when admissions contend with decode
    /// (prefill-heavy model under load).
    #[test]
    fn serve_chunked_ttft_no_worse_than_blocking(
        seed in 0u64..100,
        rate in 0.8f64..2.5,
    ) {
        let dev = DeviceSpec::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::MistralSmall24b, Precision::Fp16);
        let reqs = PoissonArrivals::paper_shape(rate).generate(40, seed);
        let block = EventScheduler::new(ServeConfig::blocking(16))
            .run(&dev, &cfg, &reqs)
            .unwrap();
        let chunked = EventScheduler::new(ServeConfig::chunked(16))
            .run(&dev, &cfg, &reqs)
            .unwrap();
        prop_assert!(
            chunked.report.mean_ttft_s <= block.report.mean_ttft_s * 1.02 + 0.05,
            "chunked {} vs blocking {}",
            chunked.report.mean_ttft_s, block.report.mean_ttft_s
        );
    }

    /// Fleet serving conserves work under forced dropout: with a second
    /// device to absorb the re-routed requests, every submitted request —
    /// and every output token — completes no matter when the first device
    /// drops or how long it stays down.
    #[test]
    fn fleet_conserves_requests_under_dropout(
        n in 8usize..20,
        seed in 0u64..100,
        down in 1.0f64..6.0,
        dur in 2.0f64..30.0,
    ) {
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let members = vec![
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg.clone()),
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg),
        ];
        let reqs = PoissonArrivals::paper_shape(2.0).generate(n, seed);
        let fc = FleetConfig {
            faults: FaultPlan::none().outage(0, down, down + dur),
            ..FleetConfig::default()
        };
        let audit = FleetSim::new(members, Box::new(JoinShortestQueue), fc, &reqs)
            .unwrap()
            .run_audited()
            .unwrap();
        let violations = check_fleet(&audit, &reqs);
        prop_assert!(violations.is_empty(), "oracles: {violations:?}");
        let r = &audit.report;
        prop_assert_eq!(r.completed, n, "all requests complete");
        prop_assert_eq!(r.lost, 0);
        prop_assert_eq!(
            r.output_tokens,
            reqs.iter().map(|q| q.output_tokens).sum::<u64>(),
            "token conservation across re-routing"
        );
    }

    /// On a homogeneous fleet, join-shortest-queue never finishes the
    /// trace later than one of its devices serving the whole trace alone:
    /// per-iteration cost is monotone in co-batched sequences, so
    /// splitting load across twins can only help.
    #[test]
    fn fleet_jsq_makespan_no_worse_than_single_device(
        n in 8usize..20,
        seed in 0u64..100,
        rate in 0.5f64..3.0,
    ) {
        let dev = DeviceSpec::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let reqs = PoissonArrivals::paper_shape(rate).generate(n, seed);
        let single = EventScheduler::new(ServeConfig::chunked(16))
            .run(&dev, &cfg, &reqs)
            .unwrap();
        let members = vec![
            FleetDevice::new(dev.clone(), cfg.clone()),
            FleetDevice::new(dev.clone(), cfg),
        ];
        let fleet =
            run_fleet(members, Box::new(JoinShortestQueue), FleetConfig::default(), &reqs).unwrap();
        prop_assert!(
            fleet.makespan_s <= single.report.makespan_s + 1e-9,
            "fleet {} vs single device {}", fleet.makespan_s, single.report.makespan_s
        );
    }

    /// A radix warm hit serves bitwise-identically to a cold run: after
    /// a sibling request leaves a shared prefix in the KV cache,
    /// resuming prefill from that prefix reproduces the cold full-prompt
    /// logits bit for bit at every weight precision, the greedy token
    /// stream continues identically, and none of those bits move across
    /// `EDGELLM_THREADS` = 1/2/8 (exercised in-process via
    /// `rayon::with_num_threads`, the same override the env var
    /// reaches) — the golden outputs a cached serve run reports are the
    /// same ones a cache-off run would have produced.
    #[test]
    fn warm_prefix_hit_is_bitwise_identical_to_cold_across_threads(
        seed in 0u64..40,
        split in 2usize..14,
        suffix in 2usize..10,
        prec_idx in 0usize..4,
    ) {
        let prompt: Vec<u32> = (0..split + suffix)
            .map(|i| ((seed.wrapping_mul(31).wrapping_add(i as u64 * 7)) % 256) as u32)
            .collect();
        let argmax = |l: &[f32]| {
            l.iter().enumerate().fold((0usize, f32::NEG_INFINITY), |best, (i, &v)| {
                if v > best.1 { (i, v) } else { best }
            }).0 as u32
        };
        // (cold logit bits, warm suffix logit bits, cold stream, warm
        // stream) at one thread count.
        let observe = |threads: usize| {
            rayon::with_num_threads(threads, || {
                let base = TinyCausalLm::new(TinyConfig::small(seed));
                let m = match prec_idx {
                    0 => base,
                    1 => base.to_precision(edgellm::quant::WeightPrecision::Fp16),
                    2 => base.to_precision(edgellm::quant::WeightPrecision::Int8),
                    _ => base.to_precision(edgellm::quant::WeightPrecision::Int4),
                };
                let mut cold_cache = m.new_cache();
                let cold = m.prefill(&prompt, &mut cold_cache);
                // A sibling request that shares only the prefix warms
                // the cache past the split point, as a radix hit would.
                let mut warm_cache = m.new_cache();
                let mut sibling = prompt[..split].to_vec();
                sibling.extend([251, 252, 253]);
                m.prefill(&sibling, &mut warm_cache);
                let warm = m.prefill_from(split, &prompt, &mut warm_cache);
                let decode = |cache: &mut KvCache, last_logits: &[f32]| {
                    let mut stream = Vec::new();
                    let mut logits = last_logits.to_vec();
                    for _ in 0..8 {
                        let t = argmax(&logits);
                        stream.push(t);
                        logits = m.forward_step(t, cache);
                    }
                    stream
                };
                let cold_bits: Vec<u32> = (split..cold.rows)
                    .flat_map(|r| cold.row(r).iter().map(|v| v.to_bits()))
                    .collect();
                let warm_bits: Vec<u32> = (0..warm.rows)
                    .flat_map(|r| warm.row(r).iter().map(|v| v.to_bits()))
                    .collect();
                let cold_stream = decode(&mut cold_cache, cold.row(cold.rows - 1));
                let warm_stream = decode(&mut warm_cache, warm.row(warm.rows - 1));
                (cold_bits, warm_bits, cold_stream, warm_stream)
            })
        };
        let reference = observe(1);
        prop_assert_eq!(&reference.0, &reference.1, "warm suffix logits differ from cold");
        prop_assert_eq!(&reference.2, &reference.3, "warm token stream diverges from cold");
        for threads in [2usize, 8] {
            prop_assert_eq!(&reference, &observe(threads), "bits moved at {} threads", threads);
        }
    }

    /// The engine never reports peak memory above device capacity, and
    /// throughput always satisfies its definition.
    #[test]
    fn engine_invariants(bs in 1u64..96, sl_idx in 0usize..4, model_idx in 0usize..4) {
        let llm = Llm::ALL[model_idx];
        let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
        let sl = [128u64, 256, 512, 1024][sl_idx];
        let engine = Engine::orin_agx_64gb();
        let cfg = RunConfig::new(llm, prec)
            .batch_size(bs)
            .sequence(SequenceSpec::paper_sweep(sl));
        if let Ok(m) = engine.run_batch(&cfg) {
            prop_assert!(m.peak_mem_gb <= 64.0);
            let expect = bs as f64 * sl as f64 / m.latency_s;
            prop_assert!((m.throughput_tok_s - expect).abs() < 1e-6);
            prop_assert!(m.energy_j > 0.0 && m.median_power_w > 5.0);
        }
    }
}
