//! Cross-crate pipeline tests: corpus → tokenizer → prompt pool → trained
//! LM → quantization → perplexity, and the simulator across devices.

use edgellm::core::perplexity::sliding_window_perplexity;
use edgellm::core::{Dataset, Engine, Protocol, RunConfig, RunError, SequenceSpec};
use edgellm::corpus::{BpeTokenizer, CorpusKind, PromptPool, SyntheticCorpus};
use edgellm::hw::DeviceSpec;
use edgellm::models::{Llm, Precision};
use edgellm::nn::quantize::to_precision;
use edgellm::nn::{MlpLm, MlpLmConfig, WeightPrecision};

/// The full executable path the Table 3 reproduction rests on.
#[test]
fn corpus_to_perplexity_pipeline() {
    let corpus = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 20_000, 3);
    let tok = BpeTokenizer::train(&corpus.text, 384);
    let stream = tok.encode(&corpus.text);
    assert!(stream.len() > 10_000, "corpus should tokenize to a real stream");

    // The paper's prompt-pool protocol applies to the same corpus.
    let pool = PromptPool::build_paper(&corpus, &tok);
    assert!(!pool.is_empty());
    let batch = pool.sample_batch(32, 32, 9);
    assert_eq!(batch.len(), 32);

    // Train, quantize, evaluate — the ladder must be ordered.
    let mut lm = MlpLm::new(MlpLmConfig { vocab: 384, context: 4, d_emb: 24, hidden: 64, seed: 5 });
    let untrained = lm.perplexity(&stream);
    lm.train(&stream, 600, 64, 3e-3, 6);
    let trained = lm.perplexity(&stream);
    assert!(
        trained < untrained * 0.6,
        "training must cut perplexity: {untrained:.1} → {trained:.1}"
    );

    let ppl =
        |p: WeightPrecision| sliding_window_perplexity(&to_precision(&lm, p), &stream).perplexity;
    let (p32, p16, p8, p4) = (
        ppl(WeightPrecision::Fp32),
        ppl(WeightPrecision::Fp16),
        ppl(WeightPrecision::Int8),
        ppl(WeightPrecision::Int4),
    );
    assert!((p16 - p32).abs() / p32 < 0.02, "fp16 {p16} vs fp32 {p32}");
    assert!(p4 > p8, "int4 {p4} must be worse than int8 {p8}");
    assert!(p4 > p32, "int4 {p4} must be worse than fp32 {p32}");
}

/// The simulator behaves coherently across the whole Jetson family.
#[test]
fn device_family_feasibility_matrix() {
    for (device, llama_fp16_fits) in [
        (DeviceSpec::orin_agx_64gb(), true),
        (DeviceSpec::orin_agx_32gb(), true),
        (DeviceSpec::orin_nx_16gb(), false), // 16.1 GB weights > 14 GB usable
    ] {
        let engine = Engine::new(device.clone());
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16).power_mode(engine.maxn());
        let outcome = engine.run_batch(&cfg);
        assert_eq!(
            outcome.is_ok(),
            llama_fp16_fits,
            "{}: unexpected outcome {outcome:?}",
            device.name
        );
        // INT4 Llama fits everywhere in the family.
        let cfg4 = RunConfig::new(Llm::Llama31_8b, Precision::Int4)
            .batch_size(4)
            .power_mode(engine.maxn());
        assert!(engine.run_batch(&cfg4).is_ok(), "{}: INT4 should fit", device.name);
    }
}

/// Slower devices in the family are actually slower.
#[test]
fn smaller_devices_are_slower() {
    let run_on = |device: DeviceSpec| {
        let engine = Engine::new(device);
        let cfg = RunConfig::new(Llm::Phi2, Precision::Fp16).power_mode(engine.maxn());
        engine.run_batch(&cfg).unwrap()
    };
    let agx = run_on(DeviceSpec::orin_agx_64gb());
    let nx = run_on(DeviceSpec::orin_nx_16gb());
    let xavier = run_on(DeviceSpec::xavier_agx_32gb());
    assert!(nx.latency_s > agx.latency_s, "Orin NX must be slower than AGX");
    assert!(xavier.latency_s > agx.latency_s, "Xavier must be slower than Orin AGX");
}

/// The protocol + engine path agrees with the raw engine (modulo jitter).
#[test]
fn protocol_and_engine_agree() {
    let engine = Engine::orin_agx_64gb();
    let cfg = RunConfig::new(Llm::MistralSmall24b, Precision::Int8);
    let one = engine.run_batch(&cfg).unwrap();
    let five = Protocol::paper().run(&engine, &cfg).unwrap();
    assert!((one.latency_s - five.latency_s).abs() < 1e-9, "latency is deterministic");
    assert!((one.energy_j - five.energy_j).abs() / one.energy_j < 0.05);
}

/// Both datasets run through the whole stack with the Table 5 relationship.
#[test]
fn dataset_effect_is_small_and_directional() {
    let engine = Engine::orin_agx_64gb();
    for llm in Llm::ALL {
        let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
        let wiki = engine.run_batch(&RunConfig::new(llm, prec)).unwrap();
        let lb = engine.run_batch(&RunConfig::new(llm, prec).dataset(Dataset::LongBench)).unwrap();
        let ratio = lb.latency_s / wiki.latency_s;
        assert!((0.9..=1.0).contains(&ratio), "{llm:?}: {ratio}");
    }
}

/// OoM boundaries are sharp: the largest fitting config runs, one step
/// beyond fails.
#[test]
fn oom_boundary_is_sharp_for_phi2() {
    let engine = Engine::orin_agx_64gb();
    let ok = RunConfig::new(Llm::Phi2, Precision::Fp16).sequence(SequenceSpec::paper_sweep(256));
    assert!(engine.run_batch(&ok).is_ok());
    let too_big =
        RunConfig::new(Llm::Phi2, Precision::Fp16).sequence(SequenceSpec::paper_sweep(512));
    assert!(matches!(engine.run_batch(&too_big), Err(RunError::OutOfMemory { .. })));
}
