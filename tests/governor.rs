//! Tier-1 coverage for online power-mode governance: a governed serving
//! run and a governed fleet run must be byte-identical across
//! `EDGELLM_THREADS=1/2/8` — exercised in-process via
//! `rayon::with_num_threads`, the same override the env var reaches —
//! for both the hysteretic SLO ladder and the energy-budget policy.
//!
//! The governor sits *inside* the simulation loop (its decisions feed
//! back into iteration timing and energy integration), so any
//! parallelism leak here compounds: one diverging decision reorders
//! every later mode change. Byte-comparing the full audit — decisions,
//! energy integrals, completion telemetry — is the strictest oracle we
//! can hold it to.

use edgellm::core::serve::{ServeConfig, ServeSim};
use edgellm::core::{PoissonArrivals, RunConfig};
use edgellm::fleet::{FleetConfig, FleetDevice, FleetSim, JoinShortestQueue};
use edgellm::governor::{
    EnergyBudget, Governor, GovernorPolicy, HystereticLadder, ModeLadder, SloSpec,
};
use edgellm::hw::DeviceSpec;
use edgellm::models::{Llm, Precision};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn policies() -> Vec<(&'static str, Box<dyn GovernorPolicy>)> {
    vec![
        ("ladder", Box::new(HystereticLadder::new(SloSpec { ttft_s: 8.0, tbt_s: 0.5 }))),
        ("budget", Box::new(EnergyBudget::new(30.0))),
    ]
}

/// Drive one governed single-device serving run to completion and
/// return its full audit — serving telemetry, governor decisions and
/// the split energy integral — formatted for byte comparison.
fn governed_serve_audit(threads: usize, which: usize) -> String {
    rayon::with_num_threads(threads, || {
        let dev = DeviceSpec::orin_agx_64gb();
        let ladder = ModeLadder::stock(&dev, Llm::Llama31_8b, Precision::Fp16);
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
            .power_mode(ladder.rung(0).mode.clone());
        let reqs = PoissonArrivals::paper_shape(1.5).generate(16, 42);
        let mut sim = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        let policy = policies().swap_remove(which).1;
        let mut gov = Governor::new(policy, &dev, cfg.llm, cfg.precision, &cfg.power_mode);
        while let Some(t) = sim.next_event_s() {
            sim.step_governed(t, &mut gov).unwrap();
        }
        let audit = gov.audit();
        edgellm::governor::verify_min_dwell(&audit).expect("dwell floor respected");
        format!("{:?} | {:?}", sim.audit(), audit)
    })
}

#[test]
fn governed_serve_audit_is_byte_identical_across_thread_counts() {
    for (which, (name, _)) in policies().iter().enumerate() {
        let reference = governed_serve_audit(THREAD_COUNTS[0], which);
        assert!(
            reference.contains("decisions: ["),
            "{name}: governor audit present in the formatted record"
        );
        for &t in &THREAD_COUNTS[1..] {
            assert_eq!(
                reference,
                governed_serve_audit(t, which),
                "{name}: governed serve audit diverges between {} and {t} threads",
                THREAD_COUNTS[0]
            );
        }
    }
}

/// Run a two-device fleet where each member self-governs with a
/// different policy, and format the per-device governor audits plus the
/// fleet report for byte comparison.
fn governed_fleet_audit(threads: usize) -> String {
    rayon::with_num_threads(threads, || {
        let dev = DeviceSpec::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let members = vec![
            FleetDevice::new(dev.clone(), cfg.clone())
                .named("ladder-0")
                .governed(Box::new(HystereticLadder::new(SloSpec { ttft_s: 8.0, tbt_s: 0.5 }))),
            FleetDevice::new(dev.clone(), cfg.clone())
                .named("budget-1")
                .governed(Box::new(EnergyBudget::new(30.0))),
        ];
        let reqs = PoissonArrivals::paper_shape(1.0).generate(20, 7);
        let audit =
            FleetSim::new(members, Box::new(JoinShortestQueue), FleetConfig::default(), &reqs)
                .unwrap()
                .run_audited()
                .unwrap();
        for ga in audit.governors.iter().flatten() {
            edgellm::governor::verify_min_dwell(ga).expect("dwell floor respected");
        }
        format!("{:?} | {:?}", audit.report, audit.governors)
    })
}

#[test]
fn governed_fleet_audit_is_byte_identical_across_thread_counts() {
    let reference = governed_fleet_audit(THREAD_COUNTS[0]);
    assert!(reference.contains("ModeChange"), "at least one governor actually moved");
    for &t in &THREAD_COUNTS[1..] {
        assert_eq!(
            reference,
            governed_fleet_audit(t),
            "governed fleet audit diverges between {} and {t} threads",
            THREAD_COUNTS[0]
        );
    }
}
