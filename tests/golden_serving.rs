//! Golden-regression harness for the serving stack.
//!
//! Pins every field of [`ServingReport`] (static batching) and
//! [`ContinuousReport`] (blocking and chunked event scheduling) for fixed
//! seeds on the paper's four models at their serving precisions. Token
//! counts must match exactly; floats to 1e-9. Any unintended change to
//! the perf/mem/power numerics or the scheduler's event loop fails here
//! loudly, with the field name in the message.
//!
//! If a change is *intended* to move these numbers, re-pin by running:
//!
//! ```sh
//! GOLDEN_DUMP=1 cargo test --test golden_serving -- --nocapture
//! ```
//!
//! and pasting the emitted tables over the `GOLDEN` constants below.

use edgellm::core::serve::{EventScheduler, ServeConfig};
use edgellm::core::{
    ContinuousBatcher, ContinuousReport, Engine, PoissonArrivals, RunConfig, SequenceSpec,
    ServingReport, StaticBatcher,
};
use edgellm::fleet::{
    run_fleet, EnergyGreedy, FaultPlan, FleetConfig, FleetDevice, FleetReport, JoinShortestQueue,
    RoutingPolicy,
};
use edgellm::hw::{DeviceSpec, PowerMode};
use edgellm::models::{Llm, Precision};

/// Arrival seed for the continuous/chunked scenarios.
const SEED: u64 = 7;
/// Requests per scenario.
const N_REQS: usize = 24;
/// Arrival rate (req/s).
const RATE: f64 = 1.5;
/// Queue size for the static scenario.
const STATIC_QUEUE: usize = 32;

fn serving_precision(llm: Llm) -> Precision {
    if llm == Llm::DeepseekQwen32b {
        Precision::Int8
    } else {
        Precision::Fp16
    }
}

fn static_report(llm: Llm) -> ServingReport {
    let engine = Engine::orin_agx_64gb();
    let cfg = RunConfig::new(llm, serving_precision(llm))
        .batch_size(8)
        .sequence(SequenceSpec::paper_96());
    StaticBatcher::new(STATIC_QUEUE).run(&engine, &cfg).expect("model serves")
}

fn continuous_report(llm: Llm, chunked: bool) -> ContinuousReport {
    let engine = Engine::orin_agx_64gb();
    let cfg = RunConfig::new(llm, serving_precision(llm));
    let reqs = PoissonArrivals::paper_shape(RATE).generate(N_REQS, SEED);
    if chunked {
        EventScheduler::new(ServeConfig::chunked(16))
            .run(engine.device(), &cfg, &reqs)
            .expect("model serves")
            .report
    } else {
        ContinuousBatcher::new(16).run(engine.device(), &cfg, &reqs).expect("model serves")
    }
}

/// The heterogeneous fleet the `ext-fleet` goldens run on: the paper's
/// board serving FP16 next to an Orin NX and a Xavier AGX serving INT4.
fn fleet_members() -> Vec<FleetDevice> {
    let nx = DeviceSpec::orin_nx_16gb();
    let xav = DeviceSpec::xavier_agx_32gb();
    vec![
        FleetDevice::new(
            DeviceSpec::orin_agx_64gb(),
            RunConfig::new(Llm::Llama31_8b, Precision::Fp16),
        ),
        FleetDevice::new(
            nx.clone(),
            RunConfig::new(Llm::Llama31_8b, Precision::Int4).power_mode(PowerMode::maxn_for(&nx)),
        ),
        FleetDevice::new(
            xav.clone(),
            RunConfig::new(Llm::Llama31_8b, Precision::Int4).power_mode(PowerMode::maxn_for(&xav)),
        ),
    ]
}

/// Fleet scenarios pinned below: join-shortest-queue rides through an
/// outage of the strongest device; energy-greedy runs fault-free.
fn fleet_report(policy: &'static str) -> FleetReport {
    let reqs = PoissonArrivals::paper_shape(RATE).generate(N_REQS, SEED);
    let (boxed, faults): (Box<dyn RoutingPolicy>, FaultPlan) = match policy {
        "join-shortest-queue" => {
            (Box::new(JoinShortestQueue), FaultPlan::none().outage(0, 4.0, 18.0))
        }
        "energy-greedy" => (Box::new(EnergyGreedy::default()), FaultPlan::none()),
        other => panic!("no golden fleet scenario '{other}'"),
    };
    let cfg = FleetConfig { slo_latency_s: 30.0, cloud: None, faults };
    run_fleet(fleet_members(), boxed, cfg, &reqs).expect("fleet serves")
}

/// `assert_close!(context, field_expr, pinned)` — 1e-9 absolute tolerance.
macro_rules! assert_close {
    ($ctx:expr, $got:expr, $want:expr) => {
        assert!(
            ($got - $want).abs() <= 1e-9,
            "{}: {} = {:?}, pinned {:?}",
            $ctx,
            stringify!($got),
            $got,
            $want
        );
    };
}

struct StaticGolden {
    llm: Llm,
    makespan_s: f64,
    batches: usize,
    mean_request_latency_s: f64,
    throughput_tok_s: f64,
    energy_j: f64,
}

struct ContinuousGolden {
    llm: Llm,
    chunked: bool,
    makespan_s: f64,
    mean_latency_s: f64,
    p95_latency_s: f64,
    output_tok_s: f64,
    mean_occupancy: f64,
    requests: usize,
    energy_j: f64,
    preemptions: usize,
    mean_ttft_s: f64,
    p50_ttft_s: f64,
    p99_ttft_s: f64,
    prefill_stall_s: f64,
}

// Pinned on the calibrated models; regenerate with GOLDEN_DUMP=1 (above).
const GOLDEN_STATIC: [StaticGolden; 4] = [
    StaticGolden {
        llm: Llm::Phi2,
        makespan_s: 16.381925619121567,
        batches: 4,
        mean_request_latency_s: 10.23870351195098,
        throughput_tok_s: 187.523742411225,
        energy_j: 681.6920897063801,
    },
    StaticGolden {
        llm: Llm::Llama31_8b,
        makespan_s: 28.54666032737882,
        batches: 4,
        mean_request_latency_s: 17.841662704611764,
        throughput_tok_s: 107.61328872693647,
        energy_j: 1375.413304065361,
    },
    StaticGolden {
        llm: Llm::MistralSmall24b,
        makespan_s: 83.37604091935164,
        batches: 4,
        mean_request_latency_s: 52.11002557459477,
        throughput_tok_s: 36.845117207849896,
        energy_j: 4059.1262222276987,
    },
    StaticGolden {
        llm: Llm::DeepseekQwen32b,
        makespan_s: 181.20006975580606,
        batches: 4,
        mean_request_latency_s: 113.25004359737879,
        throughput_tok_s: 16.95363585753568,
        energy_j: 6316.975494746382,
    },
];

const GOLDEN_CONTINUOUS: [ContinuousGolden; 8] = [
    ContinuousGolden {
        llm: Llm::Phi2,
        chunked: false,
        makespan_s: 18.275617367107944,
        mean_latency_s: 4.342370179671207,
        p95_latency_s: 5.031536299209895,
        output_tok_s: 87.98608373657697,
        mean_occupancy: 5.661971830985915,
        requests: 24,
        energy_j: 742.9927521216849,
        preemptions: 0,
        mean_ttft_s: 0.06654972515020684,
        p50_ttft_s: 0.06510997262793694,
        p99_ttft_s: 0.10697530791456433,
        prefill_stall_s: 0.9481631225599999,
    },
    ContinuousGolden {
        llm: Llm::Phi2,
        chunked: true,
        makespan_s: 18.236582367107943,
        mean_latency_s: 4.241217359773015,
        p95_latency_s: 4.92403060025344,
        output_tok_s: 88.17441599694897,
        mean_occupancy: 5.450847457627119,
        requests: 24,
        energy_j: 734.7202431587906,
        preemptions: 0,
        mean_ttft_s: 0.1413219422592911,
        p50_ttft_s: 0.12927630639770804,
        p99_ttft_s: 0.1976014292896764,
        prefill_stall_s: 0.22425845589333337,
    },
    ContinuousGolden {
        llm: Llm::Llama31_8b,
        chunked: false,
        makespan_s: 22.063475674972647,
        mean_latency_s: 8.435491806596207,
        p95_latency_s: 9.764586675189934,
        output_tok_s: 72.88062967449908,
        mean_occupancy: 8.835164835164836,
        requests: 24,
        energy_j: 1070.6319352295336,
        preemptions: 0,
        mean_ttft_s: 0.19296115500202624,
        p50_ttft_s: 0.18850640595219392,
        p99_ttft_s: 0.34482221122869383,
        prefill_stall_s: 2.726630822229333,
    },
    ContinuousGolden {
        llm: Llm::Llama31_8b,
        chunked: true,
        makespan_s: 21.810413763861533,
        mean_latency_s: 7.559150879058913,
        p95_latency_s: 8.718961843514064,
        output_tok_s: 73.72624918580654,
        mean_occupancy: 8.04,
        requests: 24,
        energy_j: 1055.6866895335345,
        preemptions: 0,
        mean_ttft_s: 0.24191029652812512,
        p50_ttft_s: 0.2567167809807165,
        p99_ttft_s: 0.37311997223650195,
        prefill_stall_s: 0.6354169555626668,
    },
    ContinuousGolden {
        llm: Llm::MistralSmall24b,
        chunked: false,
        makespan_s: 54.657521928746654,
        mean_latency_s: 30.4699271070611,
        p95_latency_s: 41.55749904336005,
        output_tok_s: 29.419555502282773,
        mean_occupancy: 10.791946308724832,
        requests: 24,
        energy_j: 2669.7215431307695,
        preemptions: 0,
        mean_ttft_s: 5.856857148920795,
        p50_ttft_s: 0.7639418314536406,
        p99_ttft_s: 17.989873769728426,
        prefill_stall_s: 8.077624632746668,
    },
    ContinuousGolden {
        llm: Llm::MistralSmall24b,
        chunked: true,
        makespan_s: 50.48848920652443,
        mean_latency_s: 26.822945271316396,
        p95_latency_s: 37.26878954854851,
        output_tok_s: 31.848843672513862,
        mean_occupancy: 10.374193548387098,
        requests: 24,
        energy_j: 2458.093923608735,
        preemptions: 0,
        mean_ttft_s: 4.911636952841448,
        p50_ttft_s: 0.947479420850156,
        p99_ttft_s: 14.691962843869318,
        prefill_stall_s: 1.9389779660799997,
    },
    ContinuousGolden {
        llm: Llm::DeepseekQwen32b,
        chunked: false,
        makespan_s: 107.34069788052395,
        mean_latency_s: 62.43708001806587,
        p95_latency_s: 92.3089300706627,
        output_tok_s: 14.980338601764931,
        mean_occupancy: 11.089655172413794,
        requests: 24,
        energy_j: 3820.7564028462425,
        preemptions: 0,
        mean_ttft_s: 12.882084559837226,
        p50_ttft_s: 0.8147686926091078,
        p99_ttft_s: 40.69199377065115,
        prefill_stall_s: 6.148459959434241,
    },
    ContinuousGolden {
        llm: Llm::DeepseekQwen32b,
        chunked: true,
        makespan_s: 105.54826354719061,
        mean_latency_s: 60.90363563009684,
        p95_latency_s: 91.68079441699308,
        output_tok_s: 15.234736659415182,
        mean_occupancy: 10.864864864864865,
        requests: 24,
        energy_j: 3699.55798943397,
        preemptions: 0,
        mean_ttft_s: 13.305558916217954,
        p50_ttft_s: 1.9415043554949918,
        p99_ttft_s: 39.59363457226698,
        prefill_stall_s: 1.6791771594342397,
    },
];

struct FleetGolden {
    policy: &'static str,
    completed: usize,
    lost: usize,
    reroutes: usize,
    preemptions: usize,
    output_tokens: u64,
    makespan_s: f64,
    output_tok_s: f64,
    energy_j: f64,
    mean_latency_s: f64,
    p95_latency_s: f64,
    p50_ttft_s: f64,
    slo_attainment: f64,
}

// Pinned fleet scenarios; regenerate with GOLDEN_DUMP=1 (above).
const GOLDEN_FLEET: [FleetGolden; 2] = [
    FleetGolden {
        policy: "join-shortest-queue",
        completed: 24,
        lost: 0,
        reroutes: 2,
        preemptions: 0,
        output_tokens: 1608,
        makespan_s: 44.391549101868705,
        output_tok_s: 36.223110761690215,
        energy_j: 3751.437935710612,
        mean_latency_s: 28.564131588897755,
        p95_latency_s: 33.864533512210414,
        p50_ttft_s: 1.750940944838593,
        slo_attainment: 0.5416666666666666,
    },
    FleetGolden {
        policy: "energy-greedy",
        completed: 24,
        lost: 0,
        reroutes: 0,
        preemptions: 0,
        output_tokens: 1608,
        makespan_s: 21.810413763861533,
        output_tok_s: 73.72624918580654,
        energy_j: 1055.6866895335345,
        mean_latency_s: 7.559150879058913,
        p95_latency_s: 8.718961843514064,
        p50_ttft_s: 0.2567167809807165,
        slo_attainment: 1.0,
    },
];

/// With `GOLDEN_DUMP=1`, print paste-ready pinned tables instead of
/// asserting (used to regenerate after an intended numeric change).
fn dumping() -> bool {
    std::env::var_os("GOLDEN_DUMP").is_some()
}

#[test]
fn static_batcher_matches_golden() {
    if dumping() {
        for llm in Llm::ALL {
            let r = static_report(llm);
            println!(
                "    StaticGolden {{\n        llm: Llm::{llm:?},\n        \
                 makespan_s: {:?},\n        batches: {:?},\n        \
                 mean_request_latency_s: {:?},\n        throughput_tok_s: {:?},\n        \
                 energy_j: {:?},\n    }},",
                r.makespan_s, r.batches, r.mean_request_latency_s, r.throughput_tok_s, r.energy_j
            );
        }
        return;
    }
    for g in &GOLDEN_STATIC {
        let r = static_report(g.llm);
        let ctx = format!("{:?} static", g.llm);
        assert_eq!(r.batches, g.batches, "{ctx}: batches");
        assert_close!(&ctx, r.makespan_s, g.makespan_s);
        assert_close!(&ctx, r.mean_request_latency_s, g.mean_request_latency_s);
        assert_close!(&ctx, r.throughput_tok_s, g.throughput_tok_s);
        assert_close!(&ctx, r.energy_j, g.energy_j);
    }
}

#[test]
fn continuous_schedulers_match_golden() {
    if dumping() {
        for llm in Llm::ALL {
            for chunked in [false, true] {
                let r = continuous_report(llm, chunked);
                println!(
                    "    ContinuousGolden {{\n        llm: Llm::{llm:?},\n        \
                     chunked: {chunked:?},\n        makespan_s: {:?},\n        \
                     mean_latency_s: {:?},\n        p95_latency_s: {:?},\n        \
                     output_tok_s: {:?},\n        mean_occupancy: {:?},\n        \
                     requests: {:?},\n        energy_j: {:?},\n        \
                     preemptions: {:?},\n        mean_ttft_s: {:?},\n        \
                     p50_ttft_s: {:?},\n        p99_ttft_s: {:?},\n        \
                     prefill_stall_s: {:?},\n    }},",
                    r.makespan_s,
                    r.mean_latency_s,
                    r.p95_latency_s,
                    r.output_tok_s,
                    r.mean_occupancy,
                    r.requests,
                    r.energy_j,
                    r.preemptions,
                    r.mean_ttft_s,
                    r.p50_ttft_s,
                    r.p99_ttft_s,
                    r.prefill_stall_s
                );
            }
        }
        return;
    }
    for g in &GOLDEN_CONTINUOUS {
        let r = continuous_report(g.llm, g.chunked);
        let ctx = format!("{:?} {}", g.llm, if g.chunked { "chunked" } else { "blocking" });
        assert_eq!(r.requests, g.requests, "{ctx}: requests");
        assert_eq!(r.preemptions, g.preemptions, "{ctx}: preemptions");
        assert_close!(&ctx, r.makespan_s, g.makespan_s);
        assert_close!(&ctx, r.mean_latency_s, g.mean_latency_s);
        assert_close!(&ctx, r.p95_latency_s, g.p95_latency_s);
        assert_close!(&ctx, r.output_tok_s, g.output_tok_s);
        assert_close!(&ctx, r.mean_occupancy, g.mean_occupancy);
        assert_close!(&ctx, r.energy_j, g.energy_j);
        assert_close!(&ctx, r.mean_ttft_s, g.mean_ttft_s);
        assert_close!(&ctx, r.p50_ttft_s, g.p50_ttft_s);
        assert_close!(&ctx, r.p99_ttft_s, g.p99_ttft_s);
        assert_close!(&ctx, r.prefill_stall_s, g.prefill_stall_s);
    }
}

#[test]
fn fleet_scenarios_match_golden() {
    if dumping() {
        for policy in ["join-shortest-queue", "energy-greedy"] {
            let r = fleet_report(policy);
            println!(
                "    FleetGolden {{\n        policy: {policy:?},\n        \
                 completed: {:?},\n        lost: {:?},\n        reroutes: {:?},\n        \
                 preemptions: {:?},\n        output_tokens: {:?},\n        \
                 makespan_s: {:?},\n        output_tok_s: {:?},\n        \
                 energy_j: {:?},\n        mean_latency_s: {:?},\n        \
                 p95_latency_s: {:?},\n        p50_ttft_s: {:?},\n        \
                 slo_attainment: {:?},\n    }},",
                r.completed,
                r.lost,
                r.reroutes,
                r.preemptions,
                r.output_tokens,
                r.makespan_s,
                r.output_tok_s,
                r.energy_j,
                r.mean_latency_s,
                r.p95_latency_s,
                r.p50_ttft_s,
                r.slo_attainment
            );
        }
        return;
    }
    for g in &GOLDEN_FLEET {
        let r = fleet_report(g.policy);
        let ctx = format!("fleet {}", g.policy);
        assert_eq!(r.completed, g.completed, "{ctx}: completed");
        assert_eq!(r.lost, g.lost, "{ctx}: lost");
        assert_eq!(r.reroutes, g.reroutes, "{ctx}: reroutes");
        assert_eq!(r.preemptions, g.preemptions, "{ctx}: preemptions");
        assert_eq!(r.output_tokens, g.output_tokens, "{ctx}: output_tokens");
        assert_close!(&ctx, r.makespan_s, g.makespan_s);
        assert_close!(&ctx, r.output_tok_s, g.output_tok_s);
        assert_close!(&ctx, r.energy_j, g.energy_j);
        assert_close!(&ctx, r.mean_latency_s, g.mean_latency_s);
        assert_close!(&ctx, r.p95_latency_s, g.p95_latency_s);
        assert_close!(&ctx, r.p50_ttft_s, g.p50_ttft_s);
        assert_close!(&ctx, r.slo_attainment, g.slo_attainment);
    }
}

/// Exact-token regression: the output token totals behind the reports.
/// `u64` counts must never drift, preemption or not.
#[test]
fn served_token_counts_are_exact() {
    let engine = Engine::orin_agx_64gb();
    for llm in Llm::ALL {
        let cfg = RunConfig::new(llm, serving_precision(llm));
        let reqs = PoissonArrivals::paper_shape(RATE).generate(N_REQS, SEED);
        let submitted: u64 = reqs.iter().map(|r| r.output_tokens).sum();
        let run = EventScheduler::new(ServeConfig::chunked(16))
            .run(engine.device(), &cfg, &reqs)
            .expect("model serves");
        assert_eq!(run.served_output_tokens, submitted, "{llm:?}: token drift");
        assert_eq!(run.kv_blocks_allocated, run.kv_blocks_freed, "{llm:?}: KV leak");
    }
}
