//! Property-based tests of the tensor algebra (proptest).

use edgellm_tensor::matmul::{matmul_nn, matmul_nt, matmul_tn};
use edgellm_tensor::ops::{log_softmax, softmax_inplace};
use edgellm_tensor::Matrix;
use proptest::prelude::*;

fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.rows == b.rows
        && a.cols == b.cols
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

/// Triple-loop reference NT product, no blocking or unrolling.
fn naive_nt(x: &Matrix, w: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows, w.rows);
    for r in 0..x.rows {
        for c in 0..w.rows {
            let mut s = 0.0f32;
            for k in 0..x.cols {
                s += x.get(r, k) * w.get(c, k);
            }
            out.set(r, c, s);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·Bᵀ)ᵀ == B·Aᵀ — the NT product's transpose identity.
    #[test]
    fn nt_transpose_identity(m in 1usize..12, n in 1usize..12, k in 1usize..16, seed in 0u64..500) {
        let a = Matrix::rand_kaiming(m, k, seed);
        let b = Matrix::rand_kaiming(n, k, seed ^ 1);
        let left = matmul_nt(&a, &b).transposed();
        let right = matmul_nt(&b, &a);
        prop_assert!(close(&left, &right, 1e-5));
    }

    /// NT, NN and TN agree through explicit transposes.
    #[test]
    fn layout_variants_agree(m in 1usize..10, n in 1usize..10, k in 1usize..12, seed in 0u64..500) {
        let a = Matrix::rand_kaiming(m, k, seed);
        let b = Matrix::rand_kaiming(k, n, seed ^ 2);
        let nn = matmul_nn(&a, &b);
        let nt = matmul_nt(&a, &b.transposed());
        let tn = matmul_tn(&a.transposed(), &b);
        prop_assert!(close(&nn, &nt, 1e-5));
        prop_assert!(close(&nn, &tn, 1e-5));
    }

    /// The blocked/tiled NT kernel matches the naive triple loop for
    /// arbitrary shapes, **including degenerate 0- and 1-dim cases** (the
    /// ranges start at 0). Shapes straddle the register-tile width (4) and
    /// row-block size (16) so every tail path is exercised.
    #[test]
    fn blocked_nt_matches_naive_for_arbitrary_shapes(
        m in 0usize..21, n in 0usize..21, k in 0usize..35, seed in 0u64..500,
    ) {
        let x = Matrix::rand_kaiming(m, k, seed);
        let w = Matrix::rand_kaiming(n, k, seed ^ 4);
        prop_assert!(close(&matmul_nt(&x, &w), &naive_nt(&x, &w), 1e-5));
    }

    /// Blocked NN/TN also match the naive reference at degenerate shapes.
    #[test]
    fn blocked_nn_tn_match_naive_for_arbitrary_shapes(
        m in 0usize..14, n in 0usize..14, k in 0usize..14, seed in 0u64..500,
    ) {
        let a = Matrix::rand_kaiming(m, k, seed);
        let b = Matrix::rand_kaiming(k, n, seed ^ 5);
        let want = naive_nt(&a, &b.transposed());
        prop_assert!(close(&matmul_nn(&a, &b), &want, 1e-5));
        // TN shares the k dimension along *rows* of both operands.
        let at = Matrix::rand_kaiming(k, m, seed ^ 7);
        let want_tn = naive_nt(&at.transposed(), &b.transposed());
        prop_assert!(close(&matmul_tn(&at, &b), &want_tn, 1e-5));
    }

    /// Fused quantized kernels match their dequantize-then-dot references
    /// for arbitrary shapes (f16 bitwise; NF4 to rounding tolerance).
    #[test]
    fn fused_quant_kernels_match_dequant_references(
        m in 1usize..6, n in 1usize..10, k in 1usize..80, seed in 0u64..200,
    ) {
        let x = Matrix::rand_kaiming(m, k, seed);
        let w = Matrix::rand_normal(n, k, 0.05, seed ^ 6);

        let h = edgellm_tensor::F16Matrix::from_f32(&w);
        let (fused, reference) = (h.matmul_nt(&x), h.matmul_nt_dequant(&x));
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        let q4 = edgellm_tensor::QInt4Matrix::from_f32(&w);
        prop_assert!(close(&q4.matmul_nt(&x), &q4.matmul_nt_dequant(&x), 1e-4));
    }

    /// Matmul is linear: (αA)·Bᵀ == α(A·Bᵀ).
    #[test]
    fn matmul_scales_linearly(alpha in -3.0f32..3.0, seed in 0u64..500) {
        let a = Matrix::rand_kaiming(5, 9, seed);
        let b = Matrix::rand_kaiming(4, 9, seed ^ 3);
        let scaled = Matrix::from_vec(
            5, 9, a.as_slice().iter().map(|v| v * alpha).collect());
        let left = matmul_nt(&scaled, &b);
        let mut right = matmul_nt(&a, &b);
        for v in right.as_mut_slice() {
            *v *= alpha;
        }
        prop_assert!(close(&left, &right, 1e-4));
    }

    /// Softmax output is a probability distribution, and ordering is
    /// preserved.
    #[test]
    fn softmax_is_a_distribution(vals in proptest::collection::vec(-50.0f32..50.0, 2..32)) {
        let mut x = vals.clone();
        softmax_inplace(&mut x);
        let sum: f32 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                if vals[i] > vals[j] {
                    prop_assert!(x[i] >= x[j]);
                }
            }
        }
    }

    /// log_softmax == softmax.ln() and is invariant to shifts.
    #[test]
    fn log_softmax_shift_invariant(vals in proptest::collection::vec(-20.0f32..20.0, 2..16), shift in -100.0f32..100.0) {
        let shifted: Vec<f32> = vals.iter().map(|v| v + shift).collect();
        let a = log_softmax(&vals);
        let b = log_softmax(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        // exp sums to 1.
        let s: f32 = a.iter().map(|v| v.exp()).sum();
        prop_assert!((s - 1.0).abs() < 1e-4);
    }

    /// Double transpose is identity; transpose preserves the multiset of
    /// values.
    #[test]
    fn transpose_involution(m in 1usize..16, n in 1usize..16, seed in 0u64..500) {
        let a = Matrix::rand_kaiming(m, n, seed);
        prop_assert_eq!(a.transposed().transposed(), a.clone());
        let mut x: Vec<f32> = a.as_slice().to_vec();
        let mut y: Vec<f32> = a.transposed().as_slice().to_vec();
        x.sort_by(|p, q| p.partial_cmp(q).unwrap());
        y.sort_by(|p, q| p.partial_cmp(q).unwrap());
        prop_assert_eq!(x, y);
    }
}
