//! Cross-thread-count determinism suite.
//!
//! The execution substrate promises that every kernel is **bit-identical**
//! regardless of how many threads it runs on (fixed chunk boundaries,
//! ordered combination, fixed per-element accumulation order). These tests
//! pin that contract for every matmul family at 1, 2 and 8 threads —
//! oversubscription included (the CI container may have a single core).

use edgellm_tensor::f16::F16Matrix;
use edgellm_tensor::matmul::{matmul_nn, matmul_nt, matmul_tn};
use edgellm_tensor::qint4::QInt4Matrix;
use edgellm_tensor::qint8::QInt8Matrix;
use edgellm_tensor::Matrix;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_bitwise_stable(name: &str, f: impl Fn() -> Matrix) {
    let reference = rayon::with_num_threads(1, &f);
    for t in THREAD_COUNTS {
        let got = rayon::with_num_threads(t, &f);
        assert_eq!((got.rows, got.cols), (reference.rows, reference.cols), "{name} @{t}");
        for (i, (a, b)) in got.as_slice().iter().zip(reference.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{name} @{t} threads, element {i}: {a} vs {b}");
        }
    }
}

#[test]
fn f32_matmul_nt_is_bitwise_stable() {
    // Large enough to trip the RowParallel branch, plus a decode shape for
    // the ColParallel branch.
    let x = Matrix::rand_kaiming(48, 160, 1);
    let w = Matrix::rand_kaiming(320, 160, 2);
    assert_bitwise_stable("nt-batch", || matmul_nt(&x, &w));
    let xd = Matrix::rand_kaiming(1, 128, 3);
    let wd = Matrix::rand_kaiming(20_000, 128, 4);
    assert_bitwise_stable("nt-decode", || matmul_nt(&xd, &wd));
}

#[test]
fn f32_matmul_nn_and_tn_are_bitwise_stable() {
    let a = Matrix::rand_kaiming(40, 120, 5);
    let b = Matrix::rand_kaiming(120, 200, 6);
    assert_bitwise_stable("nn", || matmul_nn(&a, &b));
    let at = Matrix::rand_kaiming(120, 40, 7);
    assert_bitwise_stable("tn", || matmul_tn(&at, &b));
}

#[test]
fn fused_qint8_matmul_is_bitwise_stable() {
    let w = Matrix::rand_kaiming(96, 256, 8);
    let q = QInt8Matrix::from_f32(&w);
    let xb = Matrix::rand_kaiming(16, 256, 9);
    assert_bitwise_stable("q8-batch", || q.matmul_nt(&xb));
    let xd = Matrix::rand_kaiming(1, 256, 10);
    assert_bitwise_stable("q8-decode", || q.matmul_nt(&xd));
}

#[test]
fn fused_qint4_matmul_is_bitwise_stable() {
    let w = Matrix::rand_normal(96, 200, 0.05, 11); // ragged block tail
    let q = QInt4Matrix::from_f32(&w);
    let xb = Matrix::rand_kaiming(16, 200, 12);
    assert_bitwise_stable("q4-batch", || q.matmul_nt(&xb));
    let xd = Matrix::rand_kaiming(1, 200, 13);
    assert_bitwise_stable("q4-decode", || q.matmul_nt(&xd));
}

#[test]
fn fused_f16_matmul_is_bitwise_stable() {
    let w = Matrix::rand_kaiming(96, 160, 14);
    let h = F16Matrix::from_f32(&w);
    let xb = Matrix::rand_kaiming(16, 160, 15);
    assert_bitwise_stable("f16-batch", || h.matmul_nt(&xb));
    let xd = Matrix::rand_kaiming(1, 160, 16);
    assert_bitwise_stable("f16-decode", || h.matmul_nt(&xd));
}

#[test]
fn batched_rows_are_bitwise_equal_to_single_row_products() {
    // Batch size must never change a row's bits — the property that makes
    // batched prefill equivalent to stepping. This crosses the
    // amortized-decode (batch) vs direct-fused (single row) kernel paths.
    let k = 200;
    let x = Matrix::rand_kaiming(5, k, 20);
    let w = Matrix::rand_normal(64, k, 0.05, 21);
    let q8 = QInt8Matrix::from_f32(&w);
    let q4 = QInt4Matrix::from_f32(&w);
    let h16 = F16Matrix::from_f32(&w);

    let batched = [matmul_nt(&x, &w), q8.matmul_nt(&x), q4.matmul_nt(&x), h16.matmul_nt(&x)];
    for r in 0..x.rows {
        let xr = Matrix::from_vec(1, k, x.row(r).to_vec());
        let single = [matmul_nt(&xr, &w), q8.matmul_nt(&xr), q4.matmul_nt(&xr), h16.matmul_nt(&xr)];
        for (kernel, (b, s)) in batched.iter().zip(&single).enumerate() {
            for (c, (a, v)) in b.row(r).iter().zip(s.row(0)).enumerate() {
                assert_eq!(a.to_bits(), v.to_bits(), "kernel {kernel} row {r} col {c}");
            }
        }
    }
}

#[test]
fn parallel_reduction_sum_is_bitwise_stable() {
    use rayon::prelude::*;
    let vals: Vec<f32> = (0..10_007).map(|i| ((i * 37 % 1000) as f32).sin()).collect();
    let reference: f32 = rayon::with_num_threads(1, || vals.par_iter().map(|v| v * v).sum());
    for t in THREAD_COUNTS {
        let got: f32 = rayon::with_num_threads(t, || vals.par_iter().map(|v| v * v).sum());
        assert_eq!(got.to_bits(), reference.to_bits(), "@{t} threads");
    }
}
