//! Block-wise 4-bit quantile quantization (NF4-style), the paper's INT4
//! configuration (BitsAndBytes `load_in_4bit`).
//!
//! Weights are split into fixed-size blocks along the input dimension; each
//! block stores one f32 absmax scale plus packed 4-bit indices into a
//! 16-level *normal-float* codebook (the information-theoretically optimal
//! levels for N(0,1)-distributed weights, from the QLoRA paper). Matrix
//! products dequantize block-by-block — the heavy dequant arithmetic that
//! drives the INT4 latency/energy penalties in the paper's Figs. 3/10/11.

use crate::matmul::dot;
use crate::tensor::Matrix;
use rayon::prelude::*;

/// Elements per quantization block (BitsAndBytes default is 64).
pub const BLOCK: usize = 64;

/// The 16 NF4 codebook levels (ascending, symmetric-ish around 0, ±1 at the
/// extremes) — the published constants from QLoRA (Dettmers et al., 2023).
pub const NF4_LEVELS: [f32; 16] = [
    -1.0,
    -0.696_192_8,
    -0.525_073_05,
    -0.394_917_5,
    -0.284_441_38,
    -0.184_773_43,
    -0.091_050_036,
    0.0,
    0.079_580_3,
    0.160_930_2,
    0.246_112_3,
    0.337_915_24,
    0.440_709_83,
    0.562_617,
    0.722_956_84,
    1.0,
];

/// Nearest codebook index for a normalized value in [−1, 1].
#[inline]
fn nearest_level(v: f32) -> u8 {
    // 16 levels: a linear scan is branch-predictable and fast enough; the
    // real kernels use the same lookup structure.
    let mut best = 0u8;
    let mut best_d = f32::INFINITY;
    for (i, &l) in NF4_LEVELS.iter().enumerate() {
        let d = (v - l).abs();
        if d < best_d {
            best_d = d;
            best = i as u8;
        }
    }
    best
}

/// An `(out × in)` weight matrix in blockwise NF4 format.
#[derive(Debug, Clone)]
pub struct QInt4Matrix {
    /// Output features.
    pub rows: usize,
    /// Input features.
    pub cols: usize,
    /// Packed codes: two 4-bit indices per byte, row-major by block.
    packed: Vec<u8>,
    /// One absmax scale per block, row-major.
    scales: Vec<f32>,
    /// Blocks per row.
    blocks_per_row: usize,
}

impl QInt4Matrix {
    /// Quantize an f32 matrix to blockwise NF4.
    pub fn from_f32(w: &Matrix) -> Self {
        let (rows, cols) = (w.rows, w.cols);
        let blocks_per_row = cols.div_ceil(BLOCK);
        let mut packed = vec![0u8; rows * blocks_per_row * BLOCK / 2];
        let mut scales = vec![0.0f32; rows * blocks_per_row];
        for r in 0..rows {
            let row = w.row(r);
            for b in 0..blocks_per_row {
                let start = b * BLOCK;
                let end = (start + BLOCK).min(cols);
                let blk = &row[start..end];
                let absmax = blk.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let scale = if absmax > 0.0 { absmax } else { 1.0 };
                scales[r * blocks_per_row + b] = scale;
                for (i, &v) in blk.iter().enumerate() {
                    let code = nearest_level(v / scale);
                    let flat = (r * blocks_per_row + b) * BLOCK + i;
                    let byte = &mut packed[flat / 2];
                    if flat.is_multiple_of(2) {
                        *byte = (*byte & 0xf0) | code;
                    } else {
                        *byte = (*byte & 0x0f) | (code << 4);
                    }
                }
            }
        }
        QInt4Matrix { rows, cols, packed, scales, blocks_per_row }
    }

    /// Storage bytes (packed codes + block scales).
    pub fn bytes(&self) -> usize {
        self.packed.len() + self.scales.len() * 4
    }

    /// Decode one full row into the provided buffer (`cols` long).
    fn decode_row_into(&self, r: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.cols);
        for b in 0..self.blocks_per_row {
            let scale = self.scales[r * self.blocks_per_row + b];
            let start = b * BLOCK;
            let end = (start + BLOCK).min(self.cols);
            for (i, o) in out[start..end].iter_mut().enumerate() {
                let flat = (r * self.blocks_per_row + b) * BLOCK + i;
                let byte = self.packed[flat / 2];
                let code = if flat.is_multiple_of(2) { byte & 0x0f } else { byte >> 4 };
                *o = NF4_LEVELS[code as usize] * scale;
            }
        }
    }

    /// Dequantize to f32.
    pub fn to_f32(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let cols = self.cols;
            self.decode_row_into(r, &mut out.row_mut(r)[..cols]);
        }
        out
    }

    /// `Y = X · Wᵀ` with full dequantization of each weight row on the fly.
    pub fn matmul_nt(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.cols, "inner dimensions must match");
        let n = self.rows;
        let mut out = Matrix::zeros(x.rows, n);
        out.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(r, or)| {
            let xr = x.row(r);
            let mut wrow = vec![0.0f32; self.cols];
            for (c, o) in or.iter_mut().enumerate() {
                self.decode_row_into(c, &mut wrow);
                *o = dot(xr, &wrow);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codebook_is_sorted_and_spans_unit_interval() {
        for w in NF4_LEVELS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(NF4_LEVELS[0], -1.0);
        assert_eq!(NF4_LEVELS[15], 1.0);
        assert_eq!(NF4_LEVELS[7], 0.0);
    }

    #[test]
    fn roundtrip_error_bounded_by_largest_gap() {
        let w = Matrix::rand_normal(8, 130, 0.02, 1); // non-multiple of BLOCK
        let q = QInt4Matrix::from_f32(&w);
        let back = q.to_f32();
        // Largest inter-level gap is 0.304 of the block absmax (between
        // −1.0 and −0.696) → worst-case error is the half-gap, 0.152.
        for r in 0..w.rows {
            for b in 0..w.cols.div_ceil(BLOCK) {
                let start = b * BLOCK;
                let end = (start + BLOCK).min(w.cols);
                let absmax = w.row(r)[start..end].iter().fold(0.0f32, |m, v| m.max(v.abs()));
                for i in start..end {
                    let err = (w.get(r, i) - back.get(r, i)).abs();
                    assert!(err <= 0.16 * absmax + 1e-7, "err {err} absmax {absmax}");
                }
            }
        }
    }

    #[test]
    fn block_absmax_values_are_exactly_representable() {
        // The extreme levels are ±1, so each block's absmax element is exact.
        let mut w = Matrix::zeros(1, BLOCK);
        w.set(0, 3, 0.7);
        w.set(0, 10, -0.2);
        let q = QInt4Matrix::from_f32(&w);
        let back = q.to_f32();
        assert!((back.get(0, 3) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn qmatmul_close_to_f32_matmul() {
        let x = Matrix::rand_kaiming(3, 128, 2);
        let w = Matrix::rand_normal(12, 128, 0.05, 3);
        let exact = crate::matmul::matmul_nt(&x, &w);
        let approx = QInt4Matrix::from_f32(&w).matmul_nt(&x);
        for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((a - b).abs() < 0.15 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn int4_is_lossier_than_int8() {
        let w = Matrix::rand_normal(16, 256, 0.05, 4);
        let e8 = {
            let back = crate::qint8::QInt8Matrix::from_f32(&w).to_f32();
            w.as_slice().iter().zip(back.as_slice()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
        };
        let e4 = {
            let back = QInt4Matrix::from_f32(&w).to_f32();
            w.as_slice().iter().zip(back.as_slice()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
        };
        assert!(e4 > 3.0 * e8, "int4 mse {e4} must exceed int8 mse {e8}");
    }

    #[test]
    fn storage_is_near_half_byte_per_param() {
        let w = Matrix::rand_kaiming(64, 256, 5);
        let q = QInt4Matrix::from_f32(&w);
        let bytes_per_param = q.bytes() as f32 / w.len() as f32;
        assert!(bytes_per_param < 0.6, "bytes/param {bytes_per_param}");
    }
}
