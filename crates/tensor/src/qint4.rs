//! Block-wise 4-bit quantile quantization (NF4-style), the paper's INT4
//! configuration (BitsAndBytes `load_in_4bit`).
//!
//! Weights are split into fixed-size blocks along the input dimension; each
//! block stores one f32 absmax scale plus packed 4-bit indices into a
//! 16-level *normal-float* codebook (the information-theoretically optimal
//! levels for N(0,1)-distributed weights, from the QLoRA paper). Matrix
//! products dequantize block-by-block — the heavy dequant arithmetic that
//! drives the INT4 latency/energy penalties in the paper's Figs. 3/10/11.

use crate::matmul::{dot, policy};
use crate::tensor::Matrix;
use rayon::prelude::*;

/// Elements per quantization block (BitsAndBytes default is 64).
pub const BLOCK: usize = 64;

/// The 16 NF4 codebook levels (ascending, symmetric-ish around 0, ±1 at the
/// extremes) — the published constants from QLoRA (Dettmers et al., 2023).
pub const NF4_LEVELS: [f32; 16] = [
    -1.0,
    -0.696_192_8,
    -0.525_073_05,
    -0.394_917_5,
    -0.284_441_38,
    -0.184_773_43,
    -0.091_050_036,
    0.0,
    0.079_580_3,
    0.160_930_2,
    0.246_112_3,
    0.337_915_24,
    0.440_709_83,
    0.562_617,
    0.722_956_84,
    1.0,
];

/// Nearest codebook index for a normalized value in [−1, 1].
#[inline]
fn nearest_level(v: f32) -> u8 {
    // 16 levels: a linear scan is branch-predictable and fast enough; the
    // real kernels use the same lookup structure.
    let mut best = 0u8;
    let mut best_d = f32::INFINITY;
    for (i, &l) in NF4_LEVELS.iter().enumerate() {
        let d = (v - l).abs();
        if d < best_d {
            best_d = d;
            best = i as u8;
        }
    }
    best
}

/// An `(out × in)` weight matrix in blockwise NF4 format.
#[derive(Debug, Clone)]
pub struct QInt4Matrix {
    /// Output features.
    pub rows: usize,
    /// Input features.
    pub cols: usize,
    /// Packed codes: two 4-bit indices per byte, row-major by block.
    packed: Vec<u8>,
    /// One absmax scale per block, row-major.
    scales: Vec<f32>,
    /// Blocks per row.
    blocks_per_row: usize,
}

impl QInt4Matrix {
    /// Quantize an f32 matrix to blockwise NF4.
    pub fn from_f32(w: &Matrix) -> Self {
        let (rows, cols) = (w.rows, w.cols);
        let blocks_per_row = cols.div_ceil(BLOCK);
        let mut packed = vec![0u8; rows * blocks_per_row * BLOCK / 2];
        let mut scales = vec![0.0f32; rows * blocks_per_row];
        for r in 0..rows {
            let row = w.row(r);
            for b in 0..blocks_per_row {
                let start = b * BLOCK;
                let end = (start + BLOCK).min(cols);
                let blk = &row[start..end];
                let absmax = blk.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let scale = if absmax > 0.0 { absmax } else { 1.0 };
                scales[r * blocks_per_row + b] = scale;
                for (i, &v) in blk.iter().enumerate() {
                    let code = nearest_level(v / scale);
                    let flat = (r * blocks_per_row + b) * BLOCK + i;
                    let byte = &mut packed[flat / 2];
                    if flat.is_multiple_of(2) {
                        *byte = (*byte & 0xf0) | code;
                    } else {
                        *byte = (*byte & 0x0f) | (code << 4);
                    }
                }
            }
        }
        QInt4Matrix { rows, cols, packed, scales, blocks_per_row }
    }

    /// Storage bytes (packed codes + block scales).
    pub fn bytes(&self) -> usize {
        self.packed.len() + self.scales.len() * 4
    }

    /// Decode one full row into a caller-provided buffer (`cols` long).
    pub fn decode_row_into(&self, r: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.cols);
        for b in 0..self.blocks_per_row {
            let scale = self.scales[r * self.blocks_per_row + b];
            let start = b * BLOCK;
            let end = (start + BLOCK).min(self.cols);
            for (i, o) in out[start..end].iter_mut().enumerate() {
                let flat = (r * self.blocks_per_row + b) * BLOCK + i;
                let byte = self.packed[flat / 2];
                let code = if flat.is_multiple_of(2) { byte & 0x0f } else { byte >> 4 };
                *o = NF4_LEVELS[code as usize] * scale;
            }
        }
    }

    /// Dequantize into a caller-provided matrix (no allocation).
    pub fn to_f32_into(&self, out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (self.rows, self.cols), "shape mismatch");
        for r in 0..self.rows {
            self.decode_row_into(r, out.row_mut(r));
        }
    }

    /// Dequantize to f32.
    pub fn to_f32(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.to_f32_into(&mut out);
        out
    }

    /// One fused output element: `dot(xr, w.row(c))` accumulated block by
    /// block **directly from the packed nibbles** — no dequantized weight
    /// row is materialized. Per block, the low- and high-nibble lanes
    /// accumulate independently (two ILP chains), combine, and the block
    /// scale is applied once to the partial sum. The accumulation order
    /// depends only on `(xr, c)`, so results are bit-identical across batch
    /// sizes, dispatch paths and thread counts.
    #[inline]
    fn fused_dot(&self, xr: &[f32], c: usize) -> f32 {
        let mut total = 0.0f32;
        for b in 0..self.blocks_per_row {
            let start = b * BLOCK;
            let end = (start + BLOCK).min(self.cols);
            let nb = end - start;
            // Blocks are padded to BLOCK codes, so BLOCK/2 bytes always
            // exist; BLOCK is even, so nibble parity matches in-block index.
            let base2 = (c * self.blocks_per_row + b) * BLOCK / 2;
            let bytes = &self.packed[base2..base2 + BLOCK / 2];
            let xs = &xr[start..end];
            let pairs = nb / 2;
            let (mut lo, mut hi) = (0.0f32, 0.0f32);
            for (p, &byte) in bytes[..pairs].iter().enumerate() {
                lo += xs[2 * p] * NF4_LEVELS[(byte & 0x0f) as usize];
                hi += xs[2 * p + 1] * NF4_LEVELS[(byte >> 4) as usize];
            }
            if nb % 2 == 1 {
                lo += xs[nb - 1] * NF4_LEVELS[(bytes[pairs] & 0x0f) as usize];
            }
            total += (lo + hi) * self.scales[c * self.blocks_per_row + b];
        }
        total
    }

    /// Decode one row's codebook **levels** (unscaled) into a caller
    /// buffer. Scales are applied blockwise by the batched product so the
    /// arithmetic matches [`Self::fused_dot`] bit for bit.
    fn decode_levels_into(&self, r: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.cols);
        for b in 0..self.blocks_per_row {
            let start = b * BLOCK;
            let end = (start + BLOCK).min(self.cols);
            for (i, o) in out[start..end].iter_mut().enumerate() {
                let flat = (r * self.blocks_per_row + b) * BLOCK + i;
                let byte = self.packed[flat / 2];
                let code = if flat.is_multiple_of(2) { byte & 0x0f } else { byte >> 4 };
                *o = NF4_LEVELS[code as usize];
            }
        }
    }

    /// [`Self::fused_dot`] reading pre-decoded levels instead of unpacking
    /// nibbles — the batch-amortized variant. Identical accumulation
    /// order and identical factor values (a stored `NF4_LEVELS[i]` reads
    /// back exactly), so the result is **bitwise equal** to `fused_dot`.
    #[inline]
    fn fused_dot_decoded(&self, xr: &[f32], c: usize, levels: &[f32]) -> f32 {
        let mut total = 0.0f32;
        for b in 0..self.blocks_per_row {
            let start = b * BLOCK;
            let end = (start + BLOCK).min(self.cols);
            let nb = end - start;
            let xs = &xr[start..end];
            let ls = &levels[start..end];
            let pairs = nb / 2;
            let (mut lo, mut hi) = (0.0f32, 0.0f32);
            for p in 0..pairs {
                lo += xs[2 * p] * ls[2 * p];
                hi += xs[2 * p + 1] * ls[2 * p + 1];
            }
            if nb % 2 == 1 {
                lo += xs[nb - 1] * ls[nb - 1];
            }
            total += (lo + hi) * self.scales[c * self.blocks_per_row + b];
        }
        total
    }

    /// `Y = X · Wᵀ` **fused**: accumulates directly from the packed 4-bit
    /// codes (see `fused_dot`), parallelized per
    /// [`policy::matmul_quant_nt`]. Batched blocks decode each weight row
    /// once and share it across the batch (`fused_dot_decoded`);
    /// both variants produce the same bits, so outputs never depend on the
    /// batch size, dispatch path or thread count.
    pub fn matmul_nt(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.cols, "inner dimensions must match");
        let (m, n) = (x.rows, self.rows);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let threads = rayon::current_num_threads();
        // Weight-row-outer / batch-row-inner: each packed row (the
        // dominant memory traffic) is streamed once per batch block, not
        // once per batch row. Loop order cannot change the bits — every
        // element depends only on its own (activation row, weight row).
        let fill_block = |rows: std::ops::Range<usize>, blk: &mut [f32]| {
            if rows.len() == 1 {
                let xr = x.row(rows.start);
                for (c, o) in blk.iter_mut().enumerate() {
                    *o = self.fused_dot(xr, c);
                }
                return;
            }
            let mut levels = vec![0.0f32; self.cols];
            for c in 0..n {
                self.decode_levels_into(c, &mut levels);
                for (i, r) in rows.clone().enumerate() {
                    blk[i * n + c] = self.fused_dot_decoded(x.row(r), c, &levels);
                }
            }
        };
        let dispatch = policy::matmul_quant_nt(m, n, self.cols, threads);
        #[cfg(feature = "trace")]
        let _t = edgellm_trace::kernels::timer(
            crate::matmul::instrument::pick(
                dispatch,
                "qint4_nt.serial",
                "qint4_nt.rows",
                "qint4_nt.cols",
            ),
            (m * n) as u64 * self.cols as u64,
        );
        match dispatch {
            policy::Dispatch::Serial => fill_block(0..m, out.as_mut_slice()),
            policy::Dispatch::RowParallel => {
                let rpu = m.div_ceil(threads).clamp(1, 8);
                out.as_mut_slice().par_chunks_mut(n * rpu).enumerate().for_each(|(b, blk)| {
                    let r0 = b * rpu;
                    fill_block(r0..r0 + blk.len() / n, blk);
                });
            }
            policy::Dispatch::ColParallel => {
                for r in 0..m {
                    let xr = x.row(r);
                    out.row_mut(r).par_chunks_mut(policy::COL_BLOCK).enumerate().for_each(
                        |(cb, seg)| {
                            let c0 = cb * policy::COL_BLOCK;
                            for (j, o) in seg.iter_mut().enumerate() {
                                *o = self.fused_dot(xr, c0 + j);
                            }
                        },
                    );
                }
            }
        }
        out
    }

    /// Reference dequantize-then-dot product: each weight row is decoded
    /// into one reused f32 scratch buffer, then dotted. Kept for
    /// benchmarking the fusion win and for accuracy cross-checks.
    pub fn matmul_nt_dequant(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.cols, "inner dimensions must match");
        let mut out = Matrix::zeros(x.rows, self.rows);
        let mut wrow = vec![0.0f32; self.cols];
        for c in 0..self.rows {
            self.decode_row_into(c, &mut wrow);
            for r in 0..x.rows {
                out.set(r, c, dot(x.row(r), &wrow));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codebook_is_sorted_and_spans_unit_interval() {
        for w in NF4_LEVELS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(NF4_LEVELS[0], -1.0);
        assert_eq!(NF4_LEVELS[15], 1.0);
        assert_eq!(NF4_LEVELS[7], 0.0);
    }

    #[test]
    fn roundtrip_error_bounded_by_largest_gap() {
        let w = Matrix::rand_normal(8, 130, 0.02, 1); // non-multiple of BLOCK
        let q = QInt4Matrix::from_f32(&w);
        let back = q.to_f32();
        // Largest inter-level gap is 0.304 of the block absmax (between
        // −1.0 and −0.696) → worst-case error is the half-gap, 0.152.
        for r in 0..w.rows {
            for b in 0..w.cols.div_ceil(BLOCK) {
                let start = b * BLOCK;
                let end = (start + BLOCK).min(w.cols);
                let absmax = w.row(r)[start..end].iter().fold(0.0f32, |m, v| m.max(v.abs()));
                for i in start..end {
                    let err = (w.get(r, i) - back.get(r, i)).abs();
                    assert!(err <= 0.16 * absmax + 1e-7, "err {err} absmax {absmax}");
                }
            }
        }
    }

    #[test]
    fn block_absmax_values_are_exactly_representable() {
        // The extreme levels are ±1, so each block's absmax element is exact.
        let mut w = Matrix::zeros(1, BLOCK);
        w.set(0, 3, 0.7);
        w.set(0, 10, -0.2);
        let q = QInt4Matrix::from_f32(&w);
        let back = q.to_f32();
        assert!((back.get(0, 3) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn qmatmul_close_to_f32_matmul() {
        let x = Matrix::rand_kaiming(3, 128, 2);
        let w = Matrix::rand_normal(12, 128, 0.05, 3);
        let exact = crate::matmul::matmul_nt(&x, &w);
        let approx = QInt4Matrix::from_f32(&w).matmul_nt(&x);
        for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((a - b).abs() < 0.15 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn fused_close_to_dequant_reference() {
        // Same codes, different accumulation order (blockwise vs one long
        // dot) — values agree to f32 rounding, not bitwise.
        let x = Matrix::rand_kaiming(3, 200, 6); // non-multiple of BLOCK
        let w = Matrix::rand_normal(20, 200, 0.05, 7);
        let q = QInt4Matrix::from_f32(&w);
        let fused = q.matmul_nt(&x);
        let reference = q.matmul_nt_dequant(&x);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn to_f32_into_matches_to_f32() {
        let w = Matrix::rand_normal(5, 130, 0.05, 8);
        let q = QInt4Matrix::from_f32(&w);
        let mut buf = Matrix::zeros(5, 130);
        q.to_f32_into(&mut buf);
        assert_eq!(buf.as_slice(), q.to_f32().as_slice());
    }

    #[test]
    fn int4_is_lossier_than_int8() {
        let w = Matrix::rand_normal(16, 256, 0.05, 4);
        let e8 = {
            let back = crate::qint8::QInt8Matrix::from_f32(&w).to_f32();
            w.as_slice().iter().zip(back.as_slice()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
        };
        let e4 = {
            let back = QInt4Matrix::from_f32(&w).to_f32();
            w.as_slice().iter().zip(back.as_slice()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
        };
        assert!(e4 > 3.0 * e8, "int4 mse {e4} must exceed int8 mse {e8}");
    }

    #[test]
    fn storage_is_near_half_byte_per_param() {
        let w = Matrix::rand_kaiming(64, 256, 5);
        let q = QInt4Matrix::from_f32(&w);
        let bytes_per_param = q.bytes() as f32 / w.len() as f32;
        assert!(bytes_per_param < 0.6, "bytes/param {bytes_per_param}");
    }
}
