//! Bit-level IEEE binary16 (half precision) codec and weight storage.
//!
//! Implemented from scratch (no `half` dependency): conversion uses
//! round-to-nearest-even, handles subnormals, infinities and NaN, and is
//! property-tested against exactness/monotonicity invariants.

use crate::matmul::dot;
use crate::tensor::Matrix;
use rayon::prelude::*;

/// Convert an `f32` to its nearest IEEE binary16 bit pattern
/// (round-to-nearest-even, overflow → ±inf).
pub fn f32_to_f16(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a quiet-NaN payload bit if any mantissa bit set.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, re-biased for f16 (bias 15 vs 127).
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → infinity
    }
    if unbiased >= -14 {
        // Normal f16. 13 mantissa bits are dropped; round to nearest even.
        let mant16 = mant >> 13;
        let rest = mant & 0x1fff;
        let halfway = 0x1000;
        let mut out = sign | (((unbiased + 15) as u16) << 10) | mant16 as u16;
        if rest > halfway || (rest == halfway && (mant16 & 1) == 1) {
            out = out.wrapping_add(1); // may carry into exponent: correct (rounds up to next binade/inf)
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal f16: shift in the implicit leading 1.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let mant16 = (full >> shift) as u16;
        let rest = full & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = sign | mant16;
        if rest > halfway || (rest == halfway && (mant16 & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    sign // underflow to signed zero
}

/// Convert an IEEE binary16 bit pattern to `f32` exactly.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x3ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m · 2⁻²⁴; normalize into f32.
            let p = 31 - m.leading_zeros(); // index of highest set bit, 0..=9
            let exp32 = 127 - 24 + p;
            let frac = m ^ (1 << p); // drop the leading 1
            sign | (exp32 << 23) | (frac << (23 - p))
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// A weight matrix stored in binary16, dequantized on the fly during
/// products — the storage/compute trade the paper's FP16 serving makes.
#[derive(Debug, Clone)]
pub struct F16Matrix {
    /// Number of rows (output features).
    pub rows: usize,
    /// Number of columns (input features).
    pub cols: usize,
    data: Vec<u16>,
}

impl F16Matrix {
    /// Quantize an `f32` matrix to f16 storage.
    pub fn from_f32(m: &Matrix) -> Self {
        F16Matrix {
            rows: m.rows,
            cols: m.cols,
            data: m.as_slice().iter().map(|&v| f32_to_f16(v)).collect(),
        }
    }

    /// Dequantize back to `f32`.
    pub fn to_f32(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|&h| f16_to_f32(h)).collect())
    }

    /// Storage bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * 2
    }

    /// `Y = X · Wᵀ` with on-the-fly dequantization of `W` rows.
    pub fn matmul_nt(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.cols, "inner dimensions must match");
        let (m, n) = (x.rows, self.rows);
        let mut out = Matrix::zeros(m, n);
        out.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(r, or)| {
            let xr = x.row(r);
            let mut wrow = vec![0.0f32; self.cols];
            for (c, o) in or.iter_mut().enumerate() {
                let wr = &self.data[c * self.cols..(c + 1) * self.cols];
                for (dst, &h) in wrow.iter_mut().zip(wr) {
                    *dst = f16_to_f32(h);
                }
                *o = dot(xr, &wrow);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "integer {v} must be exact");
        }
    }

    #[test]
    fn special_values() {
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(f32_to_f16(0.0), 0);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        // Values beyond f16 max (65504) overflow to infinity.
        assert_eq!(f16_to_f32(f32_to_f16(70000.0)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(65504.0)), 65504.0);
    }

    #[test]
    fn subnormals_roundtrip() {
        let tiny = 5.96e-8; // smallest positive f16 subnormal ≈ 5.96e-8
        let back = f16_to_f32(f32_to_f16(tiny));
        assert!(back > 0.0 && (back - tiny).abs() / tiny < 0.5);
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(f16_to_f32(f32_to_f16(1e-9)), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; RNE
        // keeps the even mantissa (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_to_f32(f32_to_f16(halfway)), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f16_to_f32(f32_to_f16(above)), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn relative_error_bounded_by_eps() {
        // Normal range: |x − rt(x)| ≤ 2^-11 · |x| (half of f16 eps).
        let mut v = 1.111e-3f32;
        while v < 1e4 {
            let rt = f16_to_f32(f32_to_f16(v));
            assert!((rt - v).abs() <= v * 4.9e-4, "v={v} rt={rt}");
            v *= 1.7;
        }
    }

    #[test]
    fn f16_matmul_close_to_f32() {
        let x = Matrix::rand_kaiming(4, 64, 1);
        let w = Matrix::rand_kaiming(8, 64, 2);
        let exact = crate::matmul::matmul_nt(&x, &w);
        let viaf16 = F16Matrix::from_f32(&w).matmul_nt(&x);
        for (a, b) in exact.as_slice().iter().zip(viaf16.as_slice()) {
            assert!((a - b).abs() < 2e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn storage_is_half_of_f32() {
        let w = Matrix::rand_kaiming(16, 16, 3);
        let h = F16Matrix::from_f32(&w);
        assert_eq!(h.bytes() * 2, w.len() * 4);
    }
}
