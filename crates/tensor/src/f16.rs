//! Bit-level IEEE binary16 (half precision) codec and weight storage.
//!
//! Implemented from scratch (no `half` dependency): conversion uses
//! round-to-nearest-even, handles subnormals, infinities and NaN, and is
//! property-tested against exactness/monotonicity invariants.

use crate::matmul::{dot, policy};
use crate::tensor::Matrix;
use rayon::prelude::*;
use std::sync::OnceLock;

/// The 65536-entry f16→f32 table: every half-precision bit pattern,
/// expanded once by the arithmetic converter. The input space is only
/// 2¹⁶ wide, so one 256 KiB table replaces the branchy bit-twiddling in
/// the decode hot loop — the fix for the fused-f16 decode regression,
/// where per-element conversion cost dominated the single-row products.
/// Entries are bit-exact copies of [`f16_to_f32_arith`]'s results
/// (including NaN payloads), so nothing downstream can tell them apart.
static F16_LUT: OnceLock<Vec<f32>> = OnceLock::new();

/// The table, built on first use.
#[inline]
fn f16_lut() -> &'static [f32] {
    F16_LUT.get_or_init(|| (0..=u16::MAX).map(f16_to_f32_arith).collect())
}

/// Fused dot product of an f32 activation row against an f16 weight row,
/// converting each weight element inline (no dequantized scratch row).
///
/// The table lookup is exact and the lane structure mirrors
/// [`dot`](crate::matmul::dot), so this is **bit-identical** to
/// `dot(xr, dequantized_row)`.
#[inline]
fn f16_dot(xr: &[f32], wr: &[u16]) -> f32 {
    debug_assert_eq!(xr.len(), wr.len());
    let lut = f16_lut();
    let mut acc = [0.0f32; 8];
    let chunks = xr.len() / 8;
    for i in 0..chunks {
        let j = i * 8;
        for l in 0..8 {
            acc[l] += xr[j + l] * lut[wr[j + l] as usize];
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for j in chunks * 8..xr.len() {
        s += xr[j] * lut[wr[j] as usize];
    }
    s
}

/// Convert an `f32` to its nearest IEEE binary16 bit pattern
/// (round-to-nearest-even, overflow → ±inf).
pub fn f32_to_f16(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a quiet-NaN payload bit if any mantissa bit set.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, re-biased for f16 (bias 15 vs 127).
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → infinity
    }
    if unbiased >= -14 {
        // Normal f16. 13 mantissa bits are dropped; round to nearest even.
        let mant16 = mant >> 13;
        let rest = mant & 0x1fff;
        let halfway = 0x1000;
        let mut out = sign | (((unbiased + 15) as u16) << 10) | mant16 as u16;
        if rest > halfway || (rest == halfway && (mant16 & 1) == 1) {
            out = out.wrapping_add(1); // may carry into exponent: correct (rounds up to next binade/inf)
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal f16: shift in the implicit leading 1.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let mant16 = (full >> shift) as u16;
        let rest = full & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = sign | mant16;
        if rest > halfway || (rest == halfway && (mant16 & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    sign // underflow to signed zero
}

/// Convert an IEEE binary16 bit pattern to `f32` exactly, via the table.
#[inline]
pub fn f16_to_f32(h: u16) -> f32 {
    f16_lut()[h as usize]
}

/// Arithmetic binary16→binary32 conversion — the reference the table is
/// populated from. Kept public so the exhaustive equality test (and any
/// caller that wants a table-free path) can reach it.
pub fn f16_to_f32_arith(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x3ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m · 2⁻²⁴; normalize into f32.
            let p = 31 - m.leading_zeros(); // index of highest set bit, 0..=9
            let exp32 = 127 - 24 + p;
            let frac = m ^ (1 << p); // drop the leading 1
            sign | (exp32 << 23) | (frac << (23 - p))
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// A weight matrix stored in binary16, dequantized on the fly during
/// products — the storage/compute trade the paper's FP16 serving makes.
#[derive(Debug, Clone)]
pub struct F16Matrix {
    /// Number of rows (output features).
    pub rows: usize,
    /// Number of columns (input features).
    pub cols: usize,
    data: Vec<u16>,
}

impl F16Matrix {
    /// Quantize an `f32` matrix to f16 storage.
    pub fn from_f32(m: &Matrix) -> Self {
        F16Matrix {
            rows: m.rows,
            cols: m.cols,
            data: m.as_slice().iter().map(|&v| f32_to_f16(v)).collect(),
        }
    }

    /// One stored weight row as raw f16 bit patterns.
    fn h_row(&self, r: usize) -> &[u16] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dequantize one weight row into a caller-provided buffer.
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.cols);
        let lut = f16_lut();
        for (dst, &h) in out.iter_mut().zip(self.h_row(r)) {
            *dst = lut[h as usize];
        }
    }

    /// Dequantize into a caller-provided matrix (no allocation).
    pub fn to_f32_into(&self, out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (self.rows, self.cols), "shape mismatch");
        for r in 0..self.rows {
            self.dequantize_row_into(r, out.row_mut(r));
        }
    }

    /// Dequantize back to `f32`.
    pub fn to_f32(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.to_f32_into(&mut out);
        out
    }

    /// Storage bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * 2
    }

    /// `Y = X · Wᵀ` **fused**: weight elements convert f16→f32 inline in
    /// the dot product (see `f16_dot`) — half the weight memory traffic
    /// of f32 and no scratch row. Bit-identical to the dequantize-then-dot
    /// reference; parallelized per [`policy::matmul_quant_nt`].
    pub fn matmul_nt(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.cols, "inner dimensions must match");
        let (m, n) = (x.rows, self.rows);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let threads = rayon::current_num_threads();
        // Weight-row-outer / batch-row-inner: each f16 row is streamed
        // once per batch block and converted inline per use; the small
        // activation block stays cache-resident. Loop order cannot change
        // the bits.
        // Batched blocks convert each weight row to f32 once and share it
        // across the batch: `f16_to_f32` is exact and `dot` mirrors
        // `f16_dot`'s lane order, so both variants produce the same bits.
        let fill_block = |rows: std::ops::Range<usize>, blk: &mut [f32]| {
            if rows.len() == 1 {
                let xr = x.row(rows.start);
                for (c, o) in blk.iter_mut().enumerate() {
                    *o = f16_dot(xr, self.h_row(c));
                }
                return;
            }
            let mut wrow = vec![0.0f32; self.cols];
            for c in 0..n {
                self.dequantize_row_into(c, &mut wrow);
                for (i, r) in rows.clone().enumerate() {
                    blk[i * n + c] = dot(x.row(r), &wrow);
                }
            }
        };
        let dispatch = policy::matmul_quant_nt(m, n, self.cols, threads);
        #[cfg(feature = "trace")]
        let _t = edgellm_trace::kernels::timer(
            crate::matmul::instrument::pick(
                dispatch,
                "f16_nt.serial",
                "f16_nt.rows",
                "f16_nt.cols",
            ),
            (m * n) as u64 * self.cols as u64,
        );
        match dispatch {
            policy::Dispatch::Serial => fill_block(0..m, out.as_mut_slice()),
            policy::Dispatch::RowParallel => {
                let rpu = m.div_ceil(threads).clamp(1, 8);
                out.as_mut_slice().par_chunks_mut(n * rpu).enumerate().for_each(|(b, blk)| {
                    let r0 = b * rpu;
                    fill_block(r0..r0 + blk.len() / n, blk);
                });
            }
            policy::Dispatch::ColParallel => {
                for r in 0..m {
                    let xr = x.row(r);
                    out.row_mut(r).par_chunks_mut(policy::COL_BLOCK).enumerate().for_each(
                        |(cb, seg)| {
                            let c0 = cb * policy::COL_BLOCK;
                            for (j, o) in seg.iter_mut().enumerate() {
                                *o = f16_dot(xr, self.h_row(c0 + j));
                            }
                        },
                    );
                }
            }
        }
        out
    }

    /// Reference dequantize-then-dot product: each weight row is expanded
    /// into one reused f32 scratch buffer, then dotted. Kept for
    /// benchmarking the fusion win; bitwise equal to [`Self::matmul_nt`].
    pub fn matmul_nt_dequant(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.cols, "inner dimensions must match");
        let mut out = Matrix::zeros(x.rows, self.rows);
        let mut wrow = vec![0.0f32; self.cols];
        for c in 0..self.rows {
            self.dequantize_row_into(c, &mut wrow);
            for r in 0..x.rows {
                out.set(r, c, dot(x.row(r), &wrow));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_is_bitwise_equal_to_arithmetic_converter() {
        // All 65536 half-precision bit patterns — including NaN payloads,
        // infinities, subnormals, and both zeros — must expand through the
        // table to the exact bits the arithmetic converter produces.
        for h in 0..=u16::MAX {
            assert_eq!(
                f16_to_f32(h).to_bits(),
                f16_to_f32_arith(h).to_bits(),
                "pattern {h:#06x} diverged"
            );
        }
    }

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "integer {v} must be exact");
        }
    }

    #[test]
    fn special_values() {
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(f32_to_f16(0.0), 0);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        // Values beyond f16 max (65504) overflow to infinity.
        assert_eq!(f16_to_f32(f32_to_f16(70000.0)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(65504.0)), 65504.0);
    }

    #[test]
    fn subnormals_roundtrip() {
        let tiny = 5.96e-8; // smallest positive f16 subnormal ≈ 5.96e-8
        let back = f16_to_f32(f32_to_f16(tiny));
        assert!(back > 0.0 && (back - tiny).abs() / tiny < 0.5);
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(f16_to_f32(f32_to_f16(1e-9)), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; RNE
        // keeps the even mantissa (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_to_f32(f32_to_f16(halfway)), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f16_to_f32(f32_to_f16(above)), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn relative_error_bounded_by_eps() {
        // Normal range: |x − rt(x)| ≤ 2^-11 · |x| (half of f16 eps).
        let mut v = 1.111e-3f32;
        while v < 1e4 {
            let rt = f16_to_f32(f32_to_f16(v));
            assert!((rt - v).abs() <= v * 4.9e-4, "v={v} rt={rt}");
            v *= 1.7;
        }
    }

    #[test]
    fn f16_matmul_close_to_f32() {
        let x = Matrix::rand_kaiming(4, 64, 1);
        let w = Matrix::rand_kaiming(8, 64, 2);
        let exact = crate::matmul::matmul_nt(&x, &w);
        let viaf16 = F16Matrix::from_f32(&w).matmul_nt(&x);
        for (a, b) in exact.as_slice().iter().zip(viaf16.as_slice()) {
            assert!((a - b).abs() < 2e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_is_bitwise_equal_to_dequant_reference() {
        let x = Matrix::rand_kaiming(3, 100, 4);
        let w = Matrix::rand_kaiming(9, 100, 5);
        let h = F16Matrix::from_f32(&w);
        let fused = h.matmul_nt(&x);
        let reference = h.matmul_nt_dequant(&x);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn storage_is_half_of_f32() {
        let w = Matrix::rand_kaiming(16, 16, 3);
        let h = F16Matrix::from_f32(&w);
        assert_eq!(h.bytes() * 2, w.len() * 4);
    }
}
