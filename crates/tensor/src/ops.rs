//! Elementwise and normalization kernels used by the neural LM stack.

use crate::tensor::Matrix;

/// In-place numerically-stable softmax over each row.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols;
    for r in 0..m.rows {
        softmax_inplace(&mut m.row_mut(r)[..cols]);
    }
}

/// In-place numerically-stable softmax over a slice.
pub fn softmax_inplace(x: &mut [f32]) {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
}

/// Log-softmax of a slice into a fresh vector (for NLL/perplexity).
pub fn log_softmax(x: &[f32]) -> Vec<f32> {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = x.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
    x.iter().map(|v| v - max - log_sum).collect()
}

/// In-place RMSNorm over each row with learned gains (Llama-style).
pub fn rmsnorm_rows(m: &mut Matrix, gain: &[f32], eps: f32) {
    assert_eq!(m.cols, gain.len());
    for r in 0..m.rows {
        let row = m.row_mut(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (v, g) in row.iter_mut().zip(gain) {
            *v = *v * inv * g;
        }
    }
}

/// In-place LayerNorm over each row with learned gain and bias (Phi-style).
pub fn layernorm_rows(m: &mut Matrix, gain: &[f32], bias: &[f32], eps: f32) {
    assert_eq!(m.cols, gain.len());
    assert_eq!(m.cols, bias.len());
    for r in 0..m.rows {
        let row = m.row_mut(r);
        let n = row.len() as f32;
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + eps).sqrt();
        for ((v, g), b) in row.iter_mut().zip(gain).zip(bias) {
            *v = (*v - mean) * inv * g + b;
        }
    }
}

/// SiLU (swish) activation, in place.
pub fn silu_inplace(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = *v / (1.0 + (-*v).exp());
    }
}

/// tanh-approximation GELU, in place (matches the transformer default).
pub fn gelu_inplace(x: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    for v in x.iter_mut() {
        let u = C * (*v + 0.044715 * *v * *v * *v);
        *v = 0.5 * *v * (1.0 + u.tanh());
    }
}

/// Derivative of tanh-approximation GELU evaluated at `x` (for backprop).
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let u = C * (x + 0.044715 * x3);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Rotary position embedding applied in place to a `(heads*head_dim)` row
/// for absolute position `pos`. Pairs `(2i, 2i+1)` within each head rotate
/// by `theta^(−2i/head_dim)·pos` — the Llama convention.
pub fn rope_inplace(row: &mut [f32], head_dim: usize, pos: usize, theta: f32) {
    assert_eq!(row.len() % head_dim, 0);
    let half = head_dim / 2;
    for head in row.chunks_mut(head_dim) {
        for i in 0..half {
            let freq = theta.powf(-2.0 * i as f32 / head_dim as f32);
            let angle = pos as f32 * freq;
            let (sin, cos) = angle.sin_cos();
            let (a, b) = (head[i], head[i + half]);
            head[i] = a * cos - b * sin;
            head[i + half] = a * sin + b * cos;
        }
    }
}

/// Elementwise addition: `a += b`.
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut x = [1.0, 2.0, 3.0];
        softmax_inplace(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = [1000.0, 1001.0, 1002.0];
        let mut b = [0.0, 1.0, 2.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let x = [0.3, -1.2, 2.5, 0.0];
        let ls = log_softmax(&x);
        let mut sm = x;
        softmax_inplace(&mut sm);
        for (l, s) in ls.iter().zip(sm.iter()) {
            assert!((l.exp() - s).abs() < 1e-6);
        }
    }

    #[test]
    fn rmsnorm_produces_unit_rms_with_unit_gain() {
        let mut m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        rmsnorm_rows(&mut m, &[1.0; 4], 1e-6);
        let ms: f32 = m.row(0).iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((ms - 1.0).abs() < 1e-4);
    }

    #[test]
    fn layernorm_centers_and_scales() {
        let mut m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        layernorm_rows(&mut m, &[1.0; 4], &[0.0; 4], 1e-6);
        let mean: f32 = m.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = m.row(0).iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_fixed_points() {
        let mut x = [0.0f32, 10.0, -10.0];
        gelu_inplace(&mut x);
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 10.0).abs() < 1e-3);
        assert!(x[2].abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let mut a = [x + h];
            let mut b = [x - h];
            gelu_inplace(&mut a);
            gelu_inplace(&mut b);
            let fd = (a[0] - b[0]) / (2.0 * h);
            assert!((gelu_grad(x) - fd).abs() < 1e-2, "x={x}");
        }
    }

    #[test]
    fn silu_known_value() {
        let mut x = [0.0f32, 1.0];
        silu_inplace(&mut x);
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 1.0 / (1.0 + (-1.0f32).exp())).abs() < 1e-6);
    }

    #[test]
    fn rope_preserves_norm_and_is_identity_at_pos0() {
        let orig: Vec<f32> = (0..8).map(|i| i as f32 * 0.25 - 1.0).collect();
        let mut r = orig.clone();
        rope_inplace(&mut r, 4, 0, 10000.0);
        assert_eq!(r, orig, "position 0 must be identity");
        let mut r = orig.clone();
        rope_inplace(&mut r, 4, 17, 10000.0);
        let n0: f32 = orig.iter().map(|v| v * v).sum();
        let n1: f32 = r.iter().map(|v| v * v).sum();
        assert!((n0 - n1).abs() < 1e-4, "rotation must preserve norm");
        assert_ne!(r, orig);
    }

    #[test]
    fn rope_relative_property() {
        // <rope(q,m), rope(k,n)> depends only on m−n for a single pair.
        let q = vec![0.3, -0.7];
        let k = vec![1.1, 0.4];
        let dot_at = |m: usize, n: usize| {
            let mut qq = q.clone();
            let mut kk = k.clone();
            rope_inplace(&mut qq, 2, m, 10000.0);
            rope_inplace(&mut kk, 2, n, 10000.0);
            qq[0] * kk[0] + qq[1] * kk[1]
        };
        assert!((dot_at(5, 3) - dot_at(9, 7)).abs() < 1e-4);
    }
}
