//! Row-wise absmax INT8 weights with outlier-column decomposition —
//! the `LLM.int8()` scheme (Dettmers et al., NeurIPS 2022) the paper uses
//! via BitsAndBytes.
//!
//! Each weight row is quantized as `w ≈ scale · q` with `q ∈ [−127, 127]`
//! and `scale = absmax/127`, **except** for a small set of *outlier columns*
//! (input features with unusually large magnitude) which stay in f32 and are
//! multiplied separately. This mixed decomposition is what preserves
//! accuracy at 8 bits — and its extra kernel launches/bookkeeping are the
//! mechanism behind the paper's finding that INT8 *slows down* small models
//! (§3.3).

use crate::matmul::{dot, policy};
use crate::tensor::Matrix;
use rayon::prelude::*;

/// Integer dot product of two i8 slices, accumulated exactly in i32.
///
/// 8-lane unrolled like [`dot`]; integer addition is associative, so the
/// result is exact and independent of lane structure — the kernel is
/// deterministic by construction.
#[inline]
fn idot(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0i32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let j = i * 8;
        for l in 0..8 {
            acc[l] += a[j + l] as i32 * b[j + l] as i32;
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for j in chunks * 8..a.len() {
        s += a[j] as i32 * b[j] as i32;
    }
    s
}

/// One activation row, pre-quantized for the fused INT8 product: the
/// inlier features as i8 codes with their absmax scale, and the outlier
/// features gathered as f32. Computed **once per activation row** and
/// shared across every weight row (and every column-parallel segment).
struct QuantizedRow {
    x_in: Vec<i8>,
    xs: f32,
    x_out: Vec<f32>,
}

/// Default outlier threshold: columns whose maximum |w| exceeds this factor
/// times the matrix-wide mean absmax are kept in f32. LLM.int8() thresholds
/// activations at 6.0; for a weight-side proxy the same constant works.
pub const DEFAULT_OUTLIER_FACTOR: f32 = 6.0;

/// An `(out × in)` weight matrix quantized to INT8 row-wise, with optional
/// outlier columns retained in f32.
#[derive(Debug, Clone)]
pub struct QInt8Matrix {
    /// Output features (rows).
    pub rows: usize,
    /// Input features (columns), including outlier columns.
    pub cols: usize,
    /// Quantized codes for non-outlier columns, row-major
    /// `(rows × inlier_cols)`.
    codes: Vec<i8>,
    /// Per-row dequantization scale.
    scales: Vec<f32>,
    /// Sorted indices of outlier columns.
    outlier_cols: Vec<u32>,
    /// f32 weights of the outlier columns, row-major `(rows × n_outliers)`.
    outlier_weights: Vec<f32>,
    /// Indices of the inlier columns (complement of `outlier_cols`).
    inlier_cols: Vec<u32>,
}

impl QInt8Matrix {
    /// Quantize with the default outlier factor.
    pub fn from_f32(w: &Matrix) -> Self {
        Self::from_f32_with_factor(w, DEFAULT_OUTLIER_FACTOR)
    }

    /// Quantize, keeping columns whose absmax exceeds
    /// `factor × mean(column absmax)` in f32. Pass `f32::INFINITY` to
    /// disable the outlier path (pure INT8 — the ablation baseline).
    pub fn from_f32_with_factor(w: &Matrix, factor: f32) -> Self {
        let (rows, cols) = (w.rows, w.cols);
        // Column absmax scan.
        let mut col_absmax = vec![0.0f32; cols];
        for r in 0..rows {
            for (c, &v) in w.row(r).iter().enumerate() {
                col_absmax[c] = col_absmax[c].max(v.abs());
            }
        }
        let mean_absmax = col_absmax.iter().sum::<f32>() / cols.max(1) as f32;
        let threshold = factor * mean_absmax;
        let (outlier_cols, inlier_cols): (Vec<u32>, Vec<u32>) =
            (0..cols as u32).partition(|&c| col_absmax[c as usize] > threshold);

        let n_in = inlier_cols.len();
        let n_out = outlier_cols.len();
        let mut codes = vec![0i8; rows * n_in];
        let mut scales = vec![0.0f32; rows];
        let mut outlier_weights = vec![0.0f32; rows * n_out];
        for r in 0..rows {
            let row = w.row(r);
            let mut absmax = 0.0f32;
            for &c in &inlier_cols {
                absmax = absmax.max(row[c as usize].abs());
            }
            let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
            scales[r] = scale;
            for (j, &c) in inlier_cols.iter().enumerate() {
                codes[r * n_in + j] = (row[c as usize] / scale).round().clamp(-127.0, 127.0) as i8;
            }
            for (j, &c) in outlier_cols.iter().enumerate() {
                outlier_weights[r * n_out + j] = row[c as usize];
            }
        }
        QInt8Matrix { rows, cols, codes, scales, outlier_cols, outlier_weights, inlier_cols }
    }

    /// Number of outlier columns kept in f32.
    pub fn n_outliers(&self) -> usize {
        self.outlier_cols.len()
    }

    /// Storage bytes (codes + scales + outlier weights + index tables).
    pub fn bytes(&self) -> usize {
        self.codes.len()
            + self.scales.len() * 4
            + self.outlier_weights.len() * 4
            + (self.outlier_cols.len() + self.inlier_cols.len()) * 4
    }

    /// Dequantize one weight row into a caller-provided buffer
    /// (`cols` long). Inlier and outlier columns together cover every
    /// column, so the buffer is fully overwritten.
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.cols);
        let n_in = self.inlier_cols.len();
        let n_out = self.outlier_cols.len();
        let s = self.scales[r];
        for (j, &c) in self.inlier_cols.iter().enumerate() {
            out[c as usize] = self.codes[r * n_in + j] as f32 * s;
        }
        for (j, &c) in self.outlier_cols.iter().enumerate() {
            out[c as usize] = self.outlier_weights[r * n_out + j];
        }
    }

    /// Dequantize into a caller-provided matrix (no allocation).
    pub fn to_f32_into(&self, out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (self.rows, self.cols), "shape mismatch");
        for r in 0..self.rows {
            self.dequantize_row_into(r, out.row_mut(r));
        }
    }

    /// Dequantize to f32 (test/inspection path).
    pub fn to_f32(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.to_f32_into(&mut out);
        out
    }

    /// Quantize one activation row for the fused product.
    fn quantize_row(&self, xr: &[f32]) -> QuantizedRow {
        let mut absmax = 0.0f32;
        for &c in &self.inlier_cols {
            absmax = absmax.max(xr[c as usize].abs());
        }
        let xs = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
        let x_in: Vec<i8> = self
            .inlier_cols
            .iter()
            .map(|&c| (xr[c as usize] / xs).round().clamp(-127.0, 127.0) as i8)
            .collect();
        let x_out: Vec<f32> = self.outlier_cols.iter().map(|&c| xr[c as usize]).collect();
        QuantizedRow { x_in, xs, x_out }
    }

    /// One fused output element: exact i32 inlier product + f32 outlier dot.
    #[inline]
    fn fused_elem(&self, q: &QuantizedRow, c: usize) -> f32 {
        let n_in = self.inlier_cols.len();
        let n_out = self.outlier_cols.len();
        let int_part =
            idot(&q.x_in, &self.codes[c * n_in..(c + 1) * n_in]) as f32 * q.xs * self.scales[c];
        let fp_part = if n_out > 0 {
            dot(&q.x_out, &self.outlier_weights[c * n_out..(c + 1) * n_out])
        } else {
            0.0
        };
        int_part + fp_part
    }

    /// `Y = X · Wᵀ` through the mixed INT8 + f32-outlier path, **fused**:
    /// the inlier product accumulates in i32 directly from the packed i8
    /// codes — no dequantized f32 weight row is ever materialized.
    ///
    /// Activations are quantized per row to INT8 (absmax) exactly once and
    /// shared across all weight rows. The same two-stream structure as the
    /// LLM.int8() CUDA kernels. Deterministic for any thread count or
    /// dispatch path (the i32 stream is exact; the f32 outlier stream has a
    /// fixed per-element order).
    pub fn matmul_nt(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.cols, "inner dimensions must match");
        let (m, n) = (x.rows, self.rows);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let threads = rayon::current_num_threads();
        // Quantize every activation row up front (once per row, shared by
        // all dispatch paths and weight rows).
        let qrows: Vec<QuantizedRow> = (0..m).map(|r| self.quantize_row(x.row(r))).collect();
        // Weight-row-outer / batch-row-inner loop order: each packed code
        // row is streamed from memory once and reused across the whole
        // batch block (the codes are the dominant traffic). Loop order
        // cannot change the bits — each element depends only on its own
        // (activation row, weight row) pair.
        let fill_block = |rows: std::ops::Range<usize>, blk: &mut [f32]| {
            for c in 0..n {
                for (i, r) in rows.clone().enumerate() {
                    blk[i * n + c] = self.fused_elem(&qrows[r], c);
                }
            }
        };
        let dispatch = policy::matmul_int8_nt(m, n, self.cols, threads);
        #[cfg(feature = "trace")]
        let _t = edgellm_trace::kernels::timer(
            crate::matmul::instrument::pick(
                dispatch,
                "qint8_nt.serial",
                "qint8_nt.rows",
                "qint8_nt.cols",
            ),
            (m * n) as u64 * self.cols as u64,
        );
        match dispatch {
            policy::Dispatch::Serial => fill_block(0..m, out.as_mut_slice()),
            policy::Dispatch::RowParallel => {
                let rpu = m.div_ceil(threads).clamp(1, 8);
                out.as_mut_slice().par_chunks_mut(n * rpu).enumerate().for_each(|(b, blk)| {
                    let r0 = b * rpu;
                    fill_block(r0..r0 + blk.len() / n, blk);
                });
            }
            policy::Dispatch::ColParallel => {
                for (r, q) in qrows.iter().enumerate() {
                    out.row_mut(r).par_chunks_mut(policy::COL_BLOCK).enumerate().for_each(
                        |(cb, seg)| {
                            let c0 = cb * policy::COL_BLOCK;
                            for (j, o) in seg.iter_mut().enumerate() {
                                *o = self.fused_elem(q, c0 + j);
                            }
                        },
                    );
                }
            }
        }
        out
    }

    /// Reference dequantize-then-dot product: each weight row is expanded
    /// to f32 in a single reused scratch buffer, then dotted against the
    /// full-precision activations. Kept for benchmarking the fusion win and
    /// for accuracy cross-checks (this path does *not* quantize
    /// activations).
    pub fn matmul_nt_dequant(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.cols, "inner dimensions must match");
        let mut out = Matrix::zeros(x.rows, self.rows);
        let mut wrow = vec![0.0f32; self.cols];
        for c in 0..self.rows {
            self.dequantize_row_into(c, &mut wrow);
            for r in 0..x.rows {
                out.set(r, c, dot(x.row(r), &wrow));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let w = Matrix::rand_kaiming(16, 64, 1);
        let q = QInt8Matrix::from_f32(&w);
        let back = q.to_f32();
        for r in 0..w.rows {
            let absmax = w.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let step = absmax / 127.0;
            for (a, b) in w.row(r).iter().zip(back.row(r)) {
                assert!((a - b).abs() <= 0.51 * step, "{a} vs {b} step {step}");
            }
        }
    }

    #[test]
    fn outlier_columns_are_exact() {
        // Plant a huge column; it must be detected and stored losslessly.
        let mut w = Matrix::rand_kaiming(8, 32, 2);
        for r in 0..8 {
            w.set(r, 5, 40.0 + r as f32);
        }
        let q = QInt8Matrix::from_f32(&w);
        assert!(q.n_outliers() >= 1);
        let back = q.to_f32();
        for r in 0..8 {
            assert_eq!(back.get(r, 5), 40.0 + r as f32);
        }
    }

    #[test]
    fn disabled_outliers_keeps_all_columns_quantized() {
        let mut w = Matrix::rand_kaiming(8, 32, 3);
        w.set(0, 5, 100.0);
        let q = QInt8Matrix::from_f32_with_factor(&w, f32::INFINITY);
        assert_eq!(q.n_outliers(), 0);
        // Without the outlier path the planted column wrecks that row's
        // precision for all other entries (the LLM.int8() motivation).
        let back = q.to_f32();
        let err: f32 =
            w.row(0).iter().zip(back.row(0)).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max);
        assert!(err > 0.1, "expected visible degradation, max err {err}");
    }

    #[test]
    fn qmatmul_close_to_f32_matmul() {
        let x = Matrix::rand_kaiming(4, 128, 4);
        let w = Matrix::rand_kaiming(16, 128, 5);
        let exact = crate::matmul::matmul_nt(&x, &w);
        let approx = QInt8Matrix::from_f32(&w).matmul_nt(&x);
        for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((a - b).abs() < 0.05 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn outlier_decomposition_beats_pure_int8_with_planted_outliers() {
        let mut w = Matrix::rand_kaiming(16, 128, 6);
        for r in 0..16 {
            w.set(r, 7, 30.0);
            w.set(r, 99, -25.0);
        }
        let x = Matrix::rand_kaiming(4, 128, 7);
        let exact = crate::matmul::matmul_nt(&x, &w);
        let err = |m: &Matrix| -> f32 {
            m.as_slice().iter().zip(exact.as_slice()).map(|(a, b)| (a - b).abs()).sum::<f32>()
        };
        let with = err(&QInt8Matrix::from_f32(&w).matmul_nt(&x));
        let without = err(&QInt8Matrix::from_f32_with_factor(&w, f32::INFINITY).matmul_nt(&x));
        assert!(with < without * 0.5, "with={with} without={without}");
    }

    #[test]
    fn storage_is_about_a_quarter_of_f32() {
        let w = Matrix::rand_kaiming(64, 256, 8);
        let q = QInt8Matrix::from_f32(&w);
        let f32_bytes = w.len() * 4;
        assert!(q.bytes() < f32_bytes / 3, "{} vs {}", q.bytes(), f32_bytes);
    }

    #[test]
    fn fused_close_to_dequant_reference() {
        // The fused path additionally quantizes activations, so the two
        // agree only to INT8 precision — but must stay close.
        let x = Matrix::rand_kaiming(3, 256, 10);
        let w = Matrix::rand_kaiming(24, 256, 11);
        let q = QInt8Matrix::from_f32(&w);
        let fused = q.matmul_nt(&x);
        let reference = q.matmul_nt_dequant(&x);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 0.05 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn to_f32_into_matches_to_f32() {
        let w = Matrix::rand_kaiming(6, 40, 12);
        let q = QInt8Matrix::from_f32(&w);
        let mut buf = Matrix::zeros(6, 40);
        q.to_f32_into(&mut buf);
        assert_eq!(buf.as_slice(), q.to_f32().as_slice());
    }

    #[test]
    fn zero_matrix_is_handled() {
        let w = Matrix::zeros(4, 8);
        let q = QInt8Matrix::from_f32(&w);
        let x = Matrix::rand_kaiming(2, 8, 9);
        let y = q.matmul_nt(&x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }
}
