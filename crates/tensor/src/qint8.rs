//! Row-wise absmax INT8 weights with outlier-column decomposition —
//! the `LLM.int8()` scheme (Dettmers et al., NeurIPS 2022) the paper uses
//! via BitsAndBytes.
//!
//! Each weight row is quantized as `w ≈ scale · q` with `q ∈ [−127, 127]`
//! and `scale = absmax/127`, **except** for a small set of *outlier columns*
//! (input features with unusually large magnitude) which stay in f32 and are
//! multiplied separately. This mixed decomposition is what preserves
//! accuracy at 8 bits — and its extra kernel launches/bookkeeping are the
//! mechanism behind the paper's finding that INT8 *slows down* small models
//! (§3.3).

use crate::matmul::dot;
use crate::tensor::Matrix;
use rayon::prelude::*;

/// Default outlier threshold: columns whose maximum |w| exceeds this factor
/// times the matrix-wide mean absmax are kept in f32. LLM.int8() thresholds
/// activations at 6.0; for a weight-side proxy the same constant works.
pub const DEFAULT_OUTLIER_FACTOR: f32 = 6.0;

/// An `(out × in)` weight matrix quantized to INT8 row-wise, with optional
/// outlier columns retained in f32.
#[derive(Debug, Clone)]
pub struct QInt8Matrix {
    /// Output features (rows).
    pub rows: usize,
    /// Input features (columns), including outlier columns.
    pub cols: usize,
    /// Quantized codes for non-outlier columns, row-major
    /// `(rows × inlier_cols)`.
    codes: Vec<i8>,
    /// Per-row dequantization scale.
    scales: Vec<f32>,
    /// Sorted indices of outlier columns.
    outlier_cols: Vec<u32>,
    /// f32 weights of the outlier columns, row-major `(rows × n_outliers)`.
    outlier_weights: Vec<f32>,
    /// Indices of the inlier columns (complement of `outlier_cols`).
    inlier_cols: Vec<u32>,
}

impl QInt8Matrix {
    /// Quantize with the default outlier factor.
    pub fn from_f32(w: &Matrix) -> Self {
        Self::from_f32_with_factor(w, DEFAULT_OUTLIER_FACTOR)
    }

    /// Quantize, keeping columns whose absmax exceeds
    /// `factor × mean(column absmax)` in f32. Pass `f32::INFINITY` to
    /// disable the outlier path (pure INT8 — the ablation baseline).
    pub fn from_f32_with_factor(w: &Matrix, factor: f32) -> Self {
        let (rows, cols) = (w.rows, w.cols);
        // Column absmax scan.
        let mut col_absmax = vec![0.0f32; cols];
        for r in 0..rows {
            for (c, &v) in w.row(r).iter().enumerate() {
                col_absmax[c] = col_absmax[c].max(v.abs());
            }
        }
        let mean_absmax = col_absmax.iter().sum::<f32>() / cols.max(1) as f32;
        let threshold = factor * mean_absmax;
        let (outlier_cols, inlier_cols): (Vec<u32>, Vec<u32>) =
            (0..cols as u32).partition(|&c| col_absmax[c as usize] > threshold);

        let n_in = inlier_cols.len();
        let n_out = outlier_cols.len();
        let mut codes = vec![0i8; rows * n_in];
        let mut scales = vec![0.0f32; rows];
        let mut outlier_weights = vec![0.0f32; rows * n_out];
        for r in 0..rows {
            let row = w.row(r);
            let mut absmax = 0.0f32;
            for &c in &inlier_cols {
                absmax = absmax.max(row[c as usize].abs());
            }
            let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
            scales[r] = scale;
            for (j, &c) in inlier_cols.iter().enumerate() {
                codes[r * n_in + j] = (row[c as usize] / scale).round().clamp(-127.0, 127.0) as i8;
            }
            for (j, &c) in outlier_cols.iter().enumerate() {
                outlier_weights[r * n_out + j] = row[c as usize];
            }
        }
        QInt8Matrix { rows, cols, codes, scales, outlier_cols, outlier_weights, inlier_cols }
    }

    /// Number of outlier columns kept in f32.
    pub fn n_outliers(&self) -> usize {
        self.outlier_cols.len()
    }

    /// Storage bytes (codes + scales + outlier weights + index tables).
    pub fn bytes(&self) -> usize {
        self.codes.len()
            + self.scales.len() * 4
            + self.outlier_weights.len() * 4
            + (self.outlier_cols.len() + self.inlier_cols.len()) * 4
    }

    /// Dequantize to f32 (test/inspection path).
    pub fn to_f32(&self) -> Matrix {
        let n_in = self.inlier_cols.len();
        let n_out = self.outlier_cols.len();
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            for (j, &c) in self.inlier_cols.iter().enumerate() {
                out.set(r, c as usize, self.codes[r * n_in + j] as f32 * s);
            }
            for (j, &c) in self.outlier_cols.iter().enumerate() {
                out.set(r, c as usize, self.outlier_weights[r * n_out + j]);
            }
        }
        out
    }

    /// `Y = X · Wᵀ` through the mixed INT8 + f32-outlier path.
    ///
    /// Activations are themselves quantized per row to INT8 (absmax), the
    /// inlier product accumulates in i32, and the outlier product runs in
    /// f32 — the same two-stream structure as the CUDA kernels.
    pub fn matmul_nt(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.cols, "inner dimensions must match");
        let n_in = self.inlier_cols.len();
        let n_out = self.outlier_cols.len();
        let n = self.rows;
        let mut out = Matrix::zeros(x.rows, n);

        out.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(r, or)| {
            let xr = x.row(r);
            // Gather + quantize the activation row (inlier part).
            let mut x_in = vec![0i8; n_in];
            let mut absmax = 0.0f32;
            for &c in &self.inlier_cols {
                absmax = absmax.max(xr[c as usize].abs());
            }
            let xs = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
            for (j, &c) in self.inlier_cols.iter().enumerate() {
                x_in[j] = (xr[c as usize] / xs).round().clamp(-127.0, 127.0) as i8;
            }
            // Gather the outlier activation features (f32 stream).
            let x_out: Vec<f32> = self.outlier_cols.iter().map(|&c| xr[c as usize]).collect();

            for (c, o) in or.iter_mut().enumerate() {
                let codes = &self.codes[c * n_in..(c + 1) * n_in];
                let mut acc: i32 = 0;
                for (a, b) in x_in.iter().zip(codes) {
                    acc += (*a as i32) * (*b as i32);
                }
                let int_part = acc as f32 * xs * self.scales[c];
                let fp_part = if n_out > 0 {
                    dot(&x_out, &self.outlier_weights[c * n_out..(c + 1) * n_out])
                } else {
                    0.0
                };
                *o = int_part + fp_part;
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let w = Matrix::rand_kaiming(16, 64, 1);
        let q = QInt8Matrix::from_f32(&w);
        let back = q.to_f32();
        for r in 0..w.rows {
            let absmax = w.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let step = absmax / 127.0;
            for (a, b) in w.row(r).iter().zip(back.row(r)) {
                assert!((a - b).abs() <= 0.51 * step, "{a} vs {b} step {step}");
            }
        }
    }

    #[test]
    fn outlier_columns_are_exact() {
        // Plant a huge column; it must be detected and stored losslessly.
        let mut w = Matrix::rand_kaiming(8, 32, 2);
        for r in 0..8 {
            w.set(r, 5, 40.0 + r as f32);
        }
        let q = QInt8Matrix::from_f32(&w);
        assert!(q.n_outliers() >= 1);
        let back = q.to_f32();
        for r in 0..8 {
            assert_eq!(back.get(r, 5), 40.0 + r as f32);
        }
    }

    #[test]
    fn disabled_outliers_keeps_all_columns_quantized() {
        let mut w = Matrix::rand_kaiming(8, 32, 3);
        w.set(0, 5, 100.0);
        let q = QInt8Matrix::from_f32_with_factor(&w, f32::INFINITY);
        assert_eq!(q.n_outliers(), 0);
        // Without the outlier path the planted column wrecks that row's
        // precision for all other entries (the LLM.int8() motivation).
        let back = q.to_f32();
        let err: f32 =
            w.row(0).iter().zip(back.row(0)).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max);
        assert!(err > 0.1, "expected visible degradation, max err {err}");
    }

    #[test]
    fn qmatmul_close_to_f32_matmul() {
        let x = Matrix::rand_kaiming(4, 128, 4);
        let w = Matrix::rand_kaiming(16, 128, 5);
        let exact = crate::matmul::matmul_nt(&x, &w);
        let approx = QInt8Matrix::from_f32(&w).matmul_nt(&x);
        for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((a - b).abs() < 0.05 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn outlier_decomposition_beats_pure_int8_with_planted_outliers() {
        let mut w = Matrix::rand_kaiming(16, 128, 6);
        for r in 0..16 {
            w.set(r, 7, 30.0);
            w.set(r, 99, -25.0);
        }
        let x = Matrix::rand_kaiming(4, 128, 7);
        let exact = crate::matmul::matmul_nt(&x, &w);
        let err = |m: &Matrix| -> f32 {
            m.as_slice().iter().zip(exact.as_slice()).map(|(a, b)| (a - b).abs()).sum::<f32>()
        };
        let with = err(&QInt8Matrix::from_f32(&w).matmul_nt(&x));
        let without = err(&QInt8Matrix::from_f32_with_factor(&w, f32::INFINITY).matmul_nt(&x));
        assert!(with < without * 0.5, "with={with} without={without}");
    }

    #[test]
    fn storage_is_about_a_quarter_of_f32() {
        let w = Matrix::rand_kaiming(64, 256, 8);
        let q = QInt8Matrix::from_f32(&w);
        let f32_bytes = w.len() * 4;
        assert!(q.bytes() < f32_bytes / 3, "{} vs {}", q.bytes(), f32_bytes);
    }

    #[test]
    fn zero_matrix_is_handled() {
        let w = Matrix::zeros(4, 8);
        let q = QInt8Matrix::from_f32(&w);
        let x = Matrix::rand_kaiming(2, 8, 9);
        let y = q.matmul_nt(&x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }
}
