//! Token sampling from logits.

use rand::Rng;

/// Index of the maximum logit (greedy decoding). Ties break to the lower
/// index, making decoding fully deterministic.
pub fn argmax(logits: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in logits.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Sample from the top-`k` logits after a temperature scale.
///
/// # Panics
/// If `k == 0` or `logits` is empty.
pub fn sample_top_k<R: Rng>(logits: &[f32], k: usize, temperature: f32, rng: &mut R) -> usize {
    assert!(k > 0 && !logits.is_empty());
    let k = k.min(logits.len());
    // Partial selection of the k largest logits.
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        logits[b].partial_cmp(&logits[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let top = &idx[..k];
    let t = temperature.max(1e-6);
    let max = top.iter().map(|&i| logits[i]).fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f32> = top.iter().map(|&i| ((logits[i] - max) / t).exp()).collect();
    let total: f32 = weights.iter().sum();
    let mut u = rng.gen::<f32>() * total;
    for (j, &w) in weights.iter().enumerate() {
        if u < w {
            return top[j];
        }
        u -= w;
    }
    top[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn argmax_finds_peak_and_breaks_ties_low() {
        assert_eq!(argmax(&[0.1, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0, 5.0, 1.0]), 0);
    }

    #[test]
    fn top_k_only_returns_top_candidates() {
        let logits = [0.0, 10.0, 9.5, -5.0, 1.0];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = sample_top_k(&logits, 2, 1.0, &mut rng);
            assert!(s == 1 || s == 2, "sampled {s}");
        }
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let logits = [0.0, 2.0, 1.9];
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..200).filter(|_| sample_top_k(&logits, 3, 0.01, &mut rng) == 1).count();
        assert!(hits > 195, "greedy hits {hits}");
    }

    #[test]
    fn k_larger_than_vocab_is_clamped() {
        let logits = [1.0, 2.0];
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_top_k(&logits, 10, 1.0, &mut rng);
        assert!(s < 2);
    }
}
