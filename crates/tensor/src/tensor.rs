//! Row-major `f32` matrix type.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense row-major `f32` matrix.
///
/// The workhorse of the executable stack: activations, gradients and
/// full-precision weights are all `Matrix`. Storage is a single contiguous
/// `Vec<f32>` so rows are cache-friendly slices.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix from an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Kaiming-uniform random init (the usual `Linear` default), seeded.
    pub fn rand_kaiming(rows: usize, cols: usize, seed: u64) -> Self {
        let bound = (1.0 / cols as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new_inclusive(-bound, bound);
        let data = (0..rows * cols).map(|_| dist.sample(&mut rng)).collect();
        Matrix { rows, cols, data }
    }

    /// Gaussian random init with the given standard deviation, seeded.
    pub fn rand_normal(rows: usize, cols: usize, std: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Box–Muller from two uniforms: avoids a rand_distr dependency.
        let mut data = Vec::with_capacity(rows * cols);
        let uni = rand::distributions::Uniform::new(f32::EPSILON, 1.0f32);
        while data.len() < rows * cols {
            let u1: f32 = uni.sample(&mut rng);
            let u2: f32 = uni.sample(&mut rng);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Matrix { rows, cols, data }
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The whole backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole backing buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Fill with zeros in place (for gradient buffers).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// In-place scaled add: `self += alpha * other` (used by optimizers).
    ///
    /// # Panics
    /// If shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.len(), 6);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::rand_kaiming(5, 7, 1);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        assert_eq!(Matrix::rand_kaiming(4, 4, 42), Matrix::rand_kaiming(4, 4, 42));
        assert_ne!(Matrix::rand_kaiming(4, 4, 42), Matrix::rand_kaiming(4, 4, 43));
    }

    #[test]
    fn normal_init_has_requested_scale() {
        let m = Matrix::rand_normal(100, 100, 0.5, 7);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        let var: f32 =
            m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 10.0, 10.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 7.0, 8.0]);
    }
}
