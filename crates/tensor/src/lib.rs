//! # edgellm-tensor — real, parallel CPU tensor kernels
//!
//! A small dense-linear-algebra substrate used by the *executable* half of
//! this reproduction: the trainable neural LMs (`edgellm-nn`) that produce
//! the paper's Table 3 perplexity results with genuine arithmetic, and the
//! kernel microbenchmarks that demonstrate quantization overheads on a real
//! code path.
//!
//! Everything is `f32` row-major with [rayon]-parallel matrix products, plus
//! three reduced-precision weight formats mirroring what the paper runs
//! through BitsAndBytes on device:
//!
//! * [`mod@f16`] — bit-exact IEEE binary16 storage with round-to-nearest-even;
//! * [`qint8`] — row-wise absmax INT8 with **outlier-column decomposition**
//!   (the LLM.int8() scheme of Dettmers et al., the paper's INT8 tool);
//! * [`qint4`] — block-wise 4-bit quantile quantization (NF4-style).
//!
//! The quantized formats provide real matrix-vector/matrix products that pay
//! the same structural costs as the device kernels: extra dequantization
//! work per weight and per-block scale lookups.

pub mod f16;
pub mod matmul;
pub mod ops;
pub mod qint4;
pub mod qint8;
pub mod sampling;
pub mod tensor;

pub use f16::{f16_to_f32, f32_to_f16, F16Matrix};
pub use qint4::QInt4Matrix;
pub use qint8::QInt8Matrix;
pub use tensor::Matrix;
