//! Parallel matrix products.
//!
//! The layout convention across the workspace is **NT**: activations are
//! `(batch × in)` and weights are stored `(out × in)`, so a forward pass is
//! `Y = X · Wᵀ` — both operands are traversed along contiguous rows, which
//! keeps the inner loop a pure slice dot product that LLVM vectorizes.

use crate::tensor::Matrix;
use rayon::prelude::*;

/// Below this output-element count the rayon fork/join overhead outweighs
/// the work; fall back to the serial kernel.
const PAR_THRESHOLD: usize = 16 * 1024;

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // 4-way unrolled accumulation: faster and more numerically stable than
    // a single serial accumulator.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// `Y = X · Wᵀ`: `X` is `(m × k)`, `w` is `(n × k)`, result is `(m × n)`.
///
/// Parallelized over rows of the output when the problem is large enough.
pub fn matmul_nt(x: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(x.cols, w.cols, "inner dimensions must match (NT layout)");
    let (m, n) = (x.rows, w.rows);
    let mut out = Matrix::zeros(m, n);
    if m * n < PAR_THRESHOLD {
        for r in 0..m {
            let xr = x.row(r);
            let or = out.row_mut(r);
            for (c, o) in or.iter_mut().enumerate() {
                *o = dot(xr, w.row(c));
            }
        }
    } else if m >= rayon::current_num_threads() {
        out.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(r, or)| {
            let xr = x.row(r);
            for (c, o) in or.iter_mut().enumerate() {
                *o = dot(xr, w.row(c));
            }
        });
    } else {
        // Few rows, many columns (e.g. single-token decode against a large
        // vocabulary head): parallelize along the output columns instead.
        for r in 0..m {
            let xr = x.row(r);
            let or = out.row_mut(r);
            or.par_iter_mut().enumerate().for_each(|(c, o)| {
                *o = dot(xr, w.row(c));
            });
        }
    }
    out
}

/// `Y = X · W`: `X` is `(m × k)`, `w` is `(k × n)`, result `(m × n)`.
///
/// Used where the weight naturally lives untransposed (e.g. backprop
/// through a linear layer). Row-major `W` makes the inner loop strided, so
/// this accumulates row-by-row instead.
pub fn matmul_nn(x: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(x.cols, w.rows, "inner dimensions must match (NN layout)");
    let (m, n) = (x.rows, w.cols);
    let mut out = Matrix::zeros(m, n);
    let body = |r: usize, or: &mut [f32]| {
        let xr = x.row(r);
        for (kk, &xv) in xr.iter().enumerate() {
            if xv != 0.0 {
                let wr = w.row(kk);
                for c in 0..n {
                    or[c] += xv * wr[c];
                }
            }
        }
    };
    if m * n < PAR_THRESHOLD {
        for r in 0..m {
            body(r, out.row_mut(r));
        }
    } else {
        out.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(r, or)| body(r, or));
    }
    out
}

/// `Y = Xᵀ · W`: `X` is `(k × m)`, `w` is `(k × n)`, result `(m × n)`.
/// The gradient-of-weights shape in backprop (`dW = dYᵀ · X`).
pub fn matmul_tn(x: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(x.rows, w.rows, "inner dimensions must match (TN layout)");
    let (m, n) = (x.cols, w.cols);
    let mut out = Matrix::zeros(m, n);
    // Accumulate outer products row-by-row of the shared k dimension.
    // Parallelism: split over output rows via a transposed view of x.
    let xt = x.transposed(); // (m × k)
    let body = |r: usize, or: &mut [f32]| {
        let xr = xt.row(r);
        for (kk, &xv) in xr.iter().enumerate() {
            if xv != 0.0 {
                let wr = w.row(kk);
                for c in 0..n {
                    or[c] += xv * wr[c];
                }
            }
        }
    };
    if m * n < PAR_THRESHOLD {
        for r in 0..m {
            body(r, out.row_mut(r));
        }
    } else {
        out.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(r, or)| body(r, or));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_nt(x: &Matrix, w: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows, w.rows);
        for r in 0..x.rows {
            for c in 0..w.rows {
                let mut s = 0.0;
                for k in 0..x.cols {
                    s += x.get(r, k) * w.get(c, k);
                }
                out.set(r, c, s);
            }
        }
        out
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.cols, b.cols);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn nt_matches_naive_small() {
        let x = Matrix::rand_kaiming(7, 13, 1);
        let w = Matrix::rand_kaiming(5, 13, 2);
        assert_close(&matmul_nt(&x, &w), &naive_nt(&x, &w), 1e-5);
    }

    #[test]
    fn nt_matches_naive_parallel_path() {
        let x = Matrix::rand_kaiming(64, 96, 3);
        let w = Matrix::rand_kaiming(512, 96, 4);
        assert_close(&matmul_nt(&x, &w), &naive_nt(&x, &w), 1e-4);
    }

    #[test]
    fn nt_single_row_wide_output_path() {
        let x = Matrix::rand_kaiming(1, 128, 5);
        let w = Matrix::rand_kaiming(40_000, 128, 6);
        let got = matmul_nt(&x, &w);
        let want = naive_nt(&x, &w);
        assert_close(&got, &want, 1e-4);
    }

    #[test]
    fn nn_equals_nt_against_transpose() {
        let x = Matrix::rand_kaiming(9, 17, 7);
        let w = Matrix::rand_kaiming(17, 11, 8);
        let got = matmul_nn(&x, &w);
        let want = matmul_nt(&x, &w.transposed());
        assert_close(&got, &want, 1e-5);
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let x = Matrix::rand_kaiming(17, 9, 9);
        let w = Matrix::rand_kaiming(17, 11, 10);
        let got = matmul_tn(&x, &w);
        let want = matmul_nn(&x.transposed(), &w);
        assert_close(&got, &want, 1e-5);
    }

    #[test]
    fn dot_handles_tail() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(dot(&a, &b), 30.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn nt_rejects_shape_mismatch() {
        let _ = matmul_nt(&Matrix::zeros(2, 3), &Matrix::zeros(2, 4));
    }
}
