//! Parallel, cache-blocked matrix products.
//!
//! The layout convention across the workspace is **NT**: activations are
//! `(batch × in)` and weights are stored `(out × in)`, so a forward pass is
//! `Y = X · Wᵀ` — both operands are traversed along contiguous rows, which
//! keeps the inner loop a pure slice dot product that LLVM vectorizes.
//!
//! Two structural properties are load-bearing for the rest of the repo:
//!
//! 1. **Per-element determinism.** Every output element is accumulated in
//!    the same floating-point order — the 8-lane order of [`dot`] —
//!    regardless of batch size, dispatch path (serial / row-parallel /
//!    column-parallel) or thread count. This is what makes a batched
//!    prefill bit-identical to token-by-token decode in `edgellm-nn`, and
//!    every kernel bit-identical across `EDGELLM_THREADS` settings.
//! 2. **Cache blocking.** The NT kernel walks the weight matrix in
//!    4-row register tiles and the activations in [`policy::ROW_BLOCK`]-row
//!    blocks, so each weight tile loaded from memory is reused across the
//!    whole activation block instead of being re-streamed per row.

use crate::tensor::Matrix;
use rayon::prelude::*;

/// Serial/parallel dispatch policy for the matmul kernels.
///
/// One policy function per kernel family, because the three loop shapes
/// have different arithmetic intensity and therefore different break-even
/// points against the pool's fork/join overhead (one scoped-thread spawn
/// per worker, ~10–30 µs each on a small ARM/x86 core):
///
/// * the NT dot-product kernel does ~2 FLOPs per multiply-accumulate with
///   fully contiguous streams;
/// * the NN/TN axpy kernels re-stream the output row per nonzero and skip
///   zero activations, so their effective work per (m·n·k) is lower;
/// * the quantized kernels (INT8/NF4/F16 fused products) pay an extra
///   decode cost per weight element, so parallelism pays off earlier.
///
/// The constants were derived by timing `bench_kernels` on the dev
/// container (scalar f32 throughput ≈ 2–4 GFLOP/s; see EXPERIMENTS.md):
/// parallelism starts winning once each spawned worker gets at least a few
/// hundred microseconds of arithmetic, i.e. ≥ ~256k MACs for the plain f32
/// kernel and ≥ ~64k weight-element decodes for the quantized ones.
pub mod policy {
    /// How a kernel invocation should be executed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Dispatch {
        /// Run on the calling thread (problem too small to split).
        Serial,
        /// Split the output across row blocks, one parallel unit per block.
        RowParallel,
        /// Few output rows but many columns (single-token decode against a
        /// wide projection): split each output row across column blocks.
        ColParallel,
    }

    /// Activation rows per parallel unit / cache block in the NT kernel.
    /// 16 rows × 4 KiB-ish per row keeps a block resident in L2 while a
    /// weight tile streams through L1.
    pub const ROW_BLOCK: usize = 16;

    /// Output columns per parallel unit on the column-parallel path; a
    /// multiple of the 4-wide register tile.
    pub const COL_BLOCK: usize = 512;

    /// Minimum multiply-accumulates per spawned worker for the f32 NT
    /// kernel (≈ 100–250 µs of work at measured scalar throughput).
    pub const NT_MIN_MACS_PER_THREAD: usize = 256 * 1024;

    /// Minimum multiply-accumulates per worker for the NN/TN axpy kernels.
    /// Their inner loop is cheaper per (m·n·k) than NT's and skips zero
    /// activations, so the bar is lower.
    pub const AXPY_MIN_MACS_PER_THREAD: usize = 192 * 1024;

    /// Minimum weight-element visits per worker for the fused quantized
    /// kernels (each visit also pays a decode: codebook lookup, scale
    /// multiply or f16 conversion), so parallelism amortizes sooner.
    pub const QUANT_MIN_ELEMS_PER_THREAD: usize = 64 * 1024;

    /// Dispatch for `matmul_nt` at shape `(m × k) · (n × k)ᵀ`.
    pub fn matmul_nt(m: usize, n: usize, k: usize, threads: usize) -> Dispatch {
        let macs = m.saturating_mul(n).saturating_mul(k.max(1));
        if threads <= 1 || macs < 2 * NT_MIN_MACS_PER_THREAD {
            return Dispatch::Serial;
        }
        let row_blocks = m.div_ceil(ROW_BLOCK);
        if row_blocks >= threads {
            Dispatch::RowParallel
        } else if n >= 2 * COL_BLOCK {
            Dispatch::ColParallel
        } else if m >= 2 {
            // A modest row split still beats serial on mid-size batches.
            Dispatch::RowParallel
        } else {
            Dispatch::Serial
        }
    }

    /// Dispatch for the NN/TN axpy kernels at `(m × n)` output with shared
    /// dimension `k`. Their parallel axis is output rows only: a column
    /// split would tear each `or[c] += xv · wr[c]` pass into strided
    /// sub-slices and lose the contiguous streaming the kernel is built on.
    pub fn matmul_axpy(m: usize, n: usize, k: usize, threads: usize) -> Dispatch {
        let macs = m.saturating_mul(n).saturating_mul(k.max(1));
        if threads <= 1 || m < 2 || macs < 2 * AXPY_MIN_MACS_PER_THREAD {
            Dispatch::Serial
        } else {
            Dispatch::RowParallel
        }
    }

    /// Dispatch for the fused quantized NT kernels (`QInt4Matrix`,
    /// `F16Matrix`) at `(m × k) · (n × k)ᵀ`.
    pub fn matmul_quant_nt(m: usize, n: usize, k: usize, threads: usize) -> Dispatch {
        let elems = m.saturating_mul(n).saturating_mul(k.max(1));
        if threads <= 1 || elems < 2 * QUANT_MIN_ELEMS_PER_THREAD {
            Dispatch::Serial
        } else if m >= threads {
            Dispatch::RowParallel
        } else if n >= 2 {
            // Decode shapes (m = 1) split the single output row across
            // weight-row blocks.
            Dispatch::ColParallel
        } else {
            Dispatch::Serial
        }
    }

    /// Dispatch for the fused INT8 two-stream kernel (`QInt8Matrix`),
    /// separated from [`matmul_quant_nt`] because its column-parallel
    /// decode path *loses*: `BENCH_kernels.json` pins int8_fused at
    /// 0.66× parallel speedup at m = 1 on both the Phi-2 and Llama-8B
    /// decode shapes, while the f16/int4 fused kernels hold ≥ 1.0×
    /// there. The i32 inlier product is so much cheaper per element than
    /// a codebook or f16 decode that the column split's per-block
    /// overhead (fork/join plus re-touching the quantized activation
    /// row from every worker) dominates the arithmetic it divides.
    /// Decode shapes therefore stay serial; batched shapes keep the row
    /// split, which does win (1.05× at m = 32).
    pub fn matmul_int8_nt(m: usize, n: usize, k: usize, threads: usize) -> Dispatch {
        let elems = m.saturating_mul(n).saturating_mul(k.max(1));
        if threads <= 1 || m < 2 || elems < 2 * QUANT_MIN_ELEMS_PER_THREAD {
            Dispatch::Serial
        } else {
            Dispatch::RowParallel
        }
    }
}

/// Static kernel-variant labels for the `trace` feature's per-variant
/// counters (`kernel.<variant>.{calls, macs, ns}`). Compiled out — along
/// with every timer call site — in the default build.
#[cfg(feature = "trace")]
pub(crate) mod instrument {
    use super::policy::Dispatch;

    /// Pick the `<base>.<path>` label matching a dispatch decision.
    pub(crate) fn pick(
        d: Dispatch,
        serial: &'static str,
        rows: &'static str,
        cols: &'static str,
    ) -> &'static str {
        match d {
            Dispatch::Serial => serial,
            Dispatch::RowParallel => rows,
            Dispatch::ColParallel => cols,
        }
    }
}

/// Dot product of two equal-length slices.
///
/// 8-lane unrolled accumulation: faster and more numerically stable than a
/// single serial accumulator. Every matmul kernel in this crate reproduces
/// exactly this accumulation order per output element (see the module
/// docs), so `dot` is the bit-level reference for all of them.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let j = i * 8;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
        acc[4] += a[j + 4] * b[j + 4];
        acc[5] += a[j + 5] * b[j + 5];
        acc[6] += a[j + 6] * b[j + 6];
        acc[7] += a[j + 7] * b[j + 7];
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for j in chunks * 8..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// Register-tiled micro-kernel: four dot products of `x` against four
/// weight rows in one pass, writing `out[0..4]`.
///
/// Each `x` element is loaded once and multiplied into all four tiles
/// (4× less activation load traffic than four separate `dot` calls), while
/// per-element accumulation order stays **bit-identical** to [`dot`]: lane
/// `l` accumulates `x[j+l]·w[j+l]` in ascending `j`, lanes combine in the
/// same fixed tree, and the tail runs serially.
#[inline]
fn dot_x4(x: &[f32], w0: &[f32], w1: &[f32], w2: &[f32], w3: &[f32], out: &mut [f32]) {
    let k = x.len();
    let chunks = k / 8;
    let mut acc = [[0.0f32; 8]; 4];
    for i in 0..chunks {
        let j = i * 8;
        for l in 0..8 {
            let xv = x[j + l];
            acc[0][l] += xv * w0[j + l];
            acc[1][l] += xv * w1[j + l];
            acc[2][l] += xv * w2[j + l];
            acc[3][l] += xv * w3[j + l];
        }
    }
    for (o, (a, w)) in out.iter_mut().zip(acc.iter().zip([w0, w1, w2, w3])) {
        let mut s = ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
        for j in chunks * 8..k {
            s += x[j] * w[j];
        }
        *o = s;
    }
}

/// The shared NT tiling helper: fill an output tile where
/// `out[r·stride + j] = dot(x.row(r0 + r), w.row(c0 + j))` for
/// `r < rows`, `j < cols`.
///
/// Loop order is weight-tile outer, activation-row inner, so a 4-row weight
/// tile is loaded once and reused across the whole activation block.
#[allow(clippy::too_many_arguments)] // internal kernel: tile coordinates are clearer flat than bundled
fn nt_tile(
    x: &Matrix,
    w: &Matrix,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    out: &mut [f32],
    stride: usize,
) {
    let mut j = 0;
    while j + 4 <= cols {
        let c = c0 + j;
        let (w0, w1, w2, w3) = (w.row(c), w.row(c + 1), w.row(c + 2), w.row(c + 3));
        for r in 0..rows {
            let base = r * stride + j;
            dot_x4(x.row(r0 + r), w0, w1, w2, w3, &mut out[base..base + 4]);
        }
        j += 4;
    }
    while j < cols {
        let wc = w.row(c0 + j);
        for r in 0..rows {
            out[r * stride + j] = dot(x.row(r0 + r), wc);
        }
        j += 1;
    }
}

/// `Y = X · Wᵀ`: `X` is `(m × k)`, `w` is `(n × k)`, result is `(m × n)`.
///
/// Cache-blocked and register-tiled; parallelized over output row blocks
/// (or column blocks when `m` is small) when [`policy::matmul_nt`] says the
/// problem is large enough. Output bits do not depend on the dispatch path
/// or thread count.
pub fn matmul_nt(x: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(x.cols, w.cols, "inner dimensions must match (NT layout)");
    let (m, n) = (x.rows, w.rows);
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let dispatch = policy::matmul_nt(m, n, x.cols, rayon::current_num_threads());
    #[cfg(feature = "trace")]
    let _t = edgellm_trace::kernels::timer(
        instrument::pick(dispatch, "matmul_nt.serial", "matmul_nt.rows", "matmul_nt.cols"),
        (m * n) as u64 * x.cols as u64,
    );
    match dispatch {
        policy::Dispatch::Serial => {
            let o = out.as_mut_slice();
            for r0 in (0..m).step_by(policy::ROW_BLOCK) {
                let rows = policy::ROW_BLOCK.min(m - r0);
                nt_tile(x, w, r0, 0, rows, n, &mut o[r0 * n..(r0 + rows) * n], n);
            }
        }
        policy::Dispatch::RowParallel => {
            out.as_mut_slice().par_chunks_mut(n * policy::ROW_BLOCK).enumerate().for_each(
                |(b, blk)| {
                    let r0 = b * policy::ROW_BLOCK;
                    nt_tile(x, w, r0, 0, blk.len() / n, n, blk, n);
                },
            );
        }
        policy::Dispatch::ColParallel => {
            for r in 0..m {
                out.row_mut(r).par_chunks_mut(policy::COL_BLOCK).enumerate().for_each(
                    |(cb, seg)| {
                        nt_tile(x, w, r, cb * policy::COL_BLOCK, 1, seg.len(), seg, seg.len());
                    },
                );
            }
        }
    }
    out
}

/// The shared NN/TN row kernel: `or += Σ_kk xr[kk] · w.row(kk)`, skipping
/// zero activations. Accumulation order is fixed by `kk`, independent of
/// how rows are distributed across threads.
#[inline]
fn axpy_row(xr: &[f32], w: &Matrix, or: &mut [f32]) {
    for (kk, &xv) in xr.iter().enumerate() {
        if xv != 0.0 {
            let wr = w.row(kk);
            for (o, &wv) in or.iter_mut().zip(wr) {
                *o += xv * wv;
            }
        }
    }
}

/// Shared serial/parallel driver for the row-accumulating kernels: runs
/// `body(r, out_row)` for every output row under the axpy dispatch policy.
fn axpy_driver(out: &mut Matrix, k: usize, body: impl Fn(usize, &mut [f32]) + Sync) {
    let (m, n) = (out.rows, out.cols);
    if m == 0 || n == 0 {
        return;
    }
    match policy::matmul_axpy(m, n, k, rayon::current_num_threads()) {
        policy::Dispatch::Serial => {
            for r in 0..m {
                body(r, out.row_mut(r));
            }
        }
        _ => {
            out.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(r, or)| body(r, or));
        }
    }
}

/// `Y = X · W`: `X` is `(m × k)`, `w` is `(k × n)`, result `(m × n)`.
///
/// Used where the weight naturally lives untransposed (e.g. backprop
/// through a linear layer). Row-major `W` makes the inner loop strided, so
/// this accumulates row-by-row instead.
pub fn matmul_nn(x: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(x.cols, w.rows, "inner dimensions must match (NN layout)");
    let mut out = Matrix::zeros(x.rows, w.cols);
    #[cfg(feature = "trace")]
    let _t = edgellm_trace::kernels::timer(
        instrument::pick(
            policy::matmul_axpy(x.rows, w.cols, x.cols, rayon::current_num_threads()),
            "matmul_nn.serial",
            "matmul_nn.rows",
            "matmul_nn.rows",
        ),
        (x.rows * w.cols) as u64 * x.cols as u64,
    );
    axpy_driver(&mut out, x.cols, |r, or| axpy_row(x.row(r), w, or));
    out
}

/// `Y = Xᵀ · W`: `X` is `(k × m)`, `w` is `(k × n)`, result `(m × n)`.
/// The gradient-of-weights shape in backprop (`dW = dYᵀ · X`).
pub fn matmul_tn(x: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(x.rows, w.rows, "inner dimensions must match (TN layout)");
    let mut out = Matrix::zeros(x.cols, w.cols);
    #[cfg(feature = "trace")]
    let _t = edgellm_trace::kernels::timer(
        instrument::pick(
            policy::matmul_axpy(x.cols, w.cols, x.rows, rayon::current_num_threads()),
            "matmul_tn.serial",
            "matmul_tn.rows",
            "matmul_tn.rows",
        ),
        (x.cols * w.cols) as u64 * x.rows as u64,
    );
    // Accumulate outer products row-by-row of the shared k dimension,
    // through a transposed view of x so rows parallelize like NN.
    let xt = x.transposed(); // (m × k)
    axpy_driver(&mut out, x.rows, |r, or| axpy_row(xt.row(r), w, or));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_nt(x: &Matrix, w: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows, w.rows);
        for r in 0..x.rows {
            for c in 0..w.rows {
                let mut s = 0.0;
                for k in 0..x.cols {
                    s += x.get(r, k) * w.get(c, k);
                }
                out.set(r, c, s);
            }
        }
        out
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.cols, b.cols);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn nt_matches_naive_small() {
        let x = Matrix::rand_kaiming(7, 13, 1);
        let w = Matrix::rand_kaiming(5, 13, 2);
        assert_close(&matmul_nt(&x, &w), &naive_nt(&x, &w), 1e-5);
    }

    #[test]
    fn nt_matches_naive_parallel_path() {
        let x = Matrix::rand_kaiming(64, 96, 3);
        let w = Matrix::rand_kaiming(512, 96, 4);
        assert_close(&matmul_nt(&x, &w), &naive_nt(&x, &w), 1e-4);
    }

    #[test]
    fn nt_single_row_wide_output_path() {
        let x = Matrix::rand_kaiming(1, 128, 5);
        let w = Matrix::rand_kaiming(40_000, 128, 6);
        let got = matmul_nt(&x, &w);
        let want = naive_nt(&x, &w);
        assert_close(&got, &want, 1e-4);
    }

    #[test]
    fn every_element_is_bitwise_a_dot_product() {
        // The micro-kernel/tiling contract: each output element equals
        // dot(x row, w row) to the bit, on every dispatch path.
        for (m, n, k) in [(7, 9, 33), (33, 128, 96), (1, 2100, 64), (16, 16, 8)] {
            let x = Matrix::rand_kaiming(m, k, (m * n) as u64);
            let w = Matrix::rand_kaiming(n, k, (m + n) as u64);
            let y = matmul_nt(&x, &w);
            for r in 0..m {
                for c in 0..n {
                    assert_eq!(
                        y.get(r, c).to_bits(),
                        dot(x.row(r), w.row(c)).to_bits(),
                        "element ({r},{c}) of {m}x{n}x{k}"
                    );
                }
            }
        }
    }

    #[test]
    fn nn_equals_nt_against_transpose() {
        let x = Matrix::rand_kaiming(9, 17, 7);
        let w = Matrix::rand_kaiming(17, 11, 8);
        let got = matmul_nn(&x, &w);
        let want = matmul_nt(&x, &w.transposed());
        assert_close(&got, &want, 1e-5);
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let x = Matrix::rand_kaiming(17, 9, 9);
        let w = Matrix::rand_kaiming(17, 11, 10);
        let got = matmul_tn(&x, &w);
        let want = matmul_nn(&x.transposed(), &w);
        assert_close(&got, &want, 1e-5);
    }

    #[test]
    fn dot_handles_tail() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(dot(&a, &b), 30.0);
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        assert_eq!(matmul_nt(&Matrix::zeros(0, 5), &Matrix::zeros(3, 5)).rows, 0);
        assert_eq!(matmul_nt(&Matrix::zeros(4, 0), &Matrix::zeros(3, 0)).as_slice(), [0.0; 12]);
        assert_eq!(matmul_nn(&Matrix::zeros(2, 0), &Matrix::zeros(0, 3)).as_slice(), [0.0; 6]);
        assert_eq!(matmul_tn(&Matrix::zeros(0, 2), &Matrix::zeros(0, 3)).as_slice(), [0.0; 6]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn nt_rejects_shape_mismatch() {
        let _ = matmul_nt(&Matrix::zeros(2, 3), &Matrix::zeros(2, 4));
    }

    mod policy_tests {
        use super::super::policy::*;

        #[test]
        fn tiny_problems_stay_serial() {
            assert_eq!(matmul_nt(4, 4, 4, 8), Dispatch::Serial);
            assert_eq!(matmul_axpy(4, 4, 4, 8), Dispatch::Serial);
            assert_eq!(matmul_quant_nt(1, 16, 64, 8), Dispatch::Serial);
        }

        #[test]
        fn one_thread_is_always_serial() {
            assert_eq!(matmul_nt(512, 4096, 4096, 1), Dispatch::Serial);
            assert_eq!(matmul_axpy(512, 4096, 4096, 1), Dispatch::Serial);
            assert_eq!(matmul_quant_nt(512, 4096, 4096, 1), Dispatch::Serial);
        }

        #[test]
        fn batched_large_problems_split_rows() {
            assert_eq!(matmul_nt(256, 1024, 1024, 4), Dispatch::RowParallel);
            assert_eq!(matmul_axpy(256, 1024, 1024, 4), Dispatch::RowParallel);
            assert_eq!(matmul_quant_nt(32, 1024, 1024, 4), Dispatch::RowParallel);
        }

        #[test]
        fn decode_shapes_split_columns() {
            // Single-token decode against a wide head: few rows, many cols.
            assert_eq!(matmul_nt(1, 40_000, 128, 4), Dispatch::ColParallel);
            assert_eq!(matmul_quant_nt(1, 10_240, 2_560, 4), Dispatch::ColParallel);
            // Axpy kernels never column-split: a single row stays serial.
            assert_eq!(matmul_axpy(1, 40_000, 128, 4), Dispatch::Serial);
        }

        #[test]
        fn single_column_never_col_splits() {
            assert_eq!(matmul_nt(1, 1, 4_000_000, 8), Dispatch::Serial);
        }

        #[test]
        fn int8_decode_shapes_stay_serial() {
            // The BENCH_kernels.json regression pin: int8_fused measured
            // 0.66× at m = 1 under the column split, so the int8 policy
            // must never dispatch it — exactly the phi2/llama8b decode
            // shapes the bench runs.
            assert_eq!(matmul_int8_nt(1, 10_240, 2_560, 4), Dispatch::Serial);
            assert_eq!(matmul_int8_nt(1, 14_336, 4_096, 4), Dispatch::Serial);
            // Verify-batch shapes (m = 2..8) row-split instead of
            // column-splitting; m = 1 threads ≫ elems stays serial too.
            assert_eq!(matmul_int8_nt(4, 10_240, 2_560, 4), Dispatch::RowParallel);
            assert_eq!(matmul_int8_nt(1, 16, 64, 8), Dispatch::Serial);
            assert_eq!(matmul_int8_nt(512, 4096, 4096, 1), Dispatch::Serial);
            // Batched prefill keeps its measured 1.05× row split.
            assert_eq!(matmul_int8_nt(32, 10_240, 2_560, 4), Dispatch::RowParallel);
        }
    }
}
