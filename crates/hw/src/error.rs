//! Error types for hardware configuration.

use std::fmt;

/// Errors raised when a clock/power-mode configuration is invalid for a
/// device, mirroring the checks `nvpmodel` performs on a real Jetson.
#[derive(Debug, Clone, PartialEq)]
pub enum HwError {
    /// Requested GPU frequency exceeds the device maximum (MHz).
    GpuFreqOutOfRange { requested_mhz: u32, max_mhz: u32 },
    /// Requested CPU frequency exceeds the device maximum (GHz).
    CpuFreqOutOfRange { requested_ghz: f64, max_ghz: f64 },
    /// Requested number of online cores is zero or exceeds the core count.
    CoresOutOfRange { requested: u32, max: u32 },
    /// Requested memory frequency exceeds the device maximum (MHz).
    MemFreqOutOfRange { requested_mhz: u32, max_mhz: u32 },
    /// A power mode with this name is already registered.
    DuplicatePowerMode(String),
    /// No power mode with this name is registered.
    UnknownPowerMode(String),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::GpuFreqOutOfRange { requested_mhz, max_mhz } => write!(
                f,
                "GPU frequency {requested_mhz} MHz outside supported range (1..={max_mhz} MHz)"
            ),
            HwError::CpuFreqOutOfRange { requested_ghz, max_ghz } => write!(
                f,
                "CPU frequency {requested_ghz} GHz outside supported range (0..={max_ghz} GHz)"
            ),
            HwError::CoresOutOfRange { requested, max } => {
                write!(f, "online core count {requested} outside supported range (1..={max})")
            }
            HwError::MemFreqOutOfRange { requested_mhz, max_mhz } => write!(
                f,
                "memory frequency {requested_mhz} MHz outside supported range (1..={max_mhz} MHz)"
            ),
            HwError::DuplicatePowerMode(name) => {
                write!(f, "power mode '{name}' is already registered")
            }
            HwError::UnknownPowerMode(name) => write!(f, "unknown power mode '{name}'"),
        }
    }
}

impl std::error::Error for HwError {}
