//! # edgellm-hw — edge-accelerator hardware models
//!
//! Parametric descriptions of Nvidia Jetson-class edge accelerators: compute
//! and memory peaks, DVFS frequency domains, and the *power modes* that the
//! `nvpmodel` utility exposes on real devices.
//!
//! The reference device is the **Jetson Orin AGX 64GB Developer Kit** used by
//! Arya & Simmhan (PAISE 2025): a 12-core ARM A78AE CPU @ 2.2 GHz, a
//! 2048-CUDA-core Ampere GPU @ 1.3 GHz and 64 GB of LPDDR5 shared between CPU
//! and GPU at 204.8 GB/s. The nine power modes of the paper's Table 2
//! (MaxN and modes A–H) are provided as constants, and arbitrary custom modes
//! can be built and validated against a device's limits.
//!
//! ```
//! use edgellm_hw::{DeviceSpec, PowerMode, PowerModeId};
//!
//! let dev = DeviceSpec::orin_agx_64gb();
//! let maxn = PowerMode::table2(PowerModeId::MaxN);
//! assert!(maxn.validate(&dev).is_ok());
//! // Peak DRAM bandwidth scales with the memory clock.
//! let pm_h = PowerMode::table2(PowerModeId::H);
//! assert!(dev.peak_bandwidth_gbps(&pm_h.clocks) < dev.peak_bandwidth_gbps(&maxn.clocks));
//! ```

pub mod clocks;
pub mod device;
pub mod error;
pub mod power_mode;
pub mod registry;

pub use clocks::ClockState;
pub use device::{ComputePrecision, CpuSpec, DeviceSpec, GpuSpec, MemorySpec};
pub use error::HwError;
pub use power_mode::{PowerMode, PowerModeId};
pub use registry::PowerModeRegistry;

/// One gigabyte, using the decimal convention the paper's tables use.
pub const GB: f64 = 1e9;
