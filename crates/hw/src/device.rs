//! Device specifications for Jetson-class edge accelerators.

use crate::clocks::ClockState;
use crate::GB;

/// Numeric precision of a compute kernel, as seen by the *hardware* peaks.
///
/// This is distinct from the *storage* precision of model weights (see
/// `edgellm-models`): e.g. BitsAndBytes INT8 inference stores weights in
/// INT8 but executes most arithmetic in FP16 after dequantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputePrecision {
    /// IEEE-754 single precision on CUDA cores.
    Fp32,
    /// Half precision on tensor cores.
    Fp16,
    /// 8-bit integer on tensor cores (IMMA).
    Int8,
}

/// CPU complex description.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name of the core microarchitecture (e.g. "Cortex-A78AE").
    pub microarch: &'static str,
    /// Total number of physical cores.
    pub cores: u32,
    /// Maximum sustained clock in GHz.
    pub max_freq_ghz: f64,
}

/// Integrated GPU description.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// GPU architecture generation (e.g. "Ampere").
    pub arch: &'static str,
    /// Number of CUDA cores.
    pub cuda_cores: u32,
    /// Number of tensor cores.
    pub tensor_cores: u32,
    /// Maximum GPU clock in MHz.
    pub max_freq_mhz: u32,
    /// Dense FP16 tensor-core throughput at `max_freq_mhz`, in TFLOP/s.
    pub peak_fp16_tflops: f64,
    /// Dense INT8 tensor-core throughput at `max_freq_mhz`, in TOP/s.
    pub peak_int8_tops: f64,
}

/// Shared-memory subsystem description.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    /// Memory technology (e.g. "LPDDR5").
    pub technology: &'static str,
    /// Capacity in bytes, shared between CPU and GPU.
    pub capacity_bytes: u64,
    /// Maximum memory clock in MHz.
    pub max_freq_mhz: u32,
    /// Peak bandwidth at `max_freq_mhz`, in GB/s.
    pub peak_bandwidth_gbps: f64,
}

/// A complete edge-accelerator device specification.
///
/// All peak figures are *datasheet* peaks at maximum clocks; effective rates
/// observed by workloads are derated by efficiency factors that live in the
/// performance model (`edgellm-perf`), not here.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// CPU complex.
    pub cpu: CpuSpec,
    /// Integrated GPU.
    pub gpu: GpuSpec,
    /// Shared memory subsystem.
    pub memory: MemorySpec,
    /// Module-level peak power budget in watts (the number on the box).
    pub peak_power_w: f64,
}

impl DeviceSpec {
    /// The NVIDIA Jetson Orin AGX Developer Kit (64 GB) used throughout the
    /// paper: 12×A78AE @ 2.2 GHz, 2048-core Ampere @ 1.3 GHz, 64 GB LPDDR5.
    ///
    /// FP16 tensor peak: the Orin AGX iGPU has 64 third-gen tensor cores; at
    /// 1.3 GHz the dense FP16 rate is ≈10.6 TFLOP/s (half the advertised
    /// sparse rate), and dense INT8 is ≈21.2 TOP/s.
    pub fn orin_agx_64gb() -> Self {
        DeviceSpec {
            name: "Jetson Orin AGX 64GB",
            cpu: CpuSpec { microarch: "Cortex-A78AE", cores: 12, max_freq_ghz: 2.2 },
            gpu: GpuSpec {
                arch: "Ampere",
                cuda_cores: 2048,
                tensor_cores: 64,
                max_freq_mhz: 1301,
                peak_fp16_tflops: 10.6,
                peak_int8_tops: 21.2,
            },
            memory: MemorySpec {
                technology: "LPDDR5",
                capacity_bytes: 64 * GB as u64,
                max_freq_mhz: 3200,
                peak_bandwidth_gbps: 204.8,
            },
            peak_power_w: 60.0,
        }
    }

    /// The 32 GB Orin AGX variant (as studied by Seymour et al.): same SoC
    /// clocks but 1792 CUDA cores and half the memory capacity at a slightly
    /// lower bandwidth.
    pub fn orin_agx_32gb() -> Self {
        DeviceSpec {
            name: "Jetson Orin AGX 32GB",
            cpu: CpuSpec { microarch: "Cortex-A78AE", cores: 8, max_freq_ghz: 2.2 },
            gpu: GpuSpec {
                arch: "Ampere",
                cuda_cores: 1792,
                tensor_cores: 56,
                max_freq_mhz: 930,
                peak_fp16_tflops: 6.7,
                peak_int8_tops: 13.3,
            },
            memory: MemorySpec {
                technology: "LPDDR5",
                capacity_bytes: 32 * GB as u64,
                max_freq_mhz: 3200,
                peak_bandwidth_gbps: 204.8,
            },
            peak_power_w: 40.0,
        }
    }

    /// The previous-generation Jetson Xavier AGX 32 GB (the authors' prior
    /// poster used this device).
    pub fn xavier_agx_32gb() -> Self {
        DeviceSpec {
            name: "Jetson Xavier AGX 32GB",
            cpu: CpuSpec { microarch: "Carmel", cores: 8, max_freq_ghz: 2.27 },
            gpu: GpuSpec {
                arch: "Volta",
                cuda_cores: 512,
                tensor_cores: 64,
                max_freq_mhz: 1377,
                peak_fp16_tflops: 2.8,
                peak_int8_tops: 5.6,
            },
            memory: MemorySpec {
                technology: "LPDDR4x",
                capacity_bytes: 32 * GB as u64,
                max_freq_mhz: 2133,
                peak_bandwidth_gbps: 136.5,
            },
            peak_power_w: 30.0,
        }
    }

    /// The Jetson Orin NX 16 GB — a smaller sibling useful for feasibility
    /// what-if studies with the same model stack.
    pub fn orin_nx_16gb() -> Self {
        DeviceSpec {
            name: "Jetson Orin NX 16GB",
            cpu: CpuSpec { microarch: "Cortex-A78AE", cores: 8, max_freq_ghz: 2.0 },
            gpu: GpuSpec {
                arch: "Ampere",
                cuda_cores: 1024,
                tensor_cores: 32,
                max_freq_mhz: 918,
                peak_fp16_tflops: 3.76,
                peak_int8_tops: 7.5,
            },
            memory: MemorySpec {
                technology: "LPDDR5",
                capacity_bytes: 16 * GB as u64,
                max_freq_mhz: 3200,
                peak_bandwidth_gbps: 102.4,
            },
            peak_power_w: 25.0,
        }
    }

    /// The Jetson family studied across the paper and its related work, in
    /// the `ext-devices` sweep order: Orin AGX 64 GB (the paper's board),
    /// Orin AGX 32 GB, Orin NX 16 GB, Xavier AGX 32 GB. The single source
    /// of device truth for fleet construction and family sweeps.
    pub fn jetson_family() -> [Self; 4] {
        [
            Self::orin_agx_64gb(),
            Self::orin_agx_32gb(),
            Self::orin_nx_16gb(),
            Self::xavier_agx_32gb(),
        ]
    }

    /// Default clock state: every domain at its maximum (what MAXN selects).
    pub fn max_clocks(&self) -> ClockState {
        ClockState {
            gpu_mhz: self.gpu.max_freq_mhz,
            cpu_ghz: self.cpu.max_freq_ghz,
            cores_online: self.cpu.cores,
            mem_mhz: self.memory.max_freq_mhz,
        }
    }

    /// Peak DRAM bandwidth (GB/s) under the given clock state. Bandwidth
    /// scales linearly with the memory clock.
    pub fn peak_bandwidth_gbps(&self, clocks: &ClockState) -> f64 {
        self.memory.peak_bandwidth_gbps * clocks.mem_mhz as f64 / self.memory.max_freq_mhz as f64
    }

    /// Peak compute throughput (FLOP/s or OP/s) for a kernel precision under
    /// the given clock state. Compute scales linearly with the GPU clock.
    pub fn peak_compute_flops(&self, prec: ComputePrecision, clocks: &ClockState) -> f64 {
        let scale = clocks.gpu_mhz as f64 / self.gpu.max_freq_mhz as f64;
        let peak_tflops = match prec {
            // CUDA-core FP32 FMA: cores * 2 flops * clock.
            ComputePrecision::Fp32 => {
                self.gpu.cuda_cores as f64 * 2.0 * self.gpu.max_freq_mhz as f64 * 1e6 / 1e12
            }
            ComputePrecision::Fp16 => self.gpu.peak_fp16_tflops,
            ComputePrecision::Int8 => self.gpu.peak_int8_tops,
        };
        peak_tflops * 1e12 * scale
    }

    /// Shared-memory capacity in (decimal) gigabytes.
    pub fn capacity_gb(&self) -> f64 {
        self.memory.capacity_bytes as f64 / GB
    }

    /// Machine balance (FLOP/byte) at which a kernel transitions from
    /// memory-bound to compute-bound for the given precision and clocks.
    pub fn ridge_point(&self, prec: ComputePrecision, clocks: &ClockState) -> f64 {
        self.peak_compute_flops(prec, clocks) / (self.peak_bandwidth_gbps(clocks) * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orin_agx_matches_datasheet() {
        let d = DeviceSpec::orin_agx_64gb();
        assert_eq!(d.cpu.cores, 12);
        assert_eq!(d.gpu.cuda_cores, 2048);
        assert!((d.capacity_gb() - 64.0).abs() < 1e-9);
        assert_eq!(d.memory.max_freq_mhz, 3200);
        assert_eq!(d.gpu.max_freq_mhz, 1301);
    }

    #[test]
    fn bandwidth_scales_linearly_with_mem_clock() {
        let d = DeviceSpec::orin_agx_64gb();
        let mut c = d.max_clocks();
        assert!((d.peak_bandwidth_gbps(&c) - 204.8).abs() < 1e-9);
        c.mem_mhz = 1600;
        assert!((d.peak_bandwidth_gbps(&c) - 102.4).abs() < 1e-9);
    }

    #[test]
    fn compute_scales_linearly_with_gpu_clock() {
        let d = DeviceSpec::orin_agx_64gb();
        let full = d.peak_compute_flops(ComputePrecision::Fp16, &d.max_clocks());
        let mut c = d.max_clocks();
        c.gpu_mhz = d.gpu.max_freq_mhz / 2;
        let half = d.peak_compute_flops(ComputePrecision::Fp16, &c);
        assert!((half / full - 0.5).abs() < 0.01);
    }

    #[test]
    fn fp32_peak_derives_from_cuda_cores() {
        let d = DeviceSpec::orin_agx_64gb();
        // 2048 cores * 2 * 1.301 GHz = 5.33 TFLOP/s
        let fp32 = d.peak_compute_flops(ComputePrecision::Fp32, &d.max_clocks());
        assert!((fp32 / 1e12 - 5.33).abs() < 0.01);
    }

    #[test]
    fn int8_peak_is_double_fp16() {
        let d = DeviceSpec::orin_agx_64gb();
        let c = d.max_clocks();
        let r = d.peak_compute_flops(ComputePrecision::Int8, &c)
            / d.peak_compute_flops(ComputePrecision::Fp16, &c);
        assert!((r - 2.0).abs() < 0.01);
    }

    #[test]
    fn ridge_point_is_positive_and_scales() {
        let d = DeviceSpec::orin_agx_64gb();
        let c = d.max_clocks();
        let r = d.ridge_point(ComputePrecision::Fp16, &c);
        assert!(r > 10.0 && r < 200.0, "ridge {r} implausible");
    }

    #[test]
    fn device_family_capacities_ordered() {
        assert!(
            DeviceSpec::orin_nx_16gb().capacity_gb() < DeviceSpec::orin_agx_32gb().capacity_gb()
        );
        assert!(
            DeviceSpec::orin_agx_32gb().capacity_gb() < DeviceSpec::orin_agx_64gb().capacity_gb()
        );
    }
}
