//! Power modes: named clock configurations (the paper's Table 2).

use crate::clocks::ClockState;
use crate::device::DeviceSpec;
use crate::error::HwError;

/// Identifier of one of the nine power modes evaluated in the paper
/// (Table 2). `MaxN` is the stock fastest mode; A–H are the custom modes
/// the authors defined, each varying one resource dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerModeId {
    /// Stock maximum-performance mode.
    MaxN,
    /// GPU 800 MHz (everything else at max).
    A,
    /// GPU 400 MHz.
    B,
    /// CPU 1.7 GHz.
    C,
    /// CPU 1.2 GHz.
    D,
    /// 8 CPU cores online.
    E,
    /// 4 CPU cores online.
    F,
    /// Memory 2133 MHz.
    G,
    /// Memory 665 MHz.
    H,
}

impl PowerModeId {
    /// All nine modes in the row order of Table 2.
    pub const ALL: [PowerModeId; 9] = [
        PowerModeId::MaxN,
        PowerModeId::A,
        PowerModeId::B,
        PowerModeId::C,
        PowerModeId::D,
        PowerModeId::E,
        PowerModeId::F,
        PowerModeId::G,
        PowerModeId::H,
    ];

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            PowerModeId::MaxN => "MaxN",
            PowerModeId::A => "A",
            PowerModeId::B => "B",
            PowerModeId::C => "C",
            PowerModeId::D => "D",
            PowerModeId::E => "E",
            PowerModeId::F => "F",
            PowerModeId::G => "G",
            PowerModeId::H => "H",
        }
    }
}

/// A named clock configuration, equivalent to an `nvpmodel` profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMode {
    /// Profile name (e.g. "MaxN", "A", or a custom label).
    pub name: String,
    /// The clock state this mode pins the device to.
    pub clocks: ClockState,
}

impl PowerMode {
    /// Construct one of the paper's Table 2 power modes for the Orin AGX.
    pub fn table2(id: PowerModeId) -> Self {
        // Table 2 baseline: GPU 1301 MHz, CPU 2.2 GHz, 12 cores, mem 3200 MHz.
        let mut clocks =
            ClockState { gpu_mhz: 1301, cpu_ghz: 2.2, cores_online: 12, mem_mhz: 3200 };
        match id {
            PowerModeId::MaxN => {}
            PowerModeId::A => clocks.gpu_mhz = 800,
            PowerModeId::B => clocks.gpu_mhz = 400,
            PowerModeId::C => clocks.cpu_ghz = 1.7,
            PowerModeId::D => clocks.cpu_ghz = 1.2,
            PowerModeId::E => clocks.cores_online = 8,
            PowerModeId::F => clocks.cores_online = 4,
            PowerModeId::G => clocks.mem_mhz = 2133,
            PowerModeId::H => clocks.mem_mhz = 665,
        }
        PowerMode { name: id.name().to_string(), clocks }
    }

    /// The stock maximum-performance mode *of a given device*: every
    /// domain at its own maximum. Use this instead of
    /// [`PowerMode::table2`]`(MaxN)` when targeting a device other than
    /// the Orin AGX 64GB.
    pub fn maxn_for(dev: &crate::device::DeviceSpec) -> Self {
        PowerMode { name: "MaxN".to_string(), clocks: dev.max_clocks() }
    }

    /// Build a custom power mode (unvalidated; call [`PowerMode::validate`]).
    pub fn custom(
        name: impl Into<String>,
        gpu_mhz: u32,
        cpu_ghz: f64,
        cores_online: u32,
        mem_mhz: u32,
    ) -> Self {
        PowerMode {
            name: name.into(),
            clocks: ClockState { gpu_mhz, cpu_ghz, cores_online, mem_mhz },
        }
    }

    /// Validate the mode's clocks against a device.
    pub fn validate(&self, dev: &DeviceSpec) -> Result<(), HwError> {
        self.clocks.validate(dev)
    }

    /// The dimension this mode throttles relative to MAXN, for reporting.
    /// Returns a human-readable summary like "GPU 800 MHz".
    pub fn throttle_summary(&self) -> String {
        let maxn = PowerMode::table2(PowerModeId::MaxN).clocks;
        let mut parts = Vec::new();
        if self.clocks.gpu_mhz != maxn.gpu_mhz {
            parts.push(format!("GPU {} MHz", self.clocks.gpu_mhz));
        }
        if (self.clocks.cpu_ghz - maxn.cpu_ghz).abs() > 1e-9 {
            parts.push(format!("CPU {} GHz", self.clocks.cpu_ghz));
        }
        if self.clocks.cores_online != maxn.cores_online {
            parts.push(format!("{} cores", self.clocks.cores_online));
        }
        if self.clocks.mem_mhz != maxn.mem_mhz {
            parts.push(format!("Mem {} MHz", self.clocks.mem_mhz));
        }
        if parts.is_empty() {
            "stock".to_string()
        } else {
            parts.join(", ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_rows() {
        let a = PowerMode::table2(PowerModeId::A);
        assert_eq!(a.clocks.gpu_mhz, 800);
        assert_eq!(a.clocks.mem_mhz, 3200);
        let b = PowerMode::table2(PowerModeId::B);
        assert_eq!(b.clocks.gpu_mhz, 400);
        let c = PowerMode::table2(PowerModeId::C);
        assert!((c.clocks.cpu_ghz - 1.7).abs() < 1e-12);
        let d = PowerMode::table2(PowerModeId::D);
        assert!((d.clocks.cpu_ghz - 1.2).abs() < 1e-12);
        let e = PowerMode::table2(PowerModeId::E);
        assert_eq!(e.clocks.cores_online, 8);
        let f = PowerMode::table2(PowerModeId::F);
        assert_eq!(f.clocks.cores_online, 4);
        let g = PowerMode::table2(PowerModeId::G);
        assert_eq!(g.clocks.mem_mhz, 2133);
        let h = PowerMode::table2(PowerModeId::H);
        assert_eq!(h.clocks.mem_mhz, 665);
    }

    #[test]
    fn all_table2_modes_validate_on_orin() {
        let dev = DeviceSpec::orin_agx_64gb();
        for id in PowerModeId::ALL {
            assert!(PowerMode::table2(id).validate(&dev).is_ok(), "{id:?} invalid");
        }
    }

    #[test]
    fn each_custom_mode_varies_exactly_one_dimension() {
        let maxn = PowerMode::table2(PowerModeId::MaxN).clocks;
        for id in &PowerModeId::ALL[1..] {
            let m = PowerMode::table2(*id).clocks;
            let diffs = [
                m.gpu_mhz != maxn.gpu_mhz,
                (m.cpu_ghz - maxn.cpu_ghz).abs() > 1e-9,
                m.cores_online != maxn.cores_online,
                m.mem_mhz != maxn.mem_mhz,
            ]
            .iter()
            .filter(|&&d| d)
            .count();
            assert_eq!(diffs, 1, "{id:?} should vary exactly one dimension");
        }
    }

    #[test]
    fn throttle_summary_names_the_varied_dimension() {
        assert_eq!(PowerMode::table2(PowerModeId::MaxN).throttle_summary(), "stock");
        assert_eq!(PowerMode::table2(PowerModeId::A).throttle_summary(), "GPU 800 MHz");
        assert_eq!(PowerMode::table2(PowerModeId::H).throttle_summary(), "Mem 665 MHz");
        assert_eq!(PowerMode::table2(PowerModeId::F).throttle_summary(), "4 cores");
    }

    #[test]
    fn custom_mode_builder_roundtrips() {
        let m = PowerMode::custom("eco", 600, 1.5, 6, 2133);
        assert_eq!(m.name, "eco");
        assert_eq!(m.clocks.gpu_mhz, 600);
        assert!(m.validate(&DeviceSpec::orin_agx_64gb()).is_ok());
    }
}
