//! DVFS clock state shared by all frequency domains.

use crate::device::DeviceSpec;
use crate::error::HwError;

/// A snapshot of the three frequency domains plus the online CPU core count —
/// exactly the four knobs the paper's Table 2 varies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockState {
    /// GPU clock in MHz.
    pub gpu_mhz: u32,
    /// Per-core CPU clock in GHz.
    pub cpu_ghz: f64,
    /// Number of CPU cores brought online.
    pub cores_online: u32,
    /// EMC (memory controller) clock in MHz.
    pub mem_mhz: u32,
}

impl ClockState {
    /// Validate this clock state against a device's limits, returning the
    /// first violated constraint (mirrors `nvpmodel` behaviour).
    pub fn validate(&self, dev: &DeviceSpec) -> Result<(), HwError> {
        if self.gpu_mhz == 0 || self.gpu_mhz > dev.gpu.max_freq_mhz {
            return Err(HwError::GpuFreqOutOfRange {
                requested_mhz: self.gpu_mhz,
                max_mhz: dev.gpu.max_freq_mhz,
            });
        }
        if !(self.cpu_ghz > 0.0 && self.cpu_ghz <= dev.cpu.max_freq_ghz) {
            return Err(HwError::CpuFreqOutOfRange {
                requested_ghz: self.cpu_ghz,
                max_ghz: dev.cpu.max_freq_ghz,
            });
        }
        if self.cores_online == 0 || self.cores_online > dev.cpu.cores {
            return Err(HwError::CoresOutOfRange {
                requested: self.cores_online,
                max: dev.cpu.cores,
            });
        }
        if self.mem_mhz == 0 || self.mem_mhz > dev.memory.max_freq_mhz {
            return Err(HwError::MemFreqOutOfRange {
                requested_mhz: self.mem_mhz,
                max_mhz: dev.memory.max_freq_mhz,
            });
        }
        Ok(())
    }

    /// GPU clock as a fraction of the device maximum (1.0 at MAXN).
    pub fn gpu_scale(&self, dev: &DeviceSpec) -> f64 {
        self.gpu_mhz as f64 / dev.gpu.max_freq_mhz as f64
    }

    /// CPU clock as a fraction of the device maximum.
    pub fn cpu_scale(&self, dev: &DeviceSpec) -> f64 {
        self.cpu_ghz / dev.cpu.max_freq_ghz
    }

    /// Memory clock as a fraction of the device maximum.
    pub fn mem_scale(&self, dev: &DeviceSpec) -> f64 {
        self.mem_mhz as f64 / dev.memory.max_freq_mhz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::orin_agx_64gb()
    }

    #[test]
    fn max_clocks_validate() {
        assert!(dev().max_clocks().validate(&dev()).is_ok());
    }

    #[test]
    fn rejects_overclocked_gpu() {
        let mut c = dev().max_clocks();
        c.gpu_mhz = 2000;
        assert!(matches!(c.validate(&dev()), Err(HwError::GpuFreqOutOfRange { .. })));
    }

    #[test]
    fn rejects_zero_cores_and_too_many_cores() {
        let mut c = dev().max_clocks();
        c.cores_online = 0;
        assert!(matches!(c.validate(&dev()), Err(HwError::CoresOutOfRange { .. })));
        c.cores_online = 13;
        assert!(matches!(c.validate(&dev()), Err(HwError::CoresOutOfRange { .. })));
    }

    #[test]
    fn rejects_bad_cpu_and_mem_freq() {
        let mut c = dev().max_clocks();
        c.cpu_ghz = 0.0;
        assert!(matches!(c.validate(&dev()), Err(HwError::CpuFreqOutOfRange { .. })));
        let mut c = dev().max_clocks();
        c.mem_mhz = 4000;
        assert!(matches!(c.validate(&dev()), Err(HwError::MemFreqOutOfRange { .. })));
    }

    #[test]
    fn scales_are_fractions_of_max() {
        let d = dev();
        let mut c = d.max_clocks();
        c.gpu_mhz = 800;
        c.mem_mhz = 665;
        c.cpu_ghz = 1.1;
        assert!((c.gpu_scale(&d) - 800.0 / 1301.0).abs() < 1e-12);
        assert!((c.mem_scale(&d) - 665.0 / 3200.0).abs() < 1e-12);
        assert!((c.cpu_scale(&d) - 0.5).abs() < 1e-12);
    }
}
