//! An `nvpmodel`-style registry of named power modes for a device.

use crate::clocks::ClockState;
use crate::device::DeviceSpec;
use crate::error::HwError;
use crate::power_mode::{PowerMode, PowerModeId};

/// Holds the set of power modes available on a device, preserving insertion
/// order (Table 2 order for the stock set) like `nvpmodel -q` does.
#[derive(Debug, Clone)]
pub struct PowerModeRegistry {
    device: DeviceSpec,
    modes: Vec<PowerMode>,
}

impl PowerModeRegistry {
    /// Create an empty registry for a device.
    pub fn new(device: DeviceSpec) -> Self {
        PowerModeRegistry { device, modes: Vec::new() }
    }

    /// Create a registry pre-populated with the paper's nine Table 2 modes.
    pub fn with_table2(device: DeviceSpec) -> Self {
        let mut reg = Self::new(device);
        for id in PowerModeId::ALL {
            reg.register(PowerMode::table2(id)).expect("table2 modes are valid");
        }
        reg
    }

    /// The stock mode set for any Jetson-family member. The paper's
    /// Table 2 applies verbatim to its own board (the Orin AGX 64 GB);
    /// every other family member gets the same nine mode *shapes* with
    /// each throttled dimension rescaled to the device's own maxima
    /// (MaxN stays all-max), so heterogeneous fleets see comparable mode
    /// lineups everywhere.
    pub fn stock_for(device: DeviceSpec) -> Self {
        let reference = DeviceSpec::orin_agx_64gb();
        if device == reference {
            return Self::with_table2(device);
        }
        let mut reg = Self::new(device);
        let max = reg.device.max_clocks();
        let scale = |v: u32, ref_max: u32, dev_max: u32| -> u32 {
            ((v as f64 / ref_max as f64) * dev_max as f64).round().max(1.0) as u32
        };
        for id in PowerModeId::ALL {
            let t2 = PowerMode::table2(id).clocks;
            let clocks = ClockState {
                gpu_mhz: scale(t2.gpu_mhz, reference.gpu.max_freq_mhz, max.gpu_mhz),
                cpu_ghz: (t2.cpu_ghz / reference.cpu.max_freq_ghz) * max.cpu_ghz,
                cores_online: scale(t2.cores_online, reference.cpu.cores, max.cores_online),
                mem_mhz: scale(t2.mem_mhz, reference.memory.max_freq_mhz, max.mem_mhz),
            };
            reg.register(PowerMode { name: id.name().to_string(), clocks })
                .expect("scaled stock modes stay within device limits");
        }
        reg
    }

    /// The device this registry validates against.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Register a mode after validating its clocks; rejects duplicates.
    pub fn register(&mut self, mode: PowerMode) -> Result<(), HwError> {
        mode.validate(&self.device)?;
        if self.modes.iter().any(|m| m.name == mode.name) {
            return Err(HwError::DuplicatePowerMode(mode.name));
        }
        self.modes.push(mode);
        Ok(())
    }

    /// Look up a mode by name.
    pub fn get(&self, name: &str) -> Result<&PowerMode, HwError> {
        self.modes
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| HwError::UnknownPowerMode(name.to_string()))
    }

    /// Iterate over all modes in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &PowerMode> {
        self.modes.iter()
    }

    /// Number of registered modes.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_registry_has_nine_modes_in_order() {
        let reg = PowerModeRegistry::with_table2(DeviceSpec::orin_agx_64gb());
        assert_eq!(reg.len(), 9);
        let names: Vec<_> = reg.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["MaxN", "A", "B", "C", "D", "E", "F", "G", "H"]);
    }

    #[test]
    fn lookup_known_and_unknown() {
        let reg = PowerModeRegistry::with_table2(DeviceSpec::orin_agx_64gb());
        assert_eq!(reg.get("MaxN").unwrap().clocks.gpu_mhz, 1301);
        assert!(matches!(reg.get("Z"), Err(HwError::UnknownPowerMode(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut reg = PowerModeRegistry::with_table2(DeviceSpec::orin_agx_64gb());
        let err = reg.register(PowerMode::custom("MaxN", 1301, 2.2, 12, 3200));
        assert!(matches!(err, Err(HwError::DuplicatePowerMode(_))));
    }

    #[test]
    fn rejects_invalid_custom_mode() {
        let mut reg = PowerModeRegistry::new(DeviceSpec::orin_agx_64gb());
        let err = reg.register(PowerMode::custom("turbo", 9999, 2.2, 12, 3200));
        assert!(matches!(err, Err(HwError::GpuFreqOutOfRange { .. })));
        assert!(reg.is_empty());
    }

    #[test]
    fn stock_for_paper_board_is_table2_verbatim() {
        let stock = PowerModeRegistry::stock_for(DeviceSpec::orin_agx_64gb());
        let t2 = PowerModeRegistry::with_table2(DeviceSpec::orin_agx_64gb());
        assert_eq!(stock.len(), t2.len());
        for (a, b) in stock.iter().zip(t2.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.clocks, b.clocks);
        }
    }

    #[test]
    fn stock_for_scales_to_every_family_member() {
        for dev in DeviceSpec::jetson_family() {
            let reg = PowerModeRegistry::stock_for(dev.clone());
            assert_eq!(reg.len(), 9, "{}", dev.name);
            for m in reg.iter() {
                assert!(m.validate(&dev).is_ok(), "{} {} out of range", dev.name, m.name);
            }
            assert_eq!(reg.get("MaxN").unwrap().clocks, dev.max_clocks());
            // The throttle shapes survive rescaling: A halves-ish the
            // GPU, H floors the memory clock.
            let maxn = reg.get("MaxN").unwrap().clocks;
            assert!(reg.get("A").unwrap().clocks.gpu_mhz < maxn.gpu_mhz);
            assert!(reg.get("B").unwrap().clocks.gpu_mhz < reg.get("A").unwrap().clocks.gpu_mhz);
            assert!(reg.get("H").unwrap().clocks.mem_mhz < reg.get("G").unwrap().clocks.mem_mhz);
        }
    }

    #[test]
    fn custom_registration_extends_stock_set() {
        let mut reg = PowerModeRegistry::with_table2(DeviceSpec::orin_agx_64gb());
        reg.register(PowerMode::custom("eco", 600, 1.5, 6, 2133)).unwrap();
        assert_eq!(reg.len(), 10);
        assert_eq!(reg.get("eco").unwrap().clocks.cores_online, 6);
    }
}
