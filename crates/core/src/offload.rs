//! Edge↔cloud offload analysis — the paper's conclusion names "coupling
//! edge inferencing with cloud endpoints" as future work. This module
//! models the alternative to local inference: ship the prompt to a cloud
//! endpoint and stream tokens back, paying network time and edge-side
//! radio/idle energy instead of local compute time and energy.

use crate::config::RunConfig;
use crate::engine::Engine;
use crate::error::RunError;

/// A cloud LLM endpoint as seen from the edge device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudEndpoint {
    /// Round-trip network latency (s).
    pub rtt_s: f64,
    /// Uplink bandwidth (bytes/s).
    pub uplink_bps: f64,
    /// Endpoint time-to-first-token: queueing + cloud prefill (s).
    pub ttft_s: f64,
    /// Streaming generation rate (tokens/s) the endpoint sustains.
    pub tok_rate: f64,
    /// Edge radio power while transmitting/receiving (W).
    pub radio_power_w: f64,
    /// Edge idle power while waiting for the stream (W).
    pub idle_power_w: f64,
}

impl CloudEndpoint {
    /// A well-connected datacenter endpoint (fiber/5G, A100-class serving).
    pub fn datacenter() -> Self {
        CloudEndpoint {
            rtt_s: 0.06,
            uplink_bps: 12.5e6, // 100 Mbit/s
            ttft_s: 0.5,
            tok_rate: 60.0,
            radio_power_w: 2.5,
            idle_power_w: 9.0,
        }
    }

    /// A constrained field link (satellite/rural LTE).
    pub fn field_link() -> Self {
        CloudEndpoint {
            rtt_s: 0.7,
            uplink_bps: 250e3, // 2 Mbit/s
            ttft_s: 1.5,
            tok_rate: 60.0,
            radio_power_w: 4.0,
            idle_power_w: 9.0,
        }
    }

    /// Latency to complete one request of `n_in` prompt and `n_out`
    /// generated tokens (≈4 bytes/token on the wire).
    pub fn request_latency_s(&self, n_in: u64, n_out: u64) -> f64 {
        let upload = n_in as f64 * 4.0 / self.uplink_bps;
        self.rtt_s + upload + self.ttft_s + n_out as f64 / self.tok_rate
    }

    /// Edge-side energy for that request: radio during transfer, idle
    /// while the endpoint generates.
    pub fn edge_energy_j(&self, n_in: u64, n_out: u64) -> f64 {
        let upload = n_in as f64 * 4.0 / self.uplink_bps;
        let transfer = upload + self.rtt_s;
        let wait = self.ttft_s + n_out as f64 / self.tok_rate;
        transfer * (self.radio_power_w + self.idle_power_w) + wait * self.idle_power_w
    }
}

/// One local-vs-cloud comparison for a single request shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadComparison {
    /// Local single-request latency (s).
    pub local_latency_s: f64,
    /// Local edge energy (J).
    pub local_energy_j: f64,
    /// Cloud request latency (s).
    pub cloud_latency_s: f64,
    /// Cloud edge-side energy (J).
    pub cloud_energy_j: f64,
}

impl OffloadComparison {
    /// Whether local inference wins on latency.
    pub fn local_wins_latency(&self) -> bool {
        self.local_latency_s < self.cloud_latency_s
    }

    /// Whether local inference wins on edge energy.
    pub fn local_wins_energy(&self) -> bool {
        self.local_energy_j < self.cloud_energy_j
    }
}

/// Compare serving one request locally (bs=1) against offloading it.
pub fn compare(
    engine: &Engine,
    cfg: &RunConfig,
    endpoint: &CloudEndpoint,
) -> Result<OffloadComparison, RunError> {
    let local = engine.run_batch(&cfg.clone().batch_size(1))?;
    let (n_in, n_out) = (cfg.sequence.input_tokens, cfg.sequence.output_tokens);
    Ok(OffloadComparison {
        local_latency_s: local.latency_s,
        local_energy_j: local.energy_j,
        cloud_latency_s: endpoint.request_latency_s(n_in, n_out),
        cloud_energy_j: endpoint.edge_energy_j(n_in, n_out),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_models::{Llm, Precision};

    #[test]
    fn datacenter_beats_local_for_single_large_model_requests() {
        // A 32B model at bs=1 on the edge takes ~43 s for 64 tokens; a
        // datacenter endpoint streams them in ~1.7 s.
        let engine = Engine::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::DeepseekQwen32b, Precision::Int8);
        let c = compare(&engine, &cfg, &CloudEndpoint::datacenter()).unwrap();
        assert!(!c.local_wins_latency(), "{c:?}");
        assert!(!c.local_wins_energy(), "{c:?}");
    }

    #[test]
    fn degraded_network_flips_the_latency_verdict_for_small_models() {
        let engine = Engine::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::Phi2, Precision::Fp16);
        let good = compare(&engine, &cfg, &CloudEndpoint::datacenter()).unwrap();
        let mut bad = CloudEndpoint::field_link();
        bad.rtt_s = 2.0;
        bad.ttft_s = 4.0;
        bad.tok_rate = 10.0;
        let degraded = compare(&engine, &cfg, &bad).unwrap();
        assert!(!good.local_wins_latency(), "good network: cloud wins");
        assert!(degraded.local_wins_latency(), "bad network: local wins ({degraded:?})");
    }

    #[test]
    fn cloud_edge_energy_scales_with_wait_time() {
        let e = CloudEndpoint::datacenter();
        assert!(e.edge_energy_j(32, 256) > e.edge_energy_j(32, 64));
        assert!(e.request_latency_s(32, 256) > e.request_latency_s(32, 64));
    }

    #[test]
    fn upload_time_matters_on_slow_links() {
        let fast = CloudEndpoint::datacenter();
        let slow = CloudEndpoint::field_link();
        let long_prompt = 8192u64;
        let d_fast = fast.request_latency_s(long_prompt, 1) - fast.request_latency_s(1, 1);
        let d_slow = slow.request_latency_s(long_prompt, 1) - slow.request_latency_s(1, 1);
        assert!(d_slow > 10.0 * d_fast, "slow uplink dominates: {d_slow} vs {d_fast}");
    }
}
