//! Iteration-level ("continuous") batching — the serving-engine
//! optimization the paper's conclusion points to ("dedicated inference
//! engines"), simulated over the same calibrated performance model so the
//! head-room over the measured static-batching regime is quantified.
//!
//! New requests join the running batch at decode-iteration boundaries
//! (Orca-style); finished sequences leave immediately, so the GPU never
//! idles waiting for the longest sequence in a batch.
//!
//! The simulation itself lives in [`crate::serve`]: [`ContinuousBatcher::run`]
//! is a thin wrapper over [`EventScheduler`]
//! with the blocking-prefill policy (the legacy regime this type always
//! modelled). Use the scheduler directly for chunked prefill, KV-pressure
//! preemption knobs and the per-iteration trace.

use crate::arrivals::Request;
use crate::config::RunConfig;
use crate::error::RunError;
use crate::metrics::quantile;
use crate::serve::{EventScheduler, ServeConfig};
use edgellm_hw::DeviceSpec;
use edgellm_perf::PerfModel;
use edgellm_power::{LoadProfile, RailModel};

/// Outcome of a serving simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousReport {
    /// Wall time until the last request completes (s).
    pub makespan_s: f64,
    /// Mean request completion latency, arrival → last token (s).
    pub mean_latency_s: f64,
    /// 95th-percentile request latency (s), nearest-rank.
    pub p95_latency_s: f64,
    /// Output tokens per second over the makespan.
    pub output_tok_s: f64,
    /// Mean number of live sequences per decode iteration.
    pub mean_occupancy: f64,
    /// Requests served.
    pub requests: usize,
    /// Energy integrated over every iteration and idle gap (J).
    pub energy_j: f64,
    /// Sequences preempted (KV blocks freed, re-queued with recompute).
    pub preemptions: usize,
    /// Mean time to first token, arrival → prefill completion (s).
    pub mean_ttft_s: f64,
    /// Median TTFT (s), nearest-rank.
    pub p50_ttft_s: f64,
    /// 99th-percentile TTFT (s), nearest-rank.
    pub p99_ttft_s: f64,
    /// Decode time lost to prompt processing: full solo prefills under
    /// the blocking policy, chunk compute-excess under chunked prefill (s).
    pub prefill_stall_s: f64,
}

/// An iteration-level batching simulator.
#[derive(Debug, Clone)]
pub struct ContinuousBatcher {
    /// Maximum concurrent sequences (memory-capped internally too).
    pub max_batch: usize,
}

impl ContinuousBatcher {
    /// A batcher with the given concurrency cap.
    pub fn new(max_batch: usize) -> Self {
        ContinuousBatcher { max_batch }
    }

    /// Drive all `requests` to completion on the device in `cfg`
    /// (its batch/sequence fields are ignored; shapes come from the
    /// requests).
    ///
    /// Wrapper over [`EventScheduler`] with [`ServeConfig::blocking`]:
    /// admissions pay a solo prefill that stalls the live batch, the
    /// historical behaviour of this type.
    pub fn run(
        &self,
        device: &DeviceSpec,
        cfg: &RunConfig,
        requests: &[Request],
    ) -> Result<ContinuousReport, RunError> {
        EventScheduler::new(ServeConfig::blocking(self.max_batch))
            .run(device, cfg, requests)
            .map(|r| r.report)
    }

    /// The measured regime for comparison: static batches of `max_batch`
    /// formed in arrival order — a batch launches when full (or when no
    /// requests remain) and runs to the completion of its longest member.
    pub fn run_static(
        &self,
        device: &DeviceSpec,
        cfg: &RunConfig,
        requests: &[Request],
    ) -> Result<ContinuousReport, RunError> {
        if requests.is_empty() {
            return Err(RunError::InvalidConfig("no requests".into()));
        }
        cfg.power_mode.validate(device)?;
        let perf = PerfModel::new(device.clone(), cfg.llm, cfg.precision, cfg.power_mode.clocks);
        let rails = RailModel::orin_agx(device.clone());
        let maxn = PerfModel::new(device.clone(), cfg.llm, cfg.precision, device.max_clocks());
        let bw_ratio = perf.effective_bandwidth() / maxn.effective_bandwidth();
        let clocks = &cfg.power_mode.clocks;
        let profile = |u: edgellm_perf::Utilization| LoadProfile {
            gpu_util: u.gpu,
            cpu_util: u.cpu,
            bw_util: u.mem_bw,
            bw_ratio,
        };
        let idle_power = rails.total_w(clocks, &LoadProfile::idle());
        let mut queue: Vec<Request> = requests.to_vec();
        queue.sort_by(|a, b| {
            a.arrival_s.partial_cmp(&b.arrival_s).expect("finite").then(a.id.cmp(&b.id))
        });
        let mut t = 0.0f64;
        let mut latencies = Vec::with_capacity(queue.len());
        let mut ttfts = Vec::with_capacity(queue.len());
        let mut out_tokens = 0u64;
        let mut energy_j = 0.0f64;
        let mut prefill_stall_s = 0.0f64;
        for chunk in queue.chunks(self.max_batch.max(1)) {
            let ready = chunk.last().expect("non-empty chunk").arrival_s;
            let start = t.max(ready);
            if start > t {
                energy_j += idle_power * (start - t);
            }
            let bs = chunk.len() as u64;
            let n_in = chunk.iter().map(|r| r.input_tokens).max().expect("non-empty");
            let n_out = chunk.iter().map(|r| r.output_tokens).max().expect("non-empty");
            let prefill_s = perf.prefill_time(bs, n_in.max(1));
            let lat = perf.latency_s(bs, n_in, n_out);
            let decode_s = (lat - prefill_s).max(0.0);
            prefill_stall_s += prefill_s;
            energy_j += rails.total_w(clocks, &profile(perf.prefill_utilization(bs, n_in.max(1))))
                * prefill_s;
            energy_j += rails
                .total_w(clocks, &profile(perf.decode_utilization(bs, n_in + n_out / 2)))
                * decode_s;
            t = start + lat;
            for r in chunk {
                latencies.push(t - r.arrival_s);
                // First token lands when the batch's shared prefill ends.
                ttfts.push(start + prefill_s - r.arrival_s);
                out_tokens += r.output_tokens;
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ok(ContinuousReport {
            makespan_s: t,
            mean_latency_s: latencies.iter().sum::<f64>() / latencies.len() as f64,
            p95_latency_s: quantile(&latencies, 0.95),
            output_tok_s: out_tokens as f64 / t,
            mean_occupancy: self.max_batch as f64,
            requests: latencies.len(),
            energy_j,
            preemptions: 0,
            mean_ttft_s: ttfts.iter().sum::<f64>() / ttfts.len() as f64,
            p50_ttft_s: quantile(&ttfts, 0.50),
            p99_ttft_s: quantile(&ttfts, 0.99),
            prefill_stall_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::PoissonArrivals;
    use edgellm_models::{Llm, Precision};

    fn setup() -> (DeviceSpec, RunConfig) {
        (DeviceSpec::orin_agx_64gb(), RunConfig::new(Llm::Llama31_8b, Precision::Fp16))
    }

    #[test]
    fn all_requests_complete() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.0).generate(40, 1);
        let r = ContinuousBatcher::new(16).run(&dev, &cfg, &reqs).unwrap();
        assert_eq!(r.requests, 40);
        assert!(r.makespan_s >= reqs.last().unwrap().arrival_s);
        assert!(r.mean_occupancy >= 1.0 && r.mean_occupancy <= 16.0);
        assert!(r.p95_latency_s >= r.mean_latency_s * 0.8);
        assert!(r.energy_j > 0.0);
        assert!(r.mean_ttft_s > 0.0 && r.mean_ttft_s <= r.mean_latency_s);
        assert!(r.p50_ttft_s <= r.p99_ttft_s);
        assert!(r.prefill_stall_s > 0.0, "blocking prefill must stall");
    }

    #[test]
    fn run_is_a_wrapper_over_the_blocking_scheduler() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.5).generate(25, 8);
        let wrapped = ContinuousBatcher::new(16).run(&dev, &cfg, &reqs).unwrap();
        let direct = EventScheduler::new(ServeConfig::blocking(16)).run(&dev, &cfg, &reqs).unwrap();
        assert_eq!(wrapped, direct.report);
    }

    #[test]
    fn continuous_beats_static_on_mean_latency() {
        // At moderate load, joining mid-flight avoids waiting for batch
        // formation and for the batch's longest member.
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.5).generate(60, 2);
        let cont = ContinuousBatcher::new(16).run(&dev, &cfg, &reqs).unwrap();
        let stat = ContinuousBatcher::new(16).run_static(&dev, &cfg, &reqs).unwrap();
        assert!(
            cont.mean_latency_s < stat.mean_latency_s,
            "continuous {:.1}s vs static {:.1}s",
            cont.mean_latency_s,
            stat.mean_latency_s
        );
    }

    #[test]
    fn higher_load_raises_latency() {
        let (dev, cfg) = setup();
        let lo = ContinuousBatcher::new(16)
            .run(&dev, &cfg, &PoissonArrivals::paper_shape(0.2).generate(30, 3))
            .unwrap();
        let hi = ContinuousBatcher::new(16)
            .run(&dev, &cfg, &PoissonArrivals::paper_shape(4.0).generate(30, 3))
            .unwrap();
        assert!(hi.mean_latency_s > lo.mean_latency_s);
        assert!(hi.mean_occupancy > lo.mean_occupancy);
    }

    #[test]
    fn memory_caps_concurrency() {
        // Phi-2 with long outputs: the memory model must clamp the batch
        // below the requested 128 (quadratic activations).
        let (dev, _) = setup();
        let cfg = RunConfig::new(Llm::Phi2, Precision::Fp16);
        let mut arr = PoissonArrivals::paper_shape(50.0);
        arr.input_tokens = 64;
        arr.output_tokens = 192;
        arr.shape_jitter = 0.0;
        let reqs = arr.generate(200, 4);
        let r = ContinuousBatcher::new(128).run(&dev, &cfg, &reqs).unwrap();
        assert!(r.mean_occupancy < 128.0, "occupancy {}", r.mean_occupancy);
        assert_eq!(r.requests, 200);
    }

    #[test]
    fn static_energy_and_ttft_populated() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.0).generate(32, 6);
        let r = ContinuousBatcher::new(16).run_static(&dev, &cfg, &reqs).unwrap();
        assert!(r.energy_j > 0.0);
        assert_eq!(r.preemptions, 0);
        assert!(r.mean_ttft_s > 0.0 && r.mean_ttft_s < r.mean_latency_s);
        assert!(r.prefill_stall_s > 0.0);
    }

    #[test]
    fn unloadable_model_fails_fast() {
        let (dev, _) = setup();
        let cfg = RunConfig::new(Llm::DeepseekQwen32b, Precision::Fp16);
        let reqs = PoissonArrivals::paper_shape(1.0).generate(5, 5);
        assert!(matches!(
            ContinuousBatcher::new(8).run(&dev, &cfg, &reqs),
            Err(RunError::ModelDoesNotLoad { .. })
        ));
    }

    #[test]
    fn empty_queue_is_invalid() {
        let (dev, cfg) = setup();
        assert!(matches!(
            ContinuousBatcher::new(8).run(&dev, &cfg, &[]),
            Err(RunError::InvalidConfig(_))
        ));
    }
}
