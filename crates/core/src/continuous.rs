//! Iteration-level ("continuous") batching — the serving-engine
//! optimization the paper's conclusion points to ("dedicated inference
//! engines"), simulated over the same calibrated performance model so the
//! head-room over the measured static-batching regime is quantified.
//!
//! New requests join the running batch at decode-iteration boundaries
//! (Orca-style); finished sequences leave immediately, so the GPU never
//! idles waiting for the longest sequence in a batch.

use crate::arrivals::Request;
use crate::config::RunConfig;
use crate::error::RunError;
use edgellm_hw::DeviceSpec;
use edgellm_mem::MemoryModel;
use edgellm_perf::PerfModel;

/// Outcome of a serving simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousReport {
    /// Wall time until the last request completes (s).
    pub makespan_s: f64,
    /// Mean request completion latency, arrival → last token (s).
    pub mean_latency_s: f64,
    /// 95th-percentile request latency (s).
    pub p95_latency_s: f64,
    /// Output tokens per second over the makespan.
    pub output_tok_s: f64,
    /// Mean number of live sequences per decode iteration.
    pub mean_occupancy: f64,
    /// Requests served.
    pub requests: usize,
}

/// An iteration-level batching simulator.
#[derive(Debug, Clone)]
pub struct ContinuousBatcher {
    /// Maximum concurrent sequences (memory-capped internally too).
    pub max_batch: usize,
}

#[derive(Debug, Clone, Copy)]
struct Live {
    arrival_s: f64,
    ctx: u64,
    remaining: u64,
}

impl ContinuousBatcher {
    /// A batcher with the given concurrency cap.
    pub fn new(max_batch: usize) -> Self {
        ContinuousBatcher { max_batch }
    }

    /// Drive all `requests` to completion on the device in `cfg`
    /// (its batch/sequence fields are ignored; shapes come from the
    /// requests).
    pub fn run(
        &self,
        device: &DeviceSpec,
        cfg: &RunConfig,
        requests: &[Request],
    ) -> Result<ContinuousReport, RunError> {
        if requests.is_empty() {
            return Err(RunError::InvalidConfig("no requests".into()));
        }
        cfg.power_mode.validate(device)?;
        let perf =
            PerfModel::new(device.clone(), cfg.llm, cfg.precision, cfg.power_mode.clocks);
        let mm = MemoryModel::new(cfg.llm, cfg.precision, device.capacity_gb());
        if !mm.model_loads() {
            return Err(RunError::ModelDoesNotLoad {
                required_gb: mm.weight_bytes() / 1e9,
                usable_gb: device.capacity_gb() - edgellm_mem::OOM_HEADROOM_GB,
            });
        }
        // Memory-derived concurrency cap at the workload's max seq length.
        let max_sl = requests
            .iter()
            .map(|r| r.input_tokens + r.output_tokens)
            .max()
            .expect("non-empty");
        let mut mem_cap = self.max_batch as u64;
        while mem_cap > 1 && !mm.fits(mem_cap, max_sl) {
            mem_cap -= 1;
        }
        let cap = (self.max_batch as u64).min(mem_cap) as usize;

        let mut queue: Vec<Request> = requests.to_vec();
        queue.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
        let mut next = 0usize;
        let mut live: Vec<Live> = Vec::new();
        let mut t = 0.0f64;
        let mut latencies: Vec<f64> = Vec::with_capacity(queue.len());
        let mut out_tokens = 0u64;
        let mut occupancy_sum = 0usize;
        let mut iterations = 0usize;

        while latencies.len() < queue.len() {
            // Admit arrivals at the iteration boundary.
            while next < queue.len() && live.len() < cap && queue[next].arrival_s <= t {
                let r = queue[next];
                next += 1;
                // The joining sequence pays its (solo) prefill now.
                t += perf.prefill_time(1, r.input_tokens);
                live.push(Live {
                    arrival_s: r.arrival_s,
                    ctx: r.input_tokens,
                    remaining: r.output_tokens,
                });
            }
            if live.is_empty() {
                // Idle: jump to the next arrival.
                t = t.max(queue[next].arrival_s);
                continue;
            }
            // One decode iteration for everyone currently live.
            let bs = live.len() as u64;
            let avg_ctx =
                (live.iter().map(|s| s.ctx).sum::<u64>() as f64 / bs as f64) as u64;
            t += perf.decode_step_time(bs, avg_ctx);
            occupancy_sum += live.len();
            iterations += 1;
            out_tokens += bs;
            let mut i = 0;
            while i < live.len() {
                live[i].ctx += 1;
                live[i].remaining -= 1;
                if live[i].remaining == 0 {
                    latencies.push(t - live[i].arrival_s);
                    live.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }

        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p95 = latencies[((latencies.len() as f64 * 0.95) as usize)
            .min(latencies.len() - 1)];
        Ok(ContinuousReport {
            makespan_s: t,
            mean_latency_s: latencies.iter().sum::<f64>() / latencies.len() as f64,
            p95_latency_s: p95,
            output_tok_s: out_tokens as f64 / t,
            mean_occupancy: occupancy_sum as f64 / iterations.max(1) as f64,
            requests: latencies.len(),
        })
    }

    /// The measured regime for comparison: static batches of `max_batch`
    /// formed in arrival order — a batch launches when full (or when no
    /// requests remain) and runs to the completion of its longest member.
    pub fn run_static(
        &self,
        device: &DeviceSpec,
        cfg: &RunConfig,
        requests: &[Request],
    ) -> Result<ContinuousReport, RunError> {
        if requests.is_empty() {
            return Err(RunError::InvalidConfig("no requests".into()));
        }
        cfg.power_mode.validate(device)?;
        let perf =
            PerfModel::new(device.clone(), cfg.llm, cfg.precision, cfg.power_mode.clocks);
        let mut queue: Vec<Request> = requests.to_vec();
        queue.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
        let mut t = 0.0f64;
        let mut latencies = Vec::with_capacity(queue.len());
        let mut out_tokens = 0u64;
        for chunk in queue.chunks(self.max_batch.max(1)) {
            let ready = chunk.last().expect("non-empty chunk").arrival_s;
            let start = t.max(ready);
            let n_in = chunk.iter().map(|r| r.input_tokens).max().expect("non-empty");
            let n_out = chunk.iter().map(|r| r.output_tokens).max().expect("non-empty");
            let lat = perf.latency_s(chunk.len() as u64, n_in, n_out);
            t = start + lat;
            for r in chunk {
                latencies.push(t - r.arrival_s);
                out_tokens += r.output_tokens;
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p95 = latencies[((latencies.len() as f64 * 0.95) as usize)
            .min(latencies.len() - 1)];
        Ok(ContinuousReport {
            makespan_s: t,
            mean_latency_s: latencies.iter().sum::<f64>() / latencies.len() as f64,
            p95_latency_s: p95,
            output_tok_s: out_tokens as f64 / t,
            mean_occupancy: self.max_batch as f64,
            requests: latencies.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::PoissonArrivals;
    use edgellm_models::{Llm, Precision};

    fn setup() -> (DeviceSpec, RunConfig) {
        (
            DeviceSpec::orin_agx_64gb(),
            RunConfig::new(Llm::Llama31_8b, Precision::Fp16),
        )
    }

    #[test]
    fn all_requests_complete() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.0).generate(40, 1);
        let r = ContinuousBatcher::new(16).run(&dev, &cfg, &reqs).unwrap();
        assert_eq!(r.requests, 40);
        assert!(r.makespan_s >= reqs.last().unwrap().arrival_s);
        assert!(r.mean_occupancy >= 1.0 && r.mean_occupancy <= 16.0);
        assert!(r.p95_latency_s >= r.mean_latency_s * 0.8);
    }

    #[test]
    fn continuous_beats_static_on_mean_latency() {
        // At moderate load, joining mid-flight avoids waiting for batch
        // formation and for the batch's longest member.
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.5).generate(60, 2);
        let cont = ContinuousBatcher::new(16).run(&dev, &cfg, &reqs).unwrap();
        let stat = ContinuousBatcher::new(16).run_static(&dev, &cfg, &reqs).unwrap();
        assert!(
            cont.mean_latency_s < stat.mean_latency_s,
            "continuous {:.1}s vs static {:.1}s",
            cont.mean_latency_s,
            stat.mean_latency_s
        );
    }

    #[test]
    fn higher_load_raises_latency() {
        let (dev, cfg) = setup();
        let lo = ContinuousBatcher::new(16)
            .run(&dev, &cfg, &PoissonArrivals::paper_shape(0.2).generate(30, 3))
            .unwrap();
        let hi = ContinuousBatcher::new(16)
            .run(&dev, &cfg, &PoissonArrivals::paper_shape(4.0).generate(30, 3))
            .unwrap();
        assert!(hi.mean_latency_s > lo.mean_latency_s);
        assert!(hi.mean_occupancy > lo.mean_occupancy);
    }

    #[test]
    fn memory_caps_concurrency() {
        // Phi-2 with long outputs: the memory model must clamp the batch
        // below the requested 128 (quadratic activations).
        let (dev, _) = setup();
        let cfg = RunConfig::new(Llm::Phi2, Precision::Fp16);
        let mut arr = PoissonArrivals::paper_shape(50.0);
        arr.input_tokens = 64;
        arr.output_tokens = 192;
        arr.shape_jitter = 0.0;
        let reqs = arr.generate(200, 4);
        let r = ContinuousBatcher::new(128).run(&dev, &cfg, &reqs).unwrap();
        assert!(r.mean_occupancy < 128.0, "occupancy {}", r.mean_occupancy);
        assert_eq!(r.requests, 200);
    }

    #[test]
    fn unloadable_model_fails_fast() {
        let (dev, _) = setup();
        let cfg = RunConfig::new(Llm::DeepseekQwen32b, Precision::Fp16);
        let reqs = PoissonArrivals::paper_shape(1.0).generate(5, 5);
        assert!(matches!(
            ContinuousBatcher::new(8).run(&dev, &cfg, &reqs),
            Err(RunError::ModelDoesNotLoad { .. })
        ));
    }

    #[test]
    fn empty_queue_is_invalid() {
        let (dev, cfg) = setup();
        assert!(matches!(
            ContinuousBatcher::new(8).run(&dev, &cfg, &[]),
            Err(RunError::InvalidConfig(_))
        ));
    }
}
