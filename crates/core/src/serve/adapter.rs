//! Adapter from serving telemetry to a Perfetto timeline.
//!
//! [`record_serve_run`] renders one serving run — the scheduler's
//! [`IterationTrace`] log, the per-iteration rail power samples, and the
//! KV-pressure preemption instants — as one process on a
//! [`edgellm_trace::Trace`]: iteration spans on a `scheduler`
//! track, `kv_blocks` and `power_rails_w` counter tracks beneath it, so
//! phase timing and the paper's power rails line up on a shared clock.
//! [`ServeSim::finish`](crate::serve::ServeSim::finish) calls it
//! automatically whenever the global trace sink is enabled.

use edgellm_power::{record_rail_counters, RailBreakdown};
use edgellm_trace::{Arg, Trace};

use crate::serve::trace::{IterPhase, IterationTrace};

/// Seconds → trace microseconds.
const S_TO_US: f64 = 1e6;

/// Track id for scheduler iteration spans and preemption instants.
const TID_SCHEDULER: u32 = 1;

/// Span/track name for one iteration phase.
fn phase_name(phase: IterPhase) -> &'static str {
    match phase {
        IterPhase::Prefill => "prefill",
        IterPhase::Decode => "decode",
        IterPhase::Mixed => "mixed",
        IterPhase::Idle => "idle",
    }
}

/// Append one serving run as process `pid` (named `label`) of `out`.
///
/// * every [`IterationTrace`] becomes a complete event on the
///   `scheduler` track, named after its phase, spanning
///   `[t_s - dt_s, t_s]`, carrying batch composition and power as args;
/// * KV pool occupancy becomes a `kv_blocks` counter track;
/// * `rails` (iteration-end [`RailBreakdown`] samples) become the
///   stacked `power_rails_w` counter track;
/// * `cache` (iteration-end prefix-cache occupancy samples) becomes a
///   `kv_cached_blocks` counter track — emitted only when non-empty,
///   i.e. only for runs serving with the prefix cache on;
/// * `preemptions` (`(time, request id)`) become thread-scoped instants
///   on the scheduler track.
pub fn record_serve_run(
    out: &mut Trace,
    pid: u32,
    label: &str,
    iters: &[IterationTrace],
    rails: &[(f64, RailBreakdown)],
    cache: &[(f64, usize)],
    preemptions: &[(f64, u64)],
) {
    out.set_process_name(pid, label);
    out.set_thread_name(pid, TID_SCHEDULER, "scheduler");
    for it in iters {
        let args = vec![
            ("decoding".to_string(), Arg::U64(it.decoding as u64)),
            ("prefilling".to_string(), Arg::U64(it.prefilling as u64)),
            ("tokens".to_string(), Arg::U64(it.tokens)),
            ("kv_blocks_used".to_string(), Arg::U64(it.kv_blocks_used as u64)),
            ("power_w".to_string(), Arg::F64(it.power_w)),
        ];
        out.complete(
            pid,
            TID_SCHEDULER,
            phase_name(it.phase),
            "serve",
            (it.t_s - it.dt_s) * S_TO_US,
            it.dt_s * S_TO_US,
            args,
        );
        out.counter(pid, "kv_blocks", it.t_s * S_TO_US, &[("used", it.kv_blocks_used as f64)]);
    }
    record_rail_counters(out, pid, "power_rails_w", rails);
    for &(t_s, cached) in cache {
        out.counter(pid, "kv_cached_blocks", t_s * S_TO_US, &[("cached", cached as f64)]);
    }
    for &(t_s, rid) in preemptions {
        out.instant(
            pid,
            TID_SCHEDULER,
            "preempt",
            "serve",
            t_s * S_TO_US,
            vec![("rid".to_string(), Arg::U64(rid))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter(t_s: f64, phase: IterPhase) -> IterationTrace {
        IterationTrace {
            t_s,
            dt_s: 0.25,
            phase,
            decoding: 3,
            prefilling: 1,
            kv_blocks_used: 40,
            kv_blocks_total: 128,
            power_w: 35.0,
            tokens: 19,
        }
    }

    #[test]
    fn run_renders_spans_counters_and_instants() {
        let mut out = Trace::new();
        let rails = [(0.25, RailBreakdown { idle_w: 8.0, gpu_w: 20.0, cpu_w: 3.0, mem_w: 6.0 })];
        record_serve_run(
            &mut out,
            1,
            "orin · llama-3.1-8b fp16",
            &[iter(0.25, IterPhase::Mixed), iter(0.5, IterPhase::Decode)],
            &rails,
            &[],
            &[(0.5, 7)],
        );
        // 2 spans + 2 kv counters + 1 rail counter + 1 instant.
        assert_eq!(out.len(), 6);
        let json = out.to_chrome_json();
        assert!(json.contains("\"mixed\""));
        assert!(json.contains("\"kv_blocks\""));
        assert!(json.contains("\"power_rails_w\""));
        assert!(json.contains("\"preempt\""));
        assert!(json.contains("\"rid\":7"));
        edgellm_trace::validate_chrome_trace(&json).expect("schema-valid");
    }

    #[test]
    fn cache_occupancy_track_renders_when_sampled() {
        let mut out = Trace::new();
        record_serve_run(
            &mut out,
            1,
            "dev",
            &[iter(0.25, IterPhase::Decode)],
            &[],
            &[(0.25, 5), (0.5, 7)],
            &[],
        );
        // 1 span + 1 kv counter + 2 cache counters.
        assert_eq!(out.len(), 4);
        let json = out.to_chrome_json();
        assert!(json.contains("\"kv_cached_blocks\""));
        assert!(json.contains("\"cached\":7"), "{json}");
        edgellm_trace::validate_chrome_trace(&json).expect("schema-valid");
    }

    #[test]
    fn span_start_precedes_end_timestamp() {
        let mut out = Trace::new();
        record_serve_run(&mut out, 1, "dev", &[iter(1.0, IterPhase::Prefill)], &[], &[], &[]);
        let json = out.to_chrome_json();
        // t_s = 1.0 s, dt_s = 0.25 s → span starts at 750 000 µs.
        assert!(json.contains("\"ts\":750000"), "{json}");
        assert!(json.contains("\"dur\":250000"), "{json}");
    }
}
