//! Per-iteration telemetry emitted by the event-driven scheduler.
//!
//! Each scheduler step — a fused prefill+decode iteration, a solo
//! blocking prefill, or an idle gap — produces one [`IterationTrace`]
//! record. The trace is the raw material for the serving report's energy
//! integral, TTFT quantiles and KV-pressure analysis, and is returned to
//! callers so experiments can plot per-iteration dynamics.

/// What the engine did during one scheduler iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterPhase {
    /// Prompt processing only (a solo blocking prefill, or chunked
    /// prefill with no sequence decoding).
    Prefill,
    /// Decode only: one token for every live sequence.
    Decode,
    /// A fused iteration: prefill chunks riding the decode batch's
    /// weight stream.
    Mixed,
    /// No live sequence; the clock jumps to the next arrival.
    Idle,
}

/// One scheduler iteration's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationTrace {
    /// Wall-clock time at the end of the iteration (s).
    pub t_s: f64,
    /// Iteration duration (s).
    pub dt_s: f64,
    /// Phase classification.
    pub phase: IterPhase,
    /// Sequences that produced a decode token this iteration.
    pub decoding: usize,
    /// Sequences that advanced prefill this iteration.
    pub prefilling: usize,
    /// KV pool blocks held at the end of the iteration.
    pub kv_blocks_used: usize,
    /// Total KV pool blocks.
    pub kv_blocks_total: usize,
    /// Module power during the iteration (W).
    pub power_w: f64,
    /// Tokens processed: prefill chunk tokens plus decode tokens.
    pub tokens: u64,
}

impl IterationTrace {
    /// Energy of this iteration (J).
    pub fn energy_j(&self) -> f64 {
        self.power_w * self.dt_s
    }

    /// KV pool occupancy fraction at the end of the iteration.
    pub fn kv_occupancy(&self) -> f64 {
        if self.kv_blocks_total == 0 {
            0.0
        } else {
            self.kv_blocks_used as f64 / self.kv_blocks_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> IterationTrace {
        IterationTrace {
            t_s: 1.0,
            dt_s: 0.5,
            phase: IterPhase::Mixed,
            decoding: 4,
            prefilling: 1,
            kv_blocks_used: 25,
            kv_blocks_total: 100,
            power_w: 40.0,
            tokens: 36,
        }
    }

    #[test]
    fn energy_and_occupancy_derived() {
        let e = entry();
        assert!((e.energy_j() - 20.0).abs() < 1e-12);
        assert!((e.kv_occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_pool_occupancy_is_zero() {
        let mut e = entry();
        e.kv_blocks_total = 0;
        e.kv_blocks_used = 0;
        assert_eq!(e.kv_occupancy(), 0.0);
    }
}
