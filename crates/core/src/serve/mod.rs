//! Event-driven, iteration-level serving.
//!
//! This module is the successor to the monolithic
//! [`ContinuousBatcher::run`](crate::ContinuousBatcher::run) loop. The
//! [`EventScheduler`] advances the system one engine iteration at a time
//! with three properties the legacy loop lacked:
//!
//! * **chunked prefill** — prompts are processed `chunk_tokens` at a time,
//!   fused with the decode batch so admissions do not stall live
//!   sequences ([`PrefillPolicy`]);
//! * **live KV accounting** — cache growth draws on a real
//!   [`KvBlockAllocator`](edgellm_mem::KvBlockAllocator) pool; exhaustion
//!   preempts the youngest sequence (free + re-queue with recompute)
//!   instead of being worst-cased away at admission;
//! * **per-iteration energy** — every step (and idle gap) is billed
//!   through the rail power model, emitting an [`IterationTrace`].
//!
//! ```
//! use edgellm_core::serve::{EventScheduler, ServeConfig};
//! use edgellm_core::{PoissonArrivals, RunConfig};
//! use edgellm_hw::DeviceSpec;
//! use edgellm_models::{Llm, Precision};
//!
//! let dev = DeviceSpec::orin_agx_64gb();
//! let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
//! let reqs = PoissonArrivals::paper_shape(1.5).generate(20, 42);
//! let run = EventScheduler::new(ServeConfig::chunked(16))
//!     .run(&dev, &cfg, &reqs)
//!     .unwrap();
//! assert_eq!(run.report.requests, 20);
//! assert!(run.report.energy_j > 0.0);
//! ```

pub mod adapter;
pub mod governor;
pub mod scheduler;
pub mod sim;
pub mod trace;

pub use adapter::record_serve_run;
pub use edgellm_mem::TokenId;
pub use governor::{GovernorHook, GovernorObs, NullGovernor};
pub use scheduler::{
    EventScheduler, PrefillPolicy, ServeConfig, ServeRun, SpecConfig, DEFAULT_CHUNK_TOKENS,
    KV_BLOCK_TOKENS,
};
pub use sim::{Completion, ServeAudit, ServeSim};
pub use trace::{IterPhase, IterationTrace};
