//! The event-driven, iteration-level serving scheduler.
//!
//! [`EventScheduler`] drives a trace of [`Request`]s to completion one
//! engine iteration at a time, replacing the legacy
//! [`ContinuousBatcher::run`](crate::ContinuousBatcher::run) simulation
//! (which is now a thin wrapper over this module) with three upgrades:
//!
//! 1. **Chunked prefill** ([`PrefillPolicy::Chunked`]): prompt processing
//!    advances a fixed token chunk per iteration, fused with the running
//!    decode batch. On an edge accelerator decode is weight-stream bound,
//!    so a chunk's FLOPs largely ride the bandwidth the decode step
//!    already pays — only the compute *excess* over the shared stream
//!    lengthens the iteration. The blocking policy instead charges each
//!    admission a full solo prefill that stalls every live sequence
//!    (HF-generate style), accumulated in
//!    [`ContinuousReport::prefill_stall_s`].
//! 2. **Live KV accounting**: every cached token is drawn from an
//!    [`KvBlockAllocator`] pool sized from what the device has left after
//!    weights and an activation reserve — not from a static worst-case
//!    concurrency clamp. When an iteration's growth cannot be served, the
//!    youngest live sequence is preempted: its blocks are freed and it is
//!    re-queued with a recompute penalty (its regenerated tokens join the
//!    prompt it must prefill again).
//! 3. **Per-iteration energy**: each iteration charges
//!    `dt × RailModel::total_w` under the phase's utilization profile
//!    (idle gaps at the idle profile), emitting an [`IterationTrace`] so
//!    the energy integral and KV pressure are inspectable step by step.

use std::collections::VecDeque;

use crate::arrivals::Request;
use crate::config::RunConfig;
use crate::continuous::ContinuousReport;
use crate::error::RunError;
use crate::metrics::quantile;
use crate::serve::trace::{IterPhase, IterationTrace};
use edgellm_hw::DeviceSpec;
use edgellm_mem::{KvBlockAllocator, MemoryModel, GB, OOM_HEADROOM_GB};
use edgellm_perf::PerfModel;
use edgellm_power::{LoadProfile, RailModel};

/// Tokens per KV-cache block (matches the engine's paged allocator).
pub const KV_BLOCK_TOKENS: u64 = 16;

/// Default prefill chunk, in tokens, fused into each decode iteration.
///
/// Matches the paper workload's mean prompt (32 tokens): typical prompts
/// finish prefill in one or two fused iterations while long prompts
/// cannot monopolize the engine.
pub const DEFAULT_CHUNK_TOKENS: u64 = 32;

/// How prompt processing is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillPolicy {
    /// Each admission runs its whole prefill as a solo iteration,
    /// stalling every decoding sequence (the measured HF-stack regime).
    Blocking,
    /// Prefill advances at most `chunk_tokens` per iteration, fused with
    /// the decode batch (Sarathi/vLLM-style chunked prefill).
    Chunked {
        /// Prompt tokens processed per fused iteration (≥ 1).
        chunk_tokens: u64,
    },
}

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum concurrent sequences (memory may cap admission lower).
    pub max_batch: usize,
    /// Prompt-processing policy.
    pub prefill: PrefillPolicy,
    /// Optional cap on the KV pool in bytes, below what the memory model
    /// derives — models co-tenant memory reservations and lets tests
    /// exercise KV pressure deterministically.
    pub kv_pool_bytes: Option<u64>,
}

impl ServeConfig {
    /// Blocking-prefill configuration (legacy `ContinuousBatcher` regime).
    pub fn blocking(max_batch: usize) -> Self {
        ServeConfig { max_batch, prefill: PrefillPolicy::Blocking, kv_pool_bytes: None }
    }

    /// Chunked-prefill configuration with the default chunk size.
    pub fn chunked(max_batch: usize) -> Self {
        ServeConfig {
            max_batch,
            prefill: PrefillPolicy::Chunked { chunk_tokens: DEFAULT_CHUNK_TOKENS },
            kv_pool_bytes: None,
        }
    }

    /// Override the prefill chunk size (switches to the chunked policy).
    pub fn chunk_tokens(mut self, tokens: u64) -> Self {
        self.prefill = PrefillPolicy::Chunked { chunk_tokens: tokens.max(1) };
        self
    }

    /// Cap the KV pool (co-tenancy reservation / deterministic tests).
    pub fn kv_pool_cap(mut self, bytes: u64) -> Self {
        self.kv_pool_bytes = Some(bytes);
        self
    }
}

/// The outcome of driving a request trace to completion.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Aggregate serving metrics.
    pub report: ContinuousReport,
    /// One record per scheduler iteration (incl. idle gaps).
    pub trace: Vec<IterationTrace>,
    /// KV blocks taken from the pool over the run.
    pub kv_blocks_allocated: u64,
    /// KV blocks returned to the pool (completion + preemption); equals
    /// `kv_blocks_allocated` once the queue drains.
    pub kv_blocks_freed: u64,
    /// Output tokens delivered to completed requests (recomputed tokens
    /// after a preemption are not double-counted).
    pub served_output_tokens: u64,
}

/// One request's scheduling state, preserved across preemptions.
#[derive(Debug, Clone, Copy)]
struct Job {
    arrival_s: f64,
    /// Prompt tokens to prefill; grows by the regenerated tokens when the
    /// sequence is preempted (the recompute penalty).
    prompt_tokens: u64,
    /// Output tokens the request asked for.
    output_total: u64,
    /// Output tokens still to deliver.
    output_remaining: u64,
    /// Time to first token, recorded once at first prefill completion and
    /// kept across preemptions.
    ttft_s: Option<f64>,
}

/// A sequence currently holding KV blocks.
#[derive(Debug, Clone, Copy)]
struct Live {
    id: u32,
    job: Job,
    /// Prompt tokens prefilled so far.
    prompt_done: u64,
}

impl Live {
    fn ctx(&self) -> u64 {
        self.job.prompt_tokens + (self.job.output_total - self.job.output_remaining)
    }

    fn decoding(&self) -> bool {
        self.prompt_done == self.job.prompt_tokens && self.job.output_remaining > 0
    }
}

/// The event-driven iteration-level scheduler.
#[derive(Debug, Clone)]
pub struct EventScheduler {
    cfg: ServeConfig,
}

impl EventScheduler {
    /// A scheduler with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        EventScheduler { cfg }
    }

    /// Drive all `requests` to completion on the device in `cfg` (its
    /// batch/sequence fields are ignored; shapes come from the requests).
    pub fn run(
        &self,
        device: &DeviceSpec,
        cfg: &RunConfig,
        requests: &[Request],
    ) -> Result<ServeRun, RunError> {
        if requests.is_empty() {
            return Err(RunError::InvalidConfig("no requests".into()));
        }
        cfg.power_mode.validate(device)?;
        let perf = PerfModel::new(device.clone(), cfg.llm, cfg.precision, cfg.power_mode.clocks);
        let mm = MemoryModel::new(cfg.llm, cfg.precision, device.capacity_gb());
        if !mm.model_loads() {
            return Err(RunError::ModelDoesNotLoad {
                required_gb: mm.weight_bytes() / GB,
                usable_gb: device.capacity_gb() - OOM_HEADROOM_GB,
            });
        }
        let usable = ((device.capacity_gb() - OOM_HEADROOM_GB) * GB) as u64;
        let max_sl =
            requests.iter().map(|r| r.input_tokens + r.output_tokens).max().expect("non-empty");
        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        let block_bytes = KV_BLOCK_TOKENS * kv_per_token;

        // Admission cap from the *live* footprint — weights, activations
        // at the concurrency, one KV block per sequence. KV growth beyond
        // that is tracked by the allocator, not worst-cased here.
        let footprint =
            |b: u64| mm.weight_bytes() + mm.activation_bytes(b, max_sl) + (b * block_bytes) as f64;
        let mut cap = self.cfg.max_batch.max(1) as u64;
        while cap > 1 && footprint(cap) > usable as f64 {
            cap -= 1;
        }
        if footprint(cap) > usable as f64 {
            return Err(RunError::OutOfMemory {
                peak_gb: footprint(cap) / GB,
                usable_gb: usable as f64 / GB,
            });
        }
        let cap = cap as usize;
        let reserve = (mm.weight_bytes() + mm.activation_bytes(cap as u64, max_sl)) as u64;
        let mut pool = usable.saturating_sub(reserve);
        if let Some(limit) = self.cfg.kv_pool_bytes {
            pool = pool.min(limit);
        }
        if pool < block_bytes {
            return Err(RunError::OutOfMemory {
                peak_gb: (reserve + block_bytes) as f64 / GB,
                usable_gb: usable as f64 / GB,
            });
        }
        let mut kv = KvBlockAllocator::new(pool, KV_BLOCK_TOKENS, kv_per_token);

        let rails = RailModel::orin_agx(device.clone());
        let maxn = PerfModel::new(device.clone(), cfg.llm, cfg.precision, device.max_clocks());
        let bw_ratio = perf.effective_bandwidth() / maxn.effective_bandwidth();
        let clocks = &cfg.power_mode.clocks;
        let profile = |u: edgellm_perf::Utilization| LoadProfile {
            gpu_util: u.gpu,
            cpu_util: u.cpu,
            bw_util: u.mem_bw,
            bw_ratio,
        };
        let idle_power = rails.total_w(clocks, &LoadProfile::idle());
        let t_stream = perf.weight_stream_time();
        let chunk = match self.cfg.prefill {
            PrefillPolicy::Chunked { chunk_tokens } => chunk_tokens.max(1),
            PrefillPolicy::Blocking => 0,
        };

        let mut pending: VecDeque<Job> = {
            let mut q: Vec<Job> = requests
                .iter()
                .map(|r| Job {
                    arrival_s: r.arrival_s,
                    prompt_tokens: r.input_tokens,
                    output_total: r.output_tokens,
                    output_remaining: r.output_tokens,
                    ttft_s: None,
                })
                .collect();
            q.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
            q.into()
        };
        let n = pending.len();

        let mut live: Vec<Live> = Vec::new();
        let mut next_id: u32 = 0;
        let mut t = 0.0f64;
        let mut latencies: Vec<f64> = Vec::with_capacity(n);
        let mut ttfts: Vec<f64> = Vec::with_capacity(n);
        let mut trace: Vec<IterationTrace> = Vec::new();
        let mut energy_j = 0.0f64;
        let mut prefill_stall_s = 0.0f64;
        let mut preemptions = 0usize;
        let mut served_tokens = 0u64;
        let mut occupancy_sum = 0usize;
        let mut decode_iters = 0usize;
        let mut kv_allocated = 0u64;
        let mut kv_freed = 0u64;

        while latencies.len() < n {
            // --- admission at the iteration boundary ---
            while let Some(job) = pending.front().copied() {
                if job.arrival_s > t || live.len() >= cap {
                    break;
                }
                // Watermark gate: the prompt plus the first decode token
                // must have room, or admission waits for blocks to free.
                let need = ((job.prompt_tokens + 1).div_ceil(KV_BLOCK_TOKENS)) as usize;
                if need > kv.free_blocks() {
                    if live.is_empty() {
                        // Every block is free and the prompt still does
                        // not fit: the request alone exceeds the pool.
                        return Err(RunError::OutOfMemory {
                            peak_gb: (reserve + need as u64 * block_bytes) as f64 / GB,
                            usable_gb: usable as f64 / GB,
                        });
                    }
                    break;
                }
                pending.pop_front();
                let id = next_id;
                next_id += 1;
                kv.register(id);
                match self.cfg.prefill {
                    PrefillPolicy::Blocking => {
                        // The joining sequence pays its solo prefill now,
                        // stalling everything live.
                        kv_allocated +=
                            kv.append(id, job.prompt_tokens).expect("gated on free") as u64;
                        let dt = perf.prefill_time(1, job.prompt_tokens.max(1));
                        t += dt;
                        prefill_stall_s += dt;
                        let p = rails.total_w(
                            clocks,
                            &profile(perf.prefill_utilization(1, job.prompt_tokens.max(1))),
                        );
                        energy_j += p * dt;
                        let mut job = job;
                        job.ttft_s = Some(t - job.arrival_s);
                        trace.push(IterationTrace {
                            t_s: t,
                            dt_s: dt,
                            phase: IterPhase::Prefill,
                            decoding: 0,
                            prefilling: 1,
                            kv_blocks_used: kv.used_blocks(),
                            kv_blocks_total: kv.total_blocks(),
                            power_w: p,
                            tokens: job.prompt_tokens,
                        });
                        live.push(Live { id, job, prompt_done: job.prompt_tokens });
                    }
                    PrefillPolicy::Chunked { .. } => {
                        live.push(Live { id, job, prompt_done: 0 });
                    }
                }
            }

            if live.is_empty() {
                // Idle: jump to the next arrival.
                let next_t = pending.front().expect("work remains").arrival_s;
                let dt = (next_t - t).max(0.0);
                if dt > 0.0 {
                    energy_j += idle_power * dt;
                    trace.push(IterationTrace {
                        t_s: next_t,
                        dt_s: dt,
                        phase: IterPhase::Idle,
                        decoding: 0,
                        prefilling: 0,
                        kv_blocks_used: kv.used_blocks(),
                        kv_blocks_total: kv.total_blocks(),
                        power_w: idle_power,
                        tokens: 0,
                    });
                }
                t = t.max(next_t);
                continue;
            }

            // --- secure KV capacity for this iteration's growth,
            //     preempting the youngest sequence under pressure ---
            loop {
                let mut need = 0usize;
                for s in &live {
                    let grow = if s.prompt_done < s.job.prompt_tokens {
                        chunk.min(s.job.prompt_tokens - s.prompt_done)
                    } else if s.job.output_remaining > 0 {
                        1
                    } else {
                        0
                    };
                    if grow > 0 {
                        need += kv.blocks_needed(s.id, grow).expect("live seq registered");
                    }
                }
                if need <= kv.free_blocks() {
                    break;
                }
                let victim = live
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        a.job
                            .arrival_s
                            .partial_cmp(&b.job.arrival_s)
                            .expect("finite")
                            .then(a.id.cmp(&b.id))
                    })
                    .map(|(i, _)| i)
                    .expect("live non-empty");
                let s = live.swap_remove(victim);
                kv_freed += kv.release(s.id).expect("live seq registered") as u64;
                preemptions += 1;
                // Recompute penalty: the discarded cache — including every
                // token generated so far — joins the prompt to re-prefill.
                let mut job = s.job;
                job.prompt_tokens += s.job.output_total - s.job.output_remaining;
                let pos = pending
                    .iter()
                    .position(|p| p.arrival_s > job.arrival_s)
                    .unwrap_or(pending.len());
                pending.insert(pos, job);
                if live.is_empty() {
                    break;
                }
            }
            if live.is_empty() {
                // Everything was preempted; re-admission (or the pool
                // error above) decides what happens next.
                continue;
            }

            // --- one fused iteration ---
            let deks: Vec<usize> =
                live.iter().enumerate().filter(|(_, s)| s.decoding()).map(|(i, _)| i).collect();
            let n_dec = deks.len();
            let avg_ctx = if n_dec > 0 {
                (deks.iter().map(|&i| live[i].ctx()).sum::<u64>() as f64 / n_dec as f64) as u64
            } else {
                0
            };

            let mut prefillers = 0usize;
            let mut prefill_tokens = 0u64;
            let mut chunk_excess_s = 0.0f64;
            let mut finished_prefill: Vec<usize> = Vec::new();
            if chunk > 0 {
                for (i, s) in live.iter_mut().enumerate() {
                    if s.prompt_done < s.job.prompt_tokens {
                        let adv = chunk.min(s.job.prompt_tokens - s.prompt_done);
                        kv_allocated += kv.append(s.id, adv).expect("capacity pre-checked") as u64;
                        s.prompt_done += adv;
                        prefillers += 1;
                        prefill_tokens += adv;
                        // The chunk's weight traffic rides the decode
                        // batch's stream; only compute beyond it bills.
                        chunk_excess_s += (perf.prefill_time(1, adv) - t_stream).max(0.0);
                        if s.prompt_done == s.job.prompt_tokens {
                            finished_prefill.push(i);
                        }
                    }
                }
            }

            let dt = if n_dec > 0 {
                perf.decode_step_time(n_dec as u64, avg_ctx.max(1))
            } else {
                t_stream + perf.host_per_step()
            } + chunk_excess_s;
            prefill_stall_s += chunk_excess_s;

            for &i in &deks {
                kv_allocated += kv.append(live[i].id, 1).expect("capacity pre-checked") as u64;
                live[i].job.output_remaining -= 1;
            }
            t += dt;
            for &i in &finished_prefill {
                if live[i].job.ttft_s.is_none() {
                    live[i].job.ttft_s = Some(t - live[i].job.arrival_s);
                }
            }

            let phase = match (n_dec > 0, prefillers > 0) {
                (true, true) => IterPhase::Mixed,
                (true, false) => IterPhase::Decode,
                (false, _) => IterPhase::Prefill,
            };
            let power_w = if n_dec == 0 {
                rails.total_w(
                    clocks,
                    &profile(perf.prefill_utilization(prefillers.max(1) as u64, chunk.max(1))),
                )
            } else {
                let p_dec = rails.total_w(
                    clocks,
                    &profile(perf.decode_utilization(n_dec as u64, avg_ctx.max(1))),
                );
                if prefillers == 0 || chunk_excess_s <= 0.0 {
                    p_dec
                } else {
                    // Time-weighted blend of the decode and chunk shares.
                    let p_pre = rails.total_w(clocks, &profile(perf.prefill_utilization(1, chunk)));
                    (p_dec * (dt - chunk_excess_s) + p_pre * chunk_excess_s) / dt
                }
            };
            energy_j += power_w * dt;
            if n_dec > 0 {
                occupancy_sum += n_dec;
                decode_iters += 1;
            }

            let mut i = 0;
            while i < live.len() {
                let s = live[i];
                if s.prompt_done == s.job.prompt_tokens && s.job.output_remaining == 0 {
                    live.swap_remove(i);
                    latencies.push(t - s.job.arrival_s);
                    ttfts.push(s.job.ttft_s.unwrap_or(t - s.job.arrival_s));
                    served_tokens += s.job.output_total;
                    kv_freed += kv.release(s.id).expect("live seq registered") as u64;
                } else {
                    i += 1;
                }
            }

            trace.push(IterationTrace {
                t_s: t,
                dt_s: dt,
                phase,
                decoding: n_dec,
                prefilling: prefillers,
                kv_blocks_used: kv.used_blocks(),
                kv_blocks_total: kv.total_blocks(),
                power_w,
                tokens: prefill_tokens + n_dec as u64,
            });
        }

        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let report = ContinuousReport {
            makespan_s: t,
            mean_latency_s: latencies.iter().sum::<f64>() / latencies.len() as f64,
            p95_latency_s: quantile(&latencies, 0.95),
            output_tok_s: served_tokens as f64 / t,
            mean_occupancy: occupancy_sum as f64 / decode_iters.max(1) as f64,
            requests: latencies.len(),
            energy_j,
            preemptions,
            mean_ttft_s: ttfts.iter().sum::<f64>() / ttfts.len() as f64,
            p50_ttft_s: quantile(&ttfts, 0.50),
            p99_ttft_s: quantile(&ttfts, 0.99),
            prefill_stall_s,
        };
        Ok(ServeRun {
            report,
            trace,
            kv_blocks_allocated: kv_allocated,
            kv_blocks_freed: kv_freed,
            served_output_tokens: served_tokens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::PoissonArrivals;
    use edgellm_models::{Llm, Precision};

    fn setup() -> (DeviceSpec, RunConfig) {
        (DeviceSpec::orin_agx_64gb(), RunConfig::new(Llm::Llama31_8b, Precision::Fp16))
    }

    #[test]
    fn chunked_run_completes_and_accounts() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.0).generate(30, 7);
        let r = EventScheduler::new(ServeConfig::chunked(16)).run(&dev, &cfg, &reqs).unwrap();
        assert_eq!(r.report.requests, 30);
        assert_eq!(r.served_output_tokens, reqs.iter().map(|q| q.output_tokens).sum::<u64>());
        assert_eq!(r.kv_blocks_allocated, r.kv_blocks_freed, "pool drains clean");
        assert_eq!(r.trace.last().unwrap().kv_blocks_used, 0);
        assert!(r.report.energy_j > 0.0);
        assert!(r.report.mean_ttft_s > 0.0 && r.report.mean_ttft_s <= r.report.mean_latency_s);
        assert!(r.report.p50_ttft_s <= r.report.p99_ttft_s);
        assert_eq!(r.report.preemptions, 0, "64 GB pool needs no preemption here");
    }

    #[test]
    fn chunked_prefill_cuts_mean_ttft_under_load() {
        // Acceptance: at ≥ 1.5 req/s on Llama-3.1-8B FP16, fusing prefill
        // chunks into decode iterations must beat solo blocking prefills
        // on mean TTFT (the blocking stall compounds down the queue).
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.5).generate(60, 2);
        let chunked = EventScheduler::new(ServeConfig::chunked(16)).run(&dev, &cfg, &reqs).unwrap();
        let blocking =
            EventScheduler::new(ServeConfig::blocking(16)).run(&dev, &cfg, &reqs).unwrap();
        assert!(
            chunked.report.mean_ttft_s < blocking.report.mean_ttft_s,
            "chunked {:.3}s vs blocking {:.3}s",
            chunked.report.mean_ttft_s,
            blocking.report.mean_ttft_s
        );
        assert!(chunked.report.prefill_stall_s < blocking.report.prefill_stall_s);
    }

    #[test]
    fn preemption_recovers_under_kv_pressure() {
        // A deliberately tiny KV pool: the batch outgrows it mid-decode,
        // the youngest sequence is preempted (recompute penalty), and the
        // workload still drains completely with exact token accounting.
        let (dev, cfg) = setup();
        let mut arr = PoissonArrivals::paper_shape(4.0);
        arr.input_tokens = 48;
        arr.output_tokens = 96;
        arr.shape_jitter = 0.0;
        let reqs = arr.generate(12, 9);
        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        // Room for ~4 full sequences of 144 tokens — 12 want in.
        let pool = 4 * 144 * kv_per_token;
        let r = EventScheduler::new(ServeConfig::chunked(8).kv_pool_cap(pool))
            .run(&dev, &cfg, &reqs)
            .unwrap();
        assert!(r.report.preemptions > 0, "pool pressure must preempt");
        assert_eq!(r.report.requests, 12, "every request still completes");
        assert_eq!(
            r.served_output_tokens,
            reqs.iter().map(|q| q.output_tokens).sum::<u64>(),
            "preemption must not double-count served tokens"
        );
        assert_eq!(r.kv_blocks_allocated, r.kv_blocks_freed);
        assert_eq!(r.trace.last().unwrap().kv_blocks_used, 0);
    }

    #[test]
    fn single_oversized_request_errors_not_loops() {
        let (dev, cfg) = setup();
        let mut arr = PoissonArrivals::paper_shape(1.0);
        arr.input_tokens = 4096;
        arr.output_tokens = 16;
        arr.shape_jitter = 0.0;
        let reqs = arr.generate(1, 3);
        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        let pool = 64 * kv_per_token; // 4 blocks: far below one prompt
        let err = EventScheduler::new(ServeConfig::chunked(4).kv_pool_cap(pool))
            .run(&dev, &cfg, &reqs)
            .unwrap_err();
        assert!(matches!(err, RunError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn trace_time_is_consistent() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(2.0).generate(20, 5);
        let r = EventScheduler::new(ServeConfig::chunked(8)).run(&dev, &cfg, &reqs).unwrap();
        let mut t = 0.0;
        let mut e = 0.0;
        for it in &r.trace {
            assert!(it.dt_s >= 0.0);
            t += it.dt_s;
            e += it.energy_j();
            assert!((it.t_s - t).abs() < 1e-6, "trace clock drift at {}", it.t_s);
            assert!(it.kv_blocks_used <= it.kv_blocks_total);
        }
        assert!((t - r.report.makespan_s).abs() < 1e-6);
        assert!((e - r.report.energy_j).abs() < 1e-6 * r.report.energy_j.max(1.0));
    }

    #[test]
    fn unloadable_model_and_empty_queue_fail_fast() {
        let (dev, _) = setup();
        let cfg = RunConfig::new(Llm::DeepseekQwen32b, Precision::Fp16);
        let reqs = PoissonArrivals::paper_shape(1.0).generate(4, 1);
        assert!(matches!(
            EventScheduler::new(ServeConfig::chunked(8)).run(&dev, &cfg, &reqs),
            Err(RunError::ModelDoesNotLoad { .. })
        ));
        let (dev, cfg) = setup();
        assert!(matches!(
            EventScheduler::new(ServeConfig::blocking(8)).run(&dev, &cfg, &[]),
            Err(RunError::InvalidConfig(_))
        ));
    }
}
