//! The event-driven, iteration-level serving scheduler.
//!
//! [`EventScheduler`] drives a trace of [`Request`]s to completion one
//! engine iteration at a time, replacing the legacy
//! [`ContinuousBatcher::run`](crate::ContinuousBatcher::run) simulation
//! (which is now a thin wrapper over this module) with three upgrades:
//!
//! 1. **Chunked prefill** ([`PrefillPolicy::Chunked`]): prompt processing
//!    advances a fixed token chunk per iteration, fused with the running
//!    decode batch. On an edge accelerator decode is weight-stream bound,
//!    so a chunk's FLOPs largely ride the bandwidth the decode step
//!    already pays — only the compute *excess* over the shared stream
//!    lengthens the iteration. The blocking policy instead charges each
//!    admission a full solo prefill that stalls every live sequence
//!    (HF-generate style), accumulated in
//!    [`ContinuousReport::prefill_stall_s`].
//! 2. **Live KV accounting**: every cached token is drawn from an
//!    [`KvBlockAllocator`](edgellm_mem::KvBlockAllocator) pool sized from
//!    what the device has left after weights and an activation reserve —
//!    not from a static worst-case concurrency clamp. When an iteration's
//!    growth cannot be served, the youngest live sequence is preempted:
//!    its blocks are freed and it is re-queued with a recompute penalty
//!    (its regenerated tokens join the prompt it must prefill again).
//! 3. **Per-iteration energy**: each iteration charges
//!    `dt × RailModel::total_w` under the phase's utilization profile
//!    (idle gaps at the idle profile), emitting an [`IterationTrace`] so
//!    the energy integral and KV pressure are inspectable step by step.
//!
//! The mechanics live in [`ServeSim`], a steppable
//! core (`next_event_s()` / `step(now)`) that fleet co-simulators drive
//! one event at a time; `EventScheduler::run` is the single-device
//! convenience wrapper that steps it to completion.

use crate::arrivals::Request;
use crate::config::RunConfig;
use crate::continuous::ContinuousReport;
use crate::error::RunError;
use crate::serve::sim::ServeSim;
use crate::serve::trace::IterationTrace;
use edgellm_hw::DeviceSpec;

/// Tokens per KV-cache block (matches the engine's paged allocator).
pub const KV_BLOCK_TOKENS: u64 = 16;

/// Default prefill chunk, in tokens, fused into each decode iteration.
///
/// Matches the paper workload's mean prompt (32 tokens): typical prompts
/// finish prefill in one or two fused iterations while long prompts
/// cannot monopolize the engine.
pub const DEFAULT_CHUNK_TOKENS: u64 = 32;

/// How prompt processing is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillPolicy {
    /// Each admission runs its whole prefill as a solo iteration,
    /// stalling every decoding sequence (the measured HF-stack regime).
    Blocking,
    /// Prefill advances at most `chunk_tokens` per iteration, fused with
    /// the decode batch (Sarathi/vLLM-style chunked prefill).
    Chunked {
        /// Prompt tokens processed per fused iteration (≥ 1).
        chunk_tokens: u64,
    },
}

/// Speculative draft-and-verify decoding knobs.
///
/// With speculation on, each decode iteration drafts up to `k` tokens per
/// sequence and verifies them in one batched pass: the iteration takes
/// verify-batch time (weights streamed once, k+1 compute rows) but emits
/// `1 + accepted` tokens per sequence. Drafted-then-rejected tokens are
/// appended to the paged KV and rolled back block-exactly, and their
/// verify work is billed to the drafting request's energy share — the
/// rejected rows really ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecConfig {
    /// Maximum draft tokens verified per sequence per iteration (≥ 1).
    pub k: u64,
    /// Modeled per-token acceptance rate in `[0, 1]` — how often the
    /// prompt-lookup drafter's guess matches the greedy token. Acceptance
    /// draws are deterministic per `(request, output position)`, so runs
    /// replay bit-identically.
    pub alpha: f64,
    /// Enable the adaptive-k controller: an EWMA of the *measured*
    /// acceptance rate shrinks the live draft length when drafts stop
    /// landing and regrows it (never past `k`) when they land again.
    pub adaptive: bool,
}

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum concurrent sequences (memory may cap admission lower).
    pub max_batch: usize,
    /// Prompt-processing policy.
    pub prefill: PrefillPolicy,
    /// Optional cap on the KV pool in bytes, below what the memory model
    /// derives — models co-tenant memory reservations and lets tests
    /// exercise KV pressure deterministically.
    pub kv_pool_bytes: Option<u64>,
    /// Enable the radix-tree prefix cache: prompts sharing a cached
    /// token-id prefix skip that prefix's prefill compute and energy,
    /// sharing its KV blocks by refcount (vLLM/SGLang-style). Off by
    /// default — with it off the scheduler is bit-identical to the flat
    /// pre-cache accounting.
    pub prefix_cache: bool,
    /// Speculative decoding configuration. `None` (the default) keeps
    /// the scheduler bit-identical to plain one-token-per-step decode.
    pub spec: Option<SpecConfig>,
}

impl ServeConfig {
    /// Blocking-prefill configuration (legacy `ContinuousBatcher` regime).
    pub fn blocking(max_batch: usize) -> Self {
        ServeConfig {
            max_batch,
            prefill: PrefillPolicy::Blocking,
            kv_pool_bytes: None,
            prefix_cache: false,
            spec: None,
        }
    }

    /// Chunked-prefill configuration with the default chunk size.
    pub fn chunked(max_batch: usize) -> Self {
        ServeConfig {
            max_batch,
            prefill: PrefillPolicy::Chunked { chunk_tokens: DEFAULT_CHUNK_TOKENS },
            kv_pool_bytes: None,
            prefix_cache: false,
            spec: None,
        }
    }

    /// Override the prefill chunk size (switches to the chunked policy).
    pub fn chunk_tokens(mut self, tokens: u64) -> Self {
        self.prefill = PrefillPolicy::Chunked { chunk_tokens: tokens.max(1) };
        self
    }

    /// Cap the KV pool (co-tenancy reservation / deterministic tests).
    pub fn kv_pool_cap(mut self, bytes: u64) -> Self {
        self.kv_pool_bytes = Some(bytes);
        self
    }

    /// Enable the radix-tree prefix cache.
    pub fn with_prefix_cache(mut self) -> Self {
        self.prefix_cache = true;
        self
    }

    /// Enable speculative decoding with a fixed draft length `k` and
    /// modeled acceptance rate `alpha`.
    pub fn with_speculation(mut self, k: u64, alpha: f64) -> Self {
        self.spec = Some(SpecConfig { k: k.max(1), alpha: alpha.clamp(0.0, 1.0), adaptive: false });
        self
    }

    /// Enable speculative decoding with the adaptive-k controller
    /// (`k` is the ceiling the controller never exceeds).
    pub fn with_adaptive_speculation(mut self, k: u64, alpha: f64) -> Self {
        self.spec = Some(SpecConfig { k: k.max(1), alpha: alpha.clamp(0.0, 1.0), adaptive: true });
        self
    }
}

/// The outcome of driving a request trace to completion.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Aggregate serving metrics.
    pub report: ContinuousReport,
    /// One record per scheduler iteration (incl. idle gaps).
    pub trace: Vec<IterationTrace>,
    /// Completed-request records, in completion order.
    pub completions: Vec<crate::serve::sim::Completion>,
    /// `(time, request id)` of every mid-run cancellation.
    pub cancelled: Vec<(f64, u64)>,
    /// KV blocks taken from the pool over the run.
    pub kv_blocks_allocated: u64,
    /// KV blocks returned to the pool (completion + preemption); equals
    /// `kv_blocks_allocated` once the queue drains.
    pub kv_blocks_freed: u64,
    /// Output tokens delivered to completed requests (recomputed tokens
    /// after a preemption are not double-counted).
    pub served_output_tokens: u64,
    /// Prompt tokens served from the prefix cache (0 with it off).
    pub kv_cache_hit_tokens: u64,
    /// Copy-on-write block allocations (divergence inside shared blocks).
    pub kv_blocks_cow: u64,
    /// Draft tokens submitted to verification (0 with speculation off).
    pub spec_drafted: u64,
    /// Draft tokens accepted and emitted as output.
    pub spec_accepted: u64,
    /// Draft tokens rejected and rolled back out of the paged KV;
    /// `spec_drafted == spec_accepted + spec_rolled_back` always.
    pub spec_rolled_back: u64,
}

/// The event-driven iteration-level scheduler.
#[derive(Debug, Clone)]
pub struct EventScheduler {
    cfg: ServeConfig,
}

impl EventScheduler {
    /// A scheduler with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        EventScheduler { cfg }
    }

    /// Drive all `requests` to completion on the device in `cfg` (its
    /// batch/sequence fields are ignored; shapes come from the requests).
    pub fn run(
        &self,
        device: &DeviceSpec,
        cfg: &RunConfig,
        requests: &[Request],
    ) -> Result<ServeRun, RunError> {
        let mut sim = ServeSim::new(self.cfg, device, cfg, requests)?;
        while let Some(now) = sim.next_event_s() {
            sim.step(now)?;
        }
        Ok(sim.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::PoissonArrivals;
    use edgellm_models::{Llm, Precision};

    fn setup() -> (DeviceSpec, RunConfig) {
        (DeviceSpec::orin_agx_64gb(), RunConfig::new(Llm::Llama31_8b, Precision::Fp16))
    }

    #[test]
    fn chunked_run_completes_and_accounts() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.0).generate(30, 7);
        let r = EventScheduler::new(ServeConfig::chunked(16)).run(&dev, &cfg, &reqs).unwrap();
        assert_eq!(r.report.requests, 30);
        assert_eq!(r.served_output_tokens, reqs.iter().map(|q| q.output_tokens).sum::<u64>());
        assert_eq!(r.kv_blocks_allocated, r.kv_blocks_freed, "pool drains clean");
        assert_eq!(r.trace.last().unwrap().kv_blocks_used, 0);
        assert!(r.report.energy_j > 0.0);
        assert!(r.report.mean_ttft_s > 0.0 && r.report.mean_ttft_s <= r.report.mean_latency_s);
        assert!(r.report.p50_ttft_s <= r.report.p99_ttft_s);
        assert_eq!(r.report.preemptions, 0, "64 GB pool needs no preemption here");
    }

    #[test]
    fn chunked_prefill_cuts_mean_ttft_under_load() {
        // Acceptance: at ≥ 1.5 req/s on Llama-3.1-8B FP16, fusing prefill
        // chunks into decode iterations must beat solo blocking prefills
        // on mean TTFT (the blocking stall compounds down the queue).
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.5).generate(60, 2);
        let chunked = EventScheduler::new(ServeConfig::chunked(16)).run(&dev, &cfg, &reqs).unwrap();
        let blocking =
            EventScheduler::new(ServeConfig::blocking(16)).run(&dev, &cfg, &reqs).unwrap();
        assert!(
            chunked.report.mean_ttft_s < blocking.report.mean_ttft_s,
            "chunked {:.3}s vs blocking {:.3}s",
            chunked.report.mean_ttft_s,
            blocking.report.mean_ttft_s
        );
        assert!(chunked.report.prefill_stall_s < blocking.report.prefill_stall_s);
    }

    #[test]
    fn preemption_recovers_under_kv_pressure() {
        // A deliberately tiny KV pool: the batch outgrows it mid-decode,
        // the youngest sequence is preempted (recompute penalty), and the
        // workload still drains completely with exact token accounting.
        let (dev, cfg) = setup();
        let mut arr = PoissonArrivals::paper_shape(4.0);
        arr.input_tokens = 48;
        arr.output_tokens = 96;
        arr.shape_jitter = 0.0;
        let reqs = arr.generate(12, 9);
        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        // Room for ~4 full sequences of 144 tokens — 12 want in.
        let pool = 4 * 144 * kv_per_token;
        let r = EventScheduler::new(ServeConfig::chunked(8).kv_pool_cap(pool))
            .run(&dev, &cfg, &reqs)
            .unwrap();
        assert!(r.report.preemptions > 0, "pool pressure must preempt");
        assert_eq!(r.report.requests, 12, "every request still completes");
        assert_eq!(
            r.served_output_tokens,
            reqs.iter().map(|q| q.output_tokens).sum::<u64>(),
            "preemption must not double-count served tokens"
        );
        assert_eq!(r.kv_blocks_allocated, r.kv_blocks_freed);
        assert_eq!(r.trace.last().unwrap().kv_blocks_used, 0);
    }

    #[test]
    fn single_oversized_request_errors_not_loops() {
        let (dev, cfg) = setup();
        let mut arr = PoissonArrivals::paper_shape(1.0);
        arr.input_tokens = 4096;
        arr.output_tokens = 16;
        arr.shape_jitter = 0.0;
        let reqs = arr.generate(1, 3);
        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        let pool = 64 * kv_per_token; // 4 blocks: far below one prompt
        let err = EventScheduler::new(ServeConfig::chunked(4).kv_pool_cap(pool))
            .run(&dev, &cfg, &reqs)
            .unwrap_err();
        assert!(matches!(err, crate::error::RunError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn trace_time_is_consistent() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(2.0).generate(20, 5);
        let r = EventScheduler::new(ServeConfig::chunked(8)).run(&dev, &cfg, &reqs).unwrap();
        let mut t = 0.0;
        let mut e = 0.0;
        for it in &r.trace {
            assert!(it.dt_s >= 0.0);
            t += it.dt_s;
            e += it.energy_j();
            assert!((it.t_s - t).abs() < 1e-6, "trace clock drift at {}", it.t_s);
            assert!(it.kv_blocks_used <= it.kv_blocks_total);
        }
        assert!((t - r.report.makespan_s).abs() < 1e-6);
        assert!((e - r.report.energy_j).abs() < 1e-6 * r.report.energy_j.max(1.0));
    }

    #[test]
    fn unloadable_model_and_empty_queue_fail_fast() {
        use crate::error::RunError;
        let (dev, _) = setup();
        let cfg = RunConfig::new(Llm::DeepseekQwen32b, Precision::Fp16);
        let reqs = PoissonArrivals::paper_shape(1.0).generate(4, 1);
        assert!(matches!(
            EventScheduler::new(ServeConfig::chunked(8)).run(&dev, &cfg, &reqs),
            Err(RunError::ModelDoesNotLoad { .. })
        ));
        let (dev, cfg) = setup();
        assert!(matches!(
            EventScheduler::new(ServeConfig::blocking(8)).run(&dev, &cfg, &[]),
            Err(RunError::InvalidConfig(_))
        ));
    }
}
