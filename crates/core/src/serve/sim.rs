//! The steppable simulation core behind [`EventScheduler`].
//!
//! [`ServeSim`] owns one device's complete serving state — admission
//! queue, live batch, KV pool, clock, energy integral, per-iteration
//! trace — and exposes it one event at a time:
//!
//! * [`ServeSim::next_event_s`] — when this device can next make
//!   progress (now, if sequences are live; the earliest pending arrival
//!   otherwise);
//! * [`ServeSim::step`] — advance to that instant and perform one
//!   scheduler turn (idle gap billing, admission, KV-pressure
//!   preemption, one fused iteration);
//! * [`ServeSim::submit`] / [`ServeSim::drain_incomplete`] — inject a
//!   request mid-flight or evacuate everything unfinished (device
//!   failure), so a fleet co-simulator can route work across many
//!   `ServeSim`s on a shared clock.
//!
//! [`EventScheduler::run`] is a thin wrapper: construct, step until
//! [`ServeSim::next_event_s`] returns `None`, [`ServeSim::finish`]. The
//! wrapper reproduces the pre-refactor monolithic loop event for event —
//! the golden serving pins did not move.
//!
//! [`EventScheduler`]: crate::serve::EventScheduler
//! [`EventScheduler::run`]: crate::serve::EventScheduler::run

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::arrivals::Request;
use crate::config::RunConfig;
use crate::continuous::ContinuousReport;
use crate::error::RunError;
use crate::serve::governor::{GovernorHook, GovernorObs};
use crate::serve::scheduler::{PrefillPolicy, ServeConfig, ServeRun, KV_BLOCK_TOKENS};
use crate::serve::trace::{IterPhase, IterationTrace};
use edgellm_hw::{ClockState, DeviceSpec, PowerMode};
use edgellm_mem::{MemoryModel, PagedKv, TokenId, GB, OOM_HEADROOM_GB};
use edgellm_perf::PerfModel;
use edgellm_power::{LoadProfile, RailBreakdown, RailModel};
use edgellm_trace::forensics::{self, ForensicsLog};
use edgellm_trace::Histogram;

/// One completed request's record, kept for SLO accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The request's stable id ([`Request::id`]).
    pub rid: u64,
    /// Original arrival time (s).
    pub arrival_s: f64,
    /// Time to first token, arrival → prefill completion (s).
    pub ttft_s: f64,
    /// End-to-end latency, arrival → last token (s).
    pub latency_s: f64,
    /// Output tokens delivered.
    pub output_tokens: u64,
}

/// A post-run accounting snapshot of one [`ServeSim`], consumed by
/// invariant oracles (see the `edgellm-check` crate). Everything here is
/// observable while the simulation is still owned elsewhere — fleet
/// co-simulators surface one per device after a run.
#[derive(Debug, Clone)]
pub struct ServeAudit {
    /// Device/model/precision display label.
    pub label: String,
    /// Requests submitted to this simulation (including re-routes).
    pub submitted: usize,
    /// Completed-request records, in completion order.
    pub completions: Vec<Completion>,
    /// `(time, request id)` of every mid-run cancellation.
    pub cancelled: Vec<(f64, u64)>,
    /// Per-iteration telemetry.
    pub trace: Vec<IterationTrace>,
    /// KV blocks taken from the pool over the run.
    pub kv_blocks_allocated: u64,
    /// KV blocks returned to the pool over the run.
    pub kv_blocks_freed: u64,
    /// KV blocks still held at snapshot time (0 once drained with the
    /// prefix cache off; cached blocks keep it nonzero otherwise).
    pub kv_blocks_in_use: usize,
    /// Total pool blocks at snapshot time (after any shrink).
    pub kv_blocks_total: usize,
    /// Prompt tokens served from the prefix cache (0 with it off).
    pub kv_cache_hit_tokens: u64,
    /// Copy-on-write allocations (divergence inside a shared block).
    pub kv_blocks_cow: u64,
    /// Blocks parked in the prefix cache at snapshot time.
    pub kv_blocks_cached: usize,
    /// Violations from the paged allocator's refcount/structure
    /// self-check — one message each, empty when healthy.
    pub kv_integrity: Vec<String>,
    /// Requests still queued or live at snapshot time.
    pub queue_depth: usize,
    /// Energy integrated so far (J).
    pub energy_j: f64,
    /// Sequences preempted under KV pressure.
    pub preemptions: usize,
    /// Output tokens delivered to completed requests.
    pub served_output_tokens: u64,
    /// Draft tokens submitted to verification (0 with speculation off).
    pub spec_drafted: u64,
    /// Draft tokens accepted and emitted as output.
    pub spec_accepted: u64,
    /// Draft tokens rejected and rolled back out of the paged KV.
    pub spec_rolled_back: u64,
}

/// One request's scheduling state, preserved across preemptions.
#[derive(Debug, Clone, Copy)]
struct Job {
    /// Stable request id (tie-breaks equal arrivals; reroute identity).
    rid: u64,
    arrival_s: f64,
    /// The prompt as originally submitted (reroutes restart from this).
    orig_input: u64,
    /// Prompt tokens to prefill; grows by the regenerated tokens when the
    /// sequence is preempted (the recompute penalty).
    prompt_tokens: u64,
    /// Output tokens the request asked for.
    output_total: u64,
    /// Output tokens still to deliver.
    output_remaining: u64,
    /// Time to first token, recorded once at first prefill completion and
    /// kept across preemptions.
    ttft_s: Option<f64>,
}

impl Job {
    fn from_request(r: &Request) -> Self {
        Job {
            rid: r.id,
            arrival_s: r.arrival_s,
            orig_input: r.input_tokens,
            prompt_tokens: r.input_tokens,
            output_total: r.output_tokens,
            output_remaining: r.output_tokens,
            ttft_s: None,
        }
    }

    fn to_request(self) -> Request {
        Request {
            id: self.rid,
            arrival_s: self.arrival_s,
            input_tokens: self.orig_input,
            output_tokens: self.output_total,
        }
    }
}

/// A sequence currently holding KV blocks.
#[derive(Debug, Clone, Copy)]
struct Live {
    id: u32,
    job: Job,
    /// Prompt tokens prefilled so far.
    prompt_done: u64,
    /// Output tokens already delivered when this admission began. A
    /// re-admission after preemption resumes mid-stream: its earlier
    /// tokens are part of `prompt_tokens` (the recompute penalty), and
    /// counting them again would inflate the context — and, at the next
    /// preemption, the prompt itself — without bound.
    gen_base: u64,
}

impl Live {
    /// Output tokens delivered since this admission began.
    fn gen_since(&self) -> u64 {
        (self.job.output_total - self.job.output_remaining) - self.gen_base
    }

    fn ctx(&self) -> u64 {
        self.job.prompt_tokens + self.gen_since()
    }

    fn decoding(&self) -> bool {
        self.prompt_done == self.job.prompt_tokens && self.job.output_remaining > 0
    }
}

/// One device's serving simulation, advanced one event at a time.
#[derive(Debug, Clone)]
pub struct ServeSim {
    cfg: ServeConfig,
    /// The hardware, kept so mid-run power-mode flips can rebuild the
    /// perf model against the same device.
    device: DeviceSpec,
    /// The run configuration (tracks the *current* power mode after a
    /// [`ServeSim::set_power_mode`] flip).
    run_cfg: RunConfig,
    perf: PerfModel,
    rails: RailModel,
    clocks: ClockState,
    bw_ratio: f64,
    idle_power: f64,
    idle_rails: RailBreakdown,
    t_stream: f64,
    /// Device/model/precision display label for exported timelines.
    label: String,
    /// Prefill chunk tokens (0 under the blocking policy).
    chunk: u64,
    /// Admission concurrency cap after the live-footprint clamp.
    cap: usize,
    reserve: u64,
    usable: u64,
    block_bytes: u64,
    kv: PagedKv,
    /// Prompt token ids, keyed by request id. Only populated when the
    /// prefix cache is on and the caller provided real token ids via
    /// [`ServeSim::submit_with_prompt`]; positions past the provided
    /// prefix (and every position of plain [`ServeSim::submit`]
    /// requests) get deterministic per-request synthetic ids.
    prompts: HashMap<u64, Vec<TokenId>>,
    pending: VecDeque<Job>,
    live: Vec<Live>,
    next_id: u32,
    t: f64,
    submitted: usize,
    completions: Vec<Completion>,
    trace: Vec<IterationTrace>,
    /// Per-iteration rail power samples, aligned with `trace` entries.
    rail_log: Vec<(f64, RailBreakdown)>,
    /// Prefix-cache occupancy samples `(time, cached blocks)`, aligned
    /// with `trace` entries. Empty unless the prefix cache is enabled —
    /// the Perfetto adapter emits a cache-occupancy counter track only
    /// for runs that produced samples.
    cache_log: Vec<(f64, usize)>,
    /// `(time, request id)` of each KV-pressure preemption.
    preempt_log: Vec<(f64, u64)>,
    /// `(time, request id)` of each mid-run cancellation.
    cancel_log: Vec<(f64, u64)>,
    energy_j: f64,
    prefill_stall_s: f64,
    preemptions: usize,
    served_tokens: u64,
    occupancy_sum: usize,
    decode_iters: usize,
    kv_allocated: u64,
    kv_freed: u64,
    /// Draft tokens submitted to verification (0 with speculation off).
    spec_drafted: u64,
    /// Draft tokens accepted and emitted as output.
    spec_accepted: u64,
    /// Draft tokens rejected and rolled back out of the paged KV.
    spec_rolled_back: u64,
    /// The adaptive-k controller's live draft length (pinned at the
    /// configured `k` when the controller is off; 0 with speculation
    /// off).
    spec_k_now: u64,
    /// The draft length actually available *this iteration*: starts at
    /// `spec_k_now` each scheduler turn and is degraded toward 0 by
    /// [`ServeSim::secure_kv`] under KV pressure before any sequence is
    /// preempted. Speculation is an optimization — it must never cause a
    /// preemption (or a livelock against the `prompt + 1` admission
    /// watermark) that plain greedy decode would avoid.
    spec_k_iter: u64,
    /// EWMA of the measured per-iteration acceptance rate — the
    /// controller's shrink/grow signal. Seeded from the configured α.
    spec_alpha_ewma: f64,
    /// Rid-stamped forensic lifecycle events (always kept, like the
    /// iteration trace; a few dozen bytes per request). Every push also
    /// feeds the process-wide flight recorder.
    flog: Vec<forensics::Event>,
    /// Per-request attributed energy (J). Together with
    /// `idle_energy_j` this partitions `energy_j`: every iteration's
    /// integral is pro-rated token-proportionally over the sequences it
    /// served, remainder-corrected so the shares sum bit-exactly.
    req_energy: BTreeMap<u64, f64>,
    /// Idle-gap energy (J) — the unattributable ledger remainder.
    idle_energy_j: f64,
    /// Fleet device index stamped on forensic events (0 standalone).
    dev_tag: u32,
    /// Set by [`ServeSim::set_forensics_device`]: the fleet assembles
    /// the merged forensic record, so per-device `finish` must not
    /// record its own into the sink.
    fleet_member: bool,
    /// Construction-time clocks — the baseline `ModeChange` events
    /// judge `downclock` against.
    base_clocks: ClockState,
    /// Arms automatic flight-recorder dumps: first completion whose
    /// end-to-end latency exceeds this triggers one.
    slo_latency_s: Option<f64>,
    slo_dumped: bool,
}

impl ServeSim {
    /// A simulation pre-loaded with `requests` (their shapes size the
    /// activation reserve exactly as [`EventScheduler::run`] always did).
    ///
    /// [`EventScheduler::run`]: crate::serve::EventScheduler::run
    pub fn new(
        cfg: ServeConfig,
        device: &DeviceSpec,
        run_cfg: &RunConfig,
        requests: &[Request],
    ) -> Result<Self, RunError> {
        if requests.is_empty() {
            return Err(RunError::InvalidConfig("no requests".into()));
        }
        let max_sl =
            requests.iter().map(|r| r.input_tokens + r.output_tokens).max().expect("non-empty");
        let mut sim = Self::with_seq_hint(cfg, device, run_cfg, max_sl)?;
        for r in requests {
            sim.submit(r);
        }
        Ok(sim)
    }

    /// [`ServeSim::new`], with prompt token ids attached to requests by
    /// id. Requests with an entry submit via
    /// [`ServeSim::submit_with_prompt`] so a prefix-cache-enabled config
    /// can recognize shared prefixes; ids without one (and every request
    /// under a cache-less config) behave exactly as [`ServeSim::new`].
    pub fn new_with_prompts(
        cfg: ServeConfig,
        device: &DeviceSpec,
        run_cfg: &RunConfig,
        requests: &[Request],
        prompts: &HashMap<u64, Vec<TokenId>>,
    ) -> Result<Self, RunError> {
        if requests.is_empty() {
            return Err(RunError::InvalidConfig("no requests".into()));
        }
        let max_sl =
            requests.iter().map(|r| r.input_tokens + r.output_tokens).max().expect("non-empty");
        let mut sim = Self::with_seq_hint(cfg, device, run_cfg, max_sl)?;
        for r in requests {
            match prompts.get(&r.id) {
                Some(p) => sim.submit_with_prompt(r, p),
                None => sim.submit(r),
            }
        }
        Ok(sim)
    }

    /// An empty simulation whose activation reserve is sized for
    /// sequences up to `max_seq_tokens` (prompt + output). Use this when
    /// requests arrive later via [`ServeSim::submit`] — a fleet router,
    /// for instance — and size the hint to the workload's longest shape.
    pub fn with_seq_hint(
        cfg: ServeConfig,
        device: &DeviceSpec,
        run_cfg: &RunConfig,
        max_seq_tokens: u64,
    ) -> Result<Self, RunError> {
        run_cfg.power_mode.validate(device)?;
        let perf = PerfModel::new(
            device.clone(),
            run_cfg.llm,
            run_cfg.precision,
            run_cfg.power_mode.clocks,
        );
        let mm = MemoryModel::new(run_cfg.llm, run_cfg.precision, device.capacity_gb());
        if !mm.model_loads() {
            return Err(RunError::ModelDoesNotLoad {
                required_gb: mm.weight_bytes() / GB,
                usable_gb: device.capacity_gb() - OOM_HEADROOM_GB,
            });
        }
        let usable = ((device.capacity_gb() - OOM_HEADROOM_GB) * GB) as u64;
        let max_sl = max_seq_tokens.max(1);
        let kv_per_token = run_cfg.llm.arch().kv_bytes_per_token();
        let block_bytes = KV_BLOCK_TOKENS * kv_per_token;

        // Admission cap from the *live* footprint — weights, activations
        // at the concurrency, one KV block per sequence. KV growth beyond
        // that is tracked by the allocator, not worst-cased here.
        let footprint =
            |b: u64| mm.weight_bytes() + mm.activation_bytes(b, max_sl) + (b * block_bytes) as f64;
        let mut cap = cfg.max_batch.max(1) as u64;
        while cap > 1 && footprint(cap) > usable as f64 {
            cap -= 1;
        }
        if footprint(cap) > usable as f64 {
            return Err(RunError::OutOfMemory {
                peak_gb: footprint(cap) / GB,
                usable_gb: usable as f64 / GB,
            });
        }
        let cap = cap as usize;
        let reserve = (mm.weight_bytes() + mm.activation_bytes(cap as u64, max_sl)) as u64;
        let mut pool = usable.saturating_sub(reserve);
        if let Some(limit) = cfg.kv_pool_bytes {
            pool = pool.min(limit);
        }
        if pool < block_bytes {
            return Err(RunError::OutOfMemory {
                peak_gb: (reserve + block_bytes) as f64 / GB,
                usable_gb: usable as f64 / GB,
            });
        }
        let mut kv = PagedKv::new(pool, KV_BLOCK_TOKENS, kv_per_token);
        if cfg.prefix_cache {
            kv = kv.with_prefix_cache();
        }

        let rails = RailModel::orin_agx(device.clone());
        let maxn =
            PerfModel::new(device.clone(), run_cfg.llm, run_cfg.precision, device.max_clocks());
        let bw_ratio = perf.effective_bandwidth() / maxn.effective_bandwidth();
        let clocks = run_cfg.power_mode.clocks;
        let idle_rails = rails.power(&clocks, &LoadProfile::idle());
        let idle_power = idle_rails.total_w();
        let t_stream = perf.weight_stream_time();
        let label =
            format!("{} · {} {}", device.name, run_cfg.llm.short_name(), run_cfg.precision.label());
        let chunk = match cfg.prefill {
            PrefillPolicy::Chunked { chunk_tokens } => chunk_tokens.max(1),
            PrefillPolicy::Blocking => 0,
        };

        Ok(ServeSim {
            cfg,
            device: device.clone(),
            run_cfg: run_cfg.clone(),
            perf,
            rails,
            clocks,
            bw_ratio,
            idle_power,
            idle_rails,
            t_stream,
            label,
            chunk,
            cap,
            reserve,
            usable,
            block_bytes,
            kv,
            prompts: HashMap::new(),
            pending: VecDeque::new(),
            live: Vec::new(),
            next_id: 0,
            t: 0.0,
            submitted: 0,
            completions: Vec::new(),
            trace: Vec::new(),
            rail_log: Vec::new(),
            cache_log: Vec::new(),
            preempt_log: Vec::new(),
            cancel_log: Vec::new(),
            energy_j: 0.0,
            prefill_stall_s: 0.0,
            preemptions: 0,
            served_tokens: 0,
            occupancy_sum: 0,
            decode_iters: 0,
            kv_allocated: 0,
            kv_freed: 0,
            spec_drafted: 0,
            spec_accepted: 0,
            spec_rolled_back: 0,
            spec_k_now: cfg.spec.map(|s| s.k).unwrap_or(0),
            spec_k_iter: cfg.spec.map(|s| s.k).unwrap_or(0),
            spec_alpha_ewma: cfg.spec.map(|s| s.alpha).unwrap_or(0.0),
            flog: Vec::new(),
            req_energy: BTreeMap::new(),
            idle_energy_j: 0.0,
            dev_tag: 0,
            fleet_member: false,
            base_clocks: clocks,
            slo_latency_s: None,
            slo_dumped: false,
        })
    }

    /// Record one forensic lifecycle event at instant `t_s`, into both
    /// the run log and the process-wide flight recorder.
    fn femit(&mut self, t_s: f64, rid: u64, kind: forensics::EventKind) {
        let ev = forensics::Event { t_s, rid, device: self.dev_tag, kind };
        self.flog.push(ev);
        forensics::flight::record(ev);
    }

    /// Pro-rate one iteration's energy `e` over the `(rid, tokens)`
    /// weights of the sequences it served. The last share takes the
    /// exact remainder, so the pieces always sum to `e` and the ledger
    /// `Σ per-request + idle == energy_j` reconciles to well under 1e-9.
    fn split_energy(&mut self, e: f64, bill: &[(u64, u64)]) {
        let w_total: u64 = bill.iter().map(|&(_, w)| w).sum();
        if w_total == 0 {
            self.idle_energy_j += e;
            return;
        }
        let mut assigned = 0.0;
        for (i, &(rid, w)) in bill.iter().enumerate() {
            let share =
                if i + 1 == bill.len() { e - assigned } else { e * w as f64 / w_total as f64 };
            assigned += share;
            *self.req_energy.entry(rid).or_insert(0.0) += share;
        }
    }

    fn profile(&self, u: edgellm_perf::Utilization) -> LoadProfile {
        LoadProfile { gpu_util: u.gpu, cpu_util: u.cpu, bw_util: u.mem_bw, bw_ratio: self.bw_ratio }
    }

    /// Queue a request. Ordering is by `(arrival_s, id)` so equal-time
    /// arrivals schedule identically regardless of submission order.
    pub fn submit(&mut self, r: &Request) {
        let job = Job::from_request(r);
        let pos = self
            .pending
            .iter()
            .position(|p| {
                p.arrival_s > job.arrival_s || (p.arrival_s == job.arrival_s && p.rid > job.rid)
            })
            .unwrap_or(self.pending.len());
        self.pending.insert(pos, job);
        self.submitted += 1;
        // Stamped at the semantic arrival: pre-loaded traces submit at
        // construction (clock 0) for future instants, fleet re-routes
        // submit at the shared now.
        self.femit(job.arrival_s.max(self.t), job.rid, forensics::EventKind::Submitted);
    }

    /// Queue a request together with its prompt token ids. The ids feed
    /// the radix prefix cache: two requests sharing a leading run of
    /// ids (a common system prompt, say) share the KV blocks caching
    /// it. A prompt shorter than `input_tokens` is padded with the
    /// synthetic per-request ids plain [`ServeSim::submit`] would use;
    /// a longer one is truncated. With the prefix cache off this is
    /// exactly [`ServeSim::submit`].
    pub fn submit_with_prompt(&mut self, r: &Request, prompt: &[TokenId]) {
        if self.cfg.prefix_cache {
            let n = (r.input_tokens as usize).min(prompt.len());
            self.prompts.insert(r.id, prompt[..n].to_vec());
        }
        self.submit(r);
    }

    /// Deterministic synthetic token id for position `pos` of request
    /// `rid` (splitmix64 finalizer) — unique enough that unrelated
    /// requests never alias in the radix cache, and stable across
    /// preemption/re-admission so a sequence always re-derives the same
    /// ids for its regenerated tokens.
    fn synth_token(rid: u64, pos: u64) -> TokenId {
        let mut x = rid.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(pos);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        (x >> 32) as TokenId
    }

    /// Deterministic acceptance draw for draft output position `pos` of
    /// request `rid` (splitmix64 bits mapped to [0, 1) against α).
    /// Keyed by the *absolute* output index, so a sequence replays the
    /// same accept/reject outcomes across preemption and re-admission —
    /// the modeled drafter sees the same text either way.
    fn spec_accepts(rid: u64, pos: u64, alpha: f64) -> bool {
        let mut x = rid
            .wrapping_mul(0x632b_e59b_d9b4_e019)
            .wrapping_add(pos.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        ((x >> 11) as f64 / (1u64 << 53) as f64) < alpha
    }

    /// Draft tokens this decoding sequence submits this iteration: the
    /// iteration's draft budget (the controller's live k, possibly
    /// degraded by [`ServeSim::secure_kv`] under KV pressure), capped so
    /// the sequence can never emit past its requested output (the
    /// committed token always lands, so at most `output_remaining - 1`
    /// drafts can be of any use).
    fn spec_k_for(&self, s: &Live) -> u64 {
        if self.cfg.spec.is_some() && s.job.output_remaining > 1 {
            self.spec_k_iter.min(s.job.output_remaining - 1)
        } else {
            0
        }
    }

    /// The token ids a job's current prompt prefills: the submitted
    /// prompt prefix (when one was provided), padded out to
    /// `prompt_tokens` — which includes recompute-grown generated
    /// tokens — with synthetic ids.
    fn prompt_tokens_for(&self, job: &Job) -> Vec<TokenId> {
        let n = job.prompt_tokens as usize;
        let mut ids = Vec::with_capacity(n);
        if let Some(p) = self.prompts.get(&job.rid) {
            ids.extend_from_slice(&p[..p.len().min(n)]);
        }
        for pos in ids.len() as u64..n as u64 {
            ids.push(Self::synth_token(job.rid, pos));
        }
        ids
    }

    /// Current simulation clock (s).
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Whether every submitted request has completed.
    pub fn is_done(&self) -> bool {
        self.pending.is_empty() && self.live.is_empty()
    }

    /// When this device can next make progress: now if sequences are
    /// live, the earliest pending arrival otherwise, `None` when drained.
    pub fn next_event_s(&self) -> Option<f64> {
        if !self.live.is_empty() {
            Some(self.t)
        } else {
            self.pending.front().map(|j| j.arrival_s.max(self.t))
        }
    }

    /// Jump a quiescent simulation's clock to `now` without billing
    /// energy: the device was powered off across the gap (e.g. a fleet
    /// outage), not idling. No-op while sequences are live or when `now`
    /// is not ahead of the local clock.
    pub fn skip_to(&mut self, now: f64) {
        if self.live.is_empty() && now > self.t {
            self.t = now;
        }
    }

    /// Advance a quiescent simulation's clock to `now`, billing the gap
    /// at idle power — the device stayed powered across it (e.g. a
    /// thermal cooldown). No-op while sequences are live or when `now`
    /// is not ahead of the local clock.
    pub fn idle_to(&mut self, now: f64) {
        if self.live.is_empty() && now > self.t {
            let dt = now - self.t;
            self.energy_j += self.idle_power * dt;
            self.idle_energy_j += self.idle_power * dt;
            self.trace.push(IterationTrace {
                t_s: now,
                dt_s: dt,
                phase: IterPhase::Idle,
                decoding: 0,
                prefilling: 0,
                kv_blocks_used: self.kv.used_blocks(),
                kv_blocks_total: self.kv.total_blocks(),
                power_w: self.idle_power,
                tokens: 0,
            });
            self.rail_log.push((now, self.idle_rails));
            if self.cfg.prefix_cache {
                self.cache_log.push((now, self.kv.cached_blocks()));
            }
            self.t = now;
        }
    }

    /// Advance the clock to `now` and perform one scheduler turn:
    /// idle-gap billing, admission, KV-pressure preemption, and (when
    /// sequences are live) one fused iteration.
    ///
    /// Drive it with [`ServeSim::next_event_s`]; stepping to an earlier
    /// instant is a no-op beyond admission.
    pub fn step(&mut self, now: f64) -> Result<(), RunError> {
        if self.live.is_empty() && now > self.t {
            let dt = now - self.t;
            self.energy_j += self.idle_power * dt;
            self.idle_energy_j += self.idle_power * dt;
            self.trace.push(IterationTrace {
                t_s: now,
                dt_s: dt,
                phase: IterPhase::Idle,
                decoding: 0,
                prefilling: 0,
                kv_blocks_used: self.kv.used_blocks(),
                kv_blocks_total: self.kv.total_blocks(),
                power_w: self.idle_power,
                tokens: 0,
            });
            self.rail_log.push((now, self.idle_rails));
            if self.cfg.prefix_cache {
                self.cache_log.push((now, self.kv.cached_blocks()));
            }
            self.t = now;
        }
        self.admit()?;
        if self.live.is_empty() {
            return Ok(());
        }
        self.secure_kv();
        if self.live.is_empty() {
            // Everything was preempted; re-admission (or the pool error
            // above) decides what happens next turn.
            return Ok(());
        }
        self.iterate();
        Ok(())
    }

    /// Admission at the iteration boundary.
    fn admit(&mut self) -> Result<(), RunError> {
        while let Some(job) = self.pending.front().copied() {
            if job.arrival_s > self.t || self.live.len() >= self.cap {
                break;
            }
            // Watermark gate: the *uncached* part of the prompt plus the
            // first decode token must have room, or admission waits for
            // blocks to free. Planning against the radix cache evicts
            // cold cached blocks (never the matched path) as needed;
            // with the cache off the plan is the bare block count —
            // bit-identical to the flat pre-cache accounting.
            let prompt_ids =
                if self.cfg.prefix_cache { Some(self.prompt_tokens_for(&job)) } else { None };
            let mut need = match &prompt_ids {
                Some(ids) => {
                    let plan = self.kv.plan_admission(ids, job.prompt_tokens + 1);
                    self.kv_freed += plan.evicted as u64;
                    plan.need_blocks
                }
                None => ((job.prompt_tokens + 1).div_ceil(KV_BLOCK_TOKENS)) as usize,
            };
            if need > self.kv.free_blocks() && self.live.is_empty() && self.kv.cached_blocks() > 0 {
                // Quiescent shortage with a populated cache: the plan
                // already evicted everything off the matched path, and
                // sacrificing matched nodes cannot help (each one freed
                // is a block the prompt must immediately re-take). Drop
                // the cache wholesale and fall back to bare accounting.
                self.kv_freed += self.kv.clear_cache() as u64;
                need = ((job.prompt_tokens + 1).div_ceil(KV_BLOCK_TOKENS)) as usize;
            }
            if need > self.kv.free_blocks() {
                if self.live.is_empty() {
                    // Every block is free and the prompt still does
                    // not fit: the request alone exceeds the pool.
                    return Err(RunError::OutOfMemory {
                        peak_gb: (self.reserve + need as u64 * self.block_bytes) as f64 / GB,
                        usable_gb: self.usable as f64 / GB,
                    });
                }
                break;
            }
            self.pending.pop_front();
            let id = self.next_id;
            self.next_id += 1;
            let hit = match &prompt_ids {
                Some(ids) => {
                    let out = self.kv.admit(id, ids);
                    self.kv_allocated += out.new_blocks as u64;
                    out.hit_tokens
                }
                None => {
                    self.kv.register(id);
                    0
                }
            };
            self.femit(self.t, job.rid, forensics::EventKind::Admitted { cache_hit_tokens: hit });
            match self.cfg.prefill {
                PrefillPolicy::Blocking => {
                    // The joining sequence pays its solo prefill now,
                    // stalling everything live. A cached prefix skips
                    // its share of the compute — and its energy: only
                    // the uncached suffix bills. A full hit skips the
                    // stall entirely (TTFT lands on the first decode
                    // token, like a zero-length prompt).
                    let suffix = job.prompt_tokens - hit;
                    self.kv_allocated += self.kv.append(id, suffix).expect("gated on free") as u64;
                    let mut job = job;
                    if suffix > 0 || !self.cfg.prefix_cache {
                        let dt = self.perf.prefill_time(1, suffix.max(1));
                        self.t += dt;
                        self.prefill_stall_s += dt;
                        let rb = self.rails.power(
                            &self.clocks,
                            &self.profile(self.perf.prefill_utilization(1, suffix.max(1))),
                        );
                        let p = rb.total_w();
                        self.energy_j += p * dt;
                        // A solo stall serves exactly one request: its
                        // whole integral is that request's energy.
                        *self.req_energy.entry(job.rid).or_insert(0.0) += p * dt;
                        self.rail_log.push((self.t, rb));
                        if self.cfg.prefix_cache {
                            self.cache_log.push((self.t, self.kv.cached_blocks()));
                        }
                        job.ttft_s = Some(self.t - job.arrival_s);
                        self.femit(
                            self.t,
                            job.rid,
                            forensics::EventKind::PrefillChunk { tokens: suffix },
                        );
                        self.femit(self.t, job.rid, forensics::EventKind::FirstToken);
                        self.trace.push(IterationTrace {
                            t_s: self.t,
                            dt_s: dt,
                            phase: IterPhase::Prefill,
                            decoding: 0,
                            prefilling: 1,
                            kv_blocks_used: self.kv.used_blocks(),
                            kv_blocks_total: self.kv.total_blocks(),
                            power_w: p,
                            tokens: suffix,
                        });
                    }
                    if let Some(ids) = &prompt_ids {
                        self.kv.insert_prompt(id, ids);
                    }
                    let gen_base = job.output_total - job.output_remaining;
                    self.live.push(Live { id, job, prompt_done: job.prompt_tokens, gen_base });
                }
                PrefillPolicy::Chunked { .. } => {
                    let gen_base = job.output_total - job.output_remaining;
                    self.live.push(Live { id, job, prompt_done: hit, gen_base });
                }
            }
        }
        Ok(())
    }

    /// Secure KV capacity for this iteration's growth. Under pressure the
    /// escape ladder is: evict a cold cached block, then shed draft depth
    /// (speculation degrades toward plain greedy decode before costing
    /// anyone a recompute), and only then preempt the youngest sequence.
    fn secure_kv(&mut self) {
        self.spec_k_iter = self.spec_k_now;
        loop {
            let mut need = 0usize;
            for s in &self.live {
                let grow = if s.prompt_done < s.job.prompt_tokens {
                    self.chunk.min(s.job.prompt_tokens - s.prompt_done)
                } else if s.job.output_remaining > 0 {
                    // The committed token plus every draft: rejected
                    // drafts occupy KV until the post-verify rollback,
                    // so the pool must hold the full verify footprint.
                    1 + self.spec_k_for(s)
                } else {
                    0
                };
                if grow > 0 {
                    need += self.kv.blocks_needed(s.id, grow).expect("live seq registered");
                }
            }
            if need <= self.kv.free_blocks() {
                break;
            }
            // Cold cached blocks go first — dropping a cache entry only
            // costs a possible future re-prefill, while preempting a
            // live sequence costs a certain one.
            if self.kv.evict_one_cached() {
                self.kv_freed += 1;
                continue;
            }
            if self.spec_k_iter > 0 {
                self.spec_k_iter -= 1;
                continue;
            }
            self.preempt_youngest();
            if self.live.is_empty() {
                break;
            }
        }
    }

    /// Preempt the youngest live sequence: free its KV blocks and
    /// re-queue it with the recompute penalty (its regenerated tokens
    /// join the prompt it must prefill again).
    fn preempt_youngest(&mut self) {
        let victim = self
            .live
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.job.arrival_s.partial_cmp(&b.job.arrival_s).expect("finite").then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
            .expect("live non-empty");
        let s = self.live.swap_remove(victim);
        self.kv_freed += self.kv.release(s.id).expect("live seq registered") as u64;
        self.preemptions += 1;
        self.preempt_log.push((self.t, s.job.rid));
        self.femit(self.t, s.job.rid, forensics::EventKind::Preempted);
        // Recompute penalty: the discarded cache — including the tokens
        // generated *since this admission* — joins the prompt to
        // re-prefill. Earlier generations are already folded into the
        // prompt by previous preemptions; adding them again would grow
        // the sequence without bound (and deadlock a pool sized for
        // exactly one sequence).
        let mut job = s.job;
        job.prompt_tokens += s.gen_since();
        let pos = self
            .pending
            .iter()
            .position(|p| {
                p.arrival_s > job.arrival_s || (p.arrival_s == job.arrival_s && p.rid > job.rid)
            })
            .unwrap_or(self.pending.len());
        self.pending.insert(pos, job);
    }

    /// One fused iteration.
    fn iterate(&mut self) {
        let deks: Vec<usize> =
            self.live.iter().enumerate().filter(|(_, s)| s.decoding()).map(|(i, _)| i).collect();
        let n_dec = deks.len();
        let avg_ctx = if n_dec > 0 {
            (deks.iter().map(|&i| self.live[i].ctx()).sum::<u64>() as f64 / n_dec as f64) as u64
        } else {
            0
        };

        let mut prefillers = 0usize;
        let mut prefill_tokens = 0u64;
        let mut chunk_excess_s = 0.0f64;
        let mut finished_prefill: Vec<usize> = Vec::new();
        // `(rid, tokens)` billing weights for this iteration's energy
        // split and the per-segment forensic events.
        let mut chunk_bill: Vec<(u64, u64)> = Vec::new();
        if self.chunk > 0 {
            for (i, s) in self.live.iter_mut().enumerate() {
                if s.prompt_done < s.job.prompt_tokens {
                    let adv = self.chunk.min(s.job.prompt_tokens - s.prompt_done);
                    self.kv_allocated +=
                        self.kv.append(s.id, adv).expect("capacity pre-checked") as u64;
                    s.prompt_done += adv;
                    prefillers += 1;
                    prefill_tokens += adv;
                    chunk_bill.push((s.job.rid, adv));
                    // The chunk's weight traffic rides the decode
                    // batch's stream; only compute beyond it bills.
                    chunk_excess_s += (self.perf.prefill_time(1, adv) - self.t_stream).max(0.0);
                    if s.prompt_done == s.job.prompt_tokens {
                        finished_prefill.push(i);
                    }
                }
            }
        }

        // Speculation plan: per decoding sequence `(index, drafted,
        // accepted)`, with acceptance drawn deterministically per
        // absolute output position. `spec_k_for` returns 0 with
        // speculation off, collapsing every path below to the plain
        // one-token step bit-for-bit.
        let spec_alpha = self.cfg.spec.map(|sp| sp.alpha);
        let mut plans: Vec<(usize, u64, u64)> = Vec::with_capacity(deks.len());
        for &i in &deks {
            let s = self.live[i];
            let k_eff = self.spec_k_for(&s);
            let done = s.job.output_total - s.job.output_remaining;
            let mut accepted = 0u64;
            if let Some(a) = spec_alpha {
                // Draft j proposes output position done+1+j; it lands
                // only if every draft before it landed (the greedy
                // prefix rule the nn verifier enforces exactly).
                while accepted < k_eff && Self::spec_accepts(s.job.rid, done + 1 + accepted, a) {
                    accepted += 1;
                }
            }
            plans.push((i, k_eff, accepted));
        }
        // The verify batch is as deep as its deepest sequence: shallower
        // sequences ride along (their extra rows are padding the engine
        // does not bill separately).
        let k_iter = plans.iter().map(|&(_, k, _)| k).max().unwrap_or(0);

        let dt = if n_dec > 0 {
            if k_iter > 0 {
                self.perf.verify_batch_time(n_dec as u64, avg_ctx.max(1), k_iter)
            } else {
                self.perf.decode_step_time(n_dec as u64, avg_ctx.max(1))
            }
        } else {
            self.t_stream + self.perf.host_per_step()
        } + chunk_excess_s;
        self.prefill_stall_s += chunk_excess_s;

        let mut dec_emitted = 0u64;
        for &(i, k_eff, accepted) in &plans {
            let s = self.live[i];
            // Drafted tokens are written to the KV like real ones — the
            // writes happen before verification decides their fate —
            // then the rejected tail is rolled back block-exactly.
            self.kv_allocated +=
                self.kv.append(s.id, 1 + k_eff).expect("capacity pre-checked") as u64;
            if accepted < k_eff {
                let keep = s.ctx() + 1 + accepted;
                self.kv_freed += self.kv.truncate(s.id, keep).expect("live seq registered") as u64;
            }
            self.live[i].job.output_remaining -= 1 + accepted;
            dec_emitted += 1 + accepted;
            self.spec_drafted += k_eff;
            self.spec_accepted += accepted;
            self.spec_rolled_back += k_eff - accepted;
        }
        // Adaptive-k: an EWMA of the measured acceptance rate shrinks
        // the live draft length when drafts stop landing and regrows it
        // (never past the configured ceiling) when they land again.
        if let Some(sp) = self.cfg.spec {
            let drafted: u64 = plans.iter().map(|&(_, k, _)| k).sum();
            if sp.adaptive && drafted > 0 {
                let landed: u64 = plans.iter().map(|&(_, _, a)| a).sum();
                let rate = landed as f64 / drafted as f64;
                self.spec_alpha_ewma = 0.7 * self.spec_alpha_ewma + 0.3 * rate;
                if self.spec_alpha_ewma < 0.5 && self.spec_k_now > 1 {
                    self.spec_k_now -= 1;
                } else if self.spec_alpha_ewma > 0.75 && self.spec_k_now < sp.k {
                    self.spec_k_now += 1;
                }
            }
        }
        self.t += dt;
        for &(rid, tokens) in &chunk_bill {
            self.femit(self.t, rid, forensics::EventKind::PrefillChunk { tokens });
        }
        for &i in &finished_prefill {
            if self.live[i].job.ttft_s.is_none() {
                self.live[i].job.ttft_s = Some(self.t - self.live[i].job.arrival_s);
                let rid = self.live[i].job.rid;
                self.femit(self.t, rid, forensics::EventKind::FirstToken);
            }
        }
        // A zero-length prompt (or a full prefix-cache hit) never passes
        // through prefill, so its first token is the first *decode*
        // token; sequences that did prefill have their TTFT pinned at
        // prefill completion above and are never still unset here.
        for &i in &deks {
            if self.live[i].job.ttft_s.is_none() {
                self.live[i].job.ttft_s = Some(self.t - self.live[i].job.arrival_s);
                let rid = self.live[i].job.rid;
                self.femit(self.t, rid, forensics::EventKind::FirstToken);
            }
        }
        // Prompts that just finished chunked prefill enter the prefix
        // cache: their full blocks become shareable with later prompts.
        // (Must precede the completion sweep — it invalidates indices.)
        if self.cfg.prefix_cache {
            for &i in &finished_prefill {
                let job = self.live[i].job;
                let id = self.live[i].id;
                let ids = self.prompt_tokens_for(&job);
                self.kv.insert_prompt(id, &ids);
            }
        }

        let phase = match (n_dec > 0, prefillers > 0) {
            (true, true) => IterPhase::Mixed,
            (true, false) => IterPhase::Decode,
            (false, _) => IterPhase::Prefill,
        };
        let (power_w, rail_b) = if n_dec == 0 {
            let b = self.rails.power(
                &self.clocks,
                &self.profile(
                    self.perf.prefill_utilization(prefillers.max(1) as u64, self.chunk.max(1)),
                ),
            );
            (b.total_w(), b)
        } else {
            let b_dec = self.rails.power(
                &self.clocks,
                &self.profile(self.perf.decode_utilization(n_dec as u64, avg_ctx.max(1))),
            );
            let p_dec = b_dec.total_w();
            if prefillers == 0 || chunk_excess_s <= 0.0 {
                (p_dec, b_dec)
            } else {
                // Time-weighted blend of the decode and chunk shares. The
                // total blends rail *totals* — bit-identical to the
                // pre-instrumentation arithmetic — while the per-rail
                // view blends component-wise.
                let b_pre = self.rails.power(
                    &self.clocks,
                    &self.profile(self.perf.prefill_utilization(1, self.chunk)),
                );
                let p_pre = b_pre.total_w();
                let (wd, wp) = (dt - chunk_excess_s, chunk_excess_s);
                let blend = RailBreakdown {
                    idle_w: (b_dec.idle_w * wd + b_pre.idle_w * wp) / dt,
                    gpu_w: (b_dec.gpu_w * wd + b_pre.gpu_w * wp) / dt,
                    cpu_w: (b_dec.cpu_w * wd + b_pre.cpu_w * wp) / dt,
                    mem_w: (b_dec.mem_w * wd + b_pre.mem_w * wp) / dt,
                };
                ((p_dec * wd + p_pre * wp) / dt, blend)
            }
        };
        self.energy_j += power_w * dt;
        // Attribute the iteration's integral token-proportionally: every
        // verify row per decoding sequence — the committed token plus all
        // drafts, *including* rejected ones, because the compute and KV
        // writes for a rolled-back draft really ran and belong to the
        // request that drafted it — and `adv` per prefill segment. With
        // speculation off each sequence weighs exactly 1, as before.
        let mut bill: Vec<(u64, u64)> = Vec::with_capacity(plans.len() + chunk_bill.len());
        bill.extend(plans.iter().map(|&(i, k_eff, _)| (self.live[i].job.rid, 1 + k_eff)));
        bill.extend(chunk_bill.iter().copied());
        self.split_energy(power_w * dt, &bill);
        if n_dec > 0 {
            self.occupancy_sum += n_dec;
            self.decode_iters += 1;
        }

        let mut i = 0;
        while i < self.live.len() {
            let s = self.live[i];
            if s.prompt_done == s.job.prompt_tokens && s.job.output_remaining == 0 {
                self.live.swap_remove(i);
                let latency_s = self.t - s.job.arrival_s;
                self.completions.push(Completion {
                    rid: s.job.rid,
                    arrival_s: s.job.arrival_s,
                    ttft_s: s.job.ttft_s.unwrap_or(latency_s),
                    latency_s,
                    output_tokens: s.job.output_total,
                });
                self.femit(
                    self.t,
                    s.job.rid,
                    forensics::EventKind::Completed { output_tokens: s.job.output_total },
                );
                if let Some(slo) = self.slo_latency_s {
                    if latency_s > slo && !self.slo_dumped {
                        self.slo_dumped = true;
                        forensics::flight::dump_on_breach(&self.label);
                    }
                }
                self.served_tokens += s.job.output_total;
                self.kv_freed += self.kv.release(s.id).expect("live seq registered") as u64;
                self.prompts.remove(&s.job.rid);
            } else {
                i += 1;
            }
        }

        self.trace.push(IterationTrace {
            t_s: self.t,
            dt_s: dt,
            phase,
            decoding: n_dec,
            prefilling: prefillers,
            kv_blocks_used: self.kv.used_blocks(),
            kv_blocks_total: self.kv.total_blocks(),
            power_w,
            tokens: prefill_tokens + dec_emitted,
        });
        self.rail_log.push((self.t, rail_b));
        if self.cfg.prefix_cache {
            self.cache_log.push((self.t, self.kv.cached_blocks()));
        }
    }

    /// Remove every unfinished request (queued and live), releasing their
    /// KV blocks, and return them in their *original* submitted shape
    /// (recompute-grown prompts are reset — a different device has none
    /// of this one's cache). Fleet fault injection reroutes these.
    pub fn drain_incomplete(&mut self) -> Vec<Request> {
        let mut out: Vec<Request> = self.pending.drain(..).map(Job::to_request).collect();
        for s in self.live.drain(..) {
            self.kv_freed += self.kv.release(s.id).expect("live seq registered") as u64;
            out.push(s.job.to_request());
        }
        // A drained device's memory does not survive the fault: the
        // prefix cache goes with it (reroutes start cold elsewhere).
        if self.cfg.prefix_cache {
            self.kv_freed += self.kv.clear_cache() as u64;
            self.prompts.clear();
        }
        out.sort_by(|a, b| {
            a.arrival_s.partial_cmp(&b.arrival_s).expect("finite").then(a.id.cmp(&b.id))
        });
        out
    }

    /// Cancel a request wherever it stands — queued or live — releasing
    /// any KV blocks it holds. Returns `true` when the request was found
    /// (a completed or unknown `rid` is a no-op). Cancelled requests
    /// count toward neither completions nor served tokens; the
    /// cancellation instant is recorded in [`ServeSim::cancellations`].
    pub fn cancel(&mut self, rid: u64) -> bool {
        if let Some(pos) = self.pending.iter().position(|j| j.rid == rid) {
            self.pending.remove(pos);
            self.cancel_log.push((self.t, rid));
            self.femit(self.t, rid, forensics::EventKind::Cancelled);
            return true;
        }
        if let Some(pos) = self.live.iter().position(|s| s.job.rid == rid) {
            let s = self.live.remove(pos);
            self.kv_freed += self.kv.release(s.id).expect("live seq registered") as u64;
            self.prompts.remove(&rid);
            self.cancel_log.push((self.t, rid));
            self.femit(self.t, rid, forensics::EventKind::Cancelled);
            return true;
        }
        false
    }

    /// Shrink the KV pool to `target_blocks` (floored at one block),
    /// preempting the youngest live sequences until the survivors fit the
    /// reduced pool. Models a co-tenant claiming memory mid-run; the
    /// fault injector's KV-shrink knob. Growing is a no-op.
    pub fn shrink_kv_pool(&mut self, target_blocks: usize) {
        let target = target_blocks.max(1);
        if target >= self.kv.total_blocks() {
            return;
        }
        while self.kv.used_blocks() > target {
            // Cached blocks yield before live sequences do — same order
            // of sacrifice as admission-time pressure.
            if self.kv.evict_one_cached() {
                self.kv_freed += 1;
                continue;
            }
            if self.live.is_empty() {
                break;
            }
            self.preempt_youngest();
        }
        self.kv.shrink_to(target).expect("live usage preempted below target");
    }

    /// Flip the device to a different power mode mid-run — a thermal
    /// governor stepping in, or the fault injector's power-flip knob.
    /// Rebuilds the perf model and idle/rail operating points; iterations
    /// already billed are untouched.
    pub fn set_power_mode(&mut self, pm: &PowerMode) -> Result<(), RunError> {
        pm.validate(&self.device)?;
        self.run_cfg.power_mode = pm.clone();
        self.perf = PerfModel::new(
            self.device.clone(),
            self.run_cfg.llm,
            self.run_cfg.precision,
            pm.clocks,
        );
        let maxn = PerfModel::new(
            self.device.clone(),
            self.run_cfg.llm,
            self.run_cfg.precision,
            self.device.max_clocks(),
        );
        self.bw_ratio = self.perf.effective_bandwidth() / maxn.effective_bandwidth();
        self.clocks = pm.clocks;
        self.idle_rails = self.rails.power(&self.clocks, &LoadProfile::idle());
        self.idle_power = self.idle_rails.total_w();
        self.t_stream = self.perf.weight_stream_time();
        // Every mode flip funnels through here — governor decisions,
        // scripted fault-injector flips, thermal recoveries — so this is
        // the single forensic emission point. `downclock` compares
        // against the run's *baseline* clocks: any domain below them
        // slows requests resident across the change.
        let (c, b) = (pm.clocks, self.base_clocks);
        let downclock = c.gpu_mhz < b.gpu_mhz
            || c.mem_mhz < b.mem_mhz
            || c.cpu_ghz < b.cpu_ghz
            || c.cores_online < b.cores_online;
        self.femit(self.t, forensics::NO_RID, forensics::EventKind::ModeChange { downclock });
        Ok(())
    }

    /// Flip the power mode at a known wall-clock instant, splitting the
    /// energy integral at the change.
    ///
    /// [`ServeSim::set_power_mode`] alone rebuilds the operating point
    /// but leaves the clock where it was — if the simulation is
    /// quiescent at `t < t_s`, the next step would bill the entire gap
    /// `[t, next]` at the *new* idle power, misattributing the
    /// `[t, t_s]` portion. This variant first advances a quiescent
    /// clock to `t_s` via [`ServeSim::idle_to`] (billing that stretch at
    /// the old mode's idle power, with its own trace entry) and only
    /// then flips, so `energy == Σ power·dt` holds exactly across the
    /// change. While sequences are live the local clock is already at or
    /// beyond any externally observed instant, so the flip lands on the
    /// current iteration boundary unchanged.
    pub fn set_power_mode_at(&mut self, pm: &PowerMode, t_s: f64) -> Result<(), RunError> {
        self.idle_to(t_s);
        self.set_power_mode(pm)
    }

    /// The power mode currently in effect (tracks mid-run flips).
    pub fn power_mode(&self) -> &PowerMode {
        &self.run_cfg.power_mode
    }

    /// Build a governor telemetry snapshot at the current iteration
    /// boundary. `since_iter` is the trace length before the step whose
    /// boundary this is (its appended entries become [`GovernorObs::iters`]);
    /// `temp_c` carries a thermal guard's junction estimate when the
    /// driver has one.
    pub fn observe(&self, since_iter: usize, temp_c: Option<f64>) -> GovernorObs<'_> {
        // Pre-submitted traces keep future arrivals in `pending`; they
        // are not queue pressure until their arrival instant, so the
        // governor must not see them (a policy watching depth would
        // otherwise pin the ceiling for the whole run).
        let arrived = self.pending.iter().filter(|j| j.arrival_s <= self.t);
        let mut queued = 0usize;
        let mut oldest: Option<f64> = None;
        for j in arrived {
            queued += 1;
            oldest = Some(match oldest {
                Some(a) => a.min(j.arrival_s),
                None => j.arrival_s,
            });
        }
        for s in &self.live {
            if s.job.ttft_s.is_none() {
                oldest = Some(match oldest {
                    Some(a) => a.min(s.job.arrival_s),
                    None => s.job.arrival_s,
                });
            }
        }
        GovernorObs {
            now_s: self.t,
            queue_depth: queued + self.live.len(),
            live: self.live.len(),
            backlog_tokens: self.backlog_tokens(),
            kv_occupancy: self.kv_occupancy(),
            energy_j: self.energy_j,
            oldest_wait_s: oldest.map(|a| (self.t - a).max(0.0)).unwrap_or(0.0),
            mode: &self.run_cfg.power_mode.name,
            temp_c,
            iters: &self.trace[since_iter.min(self.trace.len())..],
        }
    }

    /// One scheduler turn under a governor: [`ServeSim::step`], then —
    /// if the turn produced any trace entries — consult `hook` with the
    /// boundary snapshot and apply a requested mode change on the spot.
    ///
    /// Because the consultation happens exactly at the iteration
    /// boundary (the local clock equals the last billed instant), the
    /// flip needs no retroactive energy split: every iteration is billed
    /// entirely under the mode that was active while it ran.
    pub fn step_governed(&mut self, now: f64, hook: &mut dyn GovernorHook) -> Result<(), RunError> {
        let mark = self.trace.len();
        self.step(now)?;
        if self.trace.len() == mark {
            return Ok(());
        }
        let decision = hook.on_iteration(&self.observe(mark, None));
        if let Some(pm) = decision {
            self.set_power_mode(&pm)?;
        }
        Ok(())
    }

    /// Requests submitted so far (completed or not).
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Requests queued or live (work in the system).
    pub fn queue_depth(&self) -> usize {
        self.pending.len() + self.live.len()
    }

    /// Tokens still to process across queued and live requests (remaining
    /// prompt plus remaining output) — a router's work-ahead estimate.
    pub fn backlog_tokens(&self) -> u64 {
        let pending: u64 = self.pending.iter().map(|j| j.prompt_tokens + j.output_remaining).sum();
        let live: u64 = self
            .live
            .iter()
            .map(|s| (s.job.prompt_tokens - s.prompt_done) + s.job.output_remaining)
            .sum();
        pending + live
    }

    /// KV pool occupancy in [0, 1].
    pub fn kv_occupancy(&self) -> f64 {
        let total = self.kv.total_blocks();
        if total == 0 {
            0.0
        } else {
            self.kv.used_blocks() as f64 / total as f64
        }
    }

    /// Energy integrated so far (J).
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Sequences preempted so far.
    pub fn preemptions(&self) -> usize {
        self.preemptions
    }

    /// Completed-request records, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Per-iteration telemetry so far.
    pub fn trace(&self) -> &[IterationTrace] {
        &self.trace
    }

    /// Per-iteration rail power samples (time at iteration end), aligned
    /// with [`ServeSim::trace`] — the GPU/CPU/DDR/SoC counter-track feed.
    pub fn rail_trace(&self) -> &[(f64, RailBreakdown)] {
        &self.rail_log
    }

    /// `(time, request id)` of every KV-pressure preemption so far.
    pub fn preemption_events(&self) -> &[(f64, u64)] {
        &self.preempt_log
    }

    /// `(time, request id)` of every mid-run cancellation so far.
    pub fn cancellations(&self) -> &[(f64, u64)] {
        &self.cancel_log
    }

    /// Total KV pool blocks (shrinks after [`ServeSim::shrink_kv_pool`]).
    pub fn kv_total_blocks(&self) -> usize {
        self.kv.total_blocks()
    }

    /// KV blocks currently held by live sequences.
    pub fn kv_used_blocks(&self) -> usize {
        self.kv.used_blocks()
    }

    /// KV blocks taken from the pool over the run so far.
    pub fn kv_blocks_allocated(&self) -> u64 {
        self.kv_allocated
    }

    /// KV blocks returned to the pool over the run so far.
    pub fn kv_blocks_freed(&self) -> u64 {
        self.kv_freed
    }

    /// Whether this simulation serves with the radix prefix cache on.
    pub fn prefix_cache_enabled(&self) -> bool {
        self.cfg.prefix_cache
    }

    /// Whether this simulation decodes speculatively.
    pub fn speculation_enabled(&self) -> bool {
        self.cfg.spec.is_some()
    }

    /// Speculation counters so far: `(drafted, accepted, rolled_back)`.
    /// `drafted == accepted + rolled_back` always; all zero with
    /// speculation off.
    pub fn spec_counters(&self) -> (u64, u64, u64) {
        (self.spec_drafted, self.spec_accepted, self.spec_rolled_back)
    }

    /// The adaptive-k controller's current draft length (the configured
    /// `k` when the controller is off; 0 with speculation off).
    pub fn spec_k_now(&self) -> u64 {
        self.spec_k_now
    }

    /// Prompt tokens served from the prefix cache so far.
    pub fn kv_cache_hit_tokens(&self) -> u64 {
        self.kv.cache_hit_tokens()
    }

    /// Copy-on-write block allocations so far.
    pub fn kv_blocks_cow(&self) -> u64 {
        self.kv.cow_events()
    }

    /// Blocks currently parked in the prefix cache.
    pub fn kv_cached_blocks(&self) -> usize {
        self.kv.cached_blocks()
    }

    /// How many leading tokens of `prompt` the prefix cache holds,
    /// without perturbing recency — a router's affinity probe.
    pub fn prefix_match_tokens(&self, prompt: &[TokenId]) -> u64 {
        self.kv.probe_prefix(prompt)
    }

    /// Prefix-cache occupancy samples `(time, cached blocks)` so far
    /// (empty with the cache off).
    pub fn cache_occupancy_log(&self) -> &[(f64, usize)] {
        &self.cache_log
    }

    /// Accounting snapshot for invariant oracles. Fleet runs expose one
    /// per device (where the consumed [`ServeRun`] is unavailable); the
    /// checking harness replays its invariants against this.
    pub fn audit(&self) -> ServeAudit {
        ServeAudit {
            label: self.label.clone(),
            submitted: self.submitted,
            completions: self.completions.clone(),
            cancelled: self.cancel_log.clone(),
            trace: self.trace.clone(),
            kv_blocks_allocated: self.kv_allocated,
            kv_blocks_freed: self.kv_freed,
            kv_blocks_in_use: self.kv.used_blocks(),
            kv_blocks_total: self.kv.total_blocks(),
            kv_cache_hit_tokens: self.kv.cache_hit_tokens(),
            kv_blocks_cow: self.kv.cow_events(),
            kv_blocks_cached: self.kv.cached_blocks(),
            kv_integrity: self.kv.verify(),
            queue_depth: self.pending.len() + self.live.len(),
            energy_j: self.energy_j,
            preemptions: self.preemptions,
            served_output_tokens: self.served_tokens,
            spec_drafted: self.spec_drafted,
            spec_accepted: self.spec_accepted,
            spec_rolled_back: self.spec_rolled_back,
        }
    }

    /// Device/model/precision display label used on exported timelines.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Tag this simulation's forensic events with a fleet device index
    /// and defer sink recording to the fleet's merged record (the fleet
    /// co-simulator calls this at construction; standalone sims keep
    /// device 0 and record themselves in [`ServeSim::finish`]).
    pub fn set_forensics_device(&mut self, device: u32) {
        self.dev_tag = device;
        self.fleet_member = true;
    }

    /// Arm (or disarm, with `None`) automatic flight-recorder dumps:
    /// the first completion whose end-to-end latency exceeds the SLO
    /// writes the retained event window to the `EDGELLM_FLIGHT_DUMP`
    /// path. Purely a side channel — simulation state never depends on
    /// it.
    pub fn set_slo_latency(&mut self, slo_latency_s: Option<f64>) {
        self.slo_latency_s = slo_latency_s;
    }

    /// The run's forensic record so far: lifecycle events (time-sorted,
    /// stable for equal stamps) plus the partitioned energy ledger.
    /// Feed it to [`edgellm_trace::forensics::reconstruct`] for the
    /// per-request timelines.
    pub fn forensics(&self) -> ForensicsLog {
        let mut events = self.flog.clone();
        events.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).expect("finite event times"));
        ForensicsLog {
            label: self.label.clone(),
            events,
            req_energy: self.req_energy.iter().map(|(&r, &e)| (r, e)).collect(),
            idle_energy_j: self.idle_energy_j,
            cloud_energy_j: 0.0,
            total_energy_j: self.energy_j,
        }
    }

    /// Output tokens delivered to completed requests.
    pub fn served_output_tokens(&self) -> u64 {
        self.served_tokens
    }

    /// Aggregate serving metrics over what has completed so far (all
    /// zeros before the first completion).
    pub fn report(&self) -> ContinuousReport {
        let latencies = Histogram::from_samples(self.completions.iter().map(|c| c.latency_s));
        let ttfts = Histogram::from_samples(self.completions.iter().map(|c| c.ttft_s));
        ContinuousReport {
            makespan_s: self.t,
            mean_latency_s: latencies.mean(),
            p95_latency_s: latencies.quantile_or_zero(0.95),
            output_tok_s: if self.t > 0.0 { self.served_tokens as f64 / self.t } else { 0.0 },
            mean_occupancy: self.occupancy_sum as f64 / self.decode_iters.max(1) as f64,
            requests: latencies.count(),
            energy_j: self.energy_j,
            preemptions: self.preemptions,
            mean_ttft_s: ttfts.mean(),
            p50_ttft_s: ttfts.quantile_or_zero(0.50),
            p99_ttft_s: ttfts.quantile_or_zero(0.99),
            prefill_stall_s: self.prefill_stall_s,
        }
    }

    /// Consume the simulation into a [`ServeRun`].
    ///
    /// When the process-wide [`edgellm_trace::sink`] is enabled, the
    /// run's full timeline — iteration spans, preemption instants, KV and
    /// rail-power counter tracks — is appended to it as a new process
    /// before the state is consumed, which is how `--trace-out` captures
    /// every serve run an experiment performs without code changes.
    pub fn finish(self) -> ServeRun {
        let report = self.report();
        if !self.fleet_member && forensics::sink::enabled() {
            forensics::sink::record(forensics::reconstruct(&self.forensics()));
        }
        if edgellm_trace::sink::enabled() {
            edgellm_trace::sink::with(|out| {
                let pid = out.next_pid();
                crate::serve::adapter::record_serve_run(
                    out,
                    pid,
                    &self.label,
                    &self.trace,
                    &self.rail_log,
                    &self.cache_log,
                    &self.preempt_log,
                );
            });
        }
        ServeRun {
            report,
            trace: self.trace,
            completions: self.completions,
            cancelled: self.cancel_log,
            kv_blocks_allocated: self.kv_allocated,
            kv_blocks_freed: self.kv_freed,
            kv_cache_hit_tokens: self.kv.cache_hit_tokens(),
            kv_blocks_cow: self.kv.cow_events(),
            served_output_tokens: self.served_tokens,
            spec_drafted: self.spec_drafted,
            spec_accepted: self.spec_accepted,
            spec_rolled_back: self.spec_rolled_back,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::PoissonArrivals;
    use crate::serve::EventScheduler;
    use edgellm_models::{Llm, Precision};

    fn setup() -> (DeviceSpec, RunConfig) {
        (DeviceSpec::orin_agx_64gb(), RunConfig::new(Llm::Llama31_8b, Precision::Fp16))
    }

    #[test]
    fn stepped_sim_matches_run_wrapper_exactly() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(2.0).generate(30, 13);
        let wrapped = EventScheduler::new(ServeConfig::chunked(16)).run(&dev, &cfg, &reqs).unwrap();
        let mut sim = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        let direct = sim.finish();
        assert_eq!(wrapped.report, direct.report);
        assert_eq!(wrapped.trace, direct.trace);
        assert_eq!(wrapped.kv_blocks_allocated, direct.kv_blocks_allocated);
        assert_eq!(wrapped.served_output_tokens, direct.served_output_tokens);
    }

    #[test]
    fn incremental_submission_matches_upfront_submission() {
        // Routing a trace request-by-request (as a fleet front-end does)
        // must reproduce the run started with the full trace, provided
        // the sim never outruns the next submission.
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.5).generate(20, 21);
        let max_sl = reqs.iter().map(|r| r.input_tokens + r.output_tokens).max().unwrap();
        let upfront = ServeSim::new(ServeConfig::chunked(8), &dev, &cfg, &reqs).unwrap();
        let mut inc = ServeSim::with_seq_hint(ServeConfig::chunked(8), &dev, &cfg, max_sl).unwrap();
        let mut queued = 0usize;
        let mut upfront = upfront;
        loop {
            // Feed every arrival that precedes the device's next event.
            let horizon = inc.next_event_s();
            while queued < reqs.len() && horizon.is_none_or(|h| reqs[queued].arrival_s <= h) {
                inc.submit(&reqs[queued]);
                queued += 1;
            }
            match inc.next_event_s() {
                Some(now) => inc.step(now).unwrap(),
                None if queued == reqs.len() => break,
                None => {
                    inc.submit(&reqs[queued]);
                    queued += 1;
                }
            }
        }
        while let Some(now) = upfront.next_event_s() {
            upfront.step(now).unwrap();
        }
        assert_eq!(upfront.report(), inc.report());
    }

    #[test]
    fn drain_returns_original_shapes_and_frees_kv() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(3.0).generate(12, 5);
        let mut sim = ServeSim::new(ServeConfig::chunked(8), &dev, &cfg, &reqs).unwrap();
        // Step a few events so some requests are live, some queued.
        for _ in 0..6 {
            let now = sim.next_event_s().unwrap();
            sim.step(now).unwrap();
        }
        let done = sim.completions().len();
        let drained = sim.drain_incomplete();
        assert_eq!(done + drained.len(), 12, "every request is completed or drained");
        assert!(sim.is_done());
        assert_eq!(sim.kv_occupancy(), 0.0, "drain releases all KV blocks");
        for d in &drained {
            let orig = reqs.iter().find(|r| r.id == d.id).expect("known id");
            assert_eq!(d.input_tokens, orig.input_tokens, "reroute restarts from the prompt");
            assert_eq!(d.output_tokens, orig.output_tokens);
            assert_eq!(d.arrival_s, orig.arrival_s, "latency stays end-to-end");
        }
    }

    #[test]
    fn tied_arrivals_order_by_request_id() {
        // Two identical traces whose tied requests are submitted in
        // opposite orders must serve identically: ids break the tie.
        let (dev, cfg) = setup();
        let mk = |id: u64| Request { id, arrival_s: 0.5, input_tokens: 32, output_tokens: 64 };
        let fwd = [mk(0), mk(1), mk(2)];
        let rev = [mk(2), mk(1), mk(0)];
        let a = EventScheduler::new(ServeConfig::chunked(2)).run(&dev, &cfg, &fwd).unwrap();
        let b = EventScheduler::new(ServeConfig::chunked(2)).run(&dev, &cfg, &rev).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn backlog_and_queue_depth_track_progress() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(2.0).generate(10, 3);
        let mut sim = ServeSim::new(ServeConfig::chunked(8), &dev, &cfg, &reqs).unwrap();
        let total: u64 = reqs.iter().map(|r| r.input_tokens + r.output_tokens).sum();
        assert_eq!(sim.backlog_tokens(), total);
        assert_eq!(sim.queue_depth(), 10);
        let mut prev = sim.backlog_tokens();
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
            assert!(sim.backlog_tokens() <= prev, "backlog never grows without preemption");
            prev = sim.backlog_tokens();
        }
        assert_eq!(sim.backlog_tokens(), 0);
        assert_eq!(sim.queue_depth(), 0);
        assert_eq!(sim.completions().len(), 10);
    }

    #[test]
    fn zero_length_prompt_gets_decode_ttft() {
        // A prompt of zero tokens never passes through prefill; its TTFT
        // is the first decode token, strictly before the last one.
        let (dev, cfg) = setup();
        let reqs = [
            Request { id: 0, arrival_s: 0.0, input_tokens: 0, output_tokens: 8 },
            Request { id: 1, arrival_s: 0.0, input_tokens: 32, output_tokens: 8 },
        ];
        let mut sim = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        assert_eq!(sim.completions().len(), 2);
        for c in sim.completions() {
            assert!(c.ttft_s > 0.0, "request {} ttft never recorded", c.rid);
            assert!(
                c.ttft_s < c.latency_s,
                "request {} ttft {} must precede last token at {}",
                c.rid,
                c.ttft_s,
                c.latency_s
            );
        }
    }

    #[test]
    fn zero_length_prompt_drains_cleanly() {
        let (dev, cfg) = setup();
        let reqs = [
            Request { id: 0, arrival_s: 0.0, input_tokens: 0, output_tokens: 64 },
            Request { id: 1, arrival_s: 0.0, input_tokens: 16, output_tokens: 64 },
        ];
        let mut sim = ServeSim::new(ServeConfig::chunked(8), &dev, &cfg, &reqs).unwrap();
        for _ in 0..3 {
            let now = sim.next_event_s().unwrap();
            sim.step(now).unwrap();
        }
        let drained = sim.drain_incomplete();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].input_tokens, 0, "zero prompt survives the round-trip");
        assert_eq!(sim.kv_occupancy(), 0.0);
        assert_eq!(sim.kv_blocks_allocated(), sim.kv_blocks_freed());
    }

    #[test]
    fn kv_pool_of_exactly_one_sequence_serializes() {
        // The pool holds exactly one full sequence (144 tokens = 9
        // blocks). Concurrent admissions must churn through preemption
        // yet every request completes with exact token accounting — the
        // recompute penalty never grows a sequence past the pool.
        let (dev, cfg) = setup();
        let reqs: Vec<Request> = (0..4)
            .map(|id| Request { id, arrival_s: 0.0, input_tokens: 48, output_tokens: 96 })
            .collect();
        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        let pool = 144 * kv_per_token;
        let mut sim =
            ServeSim::new(ServeConfig::chunked(16).kv_pool_cap(pool), &dev, &cfg, &reqs).unwrap();
        assert_eq!(sim.kv_total_blocks(), 9);
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        assert_eq!(sim.completions().len(), 4, "one-sequence pool still drains");
        assert!(sim.preemptions() > 0, "contention must preempt");
        assert_eq!(sim.served_output_tokens(), 4 * 96);
        assert_eq!(sim.kv_blocks_allocated(), sim.kv_blocks_freed());
        assert_eq!(sim.kv_used_blocks(), 0);
    }

    /// Drive a sim to completion and return it.
    fn drain(mut sim: ServeSim) -> ServeSim {
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        sim
    }

    #[test]
    fn prefix_cache_off_by_default_leaves_counters_dark() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(2.0).generate(10, 13);
        let sim = drain(ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap());
        assert!(!sim.prefix_cache_enabled());
        assert_eq!(sim.kv_cache_hit_tokens(), 0);
        assert_eq!(sim.kv_blocks_cow(), 0);
        assert_eq!(sim.kv_cached_blocks(), 0);
        assert!(sim.cache_occupancy_log().is_empty());
        let audit = sim.audit();
        assert!(audit.kv_integrity.is_empty(), "{:?}", audit.kv_integrity);
        assert_eq!(audit.kv_blocks_in_use, 0);
    }

    /// Two requests sharing their whole prompt, arriving far enough
    /// apart that the first finishes prefill before the second admits.
    fn shared_prompt_pair(cfg_serve: ServeConfig, dev: &DeviceSpec, cfg: &RunConfig) -> ServeSim {
        let reqs = [
            Request { id: 0, arrival_s: 0.0, input_tokens: 128, output_tokens: 32 },
            Request { id: 1, arrival_s: 60.0, input_tokens: 128, output_tokens: 32 },
        ];
        let max_sl = 160;
        let mut sim = ServeSim::with_seq_hint(cfg_serve, dev, cfg, max_sl).unwrap();
        let prompt: Vec<TokenId> = (0..128).map(|i| 70_000 + i).collect();
        for r in &reqs {
            sim.submit_with_prompt(r, &prompt);
        }
        sim
    }

    #[test]
    fn warm_prefix_hit_cuts_ttft_and_energy() {
        let (dev, cfg) = setup();
        let cold = drain(shared_prompt_pair(ServeConfig::chunked(16), &dev, &cfg));
        let warm =
            drain(shared_prompt_pair(ServeConfig::chunked(16).with_prefix_cache(), &dev, &cfg));
        assert_eq!(warm.completions().len(), 2);
        assert_eq!(warm.kv_cache_hit_tokens(), 128, "second prompt fully cached");
        let cold_ttft = |sim: &ServeSim, rid: u64| {
            sim.completions().iter().find(|c| c.rid == rid).unwrap().ttft_s
        };
        assert_eq!(
            cold_ttft(&warm, 0),
            cold_ttft(&cold, 0),
            "first request serves cold either way"
        );
        assert!(
            cold_ttft(&warm, 1) < cold_ttft(&cold, 1),
            "cached prefill must cut the second TTFT: {} vs {}",
            cold_ttft(&warm, 1),
            cold_ttft(&cold, 1)
        );
        assert!(
            warm.energy_j() < cold.energy_j(),
            "skipped prefill compute must save energy: {} vs {}",
            warm.energy_j(),
            cold.energy_j()
        );
        assert!(!warm.cache_occupancy_log().is_empty());
        // Drained audit: only the cache parks blocks, and the refcount
        // self-check is clean.
        let audit = warm.audit();
        assert!(audit.kv_integrity.is_empty(), "{:?}", audit.kv_integrity);
        assert_eq!(audit.kv_blocks_in_use, audit.kv_blocks_cached);
        assert_eq!(
            audit.kv_blocks_allocated,
            audit.kv_blocks_freed + audit.kv_blocks_cached as u64
        );
    }

    #[test]
    fn warm_blocking_prefill_skips_the_stall() {
        let (dev, cfg) = setup();
        let cold = drain(shared_prompt_pair(ServeConfig::blocking(4), &dev, &cfg));
        let warm =
            drain(shared_prompt_pair(ServeConfig::blocking(4).with_prefix_cache(), &dev, &cfg));
        assert_eq!(warm.kv_cache_hit_tokens(), 128);
        let ttft = |sim: &ServeSim, rid: u64| {
            sim.completions().iter().find(|c| c.rid == rid).unwrap().ttft_s
        };
        // A full hit skips the blocking stall entirely: TTFT lands on
        // the first decode step.
        assert!(ttft(&warm, 1) < ttft(&cold, 1));
        assert!(warm.energy_j() < cold.energy_j());
        assert!(warm.audit().kv_integrity.is_empty());
    }

    #[test]
    fn divergent_prompts_copy_on_write() {
        let (dev, cfg) = setup();
        let reqs = [
            Request { id: 0, arrival_s: 0.0, input_tokens: 64, output_tokens: 16 },
            Request { id: 1, arrival_s: 60.0, input_tokens: 64, output_tokens: 16 },
        ];
        let mut sim =
            ServeSim::with_seq_hint(ServeConfig::chunked(16).with_prefix_cache(), &dev, &cfg, 80)
                .unwrap();
        let base: Vec<TokenId> = (0..64).map(|i| 50_000 + i).collect();
        let mut fork = base.clone();
        for t in &mut fork[20..] {
            *t += 9_999; // diverges 4 tokens into the second block
        }
        sim.submit_with_prompt(&reqs[0], &base);
        sim.submit_with_prompt(&reqs[1], &fork);
        let sim = drain(sim);
        assert_eq!(sim.completions().len(), 2);
        assert_eq!(sim.kv_cache_hit_tokens(), 20, "16 shared + 4 copied");
        assert_eq!(sim.kv_blocks_cow(), 1);
        assert!(sim.audit().kv_integrity.is_empty());
    }

    #[test]
    fn preemption_with_cache_resumes_from_cached_blocks() {
        // Pool of exactly one sequence (as the flat test above) but with
        // the prefix cache on: preempted prompts re-admit against their
        // own cached prefix instead of recomputing everything, and the
        // run still drains with clean accounting.
        let (dev, cfg) = setup();
        let reqs: Vec<Request> = (0..4)
            .map(|id| Request { id, arrival_s: 0.0, input_tokens: 48, output_tokens: 96 })
            .collect();
        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        let pool = 144 * kv_per_token;
        let mut sim = ServeSim::new(
            ServeConfig::chunked(16).kv_pool_cap(pool).with_prefix_cache(),
            &dev,
            &cfg,
            &reqs,
        )
        .unwrap();
        assert_eq!(sim.kv_total_blocks(), 9);
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        assert_eq!(sim.completions().len(), 4, "one-sequence pool still drains");
        assert!(sim.preemptions() > 0, "contention must preempt");
        assert_eq!(sim.served_output_tokens(), 4 * 96);
        let audit = sim.audit();
        assert!(audit.kv_integrity.is_empty(), "{:?}", audit.kv_integrity);
        assert_eq!(audit.kv_blocks_in_use, audit.kv_blocks_cached);
        assert_eq!(
            audit.kv_blocks_allocated,
            audit.kv_blocks_freed + audit.kv_blocks_cached as u64
        );
    }

    #[test]
    fn drain_with_cache_releases_everything() {
        let (dev, cfg) = setup();
        let mut sim = shared_prompt_pair(ServeConfig::chunked(8).with_prefix_cache(), &dev, &cfg);
        for _ in 0..6 {
            let now = sim.next_event_s().unwrap();
            sim.step(now).unwrap();
        }
        let _ = sim.drain_incomplete();
        assert_eq!(sim.kv_occupancy(), 0.0, "drain clears the cache too");
        assert_eq!(sim.kv_cached_blocks(), 0);
        assert_eq!(sim.kv_blocks_allocated(), sim.kv_blocks_freed());
        assert!(sim.audit().kv_integrity.is_empty());
    }

    #[test]
    fn shrink_kv_pool_evicts_cache_before_preempting() {
        let (dev, cfg) = setup();
        let sim =
            drain(shared_prompt_pair(ServeConfig::chunked(16).with_prefix_cache(), &dev, &cfg));
        let cached = sim.kv_cached_blocks();
        assert!(cached > 0, "drained run leaves a warm cache");
        let mut sim = sim;
        sim.shrink_kv_pool(1);
        assert_eq!(sim.kv_total_blocks(), 1);
        assert!(sim.kv_cached_blocks() <= 1);
        assert!(sim.audit().kv_integrity.is_empty());
    }

    #[test]
    fn skip_to_earlier_timestamp_is_noop() {
        let (dev, cfg) = setup();
        let reqs = [Request { id: 0, arrival_s: 4.0, input_tokens: 32, output_tokens: 8 }];
        let mut sim = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        sim.skip_to(3.0);
        assert_eq!(sim.now(), 3.0);
        let e = sim.energy_j();
        sim.skip_to(1.0); // earlier than the clock: must not rewind
        assert_eq!(sim.now(), 3.0);
        assert_eq!(sim.energy_j(), e, "a skipped gap bills nothing");
        // Live sequences also pin the clock.
        sim.step(4.0).unwrap();
        let t = sim.now();
        sim.skip_to(t + 100.0);
        assert_eq!(sim.now(), t, "skip_to is quiescent-only");
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        assert_eq!(sim.completions().len(), 1);
    }

    #[test]
    fn cancel_releases_kv_and_is_conserved() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(3.0).generate(10, 7);
        let mut sim = ServeSim::new(ServeConfig::chunked(8), &dev, &cfg, &reqs).unwrap();
        for _ in 0..4 {
            let now = sim.next_event_s().unwrap();
            sim.step(now).unwrap();
        }
        // One live victim, one still-queued victim.
        let live_rid = sim.audit().trace.last().map(|_| reqs[0].id).unwrap();
        assert!(sim.cancel(live_rid));
        let queued_rid = reqs.last().unwrap().id;
        assert!(sim.cancel(queued_rid));
        assert!(!sim.cancel(queued_rid), "double-cancel is a no-op");
        assert!(!sim.cancel(9999), "unknown rid is a no-op");
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        let audit = sim.audit();
        assert_eq!(audit.cancelled.len(), 2);
        assert_eq!(
            audit.completions.len() + audit.cancelled.len(),
            audit.submitted,
            "every request completes or cancels"
        );
        assert_eq!(audit.kv_blocks_allocated, audit.kv_blocks_freed);
        assert_eq!(audit.kv_blocks_in_use, 0);
    }

    #[test]
    fn shrink_kv_pool_preempts_survivors_to_fit() {
        let (dev, cfg) = setup();
        let reqs: Vec<Request> = (0..6)
            .map(|id| Request { id, arrival_s: 0.0, input_tokens: 48, output_tokens: 96 })
            .collect();
        let mut sim = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        for _ in 0..8 {
            let now = sim.next_event_s().unwrap();
            sim.step(now).unwrap();
        }
        let used = sim.kv_used_blocks();
        assert!(used > 9, "batch grew past one sequence before the shrink");
        sim.shrink_kv_pool(9);
        assert_eq!(sim.kv_total_blocks(), 9);
        assert!(sim.kv_used_blocks() <= 9);
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        assert_eq!(sim.completions().len(), 6, "shrunken pool still drains");
        assert_eq!(sim.served_output_tokens(), 6 * 96);
        assert_eq!(sim.kv_blocks_allocated(), sim.kv_blocks_freed());
    }

    #[test]
    fn power_mode_flip_midrun_completes_with_more_time() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(2.0).generate(10, 11);
        let registry = edgellm_hw::PowerModeRegistry::stock_for(dev.clone());
        let slow = registry
            .iter()
            .find(|m| m.name != cfg.power_mode.name)
            .expect("stock registry has >1 mode")
            .clone();
        let mut flipped = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        let mut stock = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        for _ in 0..4 {
            let now = flipped.next_event_s().unwrap();
            flipped.step(now).unwrap();
            let now = stock.next_event_s().unwrap();
            stock.step(now).unwrap();
        }
        flipped.set_power_mode(&slow).unwrap();
        while let Some(now) = flipped.next_event_s() {
            flipped.step(now).unwrap();
        }
        while let Some(now) = stock.next_event_s() {
            stock.step(now).unwrap();
        }
        assert_eq!(flipped.completions().len(), 10);
        assert!(
            (flipped.now() - stock.now()).abs() > 1e-9,
            "a mid-run clock change must move the makespan"
        );
    }

    /// The stock mode (≠ current) whose idle power differs most from the
    /// current mode's — a flip between the two must move the idle rate.
    fn lowest_idle_mode(dev: &DeviceSpec, cfg: &RunConfig) -> PowerMode {
        let rails = RailModel::orin_agx(dev.clone());
        let here = rails.total_w(&cfg.power_mode.clocks, &LoadProfile::idle());
        edgellm_hw::PowerModeRegistry::stock_for(dev.clone())
            .iter()
            .filter(|m| m.name != cfg.power_mode.name)
            .max_by(|a, b| {
                let da = (rails.total_w(&a.clocks, &LoadProfile::idle()) - here).abs();
                let db = (rails.total_w(&b.clocks, &LoadProfile::idle()) - here).abs();
                da.partial_cmp(&db).unwrap()
            })
            .expect("stock registry has >1 mode")
            .clone()
    }

    /// Satellite regression: `energy == ∫ power` to 1e-9 across a mode
    /// flip landing *inside* an idle gap. `set_power_mode` alone leaves a
    /// quiescent clock behind the flip instant, so the next step would
    /// bill the whole gap at the new idle power; `set_power_mode_at`
    /// splits the integral at the change.
    #[test]
    fn mid_gap_mode_flip_splits_the_energy_integral() {
        let (dev, cfg) = setup();
        // Two requests separated by a long quiet gap.
        let reqs = vec![
            Request { id: 0, arrival_s: 0.0, input_tokens: 32, output_tokens: 8 },
            Request { id: 1, arrival_s: 30.0, input_tokens: 32, output_tokens: 8 },
        ];
        let slow = lowest_idle_mode(&dev, &cfg);
        let mut sim = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        // Drain the first request; the sim goes quiescent well before t=30.
        while sim.completions().is_empty() {
            let now = sim.next_event_s().unwrap();
            sim.step(now).unwrap();
        }
        let t_flip = sim.now() + 10.0;
        assert!(t_flip < 30.0, "flip lands inside the idle gap");
        let idle_old = sim.idle_power;
        sim.set_power_mode_at(&slow, t_flip).unwrap();
        let idle_new = sim.idle_power;
        assert!(
            (idle_old - idle_new).abs() > 1e-12,
            "modes with different clocks idle at different power"
        );
        // The old-mode stretch got its own trace entry at old idle power.
        let gap_entry = *sim.trace().last().unwrap();
        assert_eq!(gap_entry.phase, IterPhase::Idle);
        assert!((gap_entry.t_s - t_flip).abs() < 1e-12);
        assert!((gap_entry.power_w - idle_old).abs() < 1e-12);
        while let Some(now) = sim.next_event_s() {
            sim.step(now).unwrap();
        }
        assert_eq!(sim.completions().len(), 2);
        // The pinned invariant: total energy equals the trace integral to
        // 1e-9 relative — every instant billed under the mode active then.
        let integral: f64 = sim.trace().iter().map(|it| it.power_w * it.dt_s).sum();
        let e = sim.energy_j();
        assert!(
            (e - integral).abs() <= 1e-9 * (1.0 + e.abs() + integral.abs()),
            "energy {e} != trace integral {integral}"
        );
        // And the new-mode stretch of the gap was billed at the new idle
        // power: find the idle entry covering (t_flip, 30].
        let tail_gap = sim
            .trace()
            .iter()
            .find(|it| it.phase == IterPhase::Idle && it.t_s > t_flip)
            .expect("remainder of the gap billed separately");
        assert!((tail_gap.power_w - idle_new).abs() < 1e-12);
    }

    /// The same flip applied via bare `set_power_mode` misattributes the
    /// old-mode stretch — pinning the bug the `_at` variant fixes (the
    /// totals differ by exactly the gap-length × idle-power delta).
    #[test]
    fn bare_set_power_mode_misattributes_the_gap() {
        let (dev, cfg) = setup();
        let reqs = vec![
            Request { id: 0, arrival_s: 0.0, input_tokens: 32, output_tokens: 8 },
            Request { id: 1, arrival_s: 30.0, input_tokens: 32, output_tokens: 8 },
        ];
        let slow = lowest_idle_mode(&dev, &cfg);
        let mut split = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        let mut bare = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
        while split.completions().is_empty() {
            let now = split.next_event_s().unwrap();
            split.step(now).unwrap();
            let now = bare.next_event_s().unwrap();
            bare.step(now).unwrap();
        }
        let t_flip = split.now() + 10.0;
        let idle_old = split.idle_power;
        split.set_power_mode_at(&slow, t_flip).unwrap();
        bare.set_power_mode(&slow).unwrap();
        let idle_new = bare.idle_power;
        while let Some(now) = split.next_event_s() {
            split.step(now).unwrap();
        }
        while let Some(now) = bare.next_event_s() {
            bare.step(now).unwrap();
        }
        // Identical completions, different energy: the bare flip billed
        // the 10 s old-mode stretch at the new idle power.
        assert_eq!(split.completions().len(), bare.completions().len());
        let expected_delta = 10.0 * (idle_old - idle_new);
        let delta = split.energy_j() - bare.energy_j();
        assert!(
            (delta - expected_delta).abs() <= 1e-9 * (1.0 + expected_delta.abs()),
            "delta {delta} != gap misattribution {expected_delta}"
        );
    }

    #[test]
    fn speculation_cuts_makespan_and_conserves_tokens() {
        // k=4 at α=0.8 on the paper workload: fewer (verify) iterations,
        // identical served output, strictly smaller makespan, and the
        // drafted = accepted + rolled_back identity throughout.
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.0).generate(20, 7);
        let plain = drain(ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap());
        let spec = drain(
            ServeSim::new(ServeConfig::chunked(16).with_speculation(4, 0.8), &dev, &cfg, &reqs)
                .unwrap(),
        );
        assert_eq!(spec.completions().len(), 20);
        assert_eq!(spec.served_output_tokens(), plain.served_output_tokens());
        let (drafted, accepted, rolled_back) = spec.spec_counters();
        assert!(drafted > 0, "speculation must draft");
        assert_eq!(drafted, accepted + rolled_back);
        assert!(accepted > 0 && rolled_back > 0, "α=0.8 both lands and misses");
        assert!(
            spec.now() < plain.now(),
            "speculative makespan {} must beat plain {}",
            spec.now(),
            plain.now()
        );
        // Rolled-back drafts were appended then truncated: the KV pool
        // still drains block-exactly.
        assert_eq!(spec.kv_blocks_allocated(), spec.kv_blocks_freed());
        assert_eq!(spec.kv_used_blocks(), 0);
        assert!(spec.audit().kv_integrity.is_empty());
        // Plain runs keep all speculation counters dark.
        assert_eq!(plain.spec_counters(), (0, 0, 0));
    }

    #[test]
    fn speculative_energy_ledger_still_partitions_exactly() {
        // Per-request shares + idle remainder must sum to the energy
        // integral at 1e-9 even with drafted-then-rejected work billed.
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.5).generate(15, 3);
        let sim = drain(
            ServeSim::new(ServeConfig::chunked(8).with_speculation(4, 0.7), &dev, &cfg, &reqs)
                .unwrap(),
        );
        let f = sim.forensics();
        let attributed: f64 = f.req_energy.iter().map(|&(_, e)| e).sum();
        let total = attributed + f.idle_energy_j;
        assert!(
            (total - sim.energy_j()).abs() <= 1e-9 * (1.0 + sim.energy_j()),
            "ledger {total} != integral {}",
            sim.energy_j()
        );
        // The trace integral and the counter match too.
        let integral: f64 = sim.trace().iter().map(|it| it.power_w * it.dt_s).sum();
        assert!((integral - sim.energy_j()).abs() <= 1e-9 * (1.0 + sim.energy_j()));
    }

    #[test]
    fn speculative_runs_replay_deterministically() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(2.0).generate(12, 11);
        let mk = || {
            drain(
                ServeSim::new(
                    ServeConfig::chunked(8).with_adaptive_speculation(6, 0.6),
                    &dev,
                    &cfg,
                    &reqs,
                )
                .unwrap(),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.spec_counters(), b.spec_counters());
        assert_eq!(a.energy_j(), b.energy_j());
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn adaptive_k_shrinks_when_acceptance_drops() {
        let (dev, cfg) = setup();
        let reqs = PoissonArrivals::paper_shape(1.0).generate(10, 5);
        let cold = drain(
            ServeSim::new(
                ServeConfig::chunked(8).with_adaptive_speculation(8, 0.05),
                &dev,
                &cfg,
                &reqs,
            )
            .unwrap(),
        );
        assert_eq!(cold.spec_k_now(), 1, "missing drafts must shrink k to the floor");
        let hot = drain(
            ServeSim::new(
                ServeConfig::chunked(8).with_adaptive_speculation(8, 0.95),
                &dev,
                &cfg,
                &reqs,
            )
            .unwrap(),
        );
        assert_eq!(hot.spec_k_now(), 8, "landing drafts must keep k at the ceiling");
        // The fixed-k config never moves.
        let fixed = drain(
            ServeSim::new(ServeConfig::chunked(8).with_speculation(5, 0.05), &dev, &cfg, &reqs)
                .unwrap(),
        );
        assert_eq!(fixed.spec_k_now(), 5);
    }

    #[test]
    fn speculation_survives_kv_pressure_and_preemption() {
        // The one-sequence pool under speculation: verify footprints
        // (1 + k per sequence) are reserved up front, preemption churns,
        // and the run still drains with exact accounting.
        let (dev, cfg) = setup();
        let reqs: Vec<Request> = (0..4)
            .map(|id| Request { id, arrival_s: 0.0, input_tokens: 48, output_tokens: 96 })
            .collect();
        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        let pool = 144 * kv_per_token;
        let sim = drain(
            ServeSim::new(
                ServeConfig::chunked(16).kv_pool_cap(pool).with_speculation(4, 0.6),
                &dev,
                &cfg,
                &reqs,
            )
            .unwrap(),
        );
        assert_eq!(sim.completions().len(), 4);
        assert!(sim.preemptions() > 0, "contention must preempt");
        assert_eq!(sim.served_output_tokens(), 4 * 96);
        assert_eq!(sim.kv_blocks_allocated(), sim.kv_blocks_freed());
        let (drafted, accepted, rolled_back) = sim.spec_counters();
        assert_eq!(drafted, accepted + rolled_back);
        assert!(sim.audit().kv_integrity.is_empty());
    }
}
