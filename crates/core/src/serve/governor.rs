//! The serving-side half of online power governance.
//!
//! A governor is a feedback controller that watches per-iteration
//! telemetry and retunes the device's power mode while the run is in
//! flight. The controller itself (policies, mode ladder, dwell
//! enforcement) lives in the `edgellm-governor` crate; this module
//! defines only the contract between it and [`ServeSim`]:
//!
//! * [`GovernorObs`] — the telemetry snapshot the simulation hands the
//!   controller at every iteration boundary;
//! * [`GovernorHook`] — the callback trait the controller implements;
//!   returning `Some(mode)` flips the device via
//!   [`ServeSim::set_power_mode`] at the boundary instant, so the energy
//!   integral splits exactly at the change (no iteration ever straddles
//!   two operating points).
//!
//! Everything is synchronous and allocation-free on the hot path: the
//! snapshot borrows the simulation's own trace, and decisions are plain
//! `Option<PowerMode>` values. Determinism therefore reduces to the
//! policy being a pure function of its state and the snapshot — which
//! `edgellm-check` verifies across thread counts.
//!
//! [`ServeSim`]: crate::serve::ServeSim
//! [`ServeSim::set_power_mode`]: crate::serve::ServeSim::set_power_mode

use crate::serve::trace::IterationTrace;
use edgellm_hw::PowerMode;

/// Telemetry snapshot handed to a [`GovernorHook`] at an iteration
/// boundary. Borrows the simulation's state; copy out what must outlive
/// the call.
#[derive(Debug, Clone, Copy)]
pub struct GovernorObs<'a> {
    /// Simulation clock at the boundary (s).
    pub now_s: f64,
    /// Requests queued or live (work in the system).
    pub queue_depth: usize,
    /// Sequences currently holding KV blocks.
    pub live: usize,
    /// Tokens still to process across queued and live requests.
    pub backlog_tokens: u64,
    /// KV pool occupancy in [0, 1].
    pub kv_occupancy: f64,
    /// Energy integrated so far (J).
    pub energy_j: f64,
    /// How long the oldest request still waiting for its first token has
    /// been waiting (0 when none is) — the TTFT-risk signal.
    pub oldest_wait_s: f64,
    /// Name of the active power mode.
    pub mode: &'a str,
    /// Junction temperature when the driver has a thermal guard
    /// (fleet members); `None` for bare serve runs, where a thermal
    /// policy integrates its own RC state from `iters`.
    pub temp_c: Option<f64>,
    /// Trace entries appended since the previous observation — the idle
    /// gap (if any) plus the iteration just billed. Never empty.
    pub iters: &'a [IterationTrace],
}

impl GovernorObs<'_> {
    /// Duration of the last decode-bearing iteration in this batch of
    /// entries — the time-between-tokens signal. `None` when only idle
    /// or pure-prefill entries landed.
    pub fn last_decode_dt_s(&self) -> Option<f64> {
        self.iters.iter().rev().find(|it| it.decoding > 0).map(|it| it.dt_s)
    }
}

/// A feedback controller consulted at every iteration boundary.
///
/// Return `Some(mode)` to flip the device for subsequent iterations
/// (the mode must validate on the device), `None` to hold. The hook is
/// invoked after the iteration is billed, so a decision at time *t*
/// affects exactly the work after *t*.
pub trait GovernorHook {
    /// Observe one boundary and optionally request a mode change.
    fn on_iteration(&mut self, obs: &GovernorObs<'_>) -> Option<PowerMode>;
}

/// A hook that never changes anything — the no-governor baseline, useful
/// for exercising governed code paths without a controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullGovernor;

impl GovernorHook for NullGovernor {
    fn on_iteration(&mut self, _obs: &GovernorObs<'_>) -> Option<PowerMode> {
        None
    }
}
