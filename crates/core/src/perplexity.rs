//! The paper's perplexity protocol: overlapping 1024-token windows with a
//! 512-token stride (§2), `exp(Σ NLL / total tokens)`.

use edgellm_nn::CausalScorer;

/// Window size in tokens.
pub const WINDOW: usize = 1024;

/// Stride between windows.
pub const STRIDE: usize = 512;

/// Result of a perplexity evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerplexityReport {
    /// exp of the mean NLL.
    pub perplexity: f64,
    /// Total NLL (nats).
    pub total_nll: f64,
    /// Tokens scored.
    pub tokens_scored: usize,
    /// Windows evaluated.
    pub windows: usize,
}

/// Evaluate sliding-window perplexity over a token stream with the given
/// window/stride. In each window only the tokens *not already scored by
/// the previous window* contribute (the standard strided protocol), so no
/// token is double-counted while every token past the first retains up to
/// `window − stride` tokens of context.
pub fn sliding_window_perplexity_with<S: CausalScorer>(
    scorer: &S,
    tokens: &[u32],
    window: usize,
    stride: usize,
) -> PerplexityReport {
    assert!(stride > 0 && stride <= window, "stride must be in 1..=window");
    let mut total_nll = 0.0f64;
    let mut scored = 0usize;
    let mut windows = 0usize;
    let mut begin = 0usize;
    loop {
        let end = (begin + window).min(tokens.len());
        // First window scores from position 1; later windows score only
        // the fresh tail (positions ≥ previous end).
        let start = if begin == 0 { 1 } else { window - stride };
        if start >= end - begin {
            break;
        }
        let w = &tokens[begin..end];
        let nlls = scorer.nll_span(w, start);
        total_nll += nlls.iter().sum::<f64>();
        scored += nlls.len();
        windows += 1;
        if end == tokens.len() {
            break;
        }
        begin += stride;
    }
    let perplexity = if scored == 0 { f64::NAN } else { (total_nll / scored as f64).exp() };
    PerplexityReport { perplexity, total_nll, tokens_scored: scored, windows }
}

/// The paper's protocol: 1024-token windows, stride 512.
pub fn sliding_window_perplexity<S: CausalScorer>(scorer: &S, tokens: &[u32]) -> PerplexityReport {
    sliding_window_perplexity_with(scorer, tokens, WINDOW, STRIDE)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform scorer: every token costs ln(V) nats.
    struct Uniform(usize);
    impl CausalScorer for Uniform {
        fn vocab_size(&self) -> usize {
            self.0
        }
        fn nll_at(&self, _w: &[u32], _p: usize) -> f64 {
            (self.0 as f64).ln()
        }
    }

    #[test]
    fn uniform_model_has_vocab_perplexity() {
        let tokens: Vec<u32> = (0..3000).map(|i| i % 64).collect();
        let r = sliding_window_perplexity(&Uniform(64), &tokens);
        assert!((r.perplexity - 64.0).abs() < 1e-6);
        assert!(r.windows >= 4);
    }

    #[test]
    fn every_token_but_the_first_scored_exactly_once() {
        let tokens: Vec<u32> = (0..2500).map(|i| i % 16).collect();
        let r = sliding_window_perplexity(&Uniform(16), &tokens);
        assert_eq!(r.tokens_scored, tokens.len() - 1);
    }

    #[test]
    fn short_streams_are_one_window() {
        let tokens: Vec<u32> = (0..100).collect();
        let r = sliding_window_perplexity(&Uniform(256), &tokens);
        assert_eq!(r.windows, 1);
        assert_eq!(r.tokens_scored, 99);
    }

    #[test]
    fn window_exactly_at_boundary() {
        let tokens: Vec<u32> = (0..1024).map(|i| i % 8).collect();
        let r = sliding_window_perplexity(&Uniform(8), &tokens);
        assert_eq!(r.tokens_scored, 1023);
        assert_eq!(r.windows, 1);
    }

    #[test]
    fn custom_stride_counts_consistently() {
        let tokens: Vec<u32> = (0..4096).map(|i| i % 32).collect();
        for stride in [128usize, 256, 512, 1024] {
            let r = sliding_window_perplexity_with(&Uniform(32), &tokens, 1024, stride);
            assert_eq!(
                r.tokens_scored,
                tokens.len() - 1,
                "stride {stride} must still score every token once"
            );
        }
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = sliding_window_perplexity_with(&Uniform(4), &[1, 2, 3], 4, 0);
    }

    #[test]
    fn total_nll_matches_tokens_times_lnv() {
        let tokens: Vec<u32> = (0..2000).map(|i| i % 4).collect();
        let r = sliding_window_perplexity(&Uniform(4), &tokens);
        let expect = (r.tokens_scored as f64) * 4f64.ln();
        assert!((r.total_nll - expect).abs() < 1e-9);
    }
}
