//! Runtime errors.

use edgellm_hw::HwError;
use std::fmt;

/// Failure modes of a simulated run — exactly the outcomes the paper's
/// tables record as OoM cells, plus configuration errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The model weights alone exceed usable memory (red Table 1 cells).
    ModelDoesNotLoad {
        /// Required weight GB.
        required_gb: f64,
        /// Usable capacity GB.
        usable_gb: f64,
    },
    /// The workload's peak memory exceeds capacity (Table 6/7 OoM cells).
    OutOfMemory {
        /// Peak demand in GB.
        peak_gb: f64,
        /// Usable capacity GB.
        usable_gb: f64,
    },
    /// The power mode is invalid for the device.
    InvalidPowerMode(HwError),
    /// A zero-sized workload dimension.
    InvalidConfig(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::ModelDoesNotLoad { required_gb, usable_gb } => write!(
                f,
                "model does not load: needs {required_gb:.1} GB, {usable_gb:.1} GB usable"
            ),
            RunError::OutOfMemory { peak_gb, usable_gb } => {
                write!(f, "OOM: workload peaks at {peak_gb:.1} GB, {usable_gb:.1} GB usable")
            }
            RunError::InvalidPowerMode(e) => write!(f, "invalid power mode: {e}"),
            RunError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<HwError> for RunError {
    fn from(e: HwError) -> Self {
        RunError::InvalidPowerMode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RunError::OutOfMemory { peak_gb: 78.6, usable_gb: 62.0 };
        let s = e.to_string();
        assert!(s.contains("78.6") && s.contains("62.0"));
        let e = RunError::ModelDoesNotLoad { required_gb: 94.2, usable_gb: 62.0 };
        assert!(e.to_string().contains("94.2"));
    }
}
