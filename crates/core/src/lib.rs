//! # edgellm-core — the batched-inference runtime and experiment protocol
//!
//! This crate ties the substrates together into the system the paper
//! actually measures: a batching engine that walks prefill + auto-
//! regressive decode over the calibrated performance model
//! (`edgellm-perf`), the shared-memory model (`edgellm-mem`), and the rail
//! power model (`edgellm-power`), producing exactly the metrics the paper
//! defines in §2:
//!
//! * **token throughput** — Σ(input+output tokens)/batch latency;
//! * **latency** — end-to-end time to last token for the batch;
//! * **incremental peak memory** — peak minus pre-load baseline;
//! * **median power** (2 s jtop-style sampling) and **trapezoidal energy**.
//!
//! [`protocol::Protocol`] reproduces the measurement discipline ("a warm-up
//! run … followed by five actual runs for each configuration, averaging
//! the results"), and [`perplexity`] implements the paper's sliding-window
//! perplexity (1024-token windows, stride 512) over any
//! [`edgellm_nn::CausalScorer`].
//!
//! ```
//! use edgellm_core::{Engine, RunConfig, SequenceSpec};
//! use edgellm_models::{Llm, Precision};
//!
//! let engine = Engine::orin_agx_64gb();
//! let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
//!     .batch_size(32)
//!     .sequence(SequenceSpec::paper_96());
//! let m = engine.run_batch(&cfg).unwrap();
//! assert!(m.latency_s > 5.0 && m.latency_s < 20.0);
//! ```

pub mod arrivals;
pub mod config;
pub mod continuous;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod offload;
pub mod perplexity;
pub mod phase_split;
pub mod protocol;
pub mod scheduler;
pub mod serve;

pub use arrivals::{PoissonArrivals, Request};
pub use config::{Dataset, RunConfig, SequenceSpec};
pub use continuous::{ContinuousBatcher, ContinuousReport};
pub use engine::Engine;
pub use error::RunError;
pub use metrics::{quantile, BatchMetrics, RunMetrics};
pub use offload::{compare as compare_offload, CloudEndpoint, OffloadComparison};
pub use perplexity::{sliding_window_perplexity, PerplexityReport, STRIDE, WINDOW};
pub use phase_split::{phase_split, PhaseSplit};
pub use protocol::Protocol;
pub use scheduler::{ServingReport, StaticBatcher};
pub use serve::{
    Completion, EventScheduler, GovernorHook, GovernorObs, IterPhase, IterationTrace, NullGovernor,
    PrefillPolicy, ServeAudit, ServeConfig, ServeRun, ServeSim, SpecConfig, TokenId,
};
