//! Run configuration types.

use edgellm_hw::{PowerMode, PowerModeId};
use edgellm_models::{Llm, Precision};

/// Which prompt pool a run draws from (the paper's two workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// WikiText2-derived prompt pool.
    WikiText2,
    /// LongBench-derived prompt pool.
    LongBench,
}

impl Dataset {
    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Dataset::WikiText2 => "WikiText2",
            Dataset::LongBench => "LongBench",
        }
    }
}

/// Input/output token split. The paper defines sequence length `A = B + C`
/// with B input and C generated tokens (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceSpec {
    /// Prompt tokens per sequence.
    pub input_tokens: u64,
    /// Generated tokens per sequence.
    pub output_tokens: u64,
}

impl SequenceSpec {
    /// The default workload of Figs. 1/3/4/5: 96 = 32 input + 64 output.
    pub fn paper_96() -> Self {
        SequenceSpec { input_tokens: 32, output_tokens: 64 }
    }

    /// The paper's sequence-length sweep splits (§3.2): 128 = 32+96,
    /// 256 = 64+192, 512 = 128+384, 1024 = 256+768.
    ///
    /// # Panics
    /// If `total` is not one of the paper's four configurations.
    pub fn paper_sweep(total: u64) -> Self {
        match total {
            128 => SequenceSpec { input_tokens: 32, output_tokens: 96 },
            256 => SequenceSpec { input_tokens: 64, output_tokens: 192 },
            512 => SequenceSpec { input_tokens: 128, output_tokens: 384 },
            1024 => SequenceSpec { input_tokens: 256, output_tokens: 768 },
            other => panic!("no paper split defined for sequence length {other}"),
        }
    }

    /// Total sequence length (input + output).
    pub fn total(&self) -> u64 {
        self.input_tokens + self.output_tokens
    }
}

/// Full configuration of one measured run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Which model.
    pub llm: Llm,
    /// Weight precision.
    pub precision: Precision,
    /// Prompts per batch.
    pub batch_size: u64,
    /// Token split.
    pub sequence: SequenceSpec,
    /// Device power mode.
    pub power_mode: PowerMode,
    /// Prompt pool.
    pub dataset: Dataset,
    /// Seed for sampling/jitter.
    pub seed: u64,
}

impl RunConfig {
    /// The paper's default configuration: bs=32, sl=96, MaxN, WikiText2.
    pub fn new(llm: Llm, precision: Precision) -> Self {
        RunConfig {
            llm,
            precision,
            batch_size: 32,
            sequence: SequenceSpec::paper_96(),
            power_mode: PowerMode::table2(PowerModeId::MaxN),
            dataset: Dataset::WikiText2,
            seed: 0,
        }
    }

    /// Set the batch size.
    pub fn batch_size(mut self, bs: u64) -> Self {
        self.batch_size = bs;
        self
    }

    /// Set the sequence spec.
    pub fn sequence(mut self, seq: SequenceSpec) -> Self {
        self.sequence = seq;
        self
    }

    /// Set the power mode.
    pub fn power_mode(mut self, pm: PowerMode) -> Self {
        self.power_mode = pm;
        self
    }

    /// Set the dataset.
    pub fn dataset(mut self, ds: Dataset) -> Self {
        self.dataset = ds;
        self
    }

    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_96_is_32_plus_64() {
        let s = SequenceSpec::paper_96();
        assert_eq!((s.input_tokens, s.output_tokens, s.total()), (32, 64, 96));
    }

    #[test]
    fn sweep_splits_match_section_3_2() {
        assert_eq!(SequenceSpec::paper_sweep(128).input_tokens, 32);
        assert_eq!(SequenceSpec::paper_sweep(256).output_tokens, 192);
        assert_eq!(SequenceSpec::paper_sweep(512).input_tokens, 128);
        assert_eq!(SequenceSpec::paper_sweep(1024).output_tokens, 768);
        for total in [128u64, 256, 512, 1024] {
            assert_eq!(SequenceSpec::paper_sweep(total).total(), total);
        }
    }

    #[test]
    #[should_panic(expected = "no paper split")]
    fn unknown_sweep_length_panics() {
        let _ = SequenceSpec::paper_sweep(333);
    }

    #[test]
    fn builder_defaults_match_paper() {
        let c = RunConfig::new(Llm::Phi2, Precision::Fp16);
        assert_eq!(c.batch_size, 32);
        assert_eq!(c.sequence.total(), 96);
        assert_eq!(c.power_mode.name, "MaxN");
        assert_eq!(c.dataset, Dataset::WikiText2);
    }
}
