//! The paper's measurement protocol: one warm-up, five measured runs.

use crate::config::RunConfig;
use crate::engine::Engine;
use crate::error::RunError;
use crate::metrics::{BatchMetrics, RunMetrics};

/// §2: "we conduct a warm-up run to mitigate initialization overhead,
/// followed by five actual runs for each configuration, averaging the
/// results across these runs."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protocol {
    /// Discarded warm-up runs.
    pub warmup_runs: usize,
    /// Measured runs to average.
    pub measured_runs: usize,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol { warmup_runs: 1, measured_runs: 5 }
    }
}

impl Protocol {
    /// The paper's protocol (1 warm-up + 5 measured).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A fast protocol for tests and smoke runs.
    pub fn quick() -> Self {
        Protocol { warmup_runs: 0, measured_runs: 1 }
    }

    /// Execute the protocol for one configuration.
    pub fn run(&self, engine: &Engine, cfg: &RunConfig) -> Result<RunMetrics, RunError> {
        for w in 0..self.warmup_runs {
            let warm = cfg.clone().seed(cfg.seed ^ (0xDEAD + w as u64));
            engine.run_batch(&warm)?; // result discarded, OoM propagates
        }
        let mut runs: Vec<BatchMetrics> = Vec::with_capacity(self.measured_runs);
        for r in 0..self.measured_runs {
            let cfg_r = cfg.clone().seed(cfg.seed.wrapping_add(r as u64 + 1));
            runs.push(engine.run_batch(&cfg_r)?);
        }
        Ok(RunMetrics::aggregate(&runs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SequenceSpec;
    use edgellm_models::{Llm, Precision};

    #[test]
    fn paper_protocol_averages_five_runs() {
        let engine = Engine::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::Phi2, Precision::Fp16);
        let m = Protocol::paper().run(&engine, &cfg).unwrap();
        assert_eq!(m.runs, 5);
        // Latency is deterministic; only power jitter varies.
        assert_eq!(m.latency_stddev_s, 0.0);
        assert!(m.median_power_w > 10.0);
    }

    #[test]
    fn oom_propagates_through_protocol() {
        let engine = Engine::orin_agx_64gb();
        let cfg =
            RunConfig::new(Llm::Phi2, Precision::Fp16).sequence(SequenceSpec::paper_sweep(1024));
        assert!(matches!(Protocol::paper().run(&engine, &cfg), Err(RunError::OutOfMemory { .. })));
    }

    #[test]
    fn quick_protocol_single_run() {
        let engine = Engine::orin_agx_64gb();
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let m = Protocol::quick().run(&engine, &cfg).unwrap();
        assert_eq!(m.runs, 1);
    }
}
