//! Metrics types — the quantities the paper's tables and figures report.
//!
//! The nearest-rank [`quantile`] lives in `edgellm-trace` (the shared
//! stats layer) and is re-exported here so existing
//! `edgellm_core::quantile` call sites keep working unchanged.

pub use edgellm_trace::quantile;

/// Measurements of one batch run (§2, "Evaluation Metrics").
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMetrics {
    /// End-to-end time to last token for the batch (s).
    pub latency_s: f64,
    /// Σ(input+output tokens) / latency (tokens/s).
    pub throughput_tok_s: f64,
    /// Peak total memory including the loaded model (GB) — the RAM column
    /// of the appendix tables.
    pub peak_mem_gb: f64,
    /// Peak above the post-load baseline (GB) — the paper's incremental
    /// metric.
    pub incremental_mem_gb: f64,
    /// Median of the 2 s power samples (W).
    pub median_power_w: f64,
    /// Trapezoid-integrated energy for the batch (J).
    pub energy_j: f64,
    /// Prefill share of latency (s) — the Splitwise-style phase split.
    pub prefill_s: f64,
    /// Decode share of latency (s).
    pub decode_s: f64,
    /// GPU busy fraction during decode (jtop-style).
    pub gpu_util: f64,
    /// KV-cache pool fragmentation at peak (paged allocator).
    pub kv_fragmentation: f64,
}

/// Aggregate over the protocol's measured runs (mean of five, after one
/// warm-up — §2).
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Mean latency (s).
    pub latency_s: f64,
    /// Mean throughput (tokens/s).
    pub throughput_tok_s: f64,
    /// Mean peak memory (GB).
    pub peak_mem_gb: f64,
    /// Mean incremental peak memory (GB).
    pub incremental_mem_gb: f64,
    /// Mean median-power (W).
    pub median_power_w: f64,
    /// Mean energy (J).
    pub energy_j: f64,
    /// Latency standard deviation across runs (s).
    pub latency_stddev_s: f64,
    /// Number of measured runs aggregated.
    pub runs: usize,
}

impl RunMetrics {
    /// Aggregate a set of batch metrics.
    ///
    /// # Panics
    /// If `runs` is empty.
    pub fn aggregate(runs: &[BatchMetrics]) -> Self {
        assert!(!runs.is_empty(), "cannot aggregate zero runs");
        let n = runs.len() as f64;
        let mean = |f: fn(&BatchMetrics) -> f64| runs.iter().map(f).sum::<f64>() / n;
        let lat_mean = mean(|m| m.latency_s);
        let var = runs.iter().map(|m| (m.latency_s - lat_mean).powi(2)).sum::<f64>() / n;
        RunMetrics {
            latency_s: lat_mean,
            throughput_tok_s: mean(|m| m.throughput_tok_s),
            peak_mem_gb: mean(|m| m.peak_mem_gb),
            incremental_mem_gb: mean(|m| m.incremental_mem_gb),
            median_power_w: mean(|m| m.median_power_w),
            energy_j: mean(|m| m.energy_j),
            latency_stddev_s: var.sqrt(),
            runs: runs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(lat: f64) -> BatchMetrics {
        BatchMetrics {
            latency_s: lat,
            throughput_tok_s: 100.0 / lat,
            peak_mem_gb: 10.0,
            incremental_mem_gb: 1.0,
            median_power_w: 40.0,
            energy_j: 40.0 * lat,
            prefill_s: lat * 0.1,
            decode_s: lat * 0.9,
            gpu_util: 0.9,
            kv_fragmentation: 0.01,
        }
    }

    #[test]
    fn aggregate_means_and_stddev() {
        let m = RunMetrics::aggregate(&[metric(9.0), metric(11.0)]);
        assert_eq!(m.latency_s, 10.0);
        assert_eq!(m.runs, 2);
        assert!((m.latency_stddev_s - 1.0).abs() < 1e-12);
        assert!((m.energy_j - 400.0).abs() < 1e-9);
    }

    #[test]
    fn single_run_has_zero_stddev() {
        let m = RunMetrics::aggregate(&[metric(5.0)]);
        assert_eq!(m.latency_stddev_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_aggregate_panics() {
        let _ = RunMetrics::aggregate(&[]);
    }

    #[test]
    fn quantile_uses_nearest_rank() {
        // 1..=100 sorted: p95 is the 95th value (rank ⌈0.95·100⌉ = 95),
        // not the 96th the truncating index `(100·0.95) as usize` picks.
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&v, 0.95), 95.0);
        assert_eq!(quantile(&v, 0.50), 50.0);
        assert_eq!(quantile(&v, 0.99), 99.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
        // Small n: every quantile stays in range and is an element.
        let w = [2.5, 3.5];
        assert_eq!(quantile(&w, 0.5), 2.5);
        assert_eq!(quantile(&w, 0.51), 3.5);
        assert_eq!(quantile(&[7.0], 0.95), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let _ = quantile(&[], 0.5);
    }
}
