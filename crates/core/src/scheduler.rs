//! Static batching of a request stream — the serving layer above single
//! batches, used by the serving-planner example and the phase-splitting
//! extension (the paper's future-work pointer to Splitwise \[11\]).

use crate::config::RunConfig;
use crate::engine::Engine;
use crate::error::RunError;

/// A serving run over a queue of identical-shape requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingReport {
    /// Total wall time to drain the queue (s).
    pub makespan_s: f64,
    /// Number of batches executed.
    pub batches: usize,
    /// Mean per-request completion latency: a request finishes when its
    /// batch finishes, so this includes queueing delay (s).
    pub mean_request_latency_s: f64,
    /// Aggregate throughput over the whole queue (tokens/s).
    pub throughput_tok_s: f64,
    /// Total energy over the queue (J).
    pub energy_j: f64,
}

/// Drains a fixed queue in batches of `cfg.batch_size` (the paper's static
/// batching regime).
#[derive(Debug, Clone)]
pub struct StaticBatcher {
    /// Requests waiting (all share `cfg.sequence`).
    pub queue_len: usize,
}

impl StaticBatcher {
    /// A queue of `queue_len` outstanding requests.
    pub fn new(queue_len: usize) -> Self {
        StaticBatcher { queue_len }
    }

    /// Run the queue to completion under the given configuration. The
    /// final batch may be smaller than `cfg.batch_size`.
    pub fn run(&self, engine: &Engine, cfg: &RunConfig) -> Result<ServingReport, RunError> {
        if self.queue_len == 0 {
            return Err(RunError::InvalidConfig("empty request queue".into()));
        }
        let bs = cfg.batch_size as usize;
        let mut remaining = self.queue_len;
        let mut t = 0.0f64;
        let mut energy = 0.0f64;
        let mut batches = 0usize;
        let mut latency_sum = 0.0f64;
        let mut batch_seed = cfg.seed;
        while remaining > 0 {
            let this = remaining.min(bs);
            let cfg_b = cfg.clone().batch_size(this as u64).seed(batch_seed);
            let m = engine.run_batch(&cfg_b)?;
            t += m.latency_s;
            energy += m.energy_j;
            batches += 1;
            // Every request in this batch completes at time t.
            latency_sum += t * this as f64;
            remaining -= this;
            batch_seed = batch_seed.wrapping_add(1);
        }
        let tokens = self.queue_len as f64 * cfg.sequence.total() as f64;
        Ok(ServingReport {
            makespan_s: t,
            batches,
            mean_request_latency_s: latency_sum / self.queue_len as f64,
            throughput_tok_s: tokens / t,
            energy_j: energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_models::{Llm, Precision};

    fn engine() -> Engine {
        Engine::orin_agx_64gb()
    }

    #[test]
    fn queue_drains_in_ceil_batches() {
        let cfg = RunConfig::new(Llm::Phi2, Precision::Fp16).batch_size(32);
        let r = StaticBatcher::new(100).run(&engine(), &cfg).unwrap();
        assert_eq!(r.batches, 4); // 32+32+32+4
        assert!(r.makespan_s > 0.0);
    }

    #[test]
    fn larger_batches_raise_throughput_but_queueing_grows_latency() {
        let small = RunConfig::new(Llm::Llama31_8b, Precision::Fp16).batch_size(8);
        let large = RunConfig::new(Llm::Llama31_8b, Precision::Fp16).batch_size(64);
        let rs = StaticBatcher::new(128).run(&engine(), &small).unwrap();
        let rl = StaticBatcher::new(128).run(&engine(), &large).unwrap();
        assert!(rl.throughput_tok_s > rs.throughput_tok_s, "batching wins on TP");
        assert!(rl.makespan_s < rs.makespan_s);
    }

    #[test]
    fn mean_latency_includes_queueing() {
        let cfg = RunConfig::new(Llm::Phi2, Precision::Fp16).batch_size(16);
        let r = StaticBatcher::new(32).run(&engine(), &cfg).unwrap();
        // Two batches: first finishes at t1, second at t1+t2 ⇒ mean > t1.
        let single = engine().run_batch(&cfg.clone().batch_size(16)).unwrap();
        assert!(r.mean_request_latency_s > single.latency_s);
        assert!(r.mean_request_latency_s < r.makespan_s);
    }

    #[test]
    fn empty_queue_is_invalid() {
        let cfg = RunConfig::new(Llm::Phi2, Precision::Fp16);
        assert!(matches!(
            StaticBatcher::new(0).run(&engine(), &cfg),
            Err(RunError::InvalidConfig(_))
        ));
    }
}
