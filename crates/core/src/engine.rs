//! The batching engine: a discrete walk of prefill + decode over the
//! performance, memory and power models.

use crate::config::{Dataset, RunConfig};
use crate::error::RunError;
use crate::metrics::BatchMetrics;
use edgellm_hw::DeviceSpec;
use edgellm_mem::{KvBlockAllocator, MemTracker, MemoryModel, GB, OOM_HEADROOM_GB};
use edgellm_perf::PerfModel;
use edgellm_power::{
    median_power_w, sample_timeline, trapezoid_energy_j, LoadProfile, Phase, RailModel,
};

/// Tokens per KV-cache block in the paged allocator.
const KV_BLOCK_TOKENS: u64 = 16;

/// The simulated serving engine for one device.
#[derive(Debug, Clone)]
pub struct Engine {
    device: DeviceSpec,
    rails: RailModel,
}

impl Engine {
    /// Engine over an arbitrary device.
    pub fn new(device: DeviceSpec) -> Self {
        let rails = RailModel::orin_agx(device.clone());
        Engine { device, rails }
    }

    /// The paper's device: Jetson Orin AGX 64GB.
    pub fn orin_agx_64gb() -> Self {
        Self::new(DeviceSpec::orin_agx_64gb())
    }

    /// The device under simulation.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// This device's own maximum-performance power mode (valid on any
    /// device, unlike the Orin-specific Table 2 MaxN).
    pub fn maxn(&self) -> edgellm_hw::PowerMode {
        edgellm_hw::PowerMode::maxn_for(&self.device)
    }

    /// Run one batch to completion, producing the paper's §2 metrics.
    ///
    /// Fails with [`RunError::ModelDoesNotLoad`] / [`RunError::OutOfMemory`]
    /// exactly where the paper's tables print OoM.
    pub fn run_batch(&self, cfg: &RunConfig) -> Result<BatchMetrics, RunError> {
        cfg.power_mode.validate(&self.device)?;
        if cfg.batch_size == 0 {
            return Err(RunError::InvalidConfig("batch size must be ≥ 1".into()));
        }
        if cfg.sequence.output_tokens == 0 {
            return Err(RunError::InvalidConfig("output tokens must be ≥ 1".into()));
        }

        let (bs, n_in, n_out) =
            (cfg.batch_size, cfg.sequence.input_tokens, cfg.sequence.output_tokens);
        let seq_total = cfg.sequence.total();
        let capacity_gb = self.device.capacity_gb();
        let usable = ((capacity_gb - OOM_HEADROOM_GB) * GB) as u64;

        // ---- memory walk ----
        let mm = MemoryModel::new(cfg.llm, cfg.precision, capacity_gb);
        let mut tracker = MemTracker::new(usable);
        tracker.alloc(mm.weight_bytes() as u64).map_err(|_| RunError::ModelDoesNotLoad {
            required_gb: mm.weight_bytes() / GB,
            usable_gb: usable as f64 / GB,
        })?;
        tracker.set_baseline();
        let oom = |t: &MemTracker, extra: u64| RunError::OutOfMemory {
            peak_gb: (t.in_use() + extra) as f64 / GB,
            usable_gb: usable as f64 / GB,
        };
        let act = mm.activation_bytes(bs, seq_total) as u64;
        tracker.alloc(act).map_err(|_| oom(&tracker, act))?;

        let kv_per_token = cfg.llm.arch().kv_bytes_per_token();
        let mut kv =
            KvBlockAllocator::new(usable - tracker.in_use(), KV_BLOCK_TOKENS, kv_per_token);
        for s in 0..bs as u32 {
            kv.register(s);
        }
        // Prefill fills n_in tokens per sequence, then decode appends one
        // token per sequence per step; the tracker sees reserved blocks.
        let mut reserved = 0u64;
        let mut grow = |kv: &mut KvBlockAllocator,
                        tracker: &mut MemTracker,
                        tokens: u64|
         -> Result<(), RunError> {
            for s in 0..bs as u32 {
                kv.append(s, tokens).map_err(|_| RunError::OutOfMemory {
                    peak_gb: (tracker.in_use() + kv.reserved_bytes() - reserved) as f64 / GB,
                    usable_gb: usable as f64 / GB,
                })?;
            }
            let now = kv.reserved_bytes();
            let delta = now - reserved;
            reserved = now;
            tracker.alloc(delta).map_err(|_| oom(tracker, delta))
        };
        grow(&mut kv, &mut tracker, n_in)?;

        // ---- time walk ----
        let perf =
            PerfModel::new(self.device.clone(), cfg.llm, cfg.precision, cfg.power_mode.clocks);
        let prefill_s = perf.prefill_time(bs, n_in);
        let mut decode_s = 0.0;
        for i in 0..n_out {
            grow(&mut kv, &mut tracker, 1)?;
            decode_s += perf.decode_step_time(bs, n_in + i);
        }
        let ds_factor = match cfg.dataset {
            Dataset::WikiText2 => 1.0,
            Dataset::LongBench => perf.longbench_factor(),
        };
        let prefill_s = prefill_s * ds_factor;
        let decode_s = decode_s * ds_factor;
        let latency_s = prefill_s + decode_s;

        // ---- power walk ----
        let maxn =
            PerfModel::new(self.device.clone(), cfg.llm, cfg.precision, self.device.max_clocks());
        let bw_ratio = perf.effective_bandwidth() / maxn.effective_bandwidth();
        let profile = |u: edgellm_perf::Utilization| LoadProfile {
            gpu_util: u.gpu,
            cpu_util: u.cpu,
            bw_util: u.mem_bw,
            bw_ratio,
        };
        let u_pre = perf.prefill_utilization(bs, n_in.max(1));
        let u_early = perf.decode_utilization(bs, n_in + n_out / 4);
        let u_late = perf.decode_utilization(bs, n_in + (3 * n_out) / 4);
        let clocks = &cfg.power_mode.clocks;
        let phases = [
            Phase { duration_s: prefill_s, power_w: self.rails.total_w(clocks, &profile(u_pre)) },
            Phase {
                duration_s: decode_s / 2.0,
                power_w: self.rails.total_w(clocks, &profile(u_early)),
            },
            Phase {
                duration_s: decode_s / 2.0,
                power_w: self.rails.total_w(clocks, &profile(u_late)),
            },
        ];
        let trace = sample_timeline(&phases, edgellm_power::sampler::SAMPLE_INTERVAL_S, cfg.seed);
        let energy_j = trapezoid_energy_j(&trace);
        let median_power = median_power_w(&trace);

        let mid = perf.decode_utilization(bs, n_in + n_out / 2);
        Ok(BatchMetrics {
            latency_s,
            throughput_tok_s: bs as f64 * seq_total as f64 / latency_s,
            peak_mem_gb: tracker.peak_gb(),
            incremental_mem_gb: tracker.incremental_peak_gb(),
            median_power_w: median_power,
            energy_j,
            prefill_s,
            decode_s,
            gpu_util: mid.gpu,
            kv_fragmentation: kv.fragmentation(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SequenceSpec;
    use edgellm_hw::{PowerMode, PowerModeId};
    use edgellm_models::{Llm, Precision};

    fn engine() -> Engine {
        Engine::orin_agx_64gb()
    }

    #[test]
    fn llama_default_run_matches_paper_scale() {
        let m = engine().run_batch(&RunConfig::new(Llm::Llama31_8b, Precision::Fp16)).unwrap();
        // Paper Table 4 bs=32: latency 9.96 s, TP 308 tok/s, RAM 17.12 GB.
        assert!((m.latency_s - 9.96).abs() / 9.96 < 0.25, "latency {}", m.latency_s);
        assert!((m.throughput_tok_s - 308.0).abs() / 308.0 < 0.25, "tp {}", m.throughput_tok_s);
        assert!((m.peak_mem_gb - 17.12).abs() / 17.12 < 0.15, "mem {}", m.peak_mem_gb);
        assert!(m.median_power_w > 20.0 && m.median_power_w < 60.0);
        assert!(m.energy_j > 100.0);
    }

    #[test]
    fn phi2_oom_at_long_sequences() {
        let cfg =
            RunConfig::new(Llm::Phi2, Precision::Fp16).sequence(SequenceSpec::paper_sweep(512));
        match engine().run_batch(&cfg) {
            Err(RunError::OutOfMemory { peak_gb, usable_gb }) => {
                assert!(peak_gb > usable_gb);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_models_do_not_load() {
        let cfg = RunConfig::new(Llm::MistralSmall24b, Precision::Fp32);
        assert!(matches!(engine().run_batch(&cfg), Err(RunError::ModelDoesNotLoad { .. })));
        let cfg = RunConfig::new(Llm::DeepseekQwen32b, Precision::Fp16);
        assert!(matches!(engine().run_batch(&cfg), Err(RunError::ModelDoesNotLoad { .. })));
    }

    #[test]
    fn energy_consistent_with_power_and_latency() {
        let m = engine().run_batch(&RunConfig::new(Llm::Llama31_8b, Precision::Fp16)).unwrap();
        // E ≈ P̄·t within sampling/jitter error.
        let approx = m.median_power_w * m.latency_s;
        assert!((m.energy_j - approx).abs() / approx < 0.25, "E {} vs P·t {approx}", m.energy_j);
    }

    #[test]
    fn longbench_is_slightly_faster_like_table5() {
        let wiki = engine().run_batch(&RunConfig::new(Llm::Phi2, Precision::Fp16)).unwrap();
        let lb = engine()
            .run_batch(&RunConfig::new(Llm::Phi2, Precision::Fp16).dataset(Dataset::LongBench))
            .unwrap();
        let ratio = lb.latency_s / wiki.latency_s;
        assert!((0.90..1.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn throughput_definition_holds() {
        let cfg = RunConfig::new(Llm::Phi2, Precision::Fp16).batch_size(8);
        let m = engine().run_batch(&cfg).unwrap();
        let expect = 8.0 * 96.0 / m.latency_s;
        assert!((m.throughput_tok_s - expect).abs() < 1e-9);
    }

    #[test]
    fn power_mode_h_slows_and_saves_power() {
        let maxn = engine().run_batch(&RunConfig::new(Llm::Llama31_8b, Precision::Fp16)).unwrap();
        let h = engine()
            .run_batch(
                &RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
                    .power_mode(PowerMode::table2(PowerModeId::H)),
            )
            .unwrap();
        assert!(h.latency_s > 3.0 * maxn.latency_s, "H must be ≫ slower");
        assert!(h.median_power_w < 0.7 * maxn.median_power_w, "H must draw less");
        assert!(h.energy_j > maxn.energy_j, "…but use more energy (§3.4)");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let e = engine();
        assert!(matches!(
            e.run_batch(&RunConfig::new(Llm::Phi2, Precision::Fp16).batch_size(0)),
            Err(RunError::InvalidConfig(_))
        ));
        let bad_pm = RunConfig::new(Llm::Phi2, Precision::Fp16)
            .power_mode(PowerMode::custom("x", 9999, 2.2, 12, 3200));
        assert!(matches!(e.run_batch(&bad_pm), Err(RunError::InvalidPowerMode(_))));
    }

    #[test]
    fn prefill_plus_decode_equals_latency() {
        let m = engine().run_batch(&RunConfig::new(Llm::MistralSmall24b, Precision::Fp16)).unwrap();
        assert!((m.prefill_s + m.decode_s - m.latency_s).abs() < 1e-9);
        assert!(m.decode_s > m.prefill_s, "decode dominates the paper's workloads");
    }

    #[test]
    fn kv_fragmentation_is_bounded() {
        let m = engine().run_batch(&RunConfig::new(Llm::Llama31_8b, Precision::Fp16)).unwrap();
        // ≤ one partly-used block per sequence.
        assert!((0.0..0.5).contains(&m.kv_fragmentation));
    }

    #[test]
    fn seed_changes_only_jitter() {
        let a = engine().run_batch(&RunConfig::new(Llm::Phi2, Precision::Fp16).seed(1)).unwrap();
        let b = engine().run_batch(&RunConfig::new(Llm::Phi2, Precision::Fp16).seed(2)).unwrap();
        assert_eq!(a.latency_s, b.latency_s);
        assert_eq!(a.peak_mem_gb, b.peak_mem_gb);
        assert_ne!(a.energy_j, b.energy_j); // jitter differs
    }
}
