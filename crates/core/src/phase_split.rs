//! Prefill/decode phase-splitting analysis — the paper's pointer to
//! Splitwise (Patel et al. \[11\]) turned into a measurable report: how much
//! of each workload's time, energy and resource pressure sits in the
//! compute-bound prefill phase vs the memory-bound decode phase.

use crate::config::RunConfig;
use crate::engine::Engine;
use crate::error::RunError;
use edgellm_perf::PerfModel;

/// Per-phase shares of a batch run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSplit {
    /// Prefill wall-clock share of latency (0..=1).
    pub prefill_time_share: f64,
    /// Prefill share of total tokens processed (input/(input+output)).
    pub prefill_token_share: f64,
    /// Prefill GPU utilization vs decode GPU utilization.
    pub prefill_gpu_util: f64,
    /// Decode GPU utilization.
    pub decode_gpu_util: f64,
    /// Tokens/s achieved during prefill alone.
    pub prefill_tok_s: f64,
    /// Tokens/s achieved during decode alone.
    pub decode_tok_s: f64,
}

/// Analyze the phase split of a configuration.
pub fn phase_split(engine: &Engine, cfg: &RunConfig) -> Result<PhaseSplit, RunError> {
    let m = engine.run_batch(cfg)?;
    let perf =
        PerfModel::new(engine.device().clone(), cfg.llm, cfg.precision, cfg.power_mode.clocks);
    let (n_in, n_out, bs) = (cfg.sequence.input_tokens, cfg.sequence.output_tokens, cfg.batch_size);
    Ok(PhaseSplit {
        prefill_time_share: m.prefill_s / m.latency_s,
        prefill_token_share: n_in as f64 / (n_in + n_out) as f64,
        prefill_gpu_util: perf.prefill_utilization(bs, n_in).gpu,
        decode_gpu_util: perf.decode_utilization(bs, n_in + n_out / 2).gpu,
        prefill_tok_s: bs as f64 * n_in as f64 / m.prefill_s.max(1e-12),
        decode_tok_s: bs as f64 * n_out as f64 / m.decode_s.max(1e-12),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SequenceSpec;
    use edgellm_models::{Llm, Precision};

    #[test]
    fn decode_dominates_the_paper_workloads() {
        // §3.2: "inference is dominated by the auto-regressive decode phase".
        let engine = Engine::orin_agx_64gb();
        for llm in Llm::ALL {
            let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
            let s = phase_split(&engine, &RunConfig::new(llm, prec)).unwrap();
            assert!(s.prefill_time_share < 0.35, "{llm:?}: prefill share {}", s.prefill_time_share);
        }
    }

    #[test]
    fn prefill_is_far_more_token_efficient() {
        // The Splitwise observation: prefill processes tokens orders of
        // magnitude faster than decode emits them.
        let engine = Engine::orin_agx_64gb();
        let s = phase_split(&engine, &RunConfig::new(Llm::Llama31_8b, Precision::Fp16)).unwrap();
        assert!(
            s.prefill_tok_s > 2.0 * s.decode_tok_s,
            "prefill {} vs decode {}",
            s.prefill_tok_s,
            s.decode_tok_s
        );
    }

    #[test]
    fn longer_prompts_grow_the_prefill_share() {
        let engine = Engine::orin_agx_64gb();
        let short = phase_split(
            &engine,
            &RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
                .sequence(SequenceSpec { input_tokens: 32, output_tokens: 64 }),
        )
        .unwrap();
        let long = phase_split(
            &engine,
            &RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
                .sequence(SequenceSpec { input_tokens: 512, output_tokens: 64 }),
        )
        .unwrap();
        assert!(long.prefill_time_share > short.prefill_time_share);
    }

    #[test]
    fn prefill_utilization_exceeds_decode_for_quantized_models() {
        let engine = Engine::orin_agx_64gb();
        let s =
            phase_split(&engine, &RunConfig::new(Llm::DeepseekQwen32b, Precision::Int8)).unwrap();
        assert!(s.prefill_gpu_util > s.decode_gpu_util);
    }
}
