//! Request-arrival processes for serving studies.
//!
//! The paper measures closed batches; its conclusion points at serving
//! optimization as future work. This module supplies the workload side:
//! deterministic, seeded Poisson arrivals with per-request shape jitter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One serving request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Stable request identifier, unique within a trace. Schedulers break
    /// arrival-time ties on it so queue order (and therefore every derived
    /// metric) is reproducible regardless of submission order.
    pub id: u64,
    /// Arrival time (s).
    pub arrival_s: f64,
    /// Prompt tokens.
    pub input_tokens: u64,
    /// Tokens to generate.
    pub output_tokens: u64,
}

/// A Poisson arrival process with uniform token-count jitter around a base
/// shape (e.g. the paper's 32+64).
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    /// Mean arrivals per second.
    pub rate_per_s: f64,
    /// Base input tokens.
    pub input_tokens: u64,
    /// Base output tokens.
    pub output_tokens: u64,
    /// ± fractional jitter on both token counts (0 = fixed shapes).
    pub shape_jitter: f64,
}

impl PoissonArrivals {
    /// The paper's workload shape at a given arrival rate.
    pub fn paper_shape(rate_per_s: f64) -> Self {
        PoissonArrivals { rate_per_s, input_tokens: 32, output_tokens: 64, shape_jitter: 0.25 }
    }

    /// Generate `n` requests, seeded.
    ///
    /// # Panics
    /// If the rate is not positive.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Request> {
        assert!(self.rate_per_s > 0.0, "arrival rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut out = Vec::with_capacity(n);
        for id in 0..n {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / self.rate_per_s;
            let jit = |base: u64, rng: &mut StdRng| -> u64 {
                if self.shape_jitter <= 0.0 {
                    return base;
                }
                let f = 1.0 + rng.gen_range(-self.shape_jitter..=self.shape_jitter);
                ((base as f64 * f).round() as u64).max(1)
            };
            out.push(Request {
                id: id as u64,
                arrival_s: t,
                input_tokens: jit(self.input_tokens, &mut rng),
                output_tokens: jit(self.output_tokens, &mut rng),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_ordered_and_rate_is_respected() {
        let reqs = PoissonArrivals::paper_shape(2.0).generate(2000, 1);
        for w in reqs.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
        let span = reqs.last().unwrap().arrival_s;
        let rate = reqs.len() as f64 / span;
        assert!((rate - 2.0).abs() < 0.2, "empirical rate {rate}");
    }

    #[test]
    fn generation_is_seeded() {
        let a = PoissonArrivals::paper_shape(1.0).generate(50, 7);
        let b = PoissonArrivals::paper_shape(1.0).generate(50, 7);
        let c = PoissonArrivals::paper_shape(1.0).generate(50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn jitter_stays_in_band() {
        let reqs = PoissonArrivals::paper_shape(1.0).generate(500, 3);
        for r in &reqs {
            assert!((24..=40).contains(&r.input_tokens), "{:?}", r);
            assert!((48..=80).contains(&r.output_tokens), "{:?}", r);
        }
    }

    #[test]
    fn ids_are_sequential() {
        let reqs = PoissonArrivals::paper_shape(1.0).generate(40, 2);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64, "ids follow generation order");
        }
    }

    #[test]
    fn zero_jitter_gives_fixed_shapes() {
        let mut p = PoissonArrivals::paper_shape(1.0);
        p.shape_jitter = 0.0;
        for r in p.generate(20, 4) {
            assert_eq!((r.input_tokens, r.output_tokens), (32, 64));
        }
    }
}
