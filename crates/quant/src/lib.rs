//! # edgellm-quant — weight quantization codecs and error analysis
//!
//! A uniform interface over the reduced-precision weight formats of
//! `edgellm-tensor`, mirroring how the paper quantizes models with
//! BitsAndBytes (`LLM.int8()` for INT8, NF4 for INT4, plain casts for FP16):
//!
//! * [`QuantizedWeights`] — one enum holding a weight matrix at any of the
//!   four precisions, with `matmul_nt` dispatch and byte accounting;
//! * [`error`] — round-trip error metrics (MSE, max-abs, signal-to-noise)
//!   used by the property tests and the quantization-explorer example;
//! * every codec is *real*: quantize → dequantize → matrix product all
//!   execute, so Table 3's perplexity degradation is measured, not modeled.

pub mod error;
pub mod weights;

pub use error::QuantError;
pub use weights::QuantizedWeights;

pub use edgellm_tensor::Matrix;

/// Storage precision, re-exported conceptually from the paper's Table 1.
/// (Kept as a local enum so this crate stays independent of
/// `edgellm-models`; conversion helpers live in `edgellm-nn`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightPrecision {
    /// 32-bit float (reference).
    Fp32,
    /// IEEE binary16 storage.
    Fp16,
    /// Row-wise absmax INT8 with outlier decomposition.
    Int8,
    /// Block-wise NF4 4-bit.
    Int4,
}

impl WeightPrecision {
    /// All four, in the paper's column order.
    pub const ALL: [WeightPrecision; 4] = [
        WeightPrecision::Fp32,
        WeightPrecision::Fp16,
        WeightPrecision::Int8,
        WeightPrecision::Int4,
    ];

    /// Label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            WeightPrecision::Fp32 => "FP32",
            WeightPrecision::Fp16 => "FP16",
            WeightPrecision::Int8 => "INT8",
            WeightPrecision::Int4 => "INT4",
        }
    }
}
