//! A precision-polymorphic weight container.

use crate::WeightPrecision;
use edgellm_tensor::{F16Matrix, Matrix, QInt4Matrix, QInt8Matrix};

/// A weight matrix stored at one of the four paper precisions, with a
/// uniform forward-product interface. This is the type `edgellm-nn` layers
/// hold, so a trained FP32 model can be re-quantized in place exactly the
/// way the paper re-loads models through BitsAndBytes.
#[derive(Debug, Clone)]
pub enum QuantizedWeights {
    /// Full precision (the training format).
    Fp32(Matrix),
    /// Binary16 storage.
    Fp16(F16Matrix),
    /// LLM.int8()-style rows + outliers.
    Int8(QInt8Matrix),
    /// NF4 blocks.
    Int4(QInt4Matrix),
}

impl QuantizedWeights {
    /// Quantize an f32 weight matrix to the requested precision.
    pub fn quantize(w: &Matrix, prec: WeightPrecision) -> Self {
        match prec {
            WeightPrecision::Fp32 => QuantizedWeights::Fp32(w.clone()),
            WeightPrecision::Fp16 => QuantizedWeights::Fp16(F16Matrix::from_f32(w)),
            WeightPrecision::Int8 => QuantizedWeights::Int8(QInt8Matrix::from_f32(w)),
            WeightPrecision::Int4 => QuantizedWeights::Int4(QInt4Matrix::from_f32(w)),
        }
    }

    /// The stored precision.
    pub fn precision(&self) -> WeightPrecision {
        match self {
            QuantizedWeights::Fp32(_) => WeightPrecision::Fp32,
            QuantizedWeights::Fp16(_) => WeightPrecision::Fp16,
            QuantizedWeights::Int8(_) => WeightPrecision::Int8,
            QuantizedWeights::Int4(_) => WeightPrecision::Int4,
        }
    }

    /// Output features (rows of the stored `(out × in)` matrix).
    pub fn rows(&self) -> usize {
        match self {
            QuantizedWeights::Fp32(m) => m.rows,
            QuantizedWeights::Fp16(m) => m.rows,
            QuantizedWeights::Int8(m) => m.rows,
            QuantizedWeights::Int4(m) => m.rows,
        }
    }

    /// Input features (columns).
    pub fn cols(&self) -> usize {
        match self {
            QuantizedWeights::Fp32(m) => m.cols,
            QuantizedWeights::Fp16(m) => m.cols,
            QuantizedWeights::Int8(m) => m.cols,
            QuantizedWeights::Int4(m) => m.cols,
        }
    }

    /// Storage bytes at the current precision.
    pub fn bytes(&self) -> usize {
        match self {
            QuantizedWeights::Fp32(m) => m.len() * 4,
            QuantizedWeights::Fp16(m) => m.bytes(),
            QuantizedWeights::Int8(m) => m.bytes(),
            QuantizedWeights::Int4(m) => m.bytes(),
        }
    }

    /// `Y = X · Wᵀ` at the stored precision (real dequantizing kernels).
    pub fn matmul_nt(&self, x: &Matrix) -> Matrix {
        match self {
            QuantizedWeights::Fp32(m) => edgellm_tensor::matmul::matmul_nt(x, m),
            QuantizedWeights::Fp16(m) => m.matmul_nt(x),
            QuantizedWeights::Int8(m) => m.matmul_nt(x),
            QuantizedWeights::Int4(m) => m.matmul_nt(x),
        }
    }

    /// Dequantize back to f32 (error analysis / re-quantization).
    pub fn dequantize(&self) -> Matrix {
        match self {
            QuantizedWeights::Fp32(m) => m.clone(),
            QuantizedWeights::Fp16(m) => m.to_f32(),
            QuantizedWeights::Int8(m) => m.to_f32(),
            QuantizedWeights::Int4(m) => m.to_f32(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Matrix {
        Matrix::rand_normal(24, 128, 0.05, 11)
    }

    #[test]
    fn quantize_preserves_shape_at_all_precisions() {
        let w = reference();
        for p in WeightPrecision::ALL {
            let q = QuantizedWeights::quantize(&w, p);
            assert_eq!(q.rows(), 24);
            assert_eq!(q.cols(), 128);
            assert_eq!(q.precision(), p);
            let d = q.dequantize();
            assert_eq!((d.rows, d.cols), (24, 128));
        }
    }

    #[test]
    fn storage_shrinks_down_the_precision_ladder() {
        let w = reference();
        let sizes: Vec<usize> = WeightPrecision::ALL
            .iter()
            .map(|&p| QuantizedWeights::quantize(&w, p).bytes())
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] > pair[1], "sizes {sizes:?}");
        }
    }

    #[test]
    fn matmul_error_grows_down_the_ladder() {
        let w = reference();
        let x = Matrix::rand_kaiming(4, 128, 12);
        let exact = edgellm_tensor::matmul::matmul_nt(&x, &w);
        let mse = |p: WeightPrecision| -> f64 {
            let y = QuantizedWeights::quantize(&w, p).matmul_nt(&x);
            y.as_slice()
                .iter()
                .zip(exact.as_slice())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                / y.len() as f64
        };
        let (e32, e16, e8, e4) = (
            mse(WeightPrecision::Fp32),
            mse(WeightPrecision::Fp16),
            mse(WeightPrecision::Int8),
            mse(WeightPrecision::Int4),
        );
        assert_eq!(e32, 0.0);
        assert!(e16 < e8, "fp16 {e16} < int8 {e8}");
        assert!(e8 < e4, "int8 {e8} < int4 {e4}");
    }

    #[test]
    fn fp32_roundtrip_is_identity() {
        let w = reference();
        let q = QuantizedWeights::quantize(&w, WeightPrecision::Fp32);
        assert_eq!(q.dequantize(), w);
    }
}
