//! Round-trip quantization error metrics.

use crate::weights::QuantizedWeights;
use crate::WeightPrecision;
use edgellm_tensor::Matrix;

/// Error statistics of a quantize→dequantize round trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantError {
    /// Mean squared error.
    pub mse: f64,
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Signal-to-quantization-noise ratio in dB (∞ for lossless).
    pub sqnr_db: f64,
}

impl QuantError {
    /// Measure the round-trip error of quantizing `w` to `prec`.
    pub fn measure(w: &Matrix, prec: WeightPrecision) -> Self {
        let back = QuantizedWeights::quantize(w, prec).dequantize();
        Self::between(w, &back)
    }

    /// Error statistics between a reference and an approximation.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn between(reference: &Matrix, approx: &Matrix) -> Self {
        assert_eq!(reference.rows, approx.rows);
        assert_eq!(reference.cols, approx.cols);
        let mut se = 0.0f64;
        let mut max_abs = 0.0f64;
        let mut signal = 0.0f64;
        for (a, b) in reference.as_slice().iter().zip(approx.as_slice()) {
            let d = (*a as f64) - (*b as f64);
            se += d * d;
            max_abs = max_abs.max(d.abs());
            signal += (*a as f64) * (*a as f64);
        }
        let n = reference.len() as f64;
        let mse = se / n;
        let sqnr_db = if se == 0.0 { f64::INFINITY } else { 10.0 * (signal / se).log10() };
        QuantError { mse, max_abs, sqnr_db }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_roundtrip_has_infinite_sqnr() {
        let w = Matrix::rand_kaiming(8, 8, 1);
        let e = QuantError::measure(&w, WeightPrecision::Fp32);
        assert_eq!(e.mse, 0.0);
        assert!(e.sqnr_db.is_infinite());
    }

    #[test]
    fn sqnr_ordering_matches_precision_ladder() {
        let w = Matrix::rand_normal(64, 256, 0.04, 2);
        let s16 = QuantError::measure(&w, WeightPrecision::Fp16).sqnr_db;
        let s8 = QuantError::measure(&w, WeightPrecision::Int8).sqnr_db;
        let s4 = QuantError::measure(&w, WeightPrecision::Int4).sqnr_db;
        assert!(s16 > s8 && s8 > s4, "sqnr fp16 {s16} int8 {s8} int4 {s4}");
        // Rough magnitude expectations: fp16 ≥ 60 dB, int8 ≈ 30–50 dB,
        // int4 ≈ 15–30 dB for Gaussian weights.
        assert!(s16 > 55.0);
        assert!((20.0..55.0).contains(&s8));
        assert!((8.0..30.0).contains(&s4));
    }

    #[test]
    fn max_abs_consistent_with_mse() {
        let w = Matrix::rand_normal(32, 128, 0.1, 3);
        let e = QuantError::measure(&w, WeightPrecision::Int4);
        assert!(e.max_abs * e.max_abs >= e.mse);
        assert!(e.max_abs > 0.0);
    }
}
