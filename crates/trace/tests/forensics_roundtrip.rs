//! Forensics export round-trip and CI validation hook.
//!
//! Mirrors `exporter_roundtrip.rs` for the forensics artifact: build a
//! representative log, reconstruct, export, re-parse, and check against
//! the checked-in schema (`crates/trace/schema/forensics.schema.json`).
//! When `EDGELLM_VALIDATE_FORENSICS=<path>` is set, the last test
//! validates that file — an export produced by a *real* run
//! (`edgellm run … --forensics-out`) — with the same checks.

use edgellm_trace::forensics::{
    analyze, export_forensics, parse_forensics, reconstruct, validate_forensics, Event, EventKind,
    ForensicsLog, NO_RID,
};

/// A two-request, two-device fleet life exercising routing, evacuation,
/// preemption, downclock overlap, and the cloud path.
fn sample_log() -> ForensicsLog {
    let ev = |t_s: f64, rid: u64, device: u32, kind: EventKind| Event { t_s, rid, device, kind };
    ForensicsLog {
        label: "roundtrip".into(),
        events: vec![
            ev(0.0, 1, 0, EventKind::Routed),
            ev(0.0, 1, 0, EventKind::Submitted),
            ev(0.2, 1, 0, EventKind::Admitted { cache_hit_tokens: 32 }),
            ev(0.4, 1, 0, EventKind::PrefillChunk { tokens: 64 }),
            ev(0.5, 1, 0, EventKind::FirstToken),
            ev(0.6, NO_RID, 0, EventKind::ModeChange { downclock: true }),
            ev(1.0, 1, 0, EventKind::Preempted),
            ev(1.5, 1, 0, EventKind::Admitted { cache_hit_tokens: 32 }),
            ev(2.0, NO_RID, 0, EventKind::ModeChange { downclock: false }),
            ev(2.5, 1, 0, EventKind::Completed { output_tokens: 16 }),
            ev(3.0, 2, u32::MAX, EventKind::Offloaded),
            ev(3.8, 2, u32::MAX, EventKind::FirstToken),
            ev(4.4, 2, u32::MAX, EventKind::Completed { output_tokens: 8 }),
        ],
        req_energy: vec![(1, 30.0), (2, 4.0)],
        idle_energy_j: 6.0,
        cloud_energy_j: 4.0,
        total_energy_j: 40.0,
    }
}

#[test]
fn export_validates_parses_and_re_exports_identically() {
    let doc = reconstruct(&sample_log());
    let body = export_forensics(std::slice::from_ref(&doc));
    let stats = validate_forensics(&body).expect("synthetic export is schema-valid");
    assert_eq!(stats.runs, 1);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.events, 13);
    let parsed = parse_forensics(&body).expect("export parses");
    assert_eq!(parsed[0], doc, "parse inverts export");
    assert_eq!(export_forensics(&parsed), body, "re-export is byte-identical");
}

#[test]
fn reconstruction_blames_every_wait_class() {
    let doc = reconstruct(&sample_log());
    let r1 = &doc.requests[0];
    assert_eq!(r1.preemptions, 1);
    assert!(r1.latency_blame.preemption_s > 0.0, "preempt wait blamed");
    assert!(r1.latency_blame.downclock_s > 0.0, "downclock residency blamed");
    assert_eq!(r1.cache_hit_tokens, 32);
    assert_eq!(r1.latency_blame.cache_miss_tokens, 64);
    let r2 = &doc.requests[1];
    assert!(r2.offloaded && r2.completed);
    assert!((r2.ttft_s.expect("cloud first token") - 0.8).abs() < 1e-12);
    // The ledger reconciles exactly on hand-built numbers.
    assert!(doc.residual_j.abs() < 1e-12, "residual {}", doc.residual_j);
    // The analyzer renders both tables deterministically.
    let rep = analyze(std::slice::from_ref(&doc), 5);
    assert_eq!(rep.to_json(), analyze(&[doc], 5).to_json());
}

/// CI hook: validate a forensics export produced by a real run when
/// `EDGELLM_VALIDATE_FORENSICS` points at one; a no-op otherwise.
#[test]
fn external_forensics_file_validates_when_requested() {
    let Ok(path) = std::env::var("EDGELLM_VALIDATE_FORENSICS") else {
        return;
    };
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("EDGELLM_VALIDATE_FORENSICS={path}: {e}"));
    let stats = validate_forensics(&body)
        .unwrap_or_else(|e| panic!("{path}: invalid forensics export: {e}"));
    assert!(stats.runs > 0, "{path}: export carries no runs");
    assert!(stats.requests > 0, "{path}: export carries no requests");
    println!(
        "validated {path}: {} runs, {} requests, {} events",
        stats.runs, stats.requests, stats.events
    );
}
