//! Exporter round-trip: build timelines with every event kind, export
//! them as Chrome trace-event JSON, read them back with the crate's own
//! parser, and check them against the checked-in schema
//! (`crates/trace/schema/chrome_trace.schema.json`).
//!
//! The last test doubles as CI's validation hook: when
//! `EDGELLM_VALIDATE_TRACE=<path>` is set it validates that file — a
//! trace produced by a *real* run (`edgellm run … --trace-out`) — with
//! the exact checks the synthetic round-trips pin here.

use edgellm_trace::json::{count_tracks, parse};
use edgellm_trace::{validate_chrome_trace, Arg, Json, Trace};

/// A timeline exercising every exporter code path: metadata, complete,
/// instant and counter events, and every [`Arg`] variant.
fn sample_trace() -> Trace {
    let mut t = Trace::new();
    t.set_process_name(1, "device-0");
    t.set_thread_name(1, 1, "scheduler");
    t.complete(
        1,
        1,
        "prefill",
        "serve",
        100.0,
        250.5,
        vec![
            ("tokens".to_string(), Arg::U64(96)),
            ("delta".to_string(), Arg::I64(-3)),
            ("power_w".to_string(), Arg::F64(27.25)),
            ("phase".to_string(), Arg::Str("chunked \"16\"".to_string())),
            ("mixed".to_string(), Arg::Bool(true)),
        ],
    );
    t.complete(1, 1, "decode", "serve", 350.5, 80.0, vec![]);
    t.instant(1, 1, "preempt", "serve", 400.0, vec![("rid".to_string(), Arg::U64(7))]);
    t.counter(1, "power_rails_w", 360.0, &[("gpu", 19.5), ("cpu", 4.0), ("ddr", 3.25)]);
    t
}

#[test]
fn round_trip_preserves_every_event_kind() {
    let t = sample_trace();
    let json = t.to_chrome_json();

    let stats = validate_chrome_trace(&json).expect("sample trace is schema-valid");
    assert_eq!(stats.spans, 2);
    assert_eq!(stats.instants, 1);
    assert_eq!(stats.counters, 1);
    assert_eq!(stats.metadata, 2, "one process_name + one thread_name record");
    assert_eq!(stats.total, t.len() + 2);

    let doc = parse(&json).expect("exporter output parses");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let by_name = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("event \"{name}\" present"))
    };

    let prefill = by_name("prefill");
    assert_eq!(prefill.get("ph").and_then(Json::as_str), Some("X"));
    assert_eq!(prefill.get("ts").and_then(Json::as_f64), Some(100.0));
    assert_eq!(prefill.get("dur").and_then(Json::as_f64), Some(250.5));
    let args = prefill.get("args").expect("args object");
    assert_eq!(args.get("tokens").and_then(Json::as_f64), Some(96.0));
    assert_eq!(args.get("delta").and_then(Json::as_f64), Some(-3.0));
    assert_eq!(args.get("power_w").and_then(Json::as_f64), Some(27.25));
    assert_eq!(args.get("phase").and_then(Json::as_str), Some("chunked \"16\""));
    assert_eq!(args.get("mixed"), Some(&Json::Bool(true)));

    let preempt = by_name("preempt");
    assert_eq!(preempt.get("ph").and_then(Json::as_str), Some("i"));
    assert_eq!(preempt.get("s").and_then(Json::as_str), Some("t"), "instants carry thread scope");

    let rails = by_name("power_rails_w");
    assert_eq!(rails.get("ph").and_then(Json::as_str), Some("C"));
    assert_eq!(rails.get("args").and_then(|a| a.get("gpu")).and_then(Json::as_f64), Some(19.5));

    assert_eq!(count_tracks(events), 2, "scheduler track plus the counter track");
}

#[test]
fn export_is_deterministic_and_insertion_order_free() {
    let json = sample_trace().to_chrome_json();
    assert_eq!(json, sample_trace().to_chrome_json(), "same trace, same bytes");

    // Distinct timestamps serialize in time order no matter the order
    // they were recorded in.
    let mut fwd = Trace::new();
    fwd.instant(1, 1, "a", "t", 1.0, vec![]);
    fwd.instant(1, 1, "b", "t", 2.0, vec![]);
    let mut rev = Trace::new();
    rev.instant(1, 1, "b", "t", 2.0, vec![]);
    rev.instant(1, 1, "a", "t", 1.0, vec![]);
    assert_eq!(fwd.to_chrome_json(), rev.to_chrome_json());
}

#[test]
fn escaped_names_survive_the_round_trip() {
    let mut t = Trace::new();
    let hostile = "line\nbreak\ttab \"quote\" back\\slash · unicode";
    t.set_process_name(1, hostile);
    t.instant(1, 1, hostile, "t", 0.0, vec![]);
    let json = t.to_chrome_json();
    validate_chrome_trace(&json).expect("escaped trace is schema-valid");
    let doc = parse(&json).expect("escaped output parses");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
    assert!(names.contains(&hostile), "instant name round-trips exactly");
}

#[test]
fn merged_traces_keep_disjoint_pid_spaces_and_validate() {
    let mut a = sample_trace();
    let mut b = Trace::new();
    let pid = a.next_pid();
    assert!(pid > 1);
    b.set_process_name(pid, "device-1");
    b.set_thread_name(pid, 1, "scheduler");
    b.complete(pid, 1, "decode", "serve", 10.0, 5.0, vec![]);
    a.merge(b);
    let json = a.to_chrome_json();
    let stats = validate_chrome_trace(&json).expect("merged trace is schema-valid");
    assert_eq!(stats.spans, 3);
    let doc = parse(&json).expect("merged output parses");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    assert_eq!(count_tracks(events), 3, "two scheduler tracks + one counter track");
}

#[test]
fn empty_trace_exports_a_valid_document() {
    let stats = validate_chrome_trace(&Trace::new().to_chrome_json()).expect("empty trace valid");
    assert_eq!(stats.total, 0);
}

/// CI hook: validate an externally produced trace file. A no-op unless
/// `EDGELLM_VALIDATE_TRACE=<path>` is set, in which case the file — e.g.
/// the output of `edgellm run serve --trace-out` — must pass the same
/// schema check as the synthetic traces above and contain at least one
/// non-metadata event.
#[test]
fn external_trace_file_validates_when_requested() {
    let Ok(path) = std::env::var("EDGELLM_VALIDATE_TRACE") else { return };
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("EDGELLM_VALIDATE_TRACE={path}: cannot read: {e}"));
    let stats = validate_chrome_trace(&body)
        .unwrap_or_else(|e| panic!("EDGELLM_VALIDATE_TRACE={path}: schema violation: {e}"));
    assert!(
        stats.spans + stats.instants + stats.counters > 0,
        "{path}: trace carries no events ({stats:?})"
    );
    eprintln!(
        "validated {path}: {} events ({} spans, {} instants, {} counters, {} metadata)",
        stats.total, stats.spans, stats.instants, stats.counters, stats.metadata
    );
}
