//! Property tests for the span collector and the metrics registry.
//!
//! Pinned invariants:
//! * **spans are well-nested** — for any program of open/close/leaf
//!   operations, the per-thread enter/exit sequence intervals of any two
//!   recorded spans are either disjoint or fully nested (never partially
//!   overlapping), the recorded depth equals the number of strictly
//!   containing spans, and [`edgellm_trace::span::drain`] returns them in
//!   its documented deterministic order;
//! * **counters are monotone** — any interleaving of `add`/`inc` calls
//!   over any set of counters yields snapshot values that never decrease
//!   and always equal the running sums.

use std::sync::Mutex;

use edgellm_trace::span::{self, SpanGuard, SpanRecord};
use edgellm_trace::Registry;
use proptest::prelude::*;

/// Names for generated spans (`enter` requires `&'static str`).
const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Run a generated open/close/leaf program against the process-global
/// span collector and return the drained records. Serialized because the
/// collector is shared by every test in the binary.
fn run_program(ops: &[u32]) -> Vec<SpanRecord> {
    static LOCK: Mutex<()> = Mutex::new(());
    let _g = LOCK.lock().expect("span property lock");
    let _ = span::drain();
    span::enable();
    let mut stack: Vec<SpanGuard> = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            // Open a span and keep it on the stack.
            0 => stack.push(span::enter(NAMES[i % NAMES.len()], "prop")),
            // Close the deepest open span (no-op on an empty stack).
            1 => drop(stack.pop()),
            // A leaf span: open and immediately close.
            _ => drop(span::enter("leaf", "prop")),
        }
    }
    // Close whatever is still open, deepest first.
    while stack.pop().is_some() {}
    span::disable();
    span::drain()
}

/// `a` strictly contains `b` in per-thread sequence order.
fn contains(a: &SpanRecord, b: &SpanRecord) -> bool {
    a.start_seq < b.start_seq && b.end_seq < a.end_seq
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spans_are_well_nested(ops in proptest::collection::vec(0u32..3, 1..48)) {
        let recs = run_program(&ops);
        // Every open (op 0) and every leaf (op 2) creates exactly one
        // guard, and every guard eventually drops and records.
        let guards = ops.iter().filter(|&&op| op != 1).count();
        prop_assert_eq!(recs.len(), guards, "one record per guard, none lost");

        for r in &recs {
            prop_assert!(r.end_seq > r.start_seq, "exit follows entry: {r:?}");
            prop_assert!(r.dur_us >= 0.0, "non-negative duration: {r:?}");
        }
        for (i, a) in recs.iter().enumerate() {
            for b in recs.iter().skip(i + 1) {
                if a.thread != b.thread {
                    continue;
                }
                let disjoint = a.end_seq < b.start_seq || b.end_seq < a.start_seq;
                prop_assert!(
                    disjoint || contains(a, b) || contains(b, a),
                    "partial overlap between {a:?} and {b:?}"
                );
                if contains(a, b) {
                    prop_assert!(
                        a.start_us <= b.start_us,
                        "container opened first: {a:?} vs {b:?}"
                    );
                }
            }
        }
        for r in &recs {
            let above = recs
                .iter()
                .filter(|o| o.thread == r.thread && contains(o, r))
                .count();
            prop_assert_eq!(
                r.depth as usize, above,
                "depth counts the containing spans: {:?}", r
            );
        }
        // drain()'s documented deterministic order.
        for w in recs.windows(2) {
            let key = |r: &SpanRecord| (r.start_us, r.thread, r.start_seq);
            prop_assert!(
                key(&w[0]) <= key(&w[1]),
                "drain sorted by (start, thread, seq): {:?} then {:?}", w[0], w[1]
            );
        }
    }

    #[test]
    fn counters_are_monotone(ops in proptest::collection::vec((0usize..3, 0u64..200), 1..64)) {
        let names = ["prop.a", "prop.b", "prop.c"];
        let reg = Registry::new();
        let mut expect = [0u64; 3];
        let mut last = [0u64; 3];
        for &(which, amount) in &ops {
            if amount == 0 {
                reg.counter(names[which]).inc();
                expect[which] += 1;
            } else {
                reg.counter(names[which]).add(amount);
                expect[which] += amount;
            }
            let snap = reg.snapshot();
            for (i, name) in names.iter().enumerate() {
                let v = snap.counters.get(*name).copied().unwrap_or(0);
                prop_assert!(v >= last[i], "counter {} went backwards: {} -> {}", name, last[i], v);
                prop_assert_eq!(v, expect[i], "counter {} equals its running sum", name);
                last[i] = v;
            }
        }
    }

    #[test]
    fn histogram_observations_accumulate(samples in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        let reg = Registry::new();
        let mut last = 0usize;
        for (i, &s) in samples.iter().enumerate() {
            reg.observe("prop.hist", s);
            let h = reg.snapshot().histograms["prop.hist"];
            prop_assert_eq!(h.count, i + 1, "count tracks observations");
            prop_assert!(h.count >= last, "count is monotone");
            let lo = samples[..=i].iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples[..=i].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(h.p50 >= lo && h.p50 <= hi, "median within range");
            prop_assert!((h.max - hi).abs() < 1e-12, "max is exact");
            last = h.count;
        }
    }
}
