//! # edgellm-trace — spans, metrics and Perfetto-exportable timelines
//!
//! The paper is a telemetry study: every table is post-processed from
//! sampled power logs correlated with phase timings. This crate is the
//! workspace's single observability layer, answering *where the time and
//! joules go* at every level — one fused matmul, one scheduler iteration,
//! one five-device fleet — on one timeline:
//!
//! * [`mod@span`] — `span!`-style RAII guards with thread-local buffers,
//!   merged deterministically by timestamp, for wall-clock
//!   instrumentation of the execution substrate;
//! * [`metrics`] — a process-wide registry of monotone counters, gauges
//!   and sample-exact histograms (the kernel layer's per-variant
//!   invocation/MAC/time tallies live here);
//! * [`stats`] — the single nearest-rank [`quantile`] and [`Histogram`]
//!   every report in the workspace now aggregates with;
//! * [`chrome`] — a Chrome trace-event / Perfetto-compatible [`Trace`]
//!   model and deterministic JSON exporter: spans as duration events on
//!   per-component tracks, GPU/CPU/DDR/SoC power rails as counter
//!   tracks, routing/preemption/thermal trips as instants;
//! * [`sink`] — the process-wide trace buffer existing entry points
//!   record into when `--trace-out` / `EDGELLM_TRACE` is set, so any
//!   experiment emits a loadable timeline without code changes;
//! * [`json`] — a dependency-free JSON reader and the checked-in-schema
//!   validation CI runs against real exports;
//! * [`forensics`] — request-scoped forensics: rid-stamped lifecycle
//!   events reconstructed into per-request timelines with TTFT/latency
//!   blame decomposition and energy attribution, plus the always-on
//!   bounded flight recorder and the `edgellm-trace analyze` report.
//!
//! The crate has **no dependencies** (std only), so every other crate in
//! the workspace — `tensor` below `nn`, `power` below `core`, `fleet`
//! above everything — can depend on it without cycles.

pub mod chrome;
pub mod forensics;
pub mod json;
pub mod kernels;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod stats;

pub use chrome::{Arg, Trace};
pub use forensics::{
    analyze, export_forensics, parse_forensics, reconstruct, validate_forensics, AnalyzeReport,
    Blame, ForensicsDoc, ForensicsLog, ForensicsStats, RequestTimeline,
};
pub use json::{parse as parse_json, validate_chrome_trace, Json, TraceStats};
pub use metrics::{registry, Counter, Gauge, HistSummary, Registry, Snapshot};
pub use span::{SpanGuard, SpanRecord};
pub use stats::{quantile, Histogram};
