//! Kernel-layer instrumentation helpers.
//!
//! `edgellm-tensor` compiles these calls in only under its `trace` cargo
//! feature; the default build has **zero** instrumentation in the hot
//! loops (the bench smoke run asserts the feature is off). When compiled
//! in, each kernel invocation costs one [`KernelTimer`]: a clock read at
//! entry and, at drop, three counter bumps in the global registry —
//! per-variant invocation count, MAC count and wall nanoseconds — plus a
//! span when span collection is on.

use std::time::Instant;

use crate::metrics::registry;
use crate::span::{self, SpanGuard};

/// RAII timer for one kernel invocation — see [`timer`].
#[derive(Debug)]
#[must_use = "dropping the timer immediately ends the measurement"]
pub struct KernelTimer {
    variant: &'static str,
    macs: u64,
    start: Instant,
    _span: SpanGuard,
}

/// Time one invocation of kernel `variant` performing `macs`
/// multiply-accumulates. Counters land under `kernel.<variant>.{calls,
/// macs, ns}`.
pub fn timer(variant: &'static str, macs: u64) -> KernelTimer {
    KernelTimer { variant, macs, start: Instant::now(), _span: span::enter(variant, "kernel") }
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        let reg = registry();
        reg.counter(&format!("kernel.{}.calls", self.variant)).inc();
        reg.counter(&format!("kernel.{}.macs", self.variant)).add(self.macs);
        reg.counter(&format!("kernel.{}.ns", self.variant)).add(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_bumps_all_three_counters() {
        let reg = registry();
        let calls0 = reg.counter("kernel.test_variant.calls").get();
        let macs0 = reg.counter("kernel.test_variant.macs").get();
        {
            let _t = timer("test_variant", 1234);
        }
        assert_eq!(reg.counter("kernel.test_variant.calls").get(), calls0 + 1);
        assert_eq!(reg.counter("kernel.test_variant.macs").get(), macs0 + 1234);
        assert!(reg.counter("kernel.test_variant.ns").get() > 0);
    }
}
