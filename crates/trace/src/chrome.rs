//! Chrome trace-event / Perfetto-compatible timeline model and exporter.
//!
//! A [`Trace`] is a flat list of events on a `pid`/`tid` track grid —
//! exactly the [Trace Event Format] that `chrome://tracing` and Perfetto
//! load. The workspace maps its own concepts onto that grid:
//!
//! * one **process** per simulated component (a serving device, the fleet
//!   router, the kernel layer) — named with [`Trace::set_process_name`];
//! * one **thread** per track inside it (scheduler iterations, a worker
//!   thread's kernel spans) — named with [`Trace::set_thread_name`];
//! * **complete events** (`ph:"X"`) for spans with a duration, **instant
//!   events** (`ph:"i"`) for point occurrences (preemption, a thermal
//!   trip), and **counter events** (`ph:"C"`) for sampled series — the
//!   GPU/CPU/DDR/SoC power rails render as stacked counter tracks.
//!
//! Export is deterministic: events are stably sorted by `(ts, pid, tid,
//! insertion order)` and floats are formatted with Rust's shortest-
//! round-trip `Display`, so two identical simulations — at any
//! `EDGELLM_THREADS` — serialize to byte-identical files.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One argument value attached to an event (`args` in the format).
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (must be finite — JSON has no NaN/Inf).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// Event payload kind.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    /// A span: `ph:"X"` with a duration in µs.
    Complete { dur_us: f64 },
    /// A point event: `ph:"i"`, thread scope.
    Instant,
    /// A sampled counter: `ph:"C"`; the args are the series.
    Counter,
}

/// One trace event, pre-serialization.
#[derive(Debug, Clone, PartialEq)]
struct Event {
    ts_us: f64,
    pid: u32,
    tid: u32,
    name: String,
    cat: String,
    kind: Kind,
    args: Vec<(String, Arg)>,
    /// Insertion order — the final sort tie-break, so construction order
    /// (deterministic in every caller) pins the serialized order.
    seq: u64,
}

/// An in-memory timeline, exportable as Chrome trace-event JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<Event>,
    processes: BTreeMap<u32, String>,
    threads: BTreeMap<(u32, u32), String>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name the process (track group) `pid`.
    pub fn set_process_name(&mut self, pid: u32, name: impl Into<String>) {
        self.processes.insert(pid, name.into());
    }

    /// Name thread (track) `tid` of process `pid`.
    pub fn set_thread_name(&mut self, pid: u32, tid: u32, name: impl Into<String>) {
        self.threads.insert((pid, tid), name.into());
    }

    /// Record a span of `dur_us` starting at `ts_us`.
    // Mirrors the Trace Event Format field list one-to-one; bundling the
    // track coordinates into a struct would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: impl Into<String>,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Arg)>,
    ) {
        self.push(Event {
            ts_us,
            pid,
            tid,
            name: name.into(),
            cat: cat.to_string(),
            kind: Kind::Complete { dur_us },
            args,
            seq: 0,
        });
    }

    /// Record a point event at `ts_us`.
    pub fn instant(
        &mut self,
        pid: u32,
        tid: u32,
        name: impl Into<String>,
        cat: &str,
        ts_us: f64,
        args: Vec<(String, Arg)>,
    ) {
        self.push(Event {
            ts_us,
            pid,
            tid,
            name: name.into(),
            cat: cat.to_string(),
            kind: Kind::Instant,
            args,
            seq: 0,
        });
    }

    /// Record a counter sample at `ts_us`. Each `(series, value)` pair
    /// becomes one stacked series on the counter track named `name`.
    pub fn counter(
        &mut self,
        pid: u32,
        name: impl Into<String>,
        ts_us: f64,
        series: &[(&str, f64)],
    ) {
        let args = series.iter().map(|&(k, v)| (k.to_string(), Arg::F64(v))).collect();
        self.push(Event {
            ts_us,
            pid,
            tid: 0,
            name: name.into(),
            cat: "counter".to_string(),
            kind: Kind::Counter,
            args,
            seq: 0,
        });
    }

    fn push(&mut self, mut ev: Event) {
        ev.seq = self.events.len() as u64;
        self.events.push(ev);
    }

    /// Number of events recorded (metadata excluded).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The lowest unused pid — callers claim process ids sequentially.
    pub fn next_pid(&self) -> u32 {
        self.processes
            .keys()
            .copied()
            .chain(self.events.iter().map(|e| e.pid))
            .max()
            .map_or(1, |p| p + 1)
    }

    /// Append every event and track name of `other` into `self`,
    /// preserving `other`'s pid/tid assignments (callers manage disjoint
    /// pid spaces via [`Trace::next_pid`]).
    pub fn merge(&mut self, other: Trace) {
        for (pid, name) in other.processes {
            self.processes.entry(pid).or_insert(name);
        }
        for (key, name) in other.threads {
            self.threads.entry(key).or_insert(name);
        }
        for mut ev in other.events {
            ev.seq = self.events.len() as u64;
            self.events.push(ev);
        }
    }

    /// Serialize to Chrome trace-event JSON (object form, with
    /// `traceEvents` plus `displayTimeUnit`). Deterministic: stable sort
    /// by `(ts, pid, tid, insertion order)`, metadata first.
    pub fn to_chrome_json(&self) -> String {
        let mut events = self.events.clone();
        events.sort_by(|a, b| {
            a.ts_us
                .total_cmp(&b.ts_us)
                .then(a.pid.cmp(&b.pid))
                .then(a.tid.cmp(&b.tid))
                .then(a.seq.cmp(&b.seq))
        });

        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
        };
        for (pid, name) in &self.processes {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_str(name)
            );
        }
        for (&(pid, tid), name) in &self.threads {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_str(name)
            );
        }
        for ev in &events {
            sep(&mut out);
            write_event(&mut out, ev);
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Write the Chrome JSON to `path`.
    pub fn write_chrome_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

fn write_event(out: &mut String, ev: &Event) {
    let ph = match ev.kind {
        Kind::Complete { .. } => "X",
        Kind::Instant => "i",
        Kind::Counter => "C",
    };
    let _ = write!(
        out,
        "{{\"ph\":\"{ph}\",\"pid\":{},\"tid\":{},\"ts\":{},",
        ev.pid,
        ev.tid,
        Num(ev.ts_us)
    );
    if let Kind::Complete { dur_us } = ev.kind {
        let _ = write!(out, "\"dur\":{},", Num(dur_us));
    }
    if ev.kind == Kind::Instant {
        out.push_str("\"s\":\"t\",");
    }
    let _ = write!(out, "\"name\":{},\"cat\":{}", json_str(&ev.name), json_str(&ev.cat));
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_str(k));
            match v {
                Arg::U64(u) => {
                    let _ = write!(out, "{u}");
                }
                Arg::I64(i) => {
                    let _ = write!(out, "{i}");
                }
                Arg::F64(f) => {
                    let _ = write!(out, "{}", Num(*f));
                }
                Arg::Str(s) => {
                    let _ = write!(out, "{}", json_str(s));
                }
                Arg::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Deterministic, JSON-valid float formatting: Rust's shortest
/// round-trip `Display` (never exponent notation for f64), with
/// non-finite values clamped to 0 — JSON has no NaN/Inf and no workspace
/// source produces them. Shared with [`crate::forensics`] so forensic
/// reports and Chrome exports format floats identically.
pub(crate) struct Num(pub(crate) f64);

impl std::fmt::Display for Num {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "0")
        }
    }
}

/// Escape a string into a JSON string literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_sorted_and_deterministic() {
        let mut t = Trace::new();
        t.set_process_name(1, "dev");
        t.set_thread_name(1, 1, "sched");
        t.complete(1, 1, "late", "serve", 10.0, 5.0, vec![]);
        t.complete(1, 1, "early", "serve", 1.0, 2.0, vec![]);
        t.counter(1, "power_w", 3.0, &[("gpu", 12.5), ("cpu", 2.0)]);
        let a = t.to_chrome_json();
        let b = t.to_chrome_json();
        assert_eq!(a, b);
        let early = a.find("early").expect("early present");
        let late = a.find("late").expect("late present");
        assert!(early < late, "events sorted by timestamp");
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"gpu\":12.5"));
    }

    #[test]
    fn merge_preserves_tracks_and_next_pid_advances() {
        let mut a = Trace::new();
        a.set_process_name(1, "a");
        a.instant(1, 1, "x", "t", 0.0, vec![]);
        let mut b = Trace::new();
        let pid = a.next_pid();
        assert_eq!(pid, 2);
        b.set_process_name(pid, "b");
        b.instant(pid, 1, "y", "t", 1.0, vec![]);
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.next_pid(), 3);
        assert!(a.to_chrome_json().contains("\"y\""));
    }

    #[test]
    fn json_str_escapes_controls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_trace_exports_valid_skeleton() {
        let t = Trace::new();
        assert!(t.is_empty());
        let j = t.to_chrome_json();
        assert!(j.contains("\"traceEvents\""));
    }
}
