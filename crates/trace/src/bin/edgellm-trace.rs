//! `edgellm-trace` — inspect exported traces and forensic records.
//!
//! ```text
//! edgellm-trace analyze <forensics.json> [--top K] [--json <out>]
//! edgellm-trace validate <file.json>
//! ```
//!
//! `analyze` reads a forensics export (`edgellm … --forensics-out`),
//! validates it against the checked-in schema, and prints the
//! human-readable forensic report — top-k worst-TTFT and worst-J/token
//! requests with their blame breakdowns and the fleet-wide energy
//! ledger. `--json` additionally writes the deterministic JSON report.
//!
//! `validate` schema-checks either artifact kind: a forensics export or
//! a Chrome trace-event export (`--trace-out`), auto-detected.
//!
//! Exit codes: 0 ok · 1 validation/analysis failure · 2 usage error.

use edgellm_trace::forensics::{analyze, parse_forensics, validate_forensics, FORENSICS_SCHEMA_ID};
use edgellm_trace::validate_chrome_trace;

const USAGE: &str = "usage:
  edgellm-trace analyze <forensics.json> [--top K] [--json <out>]
  edgellm-trace validate <file.json>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(main_with_args(&args));
}

fn main_with_args(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            0
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            2
        }
    }
}

/// Extract `--flag value` from `args`, returning (value, rest).
fn flag_value(args: &[String], flag: &str) -> Result<(Option<String>, Vec<String>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut value = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            match it.next() {
                Some(v) => value = Some(v.clone()),
                None => return Err(format!("{flag} needs a value")),
            }
        } else {
            rest.push(a.clone());
        }
    }
    Ok((value, rest))
}

fn cmd_analyze(args: &[String]) -> i32 {
    let parsed = (|| -> Result<(String, usize, Option<String>), String> {
        let (top, rest) = flag_value(args, "--top")?;
        let (json_out, rest) = flag_value(&rest, "--json")?;
        let top = match top {
            Some(t) => t.parse::<usize>().map_err(|e| format!("--top {t:?}: {e}"))?,
            None => 5,
        };
        match rest.as_slice() {
            [path] => Ok((path.clone(), top, json_out)),
            _ => Err("analyze takes exactly one input file".into()),
        }
    })();
    let (path, top, json_out) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return 1;
        }
    };
    let stats = match validate_forensics(&body) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: invalid forensics export: {e}");
            return 1;
        }
    };
    let docs = parse_forensics(&body).expect("validated export parses");
    let report = analyze(&docs, top);
    print!("{}", report.render());
    println!("{} runs, {} requests, {} events analyzed", stats.runs, stats.requests, stats.events);
    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(&out, report.to_json()) {
            eprintln!("{out}: cannot write: {e}");
            return 1;
        }
        println!("wrote JSON report to {out}");
    }
    0
}

fn cmd_validate(args: &[String]) -> i32 {
    let [path] = args else {
        eprintln!("validate takes exactly one input file\n{USAGE}");
        return 2;
    };
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return 1;
        }
    };
    let looks_forensic = edgellm_trace::parse_json(&body)
        .ok()
        .and_then(|d| d.get("schema").and_then(|s| s.as_str().map(String::from)))
        .is_some_and(|s| s == FORENSICS_SCHEMA_ID);
    if looks_forensic {
        match validate_forensics(&body) {
            Ok(s) => {
                println!(
                    "{path}: valid forensics export ({} runs, {} requests, {} events)",
                    s.runs, s.requests, s.events
                );
                0
            }
            Err(e) => {
                eprintln!("{path}: invalid forensics export: {e}");
                1
            }
        }
    } else {
        match validate_chrome_trace(&body) {
            Ok(s) => {
                println!(
                    "{path}: valid Chrome trace ({} events: {} spans, {} instants, {} counters)",
                    s.total, s.spans, s.instants, s.counters
                );
                0
            }
            Err(e) => {
                eprintln!("{path}: invalid trace: {e}");
                1
            }
        }
    }
}
