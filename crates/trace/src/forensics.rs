//! Request-scoped forensics: causal per-request timelines, blame
//! decomposition, energy attribution, and an always-on flight recorder.
//!
//! The aggregate reports (`ContinuousReport`, `FleetReport`) and the
//! Perfetto tracks answer workload-level questions; this module answers
//! *per-request* ones — "why was request 42's TTFT 9× p50, and how many
//! joules did it burn on which device?". Three pieces:
//!
//! * **Lifecycle events** ([`Event`]/[`EventKind`]): rid-stamped, `Copy`
//!   records emitted by the serving/fleet simulators at every causal
//!   step of a request's life (submit, admit with prefix-cache hit
//!   length, chunked-prefill segments, first token, preemption, cancel,
//!   route/re-route, thermal holds, power-mode changes). The emitters
//!   keep a complete per-run log ([`ForensicsLog`]) *and* feed the
//!   bounded global [`flight`] recorder.
//! * **Reconstruction** ([`reconstruct`]): replays a log through a
//!   per-request state machine into [`RequestTimeline`]s, each with a
//!   [`Blame`] decomposition of TTFT and end-to-end latency (queueing vs
//!   preemption vs thermal hold vs governor downclock vs cache miss)
//!   and a per-request energy share pro-rated from the power integral,
//!   so that Σ per-request J + idle J == `report.energy_j`.
//! * **Analysis** ([`analyze`] and the `edgellm-trace` binary): top-k
//!   worst-TTFT / worst-J-per-token requests with blame breakdowns and
//!   the fleet-wide energy ledger, as deterministic JSON
//!   ([`export_forensics`], validated by [`validate_forensics`] against
//!   `schema/forensics.schema.json`) plus a human-readable report.
//!
//! Everything here is dependency-free and deterministic: floats format
//! through the same shortest-round-trip writer as the Chrome exporter,
//! collections iterate in sorted order, and the simulators that emit
//! events are single-threaded by construction, so logs, dumps and
//! reports are byte-identical across `EDGELLM_THREADS`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::chrome::{json_str, Num};
use crate::json::{parse, Json};

/// Sentinel rid for events that describe a device or the fleet rather
/// than a single request (mode changes, device down/up).
pub const NO_RID: u64 = u64::MAX;

/// Sentinel device index for fleet-scope events that target no device
/// (a request held while the whole fleet is dark) and for the cloud
/// endpoint.
pub const NO_DEVICE: u32 = u32::MAX;

/// What happened. Payloads are `Copy`-only so the flight-recorder ring
/// never allocates in steady state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// Request entered a device queue (or re-entered one after an
    /// evacuation re-route).
    Submitted,
    /// Scheduler admitted the request into the live batch; carries the
    /// prefix-cache hit length (prompt tokens served from cache).
    Admitted { cache_hit_tokens: u64 },
    /// One chunked-prefill segment of `tokens` prompt tokens advanced.
    PrefillChunk { tokens: u64 },
    /// First output token produced (TTFT instant).
    FirstToken,
    /// KV pressure preempted the request (freed + re-queued for
    /// recompute).
    Preempted,
    /// Request completed with `output_tokens` generated.
    Completed { output_tokens: u64 },
    /// Request cancelled mid-flight or while queued.
    Cancelled,
    /// Fleet router placed the request on `Event::device`.
    Routed,
    /// Fleet router spilled the request to the cloud endpoint.
    Offloaded,
    /// No device could take the request; it is held by the fleet.
    Held,
    /// Device went down (`thermal` distinguishes a thermal trip from a
    /// scripted outage).
    DeviceDown { thermal: bool },
    /// Device came back up.
    DeviceUp,
    /// Power mode changed on `Event::device`; `downclock` is true when
    /// any clock domain dropped below the run's baseline mode.
    ModeChange { downclock: bool },
}

/// One rid-stamped lifecycle event on the shared simulation clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Simulation time (seconds).
    pub t_s: f64,
    /// Request id, or [`NO_RID`] for device/fleet-scope events.
    pub rid: u64,
    /// Device index the event concerns, or [`NO_DEVICE`].
    pub device: u32,
    pub kind: EventKind,
}

impl Event {
    /// One-line deterministic rendering (flight-recorder dump format).
    pub fn render(&self) -> String {
        let mut s = format!("t={}", Num(self.t_s));
        if self.device == NO_DEVICE {
            s.push_str(" dev=-");
        } else {
            let _ = write!(s, " dev={}", self.device);
        }
        if self.rid == NO_RID {
            s.push_str(" rid=-");
        } else {
            let _ = write!(s, " rid={}", self.rid);
        }
        match self.kind {
            EventKind::Submitted => s.push_str(" submitted"),
            EventKind::Admitted { cache_hit_tokens } => {
                let _ = write!(s, " admitted hit={cache_hit_tokens}");
            }
            EventKind::PrefillChunk { tokens } => {
                let _ = write!(s, " prefill tokens={tokens}");
            }
            EventKind::FirstToken => s.push_str(" first_token"),
            EventKind::Preempted => s.push_str(" preempted"),
            EventKind::Completed { output_tokens } => {
                let _ = write!(s, " completed out={output_tokens}");
            }
            EventKind::Cancelled => s.push_str(" cancelled"),
            EventKind::Routed => s.push_str(" routed"),
            EventKind::Offloaded => s.push_str(" offloaded"),
            EventKind::Held => s.push_str(" held"),
            EventKind::DeviceDown { thermal } => {
                let _ = write!(s, " device_down thermal={thermal}");
            }
            EventKind::DeviceUp => s.push_str(" device_up"),
            EventKind::ModeChange { downclock } => {
                let _ = write!(s, " mode_change downclock={downclock}");
            }
        }
        s
    }
}

/// A complete forensic record of one run, as assembled by the emitting
/// simulator: the full event log plus the energy ledger inputs.
#[derive(Clone, Debug, Default)]
pub struct ForensicsLog {
    /// Run label (device name for serve runs, "fleet" for fleets).
    pub label: String,
    /// Lifecycle events sorted by `t_s` (stable for equal stamps).
    pub events: Vec<Event>,
    /// Per-request attributed energy, sorted by rid.
    pub req_energy: Vec<(u64, f64)>,
    /// Energy integrated over idle gaps (J).
    pub idle_energy_j: f64,
    /// Energy billed to the cloud endpoint (J), already included in the
    /// per-request shares of offloaded rids.
    pub cloud_energy_j: f64,
    /// The run's total energy integral — `report.energy_j`.
    pub total_energy_j: f64,
}

/// Blame decomposition of a latency window. The four wait components
/// plus `service_s` partition the wall-clock window; `downclock_s` is a
/// *residency overlap* (time the request was resident on a device held
/// below its baseline clocks) and may overlap the others.
/// `cache_miss_tokens` counts prompt tokens actually prefilled (not
/// served from the prefix cache).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Blame {
    /// Waiting in a device queue before (first) admission.
    pub queueing_s: f64,
    /// Waiting for re-admission after a KV-pressure preemption.
    pub preemption_s: f64,
    /// Held by the fleet (thermal trip / outage with no healthy target)
    /// or waiting out an evacuation re-route.
    pub held_s: f64,
    /// Residency overlap with downclocked power modes (governor or
    /// scripted); overlaps the partition components.
    pub downclock_s: f64,
    /// Time actually being computed (prefill + decode).
    pub service_s: f64,
    /// Prompt tokens prefilled rather than served from cache.
    pub cache_miss_tokens: u64,
}

impl Blame {
    /// Name of the dominant *wait* component, or `"service"` when the
    /// request never waited (queueing, preemption, hold and downclock
    /// all zero).
    pub fn dominant(&self) -> &'static str {
        let cands = [
            ("queueing", self.queueing_s),
            ("preemption", self.preemption_s),
            ("thermal-hold", self.held_s),
            ("downclock", self.downclock_s),
        ];
        let mut best = ("service", 0.0);
        for (name, v) in cands {
            if v > best.1 {
                best = (name, v);
            }
        }
        best.0
    }

    /// True when at least one wait component (queueing / preemption /
    /// thermal hold / downclock) is nonzero.
    pub fn names_nonzero_wait(&self) -> bool {
        self.queueing_s > 0.0
            || self.preemption_s > 0.0
            || self.held_s > 0.0
            || self.downclock_s > 0.0
    }

    fn to_json(self) -> String {
        format!(
            "{{\"queueing_s\":{},\"preemption_s\":{},\"held_s\":{},\"downclock_s\":{},\"service_s\":{},\"cache_miss_tokens\":{}}}",
            Num(self.queueing_s),
            Num(self.preemption_s),
            Num(self.held_s),
            Num(self.downclock_s),
            Num(self.service_s),
            self.cache_miss_tokens
        )
    }
}

/// A request's reconstructed life, with blame and energy attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestTimeline {
    pub rid: u64,
    /// First submission instant (s).
    pub arrival_s: f64,
    /// Time to first token, if one was produced.
    pub ttft_s: Option<f64>,
    /// End-to-end latency (to completion or cancellation), if the
    /// request terminated.
    pub latency_s: Option<f64>,
    pub output_tokens: u64,
    /// Devices the request was resident on, in first-visit order.
    pub devices: Vec<u32>,
    pub preemptions: u64,
    pub cache_hit_tokens: u64,
    /// Energy attributed to this request (J), pro-rated from the power
    /// integral token-proportionally per iteration.
    pub energy_j: f64,
    pub completed: bool,
    pub cancelled: bool,
    /// Served by the cloud endpoint rather than an edge device.
    pub offloaded: bool,
    /// Blame over the `[arrival, first token]` window.
    pub ttft_blame: Blame,
    /// Blame over the full `[arrival, termination]` window.
    pub latency_blame: Blame,
}

impl RequestTimeline {
    fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{}", Num(x)),
            None => "null".into(),
        };
        let devices = self.devices.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",");
        format!(
            "{{\"rid\":{},\"arrival_s\":{},\"ttft_s\":{},\"latency_s\":{},\"output_tokens\":{},\"devices\":[{}],\"preemptions\":{},\"cache_hit_tokens\":{},\"energy_j\":{},\"completed\":{},\"cancelled\":{},\"offloaded\":{},\"ttft_blame\":{},\"latency_blame\":{}}}",
            self.rid,
            Num(self.arrival_s),
            opt(self.ttft_s),
            opt(self.latency_s),
            self.output_tokens,
            devices,
            self.preemptions,
            self.cache_hit_tokens,
            Num(self.energy_j),
            self.completed,
            self.cancelled,
            self.offloaded,
            self.ttft_blame.to_json(),
            self.latency_blame.to_json()
        )
    }
}

/// The reconstructed forensic document for one run: per-request
/// timelines plus the run-wide energy ledger.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ForensicsDoc {
    pub label: String,
    /// `report.energy_j` — the run's full power integral.
    pub total_energy_j: f64,
    /// Idle-gap energy (J), the unattributable remainder of the ledger.
    pub idle_energy_j: f64,
    /// Cloud-endpoint energy (J); a subset of `attributed_j`.
    pub cloud_energy_j: f64,
    /// Σ per-request energy (J).
    pub attributed_j: f64,
    /// `total − idle − attributed`: must vanish (≤1e-9 relative) for
    /// the ledger to reconcile.
    pub residual_j: f64,
    /// Number of lifecycle events the log carried.
    pub events: u64,
    /// Timelines sorted by rid.
    pub requests: Vec<RequestTimeline>,
}

impl ForensicsDoc {
    /// Deterministic JSON rendering of one run document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"label\":{},\"total_energy_j\":{},\"idle_energy_j\":{},\"cloud_energy_j\":{},\"attributed_j\":{},\"residual_j\":{},\"events\":{},\"requests\":[",
            json_str(&self.label),
            Num(self.total_energy_j),
            Num(self.idle_energy_j),
            Num(self.cloud_energy_j),
            Num(self.attributed_j),
            Num(self.residual_j),
            self.events
        );
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Median TTFT over requests that produced a first token.
    pub fn p50_ttft_s(&self) -> f64 {
        let mut ts: Vec<f64> = self.requests.iter().filter_map(|r| r.ttft_s).collect();
        if ts.is_empty() {
            return 0.0;
        }
        ts.sort_by(|a, b| a.partial_cmp(b).expect("finite ttft"));
        ts[(ts.len() - 1) / 2]
    }
}

// ---------------------------------------------------------------------------
// Reconstruction
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
enum St {
    Start,
    /// Waiting in a device queue since `t`.
    Queued(f64),
    /// In the live batch since `t`.
    Running(f64),
    /// Preempted, waiting for re-admission since `t`.
    PreemptWait(f64),
    /// Held by the fleet (no healthy device) since `t`.
    HeldWait(f64),
    /// Evacuated mid-flight, waiting for the receiving device since `t`.
    EvacWait(f64),
    Done,
}

struct ReqState {
    tl: RequestTimeline,
    st: St,
    first_token_t: Option<f64>,
    end_t: Option<f64>,
    blame: Blame,
    /// Residency intervals `(start, end-or-None, device)`.
    residency: Vec<(f64, Option<f64>, u32)>,
}

impl ReqState {
    fn new(rid: u64) -> Self {
        Self {
            tl: RequestTimeline {
                rid,
                arrival_s: 0.0,
                ttft_s: None,
                latency_s: None,
                output_tokens: 0,
                devices: Vec::new(),
                preemptions: 0,
                cache_hit_tokens: 0,
                energy_j: 0.0,
                completed: false,
                cancelled: false,
                offloaded: false,
                ttft_blame: Blame::default(),
                latency_blame: Blame::default(),
            },
            st: St::Start,
            first_token_t: None,
            end_t: None,
            blame: Blame::default(),
            residency: Vec::new(),
        }
    }

    fn enter_device(&mut self, t: f64, dev: u32) {
        if let Some(last) = self.residency.last_mut() {
            if last.1.is_none() {
                if last.2 == dev {
                    return;
                }
                last.1 = Some(t);
            }
        }
        if dev != NO_DEVICE {
            self.residency.push((t, None, dev));
            if !self.tl.devices.contains(&dev) {
                self.tl.devices.push(dev);
            }
        }
    }

    /// Close the open wait/service interval at `t` into its blame
    /// bucket and return the previous state.
    fn close(&mut self, t: f64) -> St {
        let prev = self.st;
        match prev {
            St::Queued(s) => self.blame.queueing_s += t - s,
            St::Running(s) => self.blame.service_s += t - s,
            St::PreemptWait(s) => self.blame.preemption_s += t - s,
            St::HeldWait(s) | St::EvacWait(s) => self.blame.held_s += t - s,
            St::Start | St::Done => {}
        }
        prev
    }

    fn arrive_if_new(&mut self, t: f64) {
        if matches!(self.st, St::Start) {
            self.tl.arrival_s = t;
        }
    }
}

/// Per-device downclock intervals `(start, end-or-None)` derived from
/// the run's `ModeChange` events.
fn downclock_intervals(events: &[Event]) -> BTreeMap<u32, Vec<(f64, Option<f64>)>> {
    let mut iv: BTreeMap<u32, Vec<(f64, Option<f64>)>> = BTreeMap::new();
    for ev in events {
        if let EventKind::ModeChange { downclock } = ev.kind {
            let spans = iv.entry(ev.device).or_default();
            let open = spans.last().is_some_and(|s| s.1.is_none());
            match (open, downclock) {
                (false, true) => spans.push((ev.t_s, None)),
                (true, false) => spans.last_mut().expect("open span").1 = Some(ev.t_s),
                _ => {}
            }
        }
    }
    iv
}

fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

/// Sum the overlap of `[w0, w1]` with the request's residency on
/// downclocked devices.
fn downclock_overlap(
    residency: &[(f64, Option<f64>, u32)],
    iv: &BTreeMap<u32, Vec<(f64, Option<f64>)>>,
    w0: f64,
    w1: f64,
    horizon: f64,
) -> f64 {
    let mut total = 0.0;
    for &(r0, r1, dev) in residency {
        let r1 = r1.unwrap_or(horizon);
        if let Some(spans) = iv.get(&dev) {
            for &(d0, d1) in spans {
                let d1 = d1.unwrap_or(horizon);
                total += overlap(r0.max(w0), r1.min(w1), d0, d1);
            }
        }
    }
    total
}

/// Replay a [`ForensicsLog`] into per-request timelines with blame and
/// energy attribution. Pure and deterministic: same log, same document.
pub fn reconstruct(log: &ForensicsLog) -> ForensicsDoc {
    let horizon = log.events.last().map_or(0.0, |e| e.t_s);
    let downs = downclock_intervals(&log.events);
    let mut reqs: BTreeMap<u64, ReqState> = BTreeMap::new();

    for ev in &log.events {
        if ev.rid == NO_RID {
            continue;
        }
        let t = ev.t_s;
        let r = reqs.entry(ev.rid).or_insert_with(|| ReqState::new(ev.rid));
        if matches!(r.st, St::Done) {
            continue;
        }
        match ev.kind {
            EventKind::Routed => {
                r.enter_device(t, ev.device);
            }
            EventKind::Submitted => {
                r.arrive_if_new(t);
                r.enter_device(t, ev.device);
                match r.close(t) {
                    // Already waiting somewhere: the wait continues in a
                    // new queue (evacuation of a queued request) …
                    St::Queued(_) | St::Start | St::HeldWait(_) => r.st = St::Queued(t),
                    // … or the request was evacuated mid-flight and its
                    // progress discarded: the coming wait is hold blame.
                    St::Running(_) => r.st = St::EvacWait(t),
                    St::PreemptWait(_) => r.st = St::PreemptWait(t),
                    St::EvacWait(_) => r.st = St::EvacWait(t),
                    St::Done => {}
                }
            }
            EventKind::Held => {
                r.arrive_if_new(t);
                r.close(t);
                r.st = St::HeldWait(t);
            }
            EventKind::Admitted { cache_hit_tokens } => {
                r.arrive_if_new(t);
                if r.tl.cache_hit_tokens == 0 {
                    r.tl.cache_hit_tokens = cache_hit_tokens;
                }
                r.close(t);
                r.st = St::Running(t);
            }
            EventKind::PrefillChunk { tokens } => {
                r.blame.cache_miss_tokens += tokens;
            }
            EventKind::FirstToken => {
                if matches!(r.st, St::Running(_)) {
                    r.close(t);
                    r.st = St::Running(t);
                }
                if r.first_token_t.is_none() {
                    r.first_token_t = Some(t);
                    r.tl.ttft_s = Some(t - r.tl.arrival_s);
                    r.tl.ttft_blame = r.blame;
                }
            }
            EventKind::Preempted => {
                r.close(t);
                r.st = St::PreemptWait(t);
                r.tl.preemptions += 1;
            }
            EventKind::Offloaded => {
                r.arrive_if_new(t);
                r.close(t);
                r.st = St::Running(t);
                r.tl.offloaded = true;
            }
            EventKind::Completed { output_tokens } => {
                r.close(t);
                r.st = St::Done;
                r.tl.output_tokens = output_tokens;
                r.tl.completed = true;
                r.tl.latency_s = Some(t - r.tl.arrival_s);
                r.end_t = Some(t);
            }
            EventKind::Cancelled => {
                r.close(t);
                r.st = St::Done;
                r.tl.cancelled = true;
                r.tl.latency_s = Some(t - r.tl.arrival_s);
                r.end_t = Some(t);
            }
            EventKind::DeviceDown { .. } | EventKind::DeviceUp | EventKind::ModeChange { .. } => {}
        }
    }

    let energy: BTreeMap<u64, f64> = log.req_energy.iter().copied().collect();
    let mut requests = Vec::with_capacity(reqs.len());
    let mut attributed = 0.0;
    for (rid, mut r) in reqs {
        // A request still in flight when the log ends: close its open
        // interval at the horizon so blame still partitions the window.
        if !matches!(r.st, St::Done) {
            r.close(horizon);
        }
        let end = r.end_t.unwrap_or(horizon);
        if let Some(ft) = r.first_token_t {
            r.tl.ttft_blame.downclock_s =
                downclock_overlap(&r.residency, &downs, r.tl.arrival_s, ft, horizon);
        }
        r.tl.latency_blame = r.blame;
        r.tl.latency_blame.downclock_s =
            downclock_overlap(&r.residency, &downs, r.tl.arrival_s, end, horizon);
        r.tl.energy_j = energy.get(&rid).copied().unwrap_or(0.0);
        attributed += r.tl.energy_j;
        requests.push(r.tl);
    }

    ForensicsDoc {
        label: log.label.clone(),
        total_energy_j: log.total_energy_j,
        idle_energy_j: log.idle_energy_j,
        cloud_energy_j: log.cloud_energy_j,
        attributed_j: attributed,
        residual_j: log.total_energy_j - log.idle_energy_j - attributed,
        events: log.events.len() as u64,
        requests,
    }
}

// ---------------------------------------------------------------------------
// Export / parse / validate
// ---------------------------------------------------------------------------

/// Schema identifier stamped into every export.
pub const FORENSICS_SCHEMA_ID: &str = "edgellm_forensics/v1";

/// Checked-in schema the exporter's output is validated against.
pub const FORENSICS_SCHEMA: &str = include_str!("../schema/forensics.schema.json");

/// Render a set of run documents as the canonical export container.
pub fn export_forensics(docs: &[ForensicsDoc]) -> String {
    let mut out = format!("{{\"schema\":{},\"runs\":[", json_str(FORENSICS_SCHEMA_ID));
    for (i, d) in docs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    out.push_str("]}");
    out
}

fn req_f64(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what}: \"{key}\" missing or not numeric"))?;
    if !v.is_finite() {
        return Err(format!("{what}: \"{key}\" not finite"));
    }
    Ok(v)
}

fn opt_f64(obj: &Json, key: &str, what: &str) -> Result<Option<f64>, String> {
    match obj.get(key) {
        None => Err(format!("{what}: \"{key}\" missing")),
        Some(Json::Null) => Ok(None),
        Some(v) => {
            let v = v.as_f64().ok_or_else(|| format!("{what}: \"{key}\" not numeric"))?;
            Ok(Some(v))
        }
    }
}

fn req_bool(obj: &Json, key: &str, what: &str) -> Result<bool, String> {
    match obj.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("{what}: \"{key}\" missing or not a bool")),
    }
}

fn parse_blame(obj: &Json, what: &str) -> Result<Blame, String> {
    Ok(Blame {
        queueing_s: req_f64(obj, "queueing_s", what)?,
        preemption_s: req_f64(obj, "preemption_s", what)?,
        held_s: req_f64(obj, "held_s", what)?,
        downclock_s: req_f64(obj, "downclock_s", what)?,
        service_s: req_f64(obj, "service_s", what)?,
        cache_miss_tokens: req_f64(obj, "cache_miss_tokens", what)? as u64,
    })
}

fn parse_request(obj: &Json, what: &str) -> Result<RequestTimeline, String> {
    let devices = obj
        .get("devices")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{what}: \"devices\" missing or not an array"))?
        .iter()
        .map(|d| d.as_f64().map(|f| f as u32).ok_or_else(|| format!("{what}: device not numeric")))
        .collect::<Result<Vec<u32>, String>>()?;
    Ok(RequestTimeline {
        rid: req_f64(obj, "rid", what)? as u64,
        arrival_s: req_f64(obj, "arrival_s", what)?,
        ttft_s: opt_f64(obj, "ttft_s", what)?,
        latency_s: opt_f64(obj, "latency_s", what)?,
        output_tokens: req_f64(obj, "output_tokens", what)? as u64,
        devices,
        preemptions: req_f64(obj, "preemptions", what)? as u64,
        cache_hit_tokens: req_f64(obj, "cache_hit_tokens", what)? as u64,
        energy_j: req_f64(obj, "energy_j", what)?,
        completed: req_bool(obj, "completed", what)?,
        cancelled: req_bool(obj, "cancelled", what)?,
        offloaded: req_bool(obj, "offloaded", what)?,
        ttft_blame: parse_blame(
            obj.get("ttft_blame").ok_or_else(|| format!("{what}: ttft_blame missing"))?,
            what,
        )?,
        latency_blame: parse_blame(
            obj.get("latency_blame").ok_or_else(|| format!("{what}: latency_blame missing"))?,
            what,
        )?,
    })
}

fn parse_doc(obj: &Json, what: &str) -> Result<ForensicsDoc, String> {
    let label = obj
        .get("label")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: \"label\" missing or not a string"))?
        .to_string();
    let reqs = obj
        .get("requests")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{what}: \"requests\" missing or not an array"))?;
    let mut requests = Vec::with_capacity(reqs.len());
    for (i, r) in reqs.iter().enumerate() {
        requests.push(parse_request(r, &format!("{what} request {i}"))?);
    }
    Ok(ForensicsDoc {
        label,
        total_energy_j: req_f64(obj, "total_energy_j", what)?,
        idle_energy_j: req_f64(obj, "idle_energy_j", what)?,
        cloud_energy_j: req_f64(obj, "cloud_energy_j", what)?,
        attributed_j: req_f64(obj, "attributed_j", what)?,
        residual_j: req_f64(obj, "residual_j", what)?,
        events: req_f64(obj, "events", what)? as u64,
        requests,
    })
}

/// Parse a forensics export (the `{"schema", "runs": […]}` container)
/// back into run documents.
pub fn parse_forensics(body: &str) -> Result<Vec<ForensicsDoc>, String> {
    let doc = parse(body)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("root: \"schema\" missing or not a string")?;
    if schema != FORENSICS_SCHEMA_ID {
        return Err(format!("root: schema \"{schema}\" is not \"{FORENSICS_SCHEMA_ID}\""));
    }
    let runs = doc.get("runs").and_then(Json::as_arr).ok_or("root: \"runs\" missing")?;
    let mut out = Vec::with_capacity(runs.len());
    for (i, r) in runs.iter().enumerate() {
        out.push(parse_doc(r, &format!("run {i}"))?);
    }
    Ok(out)
}

/// Summary statistics returned by [`validate_forensics`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ForensicsStats {
    pub runs: usize,
    pub requests: usize,
    pub events: u64,
}

fn required_keys(schema: &Json, field: &str) -> Vec<String> {
    schema
        .get(field)
        .and_then(Json::as_arr)
        .expect("checked-in schema carries required-key lists")
        .iter()
        .map(|k| k.as_str().expect("schema keys are strings").to_string())
        .collect()
}

/// Validate a forensics export against the checked-in schema:
/// structural keys on the container / runs / requests / blame objects,
/// finiteness of numeric fields, rid-sortedness of each run's request
/// list, and internal consistency of the energy ledger
/// (`residual == total − idle − attributed` to 1e-6 relative).
pub fn validate_forensics(body: &str) -> Result<ForensicsStats, String> {
    let schema = parse(FORENSICS_SCHEMA).expect("checked-in schema parses");
    let root_required = required_keys(&schema, "root_required");
    let run_required = required_keys(&schema, "run_required");
    let request_required = required_keys(&schema, "request_required");
    let blame_required = required_keys(&schema, "blame_required");

    let doc = parse(body)?;
    for key in &root_required {
        if doc.get(key).is_none() {
            return Err(format!("root: missing required key \"{key}\""));
        }
    }
    let runs = parse_forensics(body)?;
    // Structural re-check straight off the JSON (parse_forensics would
    // already have failed on type errors; here we enforce key presence
    // exactly as the schema lists it, so schema and validator can't
    // drift apart silently).
    let raw_runs = doc.get("runs").and_then(Json::as_arr).expect("parsed above");
    let mut stats = ForensicsStats { runs: runs.len(), ..Default::default() };
    for (i, (raw, run)) in raw_runs.iter().zip(&runs).enumerate() {
        for key in &run_required {
            if raw.get(key).is_none() {
                return Err(format!("run {i}: missing required key \"{key}\""));
            }
        }
        let raw_reqs = raw.get("requests").and_then(Json::as_arr).expect("parsed above");
        for (j, rr) in raw_reqs.iter().enumerate() {
            for key in &request_required {
                if rr.get(key).is_none() {
                    return Err(format!("run {i} request {j}: missing required key \"{key}\""));
                }
            }
            for which in ["ttft_blame", "latency_blame"] {
                let b = rr.get(which).expect("parsed above");
                for key in &blame_required {
                    if b.get(key).is_none() {
                        return Err(format!(
                            "run {i} request {j} {which}: missing required key \"{key}\""
                        ));
                    }
                }
            }
        }
        for w in run.requests.windows(2) {
            if w[0].rid >= w[1].rid {
                return Err(format!("run {i}: requests not sorted by rid"));
            }
        }
        let residual = run.total_energy_j - run.idle_energy_j - run.attributed_j;
        let tol = 1e-6 * run.total_energy_j.abs().max(1.0);
        if (residual - run.residual_j).abs() > tol {
            return Err(format!(
                "run {i}: ledger inconsistent: residual_j={} but total−idle−attributed={}",
                Num(run.residual_j),
                Num(residual)
            ));
        }
        stats.requests += run.requests.len();
        stats.events += run.events;
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

/// One line of a worst-offender table.
#[derive(Clone, Debug, PartialEq)]
pub struct Offender {
    pub rid: u64,
    pub ttft_s: f64,
    pub j_per_token: f64,
    pub dominant: &'static str,
    pub blame: Blame,
}

/// Per-run analysis: worst offenders, TTFT outliers, energy ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct RunAnalysis {
    pub label: String,
    pub requests: usize,
    pub completed: usize,
    pub p50_ttft_s: f64,
    pub worst_ttft: Vec<Offender>,
    pub worst_j_per_token: Vec<Offender>,
    /// Requests with TTFT > 2× p50, each with its blame breakdown.
    pub outliers: Vec<Offender>,
    pub total_energy_j: f64,
    pub idle_energy_j: f64,
    pub cloud_energy_j: f64,
    pub attributed_j: f64,
    pub residual_j: f64,
}

/// The full analysis report over an export's runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalyzeReport {
    pub runs: Vec<RunAnalysis>,
}

fn offender(r: &RequestTimeline) -> Offender {
    let jpt = if r.output_tokens > 0 { r.energy_j / r.output_tokens as f64 } else { 0.0 };
    Offender {
        rid: r.rid,
        ttft_s: r.ttft_s.unwrap_or(0.0),
        j_per_token: jpt,
        dominant: r.ttft_blame.dominant(),
        blame: r.ttft_blame,
    }
}

/// Analyze run documents: top-`k` worst-TTFT and worst-J/token requests
/// with blame breakdowns, TTFT outliers (> 2× p50), and the energy
/// ledger. Deterministic: ties break on rid.
pub fn analyze(docs: &[ForensicsDoc], k: usize) -> AnalyzeReport {
    let mut runs = Vec::with_capacity(docs.len());
    for d in docs {
        let p50 = d.p50_ttft_s();
        let mut by_ttft: Vec<&RequestTimeline> =
            d.requests.iter().filter(|r| r.ttft_s.is_some()).collect();
        by_ttft.sort_by(|a, b| {
            b.ttft_s.partial_cmp(&a.ttft_s).expect("finite ttft").then_with(|| a.rid.cmp(&b.rid))
        });
        let worst_ttft: Vec<Offender> = by_ttft.iter().take(k).map(|r| offender(r)).collect();
        let outliers: Vec<Offender> = by_ttft
            .iter()
            .filter(|r| r.ttft_s.expect("filtered") > 2.0 * p50)
            .map(|r| offender(r))
            .collect();

        let mut by_jpt: Vec<Offender> = d
            .requests
            .iter()
            .filter(|r| r.completed && r.output_tokens > 0)
            .map(offender)
            .collect();
        by_jpt.sort_by(|a, b| {
            b.j_per_token
                .partial_cmp(&a.j_per_token)
                .expect("finite j/token")
                .then_with(|| a.rid.cmp(&b.rid))
        });
        by_jpt.truncate(k);

        runs.push(RunAnalysis {
            label: d.label.clone(),
            requests: d.requests.len(),
            completed: d.requests.iter().filter(|r| r.completed).count(),
            p50_ttft_s: p50,
            worst_ttft,
            worst_j_per_token: by_jpt,
            outliers,
            total_energy_j: d.total_energy_j,
            idle_energy_j: d.idle_energy_j,
            cloud_energy_j: d.cloud_energy_j,
            attributed_j: d.attributed_j,
            residual_j: d.residual_j,
        });
    }
    AnalyzeReport { runs }
}

impl Offender {
    fn to_json(&self) -> String {
        format!(
            "{{\"rid\":{},\"ttft_s\":{},\"j_per_token\":{},\"dominant\":{},\"blame\":{}}}",
            self.rid,
            Num(self.ttft_s),
            Num(self.j_per_token),
            json_str(self.dominant),
            self.blame.to_json()
        )
    }
}

fn offenders_json(list: &[Offender]) -> String {
    let mut out = String::from("[");
    for (i, o) in list.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&o.to_json());
    }
    out.push(']');
    out
}

impl AnalyzeReport {
    /// Deterministic JSON rendering of the report.
    pub fn to_json(&self) -> String {
        let mut out =
            format!("{{\"schema\":{},\"runs\":[", json_str("edgellm_forensics_report/v1"));
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"requests\":{},\"completed\":{},\"p50_ttft_s\":{},\"worst_ttft\":{},\"worst_j_per_token\":{},\"outliers\":{},\"ledger\":{{\"total_energy_j\":{},\"idle_energy_j\":{},\"cloud_energy_j\":{},\"attributed_j\":{},\"residual_j\":{}}}}}",
                json_str(&r.label),
                r.requests,
                r.completed,
                Num(r.p50_ttft_s),
                offenders_json(&r.worst_ttft),
                offenders_json(&r.worst_j_per_token),
                offenders_json(&r.outliers),
                Num(r.total_energy_j),
                Num(r.idle_energy_j),
                Num(r.cloud_energy_j),
                Num(r.attributed_j),
                Num(r.residual_j)
            );
        }
        out.push_str("]}");
        out
    }

    /// Human-readable forensic report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            let _ = writeln!(
                out,
                "run {:?}: {} requests ({} completed), p50 TTFT {:.3} s",
                r.label, r.requests, r.completed, r.p50_ttft_s
            );
            let _ = writeln!(
                out,
                "  energy ledger: total {:.3} J = attributed {:.3} J + idle {:.3} J (residual {:+.3e} J, cloud {:.3} J)",
                r.total_energy_j, r.attributed_j, r.idle_energy_j, r.residual_j, r.cloud_energy_j
            );
            let table = |out: &mut String, title: &str, list: &[Offender]| {
                if list.is_empty() {
                    return;
                }
                let _ = writeln!(out, "  {title}:");
                let _ = writeln!(
                    out,
                    "    {:>6} {:>9} {:>9} {:>12}  {:>8} {:>8} {:>8} {:>8} {:>8}",
                    "rid",
                    "ttft_s",
                    "J/token",
                    "dominant",
                    "queue_s",
                    "preempt",
                    "hold_s",
                    "downclk",
                    "service"
                );
                for o in list {
                    let _ = writeln!(
                        out,
                        "    {:>6} {:>9.3} {:>9.4} {:>12}  {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                        o.rid,
                        o.ttft_s,
                        o.j_per_token,
                        o.dominant,
                        o.blame.queueing_s,
                        o.blame.preemption_s,
                        o.blame.held_s,
                        o.blame.downclock_s,
                        o.blame.service_s
                    );
                }
            };
            table(&mut out, "worst TTFT", &r.worst_ttft);
            table(&mut out, "worst J/token", &r.worst_j_per_token);
            table(&mut out, "TTFT outliers (> 2x p50)", &r.outliers);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Default ring capacity: enough for the tail of any smoke scenario
/// while keeping the resident footprint a few hundred KB.
pub const FLIGHT_CAPACITY: usize = 4096;

/// A bounded ring of the most recent lifecycle events. Fixed capacity,
/// preallocated: pushes never allocate once constructed.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Vec<Event>,
    head: usize,
    total: u64,
    capacity: usize,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity), head: 0, total: 0, capacity }
    }

    pub fn push(&mut self, ev: Event) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever pushed (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Deterministic text dump, oldest event first.
    pub fn dump(&self) -> String {
        let mut out = format!(
            "edgellm flight recorder: {} events retained of {} recorded (capacity {})\n",
            self.buf.len(),
            self.total,
            self.capacity
        );
        for (i, ev) in self.snapshot().iter().enumerate() {
            let _ = writeln!(out, "[{i:>5}] {}", ev.render());
        }
        out
    }
}

/// The process-wide, always-on flight recorder.
pub mod flight {
    use super::{Event, FlightRecorder, Mutex, OnceLock, FLIGHT_CAPACITY};

    fn recorder() -> &'static Mutex<FlightRecorder> {
        static R: OnceLock<Mutex<FlightRecorder>> = OnceLock::new();
        R.get_or_init(|| Mutex::new(FlightRecorder::new(FLIGHT_CAPACITY)))
    }

    /// Record one event. Never allocates in steady state; never fails.
    pub fn record(ev: Event) {
        recorder().lock().expect("flight recorder lock").push(ev);
    }

    /// Drop all retained events (scenario boundary).
    pub fn clear() {
        recorder().lock().expect("flight recorder lock").clear();
    }

    /// Retained-event count.
    pub fn len() -> usize {
        recorder().lock().expect("flight recorder lock").len()
    }

    /// Events ever recorded (including overwritten ones).
    pub fn total() -> u64 {
        recorder().lock().expect("flight recorder lock").total()
    }

    /// Retained events, oldest first.
    pub fn snapshot() -> Vec<Event> {
        recorder().lock().expect("flight recorder lock").snapshot()
    }

    /// Deterministic text dump of the retained window.
    pub fn dump() -> String {
        recorder().lock().expect("flight recorder lock").dump()
    }

    /// Destination for automatic SLO-breach dumps, when enabled via the
    /// `EDGELLM_FLIGHT_DUMP` environment variable.
    pub fn dump_path() -> Option<String> {
        std::env::var("EDGELLM_FLIGHT_DUMP").ok().filter(|p| !p.is_empty())
    }

    /// Write the current dump to the `EDGELLM_FLIGHT_DUMP` path (no-op
    /// when unset). Called by the simulators on the first SLO breach of
    /// a run; write errors are deliberately swallowed — forensics must
    /// never take the simulation down.
    pub fn dump_on_breach(label: &str) {
        if let Some(path) = dump_path() {
            let body = format!("SLO breach in run {label:?}\n{}", dump());
            let _ = std::fs::write(path, body);
        }
    }
}

// ---------------------------------------------------------------------------
// Process-wide forensics sink
// ---------------------------------------------------------------------------

/// Process-wide collection point for reconstructed run documents,
/// mirroring [`crate::sink`]: the simulators record into it when
/// enabled, `edgellm … --forensics-out` exports it.
pub mod sink {
    use super::{AtomicBool, ForensicsDoc, Mutex, OnceLock, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);

    fn docs() -> &'static Mutex<Vec<ForensicsDoc>> {
        static S: OnceLock<Mutex<Vec<ForensicsDoc>>> = OnceLock::new();
        S.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Start collecting run documents.
    pub fn enable() {
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Stop collecting (already-recorded documents are kept).
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Whether simulators should record their forensics on completion.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::SeqCst)
    }

    /// Append one reconstructed run document.
    pub fn record(doc: ForensicsDoc) {
        docs().lock().expect("forensics sink lock").push(doc);
    }

    /// Take every recorded document, leaving the sink empty.
    pub fn take() -> Vec<ForensicsDoc> {
        std::mem::take(&mut *docs().lock().expect("forensics sink lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64, rid: u64, device: u32, kind: EventKind) -> Event {
        Event { t_s, rid, device, kind }
    }

    /// A hand-built single-device life: queue 1 s, admit with a cache
    /// hit, prefill, first token, preempt mid-decode, re-admit, finish.
    fn one_request_log() -> ForensicsLog {
        ForensicsLog {
            label: "unit".into(),
            events: vec![
                ev(0.0, 7, 0, EventKind::Submitted),
                ev(1.0, 7, 0, EventKind::Admitted { cache_hit_tokens: 16 }),
                ev(1.5, 7, 0, EventKind::PrefillChunk { tokens: 48 }),
                ev(2.0, 7, 0, EventKind::FirstToken),
                ev(3.0, 7, 0, EventKind::Preempted),
                ev(4.5, 7, 0, EventKind::Admitted { cache_hit_tokens: 16 }),
                ev(6.0, 7, 0, EventKind::Completed { output_tokens: 32 }),
            ],
            req_energy: vec![(7, 42.0)],
            idle_energy_j: 8.0,
            cloud_energy_j: 0.0,
            total_energy_j: 50.0,
        }
    }

    #[test]
    fn reconstruction_partitions_the_latency_window() {
        let doc = reconstruct(&one_request_log());
        assert_eq!(doc.requests.len(), 1);
        let r = &doc.requests[0];
        assert_eq!(r.rid, 7);
        assert_eq!(r.ttft_s, Some(2.0));
        assert_eq!(r.latency_s, Some(6.0));
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.cache_hit_tokens, 16);
        assert_eq!(r.ttft_blame.queueing_s, 1.0);
        assert_eq!(r.ttft_blame.service_s, 1.0);
        assert_eq!(r.ttft_blame.cache_miss_tokens, 48);
        assert_eq!(r.latency_blame.preemption_s, 1.5);
        // Partition: queueing + preemption + held + service == latency.
        let b = r.latency_blame;
        assert!(
            (b.queueing_s + b.preemption_s + b.held_s + b.service_s - 6.0).abs() < 1e-12,
            "latency window partitions: {b:?}"
        );
        assert_eq!(r.energy_j, 42.0);
        assert!((doc.residual_j - 0.0).abs() < 1e-12);
    }

    #[test]
    fn downclock_overlap_is_residency_scoped() {
        let mut log = one_request_log();
        // Device 0 downclocks during [1.0, 5.0]; device 1 is irrelevant.
        log.events.push(ev(1.0, NO_RID, 0, EventKind::ModeChange { downclock: true }));
        log.events.push(ev(5.0, NO_RID, 0, EventKind::ModeChange { downclock: false }));
        log.events.push(ev(0.5, NO_RID, 1, EventKind::ModeChange { downclock: true }));
        log.events.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());
        let doc = reconstruct(&log);
        let r = &doc.requests[0];
        // TTFT window [0, 2] ∩ downclock [1, 5] = 1 s.
        assert!((r.ttft_blame.downclock_s - 1.0).abs() < 1e-12);
        // Latency window [0, 6] ∩ downclock [1, 5] = 4 s.
        assert!((r.latency_blame.downclock_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fleet_reroute_counts_as_hold_blame() {
        let log = ForensicsLog {
            label: "fleet".into(),
            events: vec![
                ev(0.0, 3, 0, EventKind::Routed),
                ev(0.0, 3, 0, EventKind::Submitted),
                ev(0.5, 3, 0, EventKind::Admitted { cache_hit_tokens: 0 }),
                // Device 0 trips; the running request is evacuated.
                ev(2.0, NO_RID, 0, EventKind::DeviceDown { thermal: true }),
                ev(2.0, 3, 1, EventKind::Routed),
                ev(2.0, 3, 1, EventKind::Submitted),
                ev(3.5, 3, 1, EventKind::Admitted { cache_hit_tokens: 0 }),
                ev(4.0, 3, 1, EventKind::FirstToken),
                ev(5.0, 3, 1, EventKind::Completed { output_tokens: 8 }),
            ],
            req_energy: vec![(3, 10.0)],
            idle_energy_j: 0.0,
            cloud_energy_j: 0.0,
            total_energy_j: 10.0,
        };
        let doc = reconstruct(&log);
        let r = &doc.requests[0];
        assert_eq!(r.devices, vec![0, 1]);
        assert!((r.ttft_blame.held_s - 1.5).abs() < 1e-12, "evac wait is hold blame: {r:?}");
        assert_eq!(r.ttft_blame.dominant(), "thermal-hold");
        assert_eq!(r.ttft_s, Some(4.0));
    }

    #[test]
    fn export_parses_and_validates_round_trip() {
        let doc = reconstruct(&one_request_log());
        let body = export_forensics(std::slice::from_ref(&doc));
        let stats = validate_forensics(&body).expect("export validates");
        assert_eq!(stats, ForensicsStats { runs: 1, requests: 1, events: 7 });
        let parsed = parse_forensics(&body).expect("export parses");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], doc, "parse inverts export");
        // Re-export is byte-identical (fixed point).
        assert_eq!(export_forensics(&parsed), body);
    }

    #[test]
    fn validate_rejects_missing_blame_key() {
        let doc = reconstruct(&one_request_log());
        let body = export_forensics(&[doc]).replace("\"held_s\"", "\"helds\"");
        let err = validate_forensics(&body).expect_err("mutated export must fail");
        assert!(err.contains("held_s"), "error names the missing key: {err}");
    }

    #[test]
    fn analyze_ranks_offenders_deterministically() {
        let mut log = one_request_log();
        // A second, faster request.
        log.events.extend([
            ev(0.2, 9, 0, EventKind::Submitted),
            ev(0.3, 9, 0, EventKind::Admitted { cache_hit_tokens: 0 }),
            ev(0.4, 9, 0, EventKind::FirstToken),
            ev(0.9, 9, 0, EventKind::Completed { output_tokens: 64 }),
        ]);
        log.events.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());
        log.req_energy.push((9, 1.0));
        log.total_energy_j += 1.0;
        let doc = reconstruct(&log);
        let rep = analyze(std::slice::from_ref(&doc), 3);
        assert_eq!(rep.runs.len(), 1);
        let run = &rep.runs[0];
        assert_eq!(run.worst_ttft[0].rid, 7);
        assert_eq!(run.worst_j_per_token[0].rid, 7);
        // rid 7's TTFT (2.0) > 2× p50 — it is named an outlier with a
        // nonzero blame component.
        assert!(run.outliers.iter().any(|o| o.rid == 7 && o.blame.names_nonzero_wait()));
        let json = rep.to_json();
        assert_eq!(json, analyze(&[doc], 3).to_json(), "analysis is deterministic");
        assert!(rep.render().contains("worst TTFT"));
    }

    #[test]
    fn flight_ring_is_bounded_and_ordered() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.push(ev(i as f64, i, 0, EventKind::Submitted));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 10);
        let snap = r.snapshot();
        let rids: Vec<u64> = snap.iter().map(|e| e.rid).collect();
        assert_eq!(rids, vec![6, 7, 8, 9], "oldest-first window of the most recent pushes");
        let dump = r.dump();
        assert!(dump.starts_with("edgellm flight recorder: 4 events retained of 10"));
        assert_eq!(dump, r.dump(), "dump is deterministic");
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn flight_ring_never_allocates_in_steady_state() {
        let mut r = FlightRecorder::new(8);
        let base = r.buf.capacity();
        for i in 0..1000u64 {
            r.push(ev(i as f64, i, 0, EventKind::FirstToken));
        }
        assert_eq!(r.buf.capacity(), base, "ring capacity never grows");
    }

    #[test]
    fn sink_collects_when_enabled() {
        // The sink is process-global; keep this test self-contained by
        // draining whatever another test left behind first.
        let _ = sink::take();
        sink::enable();
        sink::record(reconstruct(&one_request_log()));
        sink::disable();
        let docs = sink::take();
        assert!(docs.iter().any(|d| d.label == "unit"));
        assert!(sink::take().is_empty());
    }
}
