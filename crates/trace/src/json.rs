//! A minimal JSON reader and the trace schema check.
//!
//! The workspace is offline (no serde); exporters hand-write JSON and
//! this module closes the loop by reading it back. The parser covers the
//! full JSON grammar minus exponent-heavy corner cases we never emit
//! (it does accept `e`-notation), and the [`validate_chrome_trace`]
//! check enforces the checked-in schema
//! (`crates/trace/schema/chrome_trace.schema.json`) that CI runs against
//! real exported traces.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
/// A human-readable message with the byte offset of the first violation.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the source is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// The checked-in trace schema this crate's exporter is validated against.
pub const CHROME_TRACE_SCHEMA: &str = include_str!("../schema/chrome_trace.schema.json");

/// Counts of what a validated trace contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// All events, metadata included.
    pub total: usize,
    /// Duration (`ph:"X"`) events.
    pub spans: usize,
    /// Instant (`ph:"i"`) events.
    pub instants: usize,
    /// Counter (`ph:"C"`) samples.
    pub counters: usize,
    /// Metadata (`ph:"M"`) records.
    pub metadata: usize,
}

/// Validate an exported Chrome trace-event JSON document against the
/// checked-in schema: required keys per phase type, numeric/finite
/// timestamps and durations, numeric counter series, and global
/// time-ordering of non-metadata events.
///
/// # Errors
/// The first violation, as a human-readable message.
pub fn validate_chrome_trace(src: &str) -> Result<TraceStats, String> {
    let schema = parse(CHROME_TRACE_SCHEMA).expect("checked-in schema parses");
    let doc = parse(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("root object must carry a \"traceEvents\" array")?;
    let base_required = schema
        .get("event_required")
        .and_then(Json::as_arr)
        .ok_or("schema: event_required missing")?;
    let phases = schema.get("phases").ok_or("schema: phases missing")?;

    let mut stats = TraceStats::default();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        stats.total += 1;
        let obj = ev.as_obj().ok_or(format!("event {i}: not an object"))?;
        let _ = obj;
        for req in base_required {
            let key = req.as_str().expect("schema keys are strings");
            if ev.get(key).is_none() {
                return Err(format!("event {i}: missing required key \"{key}\""));
            }
        }
        let ph =
            ev.get("ph").and_then(Json::as_str).ok_or(format!("event {i}: ph not a string"))?;
        let rules =
            phases.get(ph).ok_or(format!("event {i}: phase \"{ph}\" not allowed by the schema"))?;
        if let Some(required) = rules.get("required").and_then(Json::as_arr) {
            for req in required {
                let key = req.as_str().expect("schema keys are strings");
                if ev.get(key).is_none() {
                    return Err(format!("event {i} (ph {ph}): missing key \"{key}\""));
                }
            }
        }
        for key in ["ts", "dur"] {
            if let Some(v) = ev.get(key) {
                let n = v.as_f64().ok_or(format!("event {i}: {key} not numeric"))?;
                if !n.is_finite() || n < 0.0 {
                    return Err(format!("event {i}: {key}={n} not a finite non-negative number"));
                }
            }
        }
        match ph {
            "X" => stats.spans += 1,
            "i" => stats.instants += 1,
            "C" => {
                stats.counters += 1;
                let args = ev
                    .get("args")
                    .and_then(Json::as_obj)
                    .ok_or(format!("event {i}: counter args not an object"))?;
                for (k, v) in args {
                    if v.as_f64().is_none() {
                        return Err(format!("event {i}: counter series \"{k}\" not numeric"));
                    }
                }
            }
            "M" => stats.metadata += 1,
            other => return Err(format!("event {i}: unexpected phase \"{other}\"")),
        }
        if ph != "M" {
            let ts = ev.get("ts").and_then(Json::as_f64).expect("checked above");
            if ts < last_ts {
                return Err(format!("event {i}: ts {ts} precedes previous event ({last_ts})"));
            }
            last_ts = ts;
        }
    }
    let _ = count_tracks(events);
    Ok(stats)
}

/// Distinct `(pid, tid)` pairs among non-metadata events.
pub fn count_tracks(events: &[Json]) -> usize {
    let mut tracks: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) == Some("M") {
            continue;
        }
        let pid = ev.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        *tracks.entry((pid, tid)).or_default() += 1;
    }
    tracks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, "x", true, null], "b": {"c": -3e2}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-300.0));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn schema_is_well_formed() {
        let s = parse(CHROME_TRACE_SCHEMA).unwrap();
        assert!(s.get("event_required").is_some());
        assert!(s.get("phases").and_then(|p| p.get("X")).is_some());
    }

    #[test]
    fn validator_rejects_missing_keys_and_time_travel() {
        let missing = r#"{"traceEvents": [{"ph":"X","pid":1,"tid":1,"name":"a","ts":1}]}"#;
        assert!(validate_chrome_trace(missing).unwrap_err().contains("dur"));
        let unordered = r#"{"traceEvents": [
            {"ph":"i","pid":1,"tid":1,"name":"a","cat":"t","ts":5,"s":"t"},
            {"ph":"i","pid":1,"tid":1,"name":"b","cat":"t","ts":1,"s":"t"}
        ]}"#;
        assert!(validate_chrome_trace(unordered).unwrap_err().contains("precedes"));
    }
}
