//! Process-wide metrics registry: named counters, gauges and histograms.
//!
//! Instrumented layers (the kernel dispatch policy, the transformer
//! forward passes) record into the global [`registry`]; reporters take a
//! [`Snapshot`] and render or export it. Counters are monotone and
//! lock-free; gauges are last-write-wins; histograms are the sample-exact
//! [`Histogram`] from [`crate::stats`], so snapshot quantiles share the
//! single nearest-rank implementation.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::stats::Histogram;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add `n` occurrences.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one occurrence.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The registry: an interned name → instrument map.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

impl Registry {
    /// An empty registry (the process-wide one is [`registry`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Record one observation into the histogram named `name`, created on
    /// first use.
    pub fn observe(&self, name: &str, v: f64) {
        let h = {
            let mut map = self.histograms.lock().expect("registry poisoned");
            match map.get(name) {
                Some(h) => Arc::clone(h),
                None => {
                    let h = Arc::new(Mutex::new(Histogram::new()));
                    map.insert(name.to_string(), Arc::clone(&h));
                    h
                }
            }
        };
        h.lock().expect("histogram poisoned").record(v);
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, h)| {
                let h = h.lock().expect("histogram poisoned");
                (
                    k.clone(),
                    HistSummary {
                        count: h.count(),
                        mean: h.mean(),
                        p50: h.quantile_or_zero(0.50),
                        p95: h.quantile_or_zero(0.95),
                        max: h.max(),
                    },
                )
            })
            .collect();
        Snapshot { counters, gauges, histograms }
    }

    /// Drop every instrument (tests and between experiment runs).
    pub fn reset(&self) {
        self.counters.lock().expect("registry poisoned").clear();
        self.gauges.lock().expect("registry poisoned").clear();
        self.histograms.lock().expect("registry poisoned").clear();
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Summary of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Observations recorded.
    pub count: usize,
    /// Mean observation.
    pub mean: f64,
    /// Nearest-rank median.
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Largest observation.
    pub max: f64,
}

/// A point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistSummary>,
}

impl Snapshot {
    /// True when no instrument was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A plain-text table, one instrument per line, names sorted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k:<44} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k:<44} {v:.4}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{k:<44} n={} mean={:.4} p50={:.4} p95={:.4} max={:.4}",
                h.count, h.mean, h.p50, h.p95, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        r.counter("a.calls").inc();
        r.counter("a.calls").add(4);
        r.gauge("b.level").set(2.5);
        r.observe("c.ms", 1.0);
        r.observe("c.ms", 3.0);
        let s = r.snapshot();
        assert_eq!(s.counters["a.calls"], 5);
        assert_eq!(s.gauges["b.level"], 2.5);
        assert_eq!(s.histograms["c.ms"].count, 2);
        assert_eq!(s.histograms["c.ms"].mean, 2.0);
        assert!(s.render().contains("a.calls"));
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn counter_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let before = registry().counter("test.singleton").get();
        registry().counter("test.singleton").inc();
        assert_eq!(registry().counter("test.singleton").get(), before + 1);
    }
}
