//! Process-wide metrics registry: named counters, gauges and histograms.
//!
//! Instrumented layers (the kernel dispatch policy, the transformer
//! forward passes) record into the global [`registry`]; reporters take a
//! [`Snapshot`] and render or export it. Counters are monotone and
//! lock-free; gauges are last-write-wins; histograms are the sample-exact
//! [`Histogram`] from [`crate::stats`], so snapshot quantiles share the
//! single nearest-rank implementation.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::stats::Histogram;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add `n` occurrences.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one occurrence.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The registry: an interned name → instrument map.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

impl Registry {
    /// An empty registry (the process-wide one is [`registry`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Record one observation into the histogram named `name`, created on
    /// first use.
    pub fn observe(&self, name: &str, v: f64) {
        let h = {
            let mut map = self.histograms.lock().expect("registry poisoned");
            match map.get(name) {
                Some(h) => Arc::clone(h),
                None => {
                    let h = Arc::new(Mutex::new(Histogram::new()));
                    map.insert(name.to_string(), Arc::clone(&h));
                    h
                }
            }
        };
        h.lock().expect("histogram poisoned").record(v);
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, h)| {
                let h = h.lock().expect("histogram poisoned");
                (
                    k.clone(),
                    HistSummary {
                        count: h.count(),
                        mean: h.mean(),
                        p50: h.quantile_or_zero(0.50),
                        p95: h.quantile_or_zero(0.95),
                        max: h.max(),
                    },
                )
            })
            .collect();
        Snapshot { counters, gauges, histograms }
    }

    /// Drop every instrument (tests and between experiment runs).
    pub fn reset(&self) {
        self.counters.lock().expect("registry poisoned").clear();
        self.gauges.lock().expect("registry poisoned").clear();
        self.histograms.lock().expect("registry poisoned").clear();
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Summary of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Observations recorded.
    pub count: usize,
    /// Mean observation.
    pub mean: f64,
    /// Nearest-rank median.
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Largest observation.
    pub max: f64,
}

/// A point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistSummary>,
}

impl Snapshot {
    /// True when no instrument was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A plain-text table, one instrument per line, in one *globally*
    /// key-sorted listing (not per-kind sections), so two snapshots of
    /// overlapping instrument sets diff line-by-line. Counters render as
    /// bare integers, gauges as fixed 4-decimal floats, histograms as
    /// `n=… mean=… p50=… p95=… max=…` — the three shapes [`Snapshot::parse`]
    /// distinguishes on the way back in.
    pub fn render(&self) -> String {
        let mut lines: Vec<(&str, u8, String)> =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.histograms.len());
        for (k, v) in &self.counters {
            lines.push((k, 0, format!("{k:<44} {v}")));
        }
        for (k, v) in &self.gauges {
            lines.push((k, 1, format!("{k:<44} {v:.4}")));
        }
        for (k, h) in &self.histograms {
            lines.push((
                k,
                2,
                format!(
                    "{k:<44} n={} mean={:.4} p50={:.4} p95={:.4} max={:.4}",
                    h.count, h.mean, h.p50, h.p95, h.max
                ),
            ));
        }
        lines.sort_by(|a, b| a.0.cmp(b.0).then(a.1.cmp(&b.1)));
        let mut out = String::new();
        for (_, _, line) in lines {
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Parse a [`render`](Self::render)ed table back into a snapshot.
    /// Together with `render` this is a fixed point:
    /// `parse(s.render())?.render() == s.render()`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut snap = Snapshot::default();
        for (ln, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let key = fields.next().ok_or_else(|| format!("line {ln}: empty"))?.to_string();
            let rest: Vec<&str> = fields.collect();
            let first = *rest.first().ok_or_else(|| format!("line {ln}: no value"))?;
            if first.starts_with("n=") {
                let mut h = HistSummary { count: 0, mean: 0.0, p50: 0.0, p95: 0.0, max: 0.0 };
                for field in &rest {
                    let (name, val) = field
                        .split_once('=')
                        .ok_or_else(|| format!("line {ln}: bad histogram field {field:?}"))?;
                    let parse_f = |v: &str| {
                        v.parse::<f64>()
                            .map_err(|e| format!("line {ln}: {name}={v:?} not numeric: {e}"))
                    };
                    match name {
                        "n" => {
                            h.count = val
                                .parse()
                                .map_err(|e| format!("line {ln}: n={val:?} not integral: {e}"))?;
                        }
                        "mean" => h.mean = parse_f(val)?,
                        "p50" => h.p50 = parse_f(val)?,
                        "p95" => h.p95 = parse_f(val)?,
                        "max" => h.max = parse_f(val)?,
                        other => {
                            return Err(format!("line {ln}: unknown histogram field {other:?}"))
                        }
                    }
                }
                snap.histograms.insert(key, h);
            } else if rest.len() != 1 {
                return Err(format!("line {ln}: expected one value, got {}", rest.len()));
            } else if first.contains('.') {
                let v = first
                    .parse::<f64>()
                    .map_err(|e| format!("line {ln}: gauge {first:?} not numeric: {e}"))?;
                snap.gauges.insert(key, v);
            } else {
                let v = first
                    .parse::<u64>()
                    .map_err(|e| format!("line {ln}: counter {first:?} not integral: {e}"))?;
                snap.counters.insert(key, v);
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        r.counter("a.calls").inc();
        r.counter("a.calls").add(4);
        r.gauge("b.level").set(2.5);
        r.observe("c.ms", 1.0);
        r.observe("c.ms", 3.0);
        let s = r.snapshot();
        assert_eq!(s.counters["a.calls"], 5);
        assert_eq!(s.gauges["b.level"], 2.5);
        assert_eq!(s.histograms["c.ms"].count, 2);
        assert_eq!(s.histograms["c.ms"].mean, 2.0);
        assert!(s.render().contains("a.calls"));
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn render_is_globally_key_sorted() {
        let r = Registry::new();
        r.counter("z.calls").inc();
        r.gauge("a.level").set(1.0);
        r.observe("m.ms", 2.0);
        let rendered = r.snapshot().render();
        let keys: Vec<&str> =
            rendered.lines().map(|l| l.split_whitespace().next().expect("keyed line")).collect();
        assert_eq!(keys, vec!["a.level", "m.ms", "z.calls"], "one merged sorted listing");
    }

    #[test]
    fn render_parse_round_trips() {
        let r = Registry::new();
        r.counter("kernel.f16.calls").add(17);
        r.counter("kernel.int8.calls").add(3);
        r.gauge("kv.occupancy").set(0.8125);
        r.observe("iter.ms", 1.5);
        r.observe("iter.ms", 4.5);
        let snap = r.snapshot();
        let rendered = snap.render();
        let parsed = Snapshot::parse(&rendered).expect("rendered table parses");
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.gauges["kv.occupancy"], 0.8125);
        assert_eq!(parsed.histograms["iter.ms"].count, 2);
        assert_eq!(parsed.render(), rendered, "render∘parse is a fixed point");
        assert!(Snapshot::parse("k one two three\n").is_err(), "malformed lines are rejected");
    }

    #[test]
    fn counter_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let before = registry().counter("test.singleton").get();
        registry().counter("test.singleton").inc();
        assert_eq!(registry().counter("test.singleton").get(), before + 1);
    }
}
