//! Shared summary statistics.
//!
//! Every report in the workspace — batch metrics, the serving scheduler,
//! the fleet aggregator, the power post-processing — reduces a set of
//! samples to the same handful of numbers: mean, min/max, nearest-rank
//! quantiles, the paper's median power. Before this crate each of those
//! call sites carried its own copy of the sort-then-index dance; they now
//! all go through [`quantile`] and [`Histogram`], so the nearest-rank
//! definition exists exactly once.

/// Nearest-rank quantile of an ascending-sorted slice.
///
/// Uses the classical nearest-rank definition: the `q`-quantile of `n`
/// values is the element at 1-based rank `⌈q·n⌉` (clamped to `[1, n]`).
/// Unlike the naive `(n as f64 * q) as usize` index — which truncates and
/// lands one rank high for most `(n, q)` pairs, e.g. picking the 96th of
/// 100 values as "p95" — this never over-reports the tail.
///
/// # Panics
/// If `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction {q} outside [0, 1]");
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// A sample-exact histogram: records raw values and answers the summary
/// questions the workspace's reports ask.
///
/// "Histogram" here means the *registry* sense — a named distribution you
/// record observations into — not a bucketed approximation. Samples are
/// kept verbatim (report populations are small: completions per run,
/// 2 s power samples per batch) so quantiles are exact and the refactored
/// call sites are bit-identical to the hand-rolled code they replaced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// A histogram pre-loaded with `samples`.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        Histogram { samples: samples.into_iter().collect() }
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of observations (0 when empty).
    ///
    /// Summation runs over the ascending-*sorted* samples, so the result
    /// is independent of recording order — two traversals of the same
    /// population always reduce to the same bits (and the refactored
    /// report call sites, which all sorted before summing, kept theirs).
    pub fn sum(&self) -> f64 {
        self.sorted().iter().sum()
    }

    /// Mean of observations (0 when empty — the convention every report
    /// in the workspace uses for "no data yet"). Order-independent, like
    /// [`Histogram::sum`].
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// The raw observations, in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The observations, ascending.
    ///
    /// # Panics
    /// If any observation is NaN (all workspace sources are finite).
    pub fn sorted(&self) -> Vec<f64> {
        let mut v = self.samples.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        v
    }

    /// Nearest-rank quantile of the observations (see [`quantile`]).
    ///
    /// # Panics
    /// If the histogram is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(&self.sorted(), q)
    }

    /// [`Histogram::quantile`], but 0 when empty — the "no completions
    /// yet" convention of the serving and fleet reports.
    pub fn quantile_or_zero(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.quantile(q)
        }
    }

    /// The paper's median convention (§2 median power): middle element
    /// for odd counts, the *mean of the two middle elements* for even
    /// counts; 0 when empty. Note this interpolating convention differs
    /// from the nearest-rank `quantile(0.5)` on even counts — power
    /// post-processing pins the former, scheduler reports the latter.
    pub fn median_interpolated(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let s = self.sorted();
        let n = s.len();
        if n % 2 == 1 {
            s[n / 2]
        } else {
            0.5 * (s[n / 2 - 1] + s[n / 2])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_uses_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&v, 0.95), 95.0);
        assert_eq!(quantile(&v, 0.50), 50.0);
        assert_eq!(quantile(&v, 0.99), 99.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
        let w = [2.5, 3.5];
        assert_eq!(quantile(&w, 0.5), 2.5);
        assert_eq!(quantile(&w, 0.51), 3.5);
        assert_eq!(quantile(&[7.0], 0.95), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn histogram_matches_hand_rolled_stats() {
        let mut h = Histogram::new();
        for v in [3.0, 1.0, 2.0, 5.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert_eq!(h.median_interpolated(), 3.0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile_or_zero(0.95), 0.0);
        assert_eq!(h.median_interpolated(), 0.0);
    }

    #[test]
    fn interpolated_median_differs_from_nearest_rank_on_even_counts() {
        let h = Histogram::from_samples([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(h.median_interpolated(), 25.0, "paper's §2 convention");
        assert_eq!(h.quantile(0.5), 20.0, "nearest-rank lands on the lower middle");
    }
}
