//! The process-wide trace sink.
//!
//! The sink is how *existing* entry points grow tracing without changing
//! their signatures: when enabled, instrumented subsystems
//! (`ServeSim::finish`, `FleetSim::run`) append their timelines to the
//! sink as they complete, and the driver (the `edgellm` CLI's
//! `--trace-out`, the `EDGELLM_TRACE` env fallback) exports the merged
//! [`Trace`] at exit. Disabled — the default — every hook is one relaxed
//! atomic load.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::chrome::Trace;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn buffer() -> &'static Mutex<Trace> {
    static BUF: OnceLock<Mutex<Trace>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Trace::new()))
}

/// Start accepting events (idempotent).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop accepting events; buffered events stay until [`take`]n.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the sink is accepting events.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` against the sink's trace; `None` (without running `f`) when
/// the sink is disabled.
pub fn with<R>(f: impl FnOnce(&mut Trace) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    Some(f(&mut buffer().lock().expect("trace sink poisoned")))
}

/// Take the buffered trace, leaving the sink empty (and its enabled
/// state unchanged).
pub fn take() -> Trace {
    std::mem::take(&mut *buffer().lock().expect("trace sink poisoned"))
}

/// Export the buffered trace as Chrome JSON to `path` and clear the
/// buffer. Returns the number of events written.
pub fn export(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let trace = take();
    trace.write_chrome_json(path)?;
    Ok(trace.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    fn serialized(f: impl FnOnce()) {
        static LOCK: StdMutex<()> = StdMutex::new(());
        let _g = LOCK.lock().expect("sink test lock");
        disable();
        let _ = take();
        f();
        disable();
        let _ = take();
    }

    #[test]
    fn disabled_sink_ignores_events() {
        serialized(|| {
            assert!(with(|_| ()).is_none());
            enable();
            with(|t| t.instant(1, 1, "x", "t", 0.0, vec![])).expect("enabled");
            assert_eq!(take().len(), 1);
            assert_eq!(take().len(), 0, "take clears");
        });
    }

    #[test]
    fn export_writes_and_clears() {
        serialized(|| {
            enable();
            with(|t| {
                t.set_process_name(1, "p");
                t.instant(1, 1, "x", "t", 1.0, vec![]);
            });
            let dir = std::env::temp_dir().join("edgellm_trace_sink_test.json");
            let n = export(&dir).expect("write");
            assert_eq!(n, 1);
            let body = std::fs::read_to_string(&dir).expect("read back");
            crate::json::validate_chrome_trace(&body).expect("valid export");
            let _ = std::fs::remove_file(&dir);
        });
    }
}
