//! Wall-clock span collection: RAII guards with thread-local buffers.
//!
//! [`enter`] (or the [`span!`](crate::span!) macro) opens a span; dropping
//! the guard closes it and appends a [`SpanRecord`] to the current
//! thread's buffer. Buffers drain into a process-wide pool when a thread
//! exits — the scoped worker threads of the `compat/rayon` pool live for
//! one parallel region, so their spans are collected the moment the
//! region ends — and [`drain`] merges everything **deterministically**:
//! sorted by `(start time, thread ordinal, per-thread sequence)`, with
//! ties broken by counters that do not depend on scheduling.
//!
//! Collection is globally gated: when disabled (the default), [`enter`]
//! returns an inert guard whose construction is two relaxed atomic loads.
//! Compiled out entirely, instrumented call sites cost nothing — the
//! `trace` cargo feature on `edgellm-tensor`/`edgellm-nn` controls that.
//!
//! Nesting is tracked per thread: each record carries its depth and the
//! per-thread enter/exit sequence numbers, so well-nestedness (`a`
//! contains `b` or they are disjoint, never partial overlap) is checkable
//! after the fact — a property test pins it.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::chrome::{Arg, Trace};

/// One closed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (the instrumented operation).
    pub name: &'static str,
    /// Category (component: "nn", "kernel", "bench" …).
    pub cat: &'static str,
    /// Ordinal of the thread that ran it (assignment order of first use).
    pub thread: u64,
    /// Nesting depth at entry (0 = top level).
    pub depth: u32,
    /// Start, µs since the collection epoch.
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
    /// Per-thread sequence number at entry.
    pub start_seq: u64,
    /// Per-thread sequence number at exit (> `start_seq`).
    pub end_seq: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn pool() -> &'static Mutex<Vec<SpanRecord>> {
    static POOL: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

struct ThreadBuf {
    ordinal: u64,
    depth: u32,
    seq: u64,
    records: Vec<SpanRecord>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            ordinal: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            depth: 0,
            seq: 0,
            records: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.records.is_empty() {
            pool().lock().expect("span pool poisoned").append(&mut self.records);
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// Start collecting spans (idempotent). Establishes the timestamp epoch
/// on first call.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop collecting. Already-open guards still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans are being collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open a span; the returned guard records it when dropped. Inert (two
/// atomic loads, no clock read) while collection is disabled.
pub fn enter(name: &'static str, cat: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let start = epoch().elapsed().as_nanos() as f64 / 1_000.0;
    let start_seq = TLS.with(|b| {
        let mut b = b.borrow_mut();
        b.depth += 1;
        b.seq += 1;
        b.seq
    });
    SpanGuard { open: Some(Open { name, cat, start_us: start, start_seq }) }
}

#[derive(Debug)]
struct Open {
    name: &'static str,
    cat: &'static str,
    start_us: f64,
    start_seq: u64,
}

/// RAII span guard — see [`enter`].
#[derive(Debug)]
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    open: Option<Open>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        let end_us = epoch().elapsed().as_nanos() as f64 / 1_000.0;
        TLS.with(|b| {
            let mut b = b.borrow_mut();
            b.seq += 1;
            b.depth = b.depth.saturating_sub(1);
            let rec = SpanRecord {
                name: open.name,
                cat: open.cat,
                thread: b.ordinal,
                depth: b.depth,
                start_us: open.start_us,
                dur_us: (end_us - open.start_us).max(0.0),
                start_seq: open.start_seq,
                end_seq: b.seq,
            };
            b.records.push(rec);
        });
    }
}

/// Take every span closed so far: the calling thread's buffer plus the
/// pool of exited threads, merged deterministically by
/// `(start_us, thread, start_seq)`. Spans still open on *live* other
/// threads are not included — flush points (end of a parallel region,
/// end of a run) are where the substrate guarantees worker threads have
/// exited.
pub fn drain() -> Vec<SpanRecord> {
    TLS.with(|b| b.borrow_mut().flush());
    let mut records = std::mem::take(&mut *pool().lock().expect("span pool poisoned"));
    records.sort_by(|a, b| {
        a.start_us
            .total_cmp(&b.start_us)
            .then(a.thread.cmp(&b.thread))
            .then(a.start_seq.cmp(&b.start_seq))
    });
    records
}

/// Render drained spans onto `trace` under process `pid`, one thread
/// track per worker ordinal (tid = ordinal + 1).
pub fn record_into(trace: &mut Trace, pid: u32, records: &[SpanRecord]) {
    let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for &t in &threads {
        trace.set_thread_name(pid, t as u32 + 1, format!("thread-{t}"));
    }
    for r in records {
        trace.complete(
            pid,
            r.thread as u32 + 1,
            r.name,
            r.cat,
            r.start_us,
            r.dur_us,
            vec![("depth".to_string(), Arg::U64(u64::from(r.depth)))],
        );
    }
}

/// Open a span with an optional category (defaults to `"app"`); binds the
/// guard to a `let` at the call site:
///
/// ```
/// let _g = edgellm_trace::span!("prefill", "nn");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name, "app")
    };
    ($name:expr, $cat:expr) => {
        $crate::span::enter($name, $cat)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the process-global collector, so they run under a
    // lock to avoid draining each other's records.
    fn serialized(f: impl FnOnce()) {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().expect("span test lock");
        let _ = drain();
        enable();
        f();
        disable();
        let _ = drain();
    }

    #[test]
    fn nested_guards_record_depth_and_order() {
        serialized(|| {
            {
                let _a = enter("outer", "t");
                let _b = enter("inner", "t");
            }
            let recs = drain();
            let outer = recs.iter().find(|r| r.name == "outer").expect("outer recorded");
            let inner = recs.iter().find(|r| r.name == "inner").expect("inner recorded");
            assert_eq!(outer.depth, 0);
            assert_eq!(inner.depth, 1);
            assert!(outer.start_seq < inner.start_seq && inner.end_seq < outer.end_seq);
            assert!(outer.dur_us >= inner.dur_us);
        });
    }

    #[test]
    fn disabled_enter_is_inert() {
        serialized(|| {
            disable();
            let g = enter("ghost", "t");
            drop(g);
            assert!(drain().is_empty());
            enable();
        });
    }

    #[test]
    fn worker_thread_spans_flush_on_exit() {
        serialized(|| {
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _g = enter("worker", "t");
                });
            });
            let recs = drain();
            assert!(recs.iter().any(|r| r.name == "worker"), "exited thread's buffer drained");
        });
    }

    #[test]
    fn record_into_emits_complete_events() {
        serialized(|| {
            {
                let _g = span!("op", "kernel");
            }
            let recs = drain();
            let mut t = Trace::new();
            record_into(&mut t, 7, &recs);
            let json = t.to_chrome_json();
            assert!(json.contains("\"op\""));
            assert!(json.contains("\"ph\":\"X\""));
        });
    }
}
