//! Radix-tree prefix cache over token-id block chunks.
//!
//! SGLang-style prefix sharing adapted to the simulator's determinism
//! discipline. Each tree node owns exactly one *full* KV block
//! (`block_tokens` token ids), so the tree's depth-`d` path spells out
//! a `d · block_tokens`-token prompt prefix and the cache never has to
//! split storage below block granularity. Because blocks are the
//! indivisible unit, two sibling nodes may share a sub-block token
//! prefix; the matcher resolves that by taking the longest common
//! prefix, breaking ties toward the lowest node id.
//!
//! A lookup returns the fully-matched shared blocks plus at most one
//! *partial* hit — a cached block that agrees with the prompt only for
//! its first `k < block_tokens` tokens. Partial hits are consumed via
//! copy-on-write ([`crate::BlockPool::cow_from`]): the new sequence
//! copies the agreeing `k` tokens into a private block and diverges
//! there, leaving the cached original untouched.
//!
//! Eviction is leaf-first LRU ordered by `(last_use, node id)`, and
//! only considers leaves whose block has no holder besides the cache
//! itself — evicting a block a live sequence still reads would be a
//! use-after-free (the `edgellm-check` block-refcount oracle guards
//! exactly this). `last_use` is a logical tick bumped per lookup, not
//! wall time, so eviction order is bit-reproducible across hosts.

use crate::block_pool::BlockPool;

/// A prompt token id. The simulator synthesizes deterministic ids when
/// the caller doesn't supply real ones; only equality matters here.
pub type TokenId = u32;

#[derive(Debug, Clone)]
struct Node {
    /// Exactly `block_tokens` token ids.
    tokens: Vec<TokenId>,
    /// The pool block caching this chunk's KV.
    block: usize,
    /// Parent node index (`None` = child of the root).
    parent: Option<usize>,
    /// Child node indices, in insertion order.
    children: Vec<usize>,
    /// Logical tick of the most recent lookup touching this node.
    last_use: u64,
    live: bool,
}

/// Result of matching a prompt against the cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixMatch {
    /// Fully-matched cached blocks, in token order.
    pub blocks: Vec<usize>,
    /// At most one trailing partial hit: `(block, matched tokens)`
    /// with `0 < matched < block_tokens`.
    pub partial: Option<(usize, u64)>,
    /// Total matched tokens (full blocks + partial).
    pub hit_tokens: u64,
}

/// Radix-tree prefix cache: one node per full KV block.
#[derive(Debug, Clone)]
pub struct RadixCache {
    block_tokens: usize,
    /// Node slab; indices are stable for a node's lifetime and reused
    /// LIFO after removal (deterministically).
    nodes: Vec<Node>,
    free_nodes: Vec<usize>,
    /// Children of the (implicit, empty) root.
    root_children: Vec<usize>,
    /// Logical clock for LRU ordering.
    tick: u64,
    live_nodes: usize,
}

impl RadixCache {
    /// An empty cache over `block_tokens`-token blocks.
    pub fn new(block_tokens: u64) -> Self {
        RadixCache {
            block_tokens: block_tokens as usize,
            nodes: Vec::new(),
            free_nodes: Vec::new(),
            root_children: Vec::new(),
            tick: 0,
            live_nodes: 0,
        }
    }

    /// Cached blocks currently held by the tree (== live nodes: every
    /// node owns exactly one block).
    pub fn cached_blocks(&self) -> usize {
        self.live_nodes
    }

    fn common_prefix(a: &[TokenId], b: &[TokenId]) -> usize {
        a.iter().zip(b).take_while(|(x, y)| x == y).count()
    }

    /// Walk the tree along `tokens`, collecting the matched path.
    /// Returns `(match, path node indices)`.
    fn walk(&self, tokens: &[TokenId]) -> (PrefixMatch, Vec<usize>) {
        let mut m = PrefixMatch::default();
        let mut path = Vec::new();
        let mut cursor = 0usize;
        let mut children: &[usize] = &self.root_children;
        loop {
            let remaining = &tokens[cursor..];
            if remaining.is_empty() {
                break;
            }
            // Longest common prefix wins; ties go to the lowest node id.
            let mut best: Option<(usize, usize)> = None; // (len, node)
            for &c in children {
                let l = Self::common_prefix(&self.nodes[c].tokens, remaining);
                if l > 0 && best.is_none_or(|(bl, bn)| l > bl || (l == bl && c < bn)) {
                    best = Some((l, c));
                }
            }
            let Some((l, c)) = best else { break };
            path.push(c);
            if l == self.block_tokens {
                m.blocks.push(self.nodes[c].block);
                m.hit_tokens += l as u64;
                cursor += l;
                children = &self.nodes[c].children;
            } else {
                m.partial = Some((self.nodes[c].block, l as u64));
                m.hit_tokens += l as u64;
                break;
            }
        }
        (m, path)
    }

    /// Match a prompt, bumping recency on the matched path (this *is*
    /// a use: admission consumes the result).
    pub fn lookup(&mut self, tokens: &[TokenId]) -> PrefixMatch {
        let (m, path) = self.walk(tokens);
        self.tick += 1;
        for n in path {
            self.nodes[n].last_use = self.tick;
        }
        m
    }

    /// [`RadixCache::lookup`], additionally returning the matched path's
    /// node indices — the set an admission planner must shield from its
    /// own make-room eviction ([`RadixCache::evict_lru_excluding`]).
    pub fn lookup_with_path(&mut self, tokens: &[TokenId]) -> (PrefixMatch, Vec<usize>) {
        let (m, path) = self.walk(tokens);
        self.tick += 1;
        for &n in &path {
            self.nodes[n].last_use = self.tick;
        }
        (m, path)
    }

    /// Read-only match (no recency bump) — for routing probes that
    /// must not perturb eviction order.
    pub fn probe(&self, tokens: &[TokenId]) -> PrefixMatch {
        self.walk(tokens).0
    }

    fn alloc_node(&mut self, node: Node) -> usize {
        self.live_nodes += 1;
        match self.free_nodes.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Insert the full-block chunks of a finished prompt whose KV lives
    /// in `blocks` (the sequence's blocks, in token order — block `i`
    /// caches `tokens[i·bt .. (i+1)·bt]`). Each newly-cached block
    /// gains a pool reference (the tree's hold on it). Chunks already
    /// cached — by this sequence's own admission match or by a
    /// duplicate computed concurrently — are skipped. Returns the
    /// number of blocks newly cached.
    pub fn insert(&mut self, tokens: &[TokenId], blocks: &[usize], pool: &mut BlockPool) -> usize {
        let bt = self.block_tokens;
        let n_full = (tokens.len() / bt).min(blocks.len());
        self.tick += 1;
        let tick = self.tick;
        let mut parent: Option<usize> = None;
        let mut inserted = 0;
        for i in 0..n_full {
            let chunk = &tokens[i * bt..(i + 1) * bt];
            let children = match parent {
                None => &self.root_children,
                Some(p) => &self.nodes[p].children,
            };
            let found = children.iter().copied().find(|&c| self.nodes[c].tokens == chunk);
            match found {
                Some(c) => {
                    self.nodes[c].last_use = tick;
                    parent = Some(c);
                }
                None => {
                    pool.retain(blocks[i]);
                    let id = self.alloc_node(Node {
                        tokens: chunk.to_vec(),
                        block: blocks[i],
                        parent,
                        children: Vec::new(),
                        last_use: tick,
                        live: true,
                    });
                    match parent {
                        None => self.root_children.push(id),
                        Some(p) => self.nodes[p].children.push(id),
                    }
                    parent = Some(id);
                    inserted += 1;
                }
            }
        }
        inserted
    }

    /// Evict the least-recently-used evictable leaf — a childless node
    /// whose block has no holder besides the cache — returning its
    /// block to the pool. `false` when nothing is evictable.
    pub fn evict_lru(&mut self, pool: &mut BlockPool) -> bool {
        self.evict_lru_excluding(pool, &[])
    }

    /// [`RadixCache::evict_lru`] skipping the nodes in `exclude` — an
    /// admission planner shields the path it just matched so making
    /// room can never consume its own hit.
    pub fn evict_lru_excluding(&mut self, pool: &mut BlockPool, exclude: &[usize]) -> bool {
        let mut best: Option<(u64, u64)> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.live
                && n.children.is_empty()
                && pool.refcount(n.block) == 1
                && !exclude.contains(&i)
            {
                let key = (n.last_use, i as u64);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let Some((_, i)) = best.map(|(_, i)| ((), i as usize)) else { return false };
        let (block, parent) = (self.nodes[i].block, self.nodes[i].parent);
        match parent {
            None => self.root_children.retain(|&c| c != i),
            Some(p) => self.nodes[p].children.retain(|&c| c != i),
        }
        self.nodes[i].live = false;
        self.nodes[i].children = Vec::new();
        self.nodes[i].tokens = Vec::new();
        self.free_nodes.push(i);
        self.live_nodes -= 1;
        pool.unref(block);
        true
    }

    /// Evict until the pool has at least `need_free` free blocks (or
    /// nothing evictable remains). Returns blocks evicted.
    pub fn evict_until(&mut self, pool: &mut BlockPool, need_free: usize) -> usize {
        let mut evicted = 0;
        while pool.free_blocks() < need_free && self.evict_lru(pool) {
            evicted += 1;
        }
        evicted
    }

    /// Drop every cached block (e.g. on drain), returning them to the
    /// pool. Returns blocks evicted.
    pub fn clear(&mut self, pool: &mut BlockPool) -> usize {
        let mut evicted = 0;
        while self.evict_lru(pool) {
            evicted += 1;
        }
        evicted
    }

    /// Blocks currently held by the tree, for refcount cross-checks.
    pub fn held_blocks(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.nodes.iter().filter(|n| n.live).map(|n| n.block).collect();
        v.sort_unstable();
        v
    }

    /// Structural consistency check; one message per violation.
    pub fn verify(&self, pool: &BlockPool) -> Vec<String> {
        let mut bad = Vec::new();
        let mut held = std::collections::HashSet::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.live {
                continue;
            }
            if n.tokens.len() != self.block_tokens {
                bad.push(format!("node {i} holds {} tokens, not a full block", n.tokens.len()));
            }
            if pool.refcount(n.block) == 0 {
                bad.push(format!("node {i} references freed block {}", n.block));
            }
            if !held.insert(n.block) {
                bad.push(format!("block {} cached by two nodes", n.block));
            }
            for &c in &n.children {
                if !self.nodes[c].live || self.nodes[c].parent != Some(i) {
                    bad.push(format!("node {i} child {c} link broken"));
                }
            }
        }
        for &c in &self.root_children {
            if !self.nodes[c].live || self.nodes[c].parent.is_some() {
                bad.push(format!("root child {c} link broken"));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BlockPool {
        BlockPool::new(1 << 20, 4, 1024) // 4-token blocks, 256 blocks
    }

    /// Allocate seq blocks for `tokens` and insert the full chunks.
    fn seed(cache: &mut RadixCache, pool: &mut BlockPool, tokens: &[TokenId]) -> Vec<usize> {
        let blocks: Vec<usize> =
            (0..tokens.len().div_ceil(4)).map(|_| pool.alloc().unwrap()).collect();
        cache.insert(tokens, &blocks, pool);
        blocks
    }

    #[test]
    fn full_and_partial_matches() {
        let (mut c, mut p) = (RadixCache::new(4), pool());
        seed(&mut c, &mut p, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(c.cached_blocks(), 2);

        let m = c.lookup(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(m.blocks.len(), 2);
        assert_eq!(m.hit_tokens, 8);
        assert_eq!(m.partial, None);

        // Diverges inside the second block → one full + one partial.
        let m = c.lookup(&[1, 2, 3, 4, 5, 6, 99, 99]);
        assert_eq!(m.blocks.len(), 1);
        assert_eq!(m.partial.map(|(_, k)| k), Some(2));
        assert_eq!(m.hit_tokens, 6);

        // No shared prefix at all.
        let m = c.lookup(&[9, 9, 9, 9]);
        assert_eq!(m.hit_tokens, 0);
    }

    #[test]
    fn insert_skips_existing_chunks_and_shares_blocks() {
        let (mut c, mut p) = (RadixCache::new(4), pool());
        let b1 = seed(&mut c, &mut p, &[1, 2, 3, 4]);
        assert_eq!(p.refcount(b1[0]), 2, "seq + cache");
        // A second identical prompt: its insert caches nothing new.
        let b2: Vec<usize> = vec![p.alloc().unwrap()];
        assert_eq!(c.insert(&[1, 2, 3, 4], &b2, &mut p), 0);
        assert_eq!(c.cached_blocks(), 1);
        assert_eq!(p.refcount(b2[0]), 1, "duplicate stays private");
    }

    #[test]
    fn eviction_is_lru_leaf_first_and_skips_shared_blocks() {
        let (mut c, mut p) = (RadixCache::new(4), pool());
        let ba = seed(&mut c, &mut p, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let bb = seed(&mut c, &mut p, &[9, 9, 9, 9]);
        // Release the sequences' own references; cache holds all blocks.
        for &b in ba.iter().chain(&bb) {
            p.unref(b);
        }
        assert_eq!(c.cached_blocks(), 3);
        // Touch chain A's first block; its leaf (never re-read) stays
        // coldest, then B, and A's root — freshly used — goes last.
        c.lookup(&[1, 2, 3, 4]);
        assert!(c.evict_lru(&mut p));
        assert_eq!(p.refcount(ba[1]), 0, "cold leaf first");
        assert!(c.evict_lru(&mut p));
        assert_eq!(p.refcount(bb[0]), 0);
        assert!(c.evict_lru(&mut p));
        assert_eq!(p.refcount(ba[0]), 0);
        assert!(!c.evict_lru(&mut p), "tree is empty");
        assert_eq!(p.used_blocks(), 0);
        assert!(c.verify(&p).is_empty());
        assert!(p.verify().is_empty());
    }

    #[test]
    fn eviction_never_frees_a_block_a_sequence_holds() {
        let (mut c, mut p) = (RadixCache::new(4), pool());
        let b = seed(&mut c, &mut p, &[1, 2, 3, 4]);
        // The sequence still holds b[0] (refcount 2) → not evictable.
        assert!(!c.evict_lru(&mut p));
        p.unref(b[0]);
        assert!(c.evict_lru(&mut p));
        assert_eq!(p.used_blocks(), 0);
    }

    #[test]
    fn sibling_chunks_with_shared_subprefix_pick_longest() {
        let (mut c, mut p) = (RadixCache::new(4), pool());
        seed(&mut c, &mut p, &[1, 2, 5, 5]);
        seed(&mut c, &mut p, &[1, 2, 3, 4]);
        let m = c.probe(&[1, 2, 3, 9]);
        assert_eq!(m.partial.map(|(_, k)| k), Some(3), "longest sibling wins");
        let m = c.probe(&[1, 2, 9, 9]);
        // Tie at 2 tokens → lowest node id (first inserted).
        assert_eq!(m.hit_tokens, 2);
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let (mut c, mut p) = (RadixCache::new(4), pool());
        let ba = seed(&mut c, &mut p, &[1, 1, 1, 1]);
        let bb = seed(&mut c, &mut p, &[2, 2, 2, 2]);
        for &b in ba.iter().chain(&bb) {
            p.unref(b);
        }
        c.probe(&[1, 1, 1, 1]); // read-only: A stays older
        assert!(c.evict_lru(&mut p));
        assert_eq!(p.refcount(ba[0]), 0, "probe must not bump recency");
        let _ = bb;
    }
}
