//! Paged KV with prefix sharing: the serve layer's allocator facade.
//!
//! [`PagedKv`] combines a refcounted [`BlockPool`] with an optional
//! [`RadixCache`] behind the same per-sequence surface as
//! [`crate::kv::KvBlockAllocator`] (`register` / `blocks_needed` /
//! `append` / `release` / `shrink_to`), so a scheduler can swap it in
//! without changing its admission logic. With the prefix cache
//! *disabled* (the default) every operation is arithmetic-identical to
//! the flat allocator: one holder per block, blocks granted in
//! ascending id order, no sharing.
//!
//! With the prefix cache enabled:
//!
//! * [`PagedKv::plan_admission`] matches a prompt against the radix
//!   tree (bumping recency — planning *is* a use), evicting cold
//!   cached blocks as needed to make room for the uncached remainder,
//!   and reports how many fresh blocks admission would take;
//! * [`PagedKv::admit`] consumes that match: fully-matched blocks are
//!   shared (refcount +1, zero prefill owed), a trailing partial match
//!   is taken by copy-on-write ([`BlockPool::cow_from`]);
//! * [`PagedKv::insert_prompt`] caches a finished prompt's full blocks
//!   so later prompts can hit them;
//! * [`PagedKv::release`] drops the sequence's references — blocks the
//!   cache still holds survive for the next hit, which is what makes
//!   preemption block-granular: the re-admission re-matches the cached
//!   prefix instead of recomputing it.
//!
//! Sequences never write into shared blocks by construction: only
//! *full* blocks are cached or matched whole, and appends land past
//! `used` tokens, i.e. in the private tail. [`PagedKv::verify`]
//! cross-checks every block's refcount against its holders (sequences
//! plus the cache) — the `edgellm-check` block-refcount oracle.

use std::collections::HashMap;

use crate::block_pool::BlockPool;
use crate::kv::{KvError, SeqId};
use crate::radix::{RadixCache, TokenId};

/// One sequence's block list and token fill.
#[derive(Debug, Clone)]
struct SeqKv {
    /// Blocks in token order; `blocks[i]` caches tokens
    /// `[i·bt, (i+1)·bt)` of the sequence.
    blocks: Vec<usize>,
    /// Cached tokens (prompt hits + appended).
    used: u64,
}

/// What admission got from the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmitOutcome {
    /// Prompt tokens covered by the cache (full blocks + partial COW).
    pub hit_tokens: u64,
    /// Fresh blocks taken from the pool (the COW copy, when a partial
    /// hit was consumed).
    pub new_blocks: usize,
}

/// A pre-admission capacity plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmitPlan {
    /// Fresh blocks admission (prompt + one decode token) would take.
    pub need_blocks: usize,
    /// Prompt tokens the cache would cover.
    pub hit_tokens: u64,
    /// Cold cached blocks evicted while planning.
    pub evicted: usize,
}

/// Block-paged KV allocator with optional radix prefix sharing.
#[derive(Debug, Clone)]
pub struct PagedKv {
    pool: BlockPool,
    radix: Option<RadixCache>,
    seqs: HashMap<SeqId, SeqKv>,
    /// Cumulative prompt tokens served from the cache.
    hit_tokens: u64,
}

impl PagedKv {
    /// A pool covering `capacity_bytes` of `block_tokens`-token blocks,
    /// prefix cache disabled.
    pub fn new(capacity_bytes: u64, block_tokens: u64, bytes_per_token: u64) -> Self {
        PagedKv {
            pool: BlockPool::new(capacity_bytes, block_tokens, bytes_per_token),
            radix: None,
            seqs: HashMap::new(),
            hit_tokens: 0,
        }
    }

    /// Enable the radix prefix cache (builder form).
    pub fn with_prefix_cache(mut self) -> Self {
        self.radix = Some(RadixCache::new(self.pool.block_tokens()));
        self
    }

    /// Whether prefix sharing is on.
    pub fn prefix_enabled(&self) -> bool {
        self.radix.is_some()
    }

    /// Register a new sequence (no blocks yet).
    pub fn register(&mut self, id: SeqId) {
        self.seqs.entry(id).or_insert_with(|| SeqKv { blocks: Vec::new(), used: 0 });
    }

    /// Plan admitting a prompt whose sequence will hold `total_tokens`
    /// before the next free-block check (prompt + first decode token).
    /// Matches the cache (bumping recency) and evicts cold cached
    /// blocks — never the matched path — until the uncached remainder
    /// fits or nothing evictable is left. The caller compares
    /// `need_blocks` against [`PagedKv::free_blocks`] to wait / OOM.
    pub fn plan_admission(&mut self, tokens: &[TokenId], total_tokens: u64) -> AdmitPlan {
        let bt = self.pool.block_tokens();
        let total_need = total_tokens.div_ceil(bt) as usize;
        let Some(radix) = &mut self.radix else {
            return AdmitPlan { need_blocks: total_need, ..AdmitPlan::default() };
        };
        let mut evicted = 0;
        loop {
            let (m, path) = radix.lookup_with_path(tokens);
            let need = total_need.saturating_sub(m.blocks.len());
            if need <= self.pool.free_blocks() {
                return AdmitPlan { need_blocks: need, hit_tokens: m.hit_tokens, evicted };
            }
            if radix.evict_lru_excluding(&mut self.pool, &path) {
                evicted += 1;
                continue;
            }
            // Nothing evictable outside the matched path; report the
            // shortage and let the scheduler wait or preempt.
            return AdmitPlan { need_blocks: need, hit_tokens: m.hit_tokens, evicted };
        }
    }

    /// Admit a sequence with its prompt: share fully-matched cached
    /// blocks, take a trailing partial match by copy-on-write. Capacity
    /// for the COW copy must have been secured via
    /// [`PagedKv::plan_admission`]; when the pool is dry anyway the
    /// partial hit is forgone rather than failing. With the cache
    /// disabled this is exactly [`PagedKv::register`].
    pub fn admit(&mut self, id: SeqId, tokens: &[TokenId]) -> AdmitOutcome {
        let Some(radix) = &mut self.radix else {
            self.register(id);
            return AdmitOutcome::default();
        };
        let m = radix.lookup(tokens);
        let bt = self.pool.block_tokens();
        let mut blocks = Vec::with_capacity(m.blocks.len() + 1);
        for &b in &m.blocks {
            self.pool.retain(b);
            blocks.push(b);
        }
        let mut used = m.blocks.len() as u64 * bt;
        let mut new_blocks = 0;
        if let Some((src, k)) = m.partial {
            // Diverge inside the cached block: copy its first `k`
            // tokens into a private block and continue there.
            if let Some(copy) = self.pool.cow_from(src) {
                blocks.push(copy);
                used += k;
                new_blocks = 1;
            }
        }
        let hit_tokens = used;
        self.hit_tokens += hit_tokens;
        self.seqs.insert(id, SeqKv { blocks, used });
        AdmitOutcome { hit_tokens, new_blocks }
    }

    /// Cache the full-block chunks of a finished prompt so later
    /// prompts can share them. `tokens` must be the prompt the
    /// sequence was admitted and prefilled with. Returns blocks newly
    /// cached (0 with the cache disabled or when everything was
    /// already cached).
    pub fn insert_prompt(&mut self, id: SeqId, tokens: &[TokenId]) -> usize {
        let Some(radix) = &mut self.radix else { return 0 };
        let Some(s) = self.seqs.get(&id) else { return 0 };
        radix.insert(tokens, &s.blocks, &mut self.pool)
    }

    /// Read-only prefix-match length (tokens) — the fleet router's
    /// affinity probe. Never perturbs recency or evicts.
    pub fn probe_prefix(&self, tokens: &[TokenId]) -> u64 {
        self.radix.as_ref().map_or(0, |r| r.probe(tokens).hit_tokens)
    }

    /// Evict the single coldest cache-only block. Returns `false` when
    /// nothing is evictable (cache disabled, empty, or every cached
    /// block is shared with a live sequence).
    pub fn evict_one_cached(&mut self) -> bool {
        match &mut self.radix {
            Some(r) => r.evict_lru(&mut self.pool),
            None => false,
        }
    }

    /// Drop the entire prefix cache (e.g. on drain — a failed device's
    /// memory does not survive). Returns blocks freed.
    pub fn clear_cache(&mut self) -> usize {
        match &mut self.radix {
            Some(r) => r.clear(&mut self.pool),
            None => 0,
        }
    }

    /// Blocks currently parked in the prefix cache (their only holder
    /// may still be a live sequence *and* the cache — this counts tree
    /// nodes, each owning one block).
    pub fn cached_blocks(&self) -> usize {
        self.radix.as_ref().map_or(0, |r| r.cached_blocks())
    }

    /// Cumulative prompt tokens served from the cache.
    pub fn cache_hit_tokens(&self) -> u64 {
        self.hit_tokens
    }

    /// Cumulative copy-on-write allocations.
    pub fn cow_events(&self) -> u64 {
        self.pool.cow_events()
    }

    /// Blocks that appending `tokens` cached tokens to `id` would newly
    /// take from the pool (0 when the sequence's last block has room).
    pub fn blocks_needed(&self, id: SeqId, tokens: u64) -> Result<usize, KvError> {
        let s = self.seqs.get(&id).ok_or(KvError::UnknownSeq(id))?;
        let need_blocks = (s.used + tokens).div_ceil(self.pool.block_tokens()) as usize;
        Ok(need_blocks.saturating_sub(s.blocks.len()))
    }

    /// Append `tokens` cached tokens to a sequence, taking blocks on
    /// demand. Returns blocks newly taken; on
    /// [`KvError::OutOfBlocks`] nothing is allocated. Appends always
    /// land in the sequence's private tail — shared blocks are full by
    /// construction and never rewritten.
    pub fn append(&mut self, id: SeqId, tokens: u64) -> Result<usize, KvError> {
        let s = self.seqs.get_mut(&id).ok_or(KvError::UnknownSeq(id))?;
        let need_tokens = s.used + tokens;
        let need_blocks = need_tokens.div_ceil(self.pool.block_tokens()) as usize;
        let extra = need_blocks.saturating_sub(s.blocks.len());
        if extra > self.pool.free_blocks() {
            return Err(KvError::OutOfBlocks { requested: extra, free: self.pool.free_blocks() });
        }
        for _ in 0..extra {
            s.blocks.push(self.pool.alloc().expect("checked above"));
        }
        s.used = need_tokens;
        Ok(extra)
    }

    /// Roll a sequence back to its first `tokens` cached tokens — the
    /// allocator half of speculative-decode rollback: the verifier
    /// rejects a draft suffix and the blocks that held only rejected
    /// tokens go back to the pool, block-exactly. Dropped references
    /// are unref'd (not force-freed), so a block the prefix cache (or
    /// another holder) still references survives — COW-safe under
    /// prefix sharing; rejected *speculative* tokens always live past
    /// the prompt in the sequence's private tail, and a partially
    /// rolled-back tail block simply stays held with fewer used
    /// tokens. Returns blocks actually freed. No-op when the sequence
    /// already holds at most `tokens`.
    pub fn truncate(&mut self, id: SeqId, tokens: u64) -> Result<usize, KvError> {
        let s = self.seqs.get_mut(&id).ok_or(KvError::UnknownSeq(id))?;
        if tokens >= s.used {
            return Ok(0);
        }
        let keep_blocks = tokens.div_ceil(self.pool.block_tokens()) as usize;
        let mut freed = 0;
        for b in s.blocks.drain(keep_blocks..) {
            if self.pool.unref(b) {
                freed += 1;
            }
        }
        s.used = tokens;
        Ok(freed)
    }

    /// Finish (or preempt) a sequence, dropping its block references.
    /// Returns blocks actually freed — blocks the prefix cache still
    /// holds stay resident for the next hit.
    pub fn release(&mut self, id: SeqId) -> Result<usize, KvError> {
        let s = self.seqs.remove(&id).ok_or(KvError::UnknownSeq(id))?;
        let mut freed = 0;
        for b in s.blocks {
            if self.pool.unref(b) {
                freed += 1;
            }
        }
        Ok(freed)
    }

    /// Shrink the pool to `new_total` blocks, retiring free blocks
    /// (same contract as [`crate::kv::KvBlockAllocator::shrink_to`];
    /// evict / preempt first to get below the target).
    pub fn shrink_to(&mut self, new_total: usize) -> Result<(), KvError> {
        self.pool.shrink_to(new_total)
    }

    /// Blocks a live sequence currently holds (`None` for unknown ids).
    pub fn blocks_held(&self, id: SeqId) -> Option<usize> {
        self.seqs.get(&id).map(|s| s.blocks.len())
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.pool.free_blocks()
    }

    /// Total pool blocks.
    pub fn total_blocks(&self) -> usize {
        self.pool.total_blocks()
    }

    /// Blocks with at least one holder (sequences or the cache); a
    /// shared block counts exactly once.
    pub fn used_blocks(&self) -> usize {
        self.pool.used_blocks()
    }

    /// Bytes reserved (all held blocks, shared blocks once).
    pub fn reserved_bytes(&self) -> u64 {
        self.pool.used_blocks() as u64 * self.pool.block_tokens() * self.pool.bytes_per_token()
    }

    /// Live sequences.
    pub fn live_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// Refcount + structure consistency check; one message per
    /// violation, deterministically ordered. Every block's refcount
    /// must equal its holders: sequences referencing it plus the cache.
    pub fn verify(&self) -> Vec<String> {
        let mut bad = self.pool.verify();
        let mut expect = vec![0u32; self.pool.id_space()];
        let mut ids: Vec<SeqId> = self.seqs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let s = &self.seqs[&id];
            if s.used > s.blocks.len() as u64 * self.pool.block_tokens() {
                bad.push(format!("seq {id} uses {} tokens over {} blocks", s.used, s.blocks.len()));
            }
            for &b in &s.blocks {
                if b >= expect.len() {
                    bad.push(format!("seq {id} references out-of-range block {b}"));
                    continue;
                }
                expect[b] += 1;
                if self.pool.refcount(b) == 0 {
                    bad.push(format!("seq {id} references freed block {b}"));
                }
            }
        }
        if let Some(r) = &self.radix {
            bad.extend(r.verify(&self.pool));
            for b in r.held_blocks() {
                if b < expect.len() {
                    expect[b] += 1;
                }
            }
        }
        for (b, &e) in expect.iter().enumerate() {
            if self.pool.refcount(b) != e {
                bad.push(format!("block {b} refcount {} != {e} holders", self.pool.refcount(b)));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paged() -> PagedKv {
        // 64 blocks of 16 tokens, prefix cache on.
        PagedKv::new(1 << 20, 16, 1024).with_prefix_cache()
    }

    fn toks(seed: u32, n: usize) -> Vec<TokenId> {
        (0..n as u32).map(|i| seed.wrapping_mul(1_000_003).wrapping_add(i)).collect()
    }

    #[test]
    fn disabled_cache_matches_flat_allocator_semantics() {
        let mut p = PagedKv::new(1 << 20, 16, 1024);
        p.register(1);
        assert_eq!(p.append(1, 10).unwrap(), 1);
        assert_eq!(p.append(1, 6).unwrap(), 0);
        assert_eq!(p.append(1, 1).unwrap(), 1);
        assert_eq!(p.blocks_held(1), Some(2));
        assert_eq!(p.admit(2, &toks(9, 32)), AdmitOutcome::default());
        assert_eq!(p.plan_admission(&toks(9, 32), 33).need_blocks, 3);
        assert_eq!(p.release(1).unwrap(), 2);
        assert_eq!(p.free_blocks(), 64);
        assert!(p.verify().is_empty());
    }

    #[test]
    fn warm_admission_shares_full_blocks() {
        let mut p = paged();
        let prompt = toks(1, 48); // 3 full blocks
        assert_eq!(p.admit(0, &prompt).hit_tokens, 0, "cold");
        p.append(0, 48).unwrap();
        p.insert_prompt(0, &prompt);
        assert_eq!(p.cached_blocks(), 3);
        let used_before = p.used_blocks();

        let out = p.admit(1, &prompt);
        assert_eq!(out.hit_tokens, 48, "warm hit covers the whole prompt");
        assert_eq!(out.new_blocks, 0, "sharing takes nothing from the pool");
        assert_eq!(p.used_blocks(), used_before, "no new blocks for the twin");
        assert_eq!(p.cache_hit_tokens(), 48);

        // Both sequences release; cached blocks survive.
        assert_eq!(p.release(0).unwrap(), 0);
        assert_eq!(p.release(1).unwrap(), 0);
        assert_eq!(p.used_blocks(), 3);
        assert_eq!(p.cached_blocks(), 3);
        assert!(p.verify().is_empty());
    }

    #[test]
    fn divergence_inside_a_block_is_copy_on_write() {
        let mut p = paged();
        let a = toks(1, 32);
        p.admit(0, &a);
        p.append(0, 32).unwrap();
        p.insert_prompt(0, &a);
        p.release(0).unwrap();

        // Same first block, diverges 4 tokens into the second.
        let mut b = a.clone();
        for t in &mut b[20..] {
            *t = t.wrapping_add(7_777);
        }
        let out = p.admit(1, &b);
        assert_eq!(out.hit_tokens, 20, "16 shared + 4 copied");
        assert_eq!(out.new_blocks, 1, "the COW copy");
        assert_eq!(p.cow_events(), 1);
        // Finishing the diverged prompt caches its variant block too.
        p.append(1, 12).unwrap();
        p.insert_prompt(1, &b);
        assert_eq!(p.cached_blocks(), 3, "shared head + two variants");
        p.release(1).unwrap();
        assert!(p.verify().is_empty());
    }

    #[test]
    fn plan_admission_evicts_cold_blocks_but_not_the_match() {
        let mut small = PagedKv::new(4 * 16 * 1024, 16, 1024).with_prefix_cache();
        assert_eq!(small.total_blocks(), 4);
        let hot = toks(1, 32);
        small.admit(0, &hot);
        small.append(0, 32).unwrap();
        small.insert_prompt(0, &hot);
        small.release(0).unwrap();
        let cold = toks(2, 32);
        small.admit(1, &cold);
        small.append(1, 32).unwrap();
        small.insert_prompt(1, &cold);
        small.release(1).unwrap();
        // Pool: 4 cached blocks, 0 free. Re-admitting `hot` (+1 decode
        // token) needs one fresh block → evict from `cold`, not `hot`.
        let plan = small.plan_admission(&hot, 33);
        assert_eq!(plan.hit_tokens, 32, "match preserved");
        assert_eq!(plan.need_blocks, 1);
        assert!(plan.evicted >= 1);
        assert!(plan.need_blocks <= small.free_blocks());
        let out = small.admit(2, &hot);
        assert_eq!(out.hit_tokens, 32);
        small.append(2, 1).unwrap();
        assert!(small.verify().is_empty());
    }

    #[test]
    fn release_then_rematch_is_block_granular_preemption() {
        let mut p = paged();
        let prompt = toks(3, 64);
        p.admit(0, &prompt);
        p.append(0, 64).unwrap();
        p.insert_prompt(0, &prompt);
        // Preempt: drop the sequence. The cache keeps all 4 blocks.
        p.release(0).unwrap();
        assert_eq!(p.used_blocks(), 4);
        // Re-admission hits the whole prompt: zero recompute.
        let out = p.admit(1, &prompt);
        assert_eq!(out.hit_tokens, 64);
        assert_eq!(out.new_blocks, 0);
        assert!(p.verify().is_empty());
    }

    #[test]
    fn truncate_releases_exactly_the_rejected_tail_blocks() {
        let mut p = PagedKv::new(1 << 20, 16, 1024);
        p.register(1);
        // Prompt of 40 tokens (3 blocks), then 10 speculative appends.
        assert_eq!(p.append(1, 40).unwrap(), 3);
        assert_eq!(p.append(1, 10).unwrap(), 1); // tokens 40..50, block 4
        let free_before = p.free_blocks();
        // Reject 1 of the 10: 49 tokens still spill into block 4, so
        // the rollback is a fill-only adjustment...
        assert_eq!(p.truncate(1, 49).unwrap(), 0);
        assert_eq!(p.blocks_held(1), Some(4));
        // ...but rejecting down to 43 tokens (3 blocks) releases the
        // now-empty tail block, block-exactly.
        assert_eq!(p.truncate(1, 43).unwrap(), 1);
        assert_eq!(p.blocks_held(1), Some(3));
        assert_eq!(p.free_blocks(), free_before + 1);
        // A deeper roll-back inside the kept blocks frees nothing more.
        assert_eq!(p.truncate(1, 33).unwrap(), 0);
        assert_eq!(p.blocks_held(1), Some(3));
        // Appending after rollback refills the partial tail first.
        assert_eq!(p.append(1, 15).unwrap(), 0);
        assert_eq!(p.append(1, 1).unwrap(), 1);
        // No-op cases: at or past the current fill, and unknown ids.
        assert_eq!(p.truncate(1, 49).unwrap(), 0);
        assert_eq!(p.truncate(1, 1000).unwrap(), 0);
        assert!(p.truncate(9, 0).is_err());
        assert!(p.verify().is_empty());
    }

    #[test]
    fn truncate_is_cow_safe_under_prefix_sharing() {
        let mut p = paged();
        let prompt = toks(5, 32); // 2 full blocks
        p.admit(0, &prompt);
        p.append(0, 32).unwrap();
        p.insert_prompt(0, &prompt); // both blocks now cached (shared)
                                     // Speculate 20 tokens past the prompt: tokens 32..52, blocks 3–4.
        p.append(0, 20).unwrap();
        assert_eq!(p.blocks_held(0), Some(4));
        // Reject all 20: the private tail blocks free, the cached
        // prompt blocks survive with the cache as a holder.
        assert_eq!(p.truncate(0, 32).unwrap(), 2);
        assert_eq!(p.blocks_held(0), Some(2));
        assert_eq!(p.cached_blocks(), 2);
        assert!(p.verify().is_empty(), "{:?}", p.verify());
        // A roll-back *into* the shared region only unrefs: the cache
        // keeps the block resident for the next hit.
        let used_before = p.used_blocks();
        assert_eq!(p.truncate(0, 16).unwrap(), 0, "cache still holds the block");
        assert_eq!(p.used_blocks(), used_before);
        assert!(p.verify().is_empty(), "{:?}", p.verify());
        p.release(0).unwrap();
        assert!(p.verify().is_empty());
    }

    #[test]
    fn verify_catches_refcount_drift() {
        let mut p = paged();
        let prompt = toks(4, 16);
        p.admit(0, &prompt);
        p.append(0, 16).unwrap();
        assert!(p.verify().is_empty());
        // Simulate a drift: an extra phantom reference.
        p.pool.retain(0);
        let bad = p.verify();
        assert!(!bad.is_empty(), "phantom reference must be flagged");
        assert!(bad.iter().any(|m| m.contains("refcount")), "{bad:?}");
    }
}
