//! The analytic memory model: weights + KV cache + activations.

use crate::GB;
use edgellm_models::{Llm, ModelArch, Precision};

/// Memory the OS, CUDA runtime and allocator slack occupy beyond the
/// model's own accounting; a workload OoMs when it needs more than
/// `capacity − OOM_HEADROOM_GB`.
pub const OOM_HEADROOM_GB: f64 = 2.0;

/// Per-model calibrated activation constants (bytes / GB), fitted against
/// the RAM columns of the paper's appendix Tables 4–7:
///
/// `act(bs, sl) = b0 + c_lin·bs·sl + c_quad·bs·max(0, sl−128)² +
///  c_logbs·log₂(1+bs)`
///
/// * Phi-2's large `c_lin`/`c_quad` reflect its FP32 eager-attention path
///   materializing score matrices — the mechanism behind the OoM cells of
///   Table 6/7 (`sl ≥ 512` at `bs=32`).
/// * DeepSeek's activations saturate with batch (BitsAndBytes INT8 buffer
///   pools), hence the logarithmic term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationCalib {
    /// Constant overhead (GB).
    pub b0_gb: f64,
    /// Linear bytes per (sequence × token).
    pub c_lin: f64,
    /// Quadratic bytes per (sequence × excess-token²) beyond 128 tokens.
    pub c_quad: f64,
    /// GB per log₂(1 + batch).
    pub c_logbs_gb: f64,
}

impl ActivationCalib {
    /// Calibration for one of the paper's models (provenance: fitted on
    /// Tables 4/6/7 RAM columns; see DESIGN.md §4 and EXPERIMENTS.md).
    pub fn for_llm(llm: Llm) -> Self {
        match llm {
            Llm::Phi2 => {
                ActivationCalib { b0_gb: 0.0, c_lin: 350e3, c_quad: 12e3, c_logbs_gb: 0.0 }
            }
            Llm::Llama31_8b => {
                ActivationCalib { b0_gb: 0.31, c_lin: 101e3, c_quad: 209.0, c_logbs_gb: 0.0 }
            }
            Llm::MistralSmall24b => {
                ActivationCalib { b0_gb: 0.19, c_lin: 64e3, c_quad: 0.0, c_logbs_gb: 0.0 }
            }
            Llm::DeepseekQwen32b => {
                ActivationCalib { b0_gb: 0.0, c_lin: 0.0, c_quad: 0.0, c_logbs_gb: 1.15 }
            }
        }
    }

    /// Activation bytes for a workload shape.
    pub fn bytes(&self, batch: u64, seq_len: u64) -> f64 {
        let quad = seq_len.saturating_sub(128) as f64;
        self.b0_gb * GB
            + self.c_lin * batch as f64 * seq_len as f64
            + self.c_quad * batch as f64 * quad * quad
            + self.c_logbs_gb * GB * (1.0 + batch as f64).log2()
    }
}

/// A memory model for one (device capacity, model, precision) triple.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    arch: ModelArch,
    act: ActivationCalib,
    precision: Precision,
    capacity_gb: f64,
}

impl MemoryModel {
    /// Build a model.
    pub fn new(llm: Llm, precision: Precision, capacity_gb: f64) -> Self {
        MemoryModel { arch: llm.arch(), act: ActivationCalib::for_llm(llm), precision, capacity_gb }
    }

    /// Weight bytes at the configured precision.
    pub fn weight_bytes(&self) -> f64 {
        self.arch.weight_bytes(self.precision) as f64
    }

    /// Whether the bare model loads at all (the paper's red Table 1 cells).
    pub fn model_loads(&self) -> bool {
        self.weight_bytes() / GB <= self.capacity_gb - OOM_HEADROOM_GB
    }

    /// KV-cache bytes with `batch` sequences of `tokens` cached tokens.
    pub fn kv_bytes(&self, batch: u64, tokens: u64) -> f64 {
        batch as f64 * tokens as f64 * self.arch.kv_bytes_per_token() as f64
    }

    /// Activation bytes for a workload shape.
    pub fn activation_bytes(&self, batch: u64, seq_len: u64) -> f64 {
        self.act.bytes(batch, seq_len)
    }

    /// Peak total usage (GB) of a generation workload: model + full KV at
    /// the final sequence length + activations. This is what the paper's
    /// RAM columns report (model memory included, OS base excluded).
    pub fn peak_total_gb(&self, batch: u64, seq_len: u64) -> f64 {
        (self.weight_bytes()
            + self.kv_bytes(batch, seq_len)
            + self.activation_bytes(batch, seq_len))
            / GB
    }

    /// Incremental usage above the loaded model (the paper's other metric).
    pub fn incremental_gb(&self, batch: u64, seq_len: u64) -> f64 {
        self.peak_total_gb(batch, seq_len) - self.weight_bytes() / GB
    }

    /// Whether the workload fits; `false` reproduces the OoM table cells.
    pub fn fits(&self, batch: u64, seq_len: u64) -> bool {
        self.peak_total_gb(batch, seq_len) <= self.capacity_gb - OOM_HEADROOM_GB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(llm: Llm, prec: Precision) -> MemoryModel {
        MemoryModel::new(llm, prec, 64.0)
    }

    /// Paper Table 4 RAM column (WikiText2, sl=96): (bs, GB) per model.
    type RamRow = (Llm, Precision, [(u64, f64); 4]);
    const TABLE4_RAM: [RamRow; 4] = [
        (Llm::Phi2, Precision::Fp16, [(1, 6.18), (16, 6.87), (32, 8.05), (128, 20.53)]),
        (Llm::Llama31_8b, Precision::Fp16, [(1, 16.38), (16, 16.72), (32, 17.12), (128, 19.26)]),
        (
            Llm::MistralSmall24b,
            Precision::Fp16,
            [(1, 47.33), (16, 47.74), (32, 47.99), (128, 50.08)],
        ),
        (
            Llm::DeepseekQwen32b,
            Precision::Int8,
            [(1, 34.82), (16, 38.25), (32, 40.87), (128, 44.35)],
        ),
    ];

    #[test]
    fn table4_ram_within_tolerance() {
        for (llm, prec, rows) in TABLE4_RAM {
            let m = model(llm, prec);
            for (bs, actual) in rows {
                let pred = m.peak_total_gb(bs, 96);
                let rel = (pred - actual).abs() / actual;
                assert!(rel < 0.20, "{llm:?} bs={bs}: pred {pred:.2} GB vs {actual} ({rel:.2})");
            }
        }
    }

    #[test]
    fn phi2_oom_beyond_sl256_at_bs32() {
        // Table 6/7: Phi-2 OoM for sequence length > 256.
        let m = model(Llm::Phi2, Precision::Fp16);
        assert!(m.fits(32, 128), "sl=128 must fit");
        assert!(m.fits(32, 256), "sl=256 must fit");
        assert!(!m.fits(32, 512), "sl=512 must OoM");
        assert!(!m.fits(32, 1024), "sl=1024 must OoM");
    }

    #[test]
    fn other_models_fit_full_seqlen_sweep() {
        for (llm, prec) in [
            (Llm::Llama31_8b, Precision::Fp16),
            (Llm::MistralSmall24b, Precision::Fp16),
            (Llm::DeepseekQwen32b, Precision::Int8),
        ] {
            let m = model(llm, prec);
            for sl in [128, 256, 512, 1024] {
                assert!(m.fits(32, sl), "{llm:?} sl={sl} must fit");
            }
        }
    }

    #[test]
    fn table3_oom_cells() {
        // Mistral FP32, DeepSeek FP32/FP16 cannot load at all.
        assert!(!model(Llm::MistralSmall24b, Precision::Fp32).model_loads());
        assert!(!model(Llm::DeepseekQwen32b, Precision::Fp32).model_loads());
        assert!(!model(Llm::DeepseekQwen32b, Precision::Fp16).model_loads());
        // Every other Table 3 cell loads.
        assert!(model(Llm::Phi2, Precision::Fp32).model_loads());
        assert!(model(Llm::Llama31_8b, Precision::Fp32).model_loads());
        assert!(model(Llm::MistralSmall24b, Precision::Fp16).model_loads());
        assert!(model(Llm::DeepseekQwen32b, Precision::Int8).model_loads());
    }

    #[test]
    fn memory_monotone_in_batch_and_seqlen() {
        let m = model(Llm::Llama31_8b, Precision::Fp16);
        assert!(m.peak_total_gb(64, 96) > m.peak_total_gb(32, 96));
        assert!(m.peak_total_gb(32, 512) > m.peak_total_gb(32, 96));
        assert!(m.incremental_gb(32, 96) > 0.0);
    }

    #[test]
    fn llama_seqlen_ram_matches_table7() {
        let m = model(Llm::Llama31_8b, Precision::Fp16);
        for (sl, actual) in [(128u64, 17.2), (256, 18.77), (512, 20.99), (1024, 29.13)] {
            let pred = m.peak_total_gb(32, sl);
            let rel = (pred - actual).abs() / actual;
            assert!(rel < 0.12, "sl={sl}: {pred:.2} vs {actual}");
        }
    }

    #[test]
    fn quantization_shrinks_peak_memory() {
        // Fig 3: INT8 reduces RAM by ≈46–47% vs FP16 for Phi-2/Llama/
        // Mistral (model-dominated at bs=32, sl=96).
        for llm in [Llm::Phi2, Llm::Llama31_8b, Llm::MistralSmall24b] {
            let f16 = model(llm, Precision::Fp16).peak_total_gb(32, 96);
            let i8 = model(llm, Precision::Int8).peak_total_gb(32, 96);
            let saving = 1.0 - i8 / f16;
            assert!((0.25..0.55).contains(&saving), "{llm:?} saving {saving}");
        }
    }

    #[test]
    fn smaller_device_ooms_earlier() {
        let m16 = MemoryModel::new(Llm::Llama31_8b, Precision::Fp16, 16.0);
        assert!(!m16.model_loads());
        let m16q = MemoryModel::new(Llm::Llama31_8b, Precision::Int8, 16.0);
        assert!(m16q.model_loads());
        assert!(m16q.fits(1, 96));
        assert!(!m16q.fits(128, 4096));
    }
}
