//! Refcounted fixed-size KV block pool.
//!
//! The storage substrate of the paged prefix cache: the pool hands out
//! blocks of `block_tokens` cached tokens which can be *shared* between
//! live sequences and the radix prefix cache through reference counts.
//! A block leaves the free list exactly once per `blocks_allocated`
//! increment and returns to it when its last reference drops
//! (`blocks_freed`), so the identity `allocated == freed + live` holds
//! at every instant regardless of how many holders a block had.
//! Divergence inside a shared block (a new sequence whose prompt agrees
//! with a cached block only up to token `k < block_tokens`) is modeled
//! as a copy-on-write allocation counted in `cow_events`.
//!
//! Determinism: the free list is a stack initialized `(0..total).rev()`
//! and popped from the end, so block ids are granted in ascending order
//! and a release/realloc cycle is reproducible — the same discipline as
//! [`crate::kv::KvBlockAllocator`], which this pool supersedes for the
//! prefix-cache path.

use crate::kv::KvError;

/// Fixed pool of refcounted KV blocks.
#[derive(Debug, Clone)]
pub struct BlockPool {
    /// Tokens per block.
    block_tokens: u64,
    /// Bytes per cached token (model-dependent: all layers' K+V).
    bytes_per_token: u64,
    /// Current pool size in blocks (shrinks retire free blocks).
    total_blocks: usize,
    free: Vec<usize>,
    /// Reference count per block id (indexed by the *initial* id space;
    /// retired ids keep a zero entry).
    refcount: Vec<u32>,
    allocated: u64,
    freed: u64,
    cow_events: u64,
}

impl BlockPool {
    /// A pool covering `capacity_bytes`, with `block_tokens`-token
    /// blocks for a model storing `bytes_per_token` per cached token.
    pub fn new(capacity_bytes: u64, block_tokens: u64, bytes_per_token: u64) -> Self {
        let block_bytes = (block_tokens * bytes_per_token).max(1);
        let total_blocks = (capacity_bytes / block_bytes) as usize;
        BlockPool {
            block_tokens,
            bytes_per_token,
            total_blocks,
            free: (0..total_blocks).rev().collect(),
            refcount: vec![0; total_blocks],
            allocated: 0,
            freed: 0,
            cow_events: 0,
        }
    }

    /// Take one block from the free list with refcount 1. `None` when
    /// the pool is exhausted (nothing is mutated).
    pub fn alloc(&mut self) -> Option<usize> {
        let b = self.free.pop()?;
        self.refcount[b] = 1;
        self.allocated += 1;
        Some(b)
    }

    /// Add a reference to a live block (sharing it with another holder).
    ///
    /// # Panics
    /// On a freed block — retaining one is a use-after-free.
    pub fn retain(&mut self, block: usize) {
        assert!(self.refcount[block] > 0, "retain of freed block {block}");
        self.refcount[block] += 1;
    }

    /// Drop one reference; when the last holder lets go the block
    /// returns to the free list. Returns `true` iff the block was
    /// freed by this call.
    ///
    /// # Panics
    /// On a block with no outstanding references (double free).
    pub fn unref(&mut self, block: usize) -> bool {
        assert!(self.refcount[block] > 0, "unref of freed block {block}");
        self.refcount[block] -= 1;
        if self.refcount[block] == 0 {
            self.freed += 1;
            self.free.push(block);
            true
        } else {
            false
        }
    }

    /// Copy-on-write: allocate a private copy of a (still-cached)
    /// source block for a sequence that diverges inside it. The source
    /// keeps its references; the event is counted in [`cow_events`].
    ///
    /// [`cow_events`]: BlockPool::cow_events
    pub fn cow_from(&mut self, src: usize) -> Option<usize> {
        debug_assert!(self.refcount[src] > 0, "cow from freed block {src}");
        let b = self.alloc()?;
        self.cow_events += 1;
        Some(b)
    }

    /// Shrink the pool to `new_total` blocks, retiring free blocks.
    /// Only free blocks can be retired: fails with
    /// [`KvError::OutOfBlocks`] (and changes nothing) when live blocks
    /// exceed `new_total`. Growing is a no-op.
    pub fn shrink_to(&mut self, new_total: usize) -> Result<(), KvError> {
        if new_total >= self.total_blocks {
            return Ok(());
        }
        let retire = self.total_blocks - new_total;
        if retire > self.free.len() {
            return Err(KvError::OutOfBlocks { requested: retire, free: self.free.len() });
        }
        self.free.truncate(self.free.len() - retire);
        self.total_blocks = new_total;
        Ok(())
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u64 {
        self.block_tokens
    }

    /// Bytes per cached token.
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Current pool size in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Blocks with at least one outstanding reference.
    pub fn used_blocks(&self) -> usize {
        self.total_blocks - self.free.len()
    }

    /// Current reference count of a block.
    pub fn refcount(&self, block: usize) -> u32 {
        self.refcount[block]
    }

    /// Size of the block-id space (the pool's *initial* block count;
    /// shrinks retire ids without renumbering the survivors).
    pub fn id_space(&self) -> usize {
        self.refcount.len()
    }

    /// Cumulative blocks taken from the free list.
    pub fn blocks_allocated(&self) -> u64 {
        self.allocated
    }

    /// Cumulative blocks returned to the free list.
    pub fn blocks_freed(&self) -> u64 {
        self.freed
    }

    /// Cumulative copy-on-write allocations.
    pub fn cow_events(&self) -> u64 {
        self.cow_events
    }

    /// Internal consistency check; returns one message per violation
    /// (empty = healthy). Checked by the `edgellm-check` block-refcount
    /// oracle after every audited run.
    pub fn verify(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let mut seen = vec![false; self.refcount.len()];
        for &f in &self.free {
            if f >= self.refcount.len() {
                bad.push(format!("free list holds out-of-range block {f}"));
                continue;
            }
            if seen[f] {
                bad.push(format!("block {f} appears twice in the free list"));
            }
            seen[f] = true;
            if self.refcount[f] != 0 {
                bad.push(format!("free block {f} has refcount {}", self.refcount[f]));
            }
        }
        let live = self.refcount.iter().filter(|&&c| c > 0).count();
        if self.allocated != self.freed + live as u64 {
            bad.push(format!(
                "block conservation broken: allocated {} != freed {} + live {live}",
                self.allocated, self.freed
            ));
        }
        if self.free.len() + live > self.total_blocks {
            bad.push(format!(
                "pool overcommitted: {} free + {live} live > {} total",
                self.free.len(),
                self.total_blocks
            ));
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BlockPool {
        // 1 MB pool, 16-token blocks, 1 KB per token → 64 blocks.
        BlockPool::new(1 << 20, 16, 1024)
    }

    #[test]
    fn alloc_grants_ascending_ids() {
        let mut p = pool();
        assert_eq!(p.alloc(), Some(0));
        assert_eq!(p.alloc(), Some(1));
        assert_eq!(p.alloc(), Some(2));
        assert_eq!(p.free_blocks(), 61);
        assert_eq!(p.blocks_allocated(), 3);
    }

    #[test]
    fn shared_block_frees_once() {
        let mut p = pool();
        let b = p.alloc().unwrap();
        p.retain(b);
        p.retain(b);
        assert_eq!(p.refcount(b), 3);
        assert!(!p.unref(b));
        assert!(!p.unref(b));
        assert_eq!(p.blocks_freed(), 0);
        assert!(p.unref(b));
        assert_eq!(p.blocks_freed(), 1);
        assert_eq!(p.free_blocks(), 64);
        assert!(p.verify().is_empty());
    }

    #[test]
    fn cow_allocates_and_counts() {
        let mut p = pool();
        let src = p.alloc().unwrap();
        let copy = p.cow_from(src).unwrap();
        assert_ne!(src, copy);
        assert_eq!(p.cow_events(), 1);
        assert_eq!(p.refcount(src), 1, "source keeps its references");
        assert_eq!(p.refcount(copy), 1);
        assert!(p.verify().is_empty());
    }

    #[test]
    fn conservation_holds_through_churn() {
        let mut p = pool();
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        p.retain(a);
        p.unref(b);
        let c = p.alloc().unwrap();
        // Freed block is reused deterministically (stack order).
        assert_eq!(c, b);
        p.unref(a);
        p.unref(a);
        p.unref(c);
        assert_eq!(p.blocks_allocated(), 3);
        assert_eq!(p.blocks_freed(), 3);
        assert_eq!(p.used_blocks(), 0);
        assert!(p.verify().is_empty());
    }

    #[test]
    #[should_panic(expected = "unref of freed block")]
    fn double_free_panics() {
        let mut p = pool();
        let b = p.alloc().unwrap();
        p.unref(b);
        p.unref(b);
    }

    #[test]
    fn shrink_retires_free_blocks_only() {
        let mut p = pool();
        let held: Vec<usize> = (0..7).map(|_| p.alloc().unwrap()).collect();
        p.shrink_to(10).unwrap();
        assert_eq!(p.total_blocks(), 10);
        assert_eq!(p.free_blocks(), 3);
        assert!(p.shrink_to(6).is_err());
        assert_eq!(p.total_blocks(), 10);
        for b in held {
            p.unref(b);
        }
        assert_eq!(p.free_blocks(), 10);
        assert!(p.verify().is_empty());
    }
}
