//! # edgellm-mem — shared CPU/GPU memory accounting and KV-cache paging
//!
//! The Orin AGX shares 64 GB of LPDDR5 between CPU and GPU; the paper
//! tracks *incremental peak memory* per workload and reports OoM cells
//! (Phi-2 beyond sequence length 256, Mistral FP32, DeepSeek FP32/FP16).
//! This crate reproduces that accounting:
//!
//! * [`layout`] — the analytic memory model: weights + KV cache +
//!   activations (with per-model calibrated activation terms; Phi-2's
//!   eager-attention quadratic term is what drives its OoM at `sl ≥ 512`);
//! * [`tracker`] — a peak/incremental tracker equivalent to the paper's
//!   "difference between the peak memory usage during the run and the base
//!   memory usage before loading the model" (§2);
//! * [`kv`] — a paged KV-cache allocator (block-granular, per-sequence)
//!   with fragmentation statistics, used by the runtime and the paging
//!   ablation bench;
//! * [`block_pool`] / [`radix`] / [`paged`] — the prefix-sharing
//!   generation of that allocator: refcounted fixed-size blocks
//!   ([`BlockPool`]), a radix-tree prompt-prefix cache with
//!   deterministic LRU eviction ([`RadixCache`]), and the [`PagedKv`]
//!   facade the serve scheduler drives (vLLM/SGLang-style paged
//!   attention accounting, simulation-first).

pub mod block_pool;
pub mod kv;
pub mod layout;
pub mod paged;
pub mod radix;
pub mod tracker;

pub use block_pool::BlockPool;
pub use kv::{KvBlockAllocator, KvError, SeqId};
pub use layout::{ActivationCalib, MemoryModel, OOM_HEADROOM_GB};
pub use paged::{AdmitOutcome, AdmitPlan, PagedKv};
pub use radix::{PrefixMatch, RadixCache, TokenId};
pub use tracker::{MemTracker, OomError};

/// Decimal gigabyte (the unit of every table in the paper).
pub const GB: f64 = 1e9;
