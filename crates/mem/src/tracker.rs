//! Peak / incremental memory tracking with OoM errors.

use crate::GB;
use std::fmt;

/// Raised when an allocation would exceed the tracked capacity — the
/// simulator's equivalent of the paper's "OoM" cells.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes in use at the time.
    pub in_use: u64,
    /// Usable capacity in bytes.
    pub capacity: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: requested {:.2} GB with {:.2}/{:.2} GB in use",
            self.requested as f64 / GB,
            self.in_use as f64 / GB,
            self.capacity as f64 / GB
        )
    }
}

impl std::error::Error for OomError {}

/// Tracks current, peak and baseline usage of a fixed-capacity memory,
/// replicating the paper's measurement: *incremental peak memory* is the
/// difference between the run's peak and the pre-load baseline (§2).
#[derive(Debug, Clone)]
pub struct MemTracker {
    capacity: u64,
    in_use: u64,
    peak: u64,
    baseline: u64,
}

impl MemTracker {
    /// A tracker over `capacity` usable bytes.
    pub fn new(capacity: u64) -> Self {
        MemTracker { capacity, in_use: 0, peak: 0, baseline: 0 }
    }

    /// Record the pre-workload baseline (call after loading the model).
    pub fn set_baseline(&mut self) {
        self.baseline = self.in_use;
    }

    /// Allocate, failing with [`OomError`] past capacity.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OomError> {
        let new = self.in_use.saturating_add(bytes);
        if new > self.capacity {
            return Err(OomError {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use = new;
        self.peak = self.peak.max(new);
        Ok(())
    }

    /// Free bytes (saturating; freeing more than allocated clamps to 0).
    pub fn free(&mut self, bytes: u64) {
        self.in_use = self.in_use.saturating_sub(bytes);
    }

    /// Bytes currently in use.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Peak bytes ever in use.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Peak above the recorded baseline — the paper's incremental metric.
    pub fn incremental_peak(&self) -> u64 {
        self.peak.saturating_sub(self.baseline)
    }

    /// Peak in decimal GB.
    pub fn peak_gb(&self) -> f64 {
        self.peak as f64 / GB
    }

    /// Incremental peak in decimal GB.
    pub fn incremental_peak_gb(&self) -> f64 {
        self.incremental_peak() as f64 / GB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut t = MemTracker::new(100);
        t.alloc(60).unwrap();
        t.free(20);
        assert_eq!(t.in_use(), 40);
        assert_eq!(t.peak(), 60);
    }

    #[test]
    fn oom_at_capacity() {
        let mut t = MemTracker::new(100);
        t.alloc(80).unwrap();
        let err = t.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        // Failed allocation leaves state unchanged.
        assert_eq!(t.in_use(), 80);
        t.alloc(20).unwrap();
    }

    #[test]
    fn incremental_peak_relative_to_baseline() {
        let mut t = MemTracker::new(1000);
        t.alloc(300).unwrap(); // model load
        t.set_baseline();
        t.alloc(150).unwrap(); // workload
        t.free(150);
        t.alloc(200).unwrap();
        assert_eq!(t.peak(), 500);
        assert_eq!(t.incremental_peak(), 200);
    }

    #[test]
    fn over_free_saturates() {
        let mut t = MemTracker::new(10);
        t.alloc(5).unwrap();
        t.free(50);
        assert_eq!(t.in_use(), 0);
    }

    #[test]
    fn peak_survives_frees() {
        let mut t = MemTracker::new(100);
        t.alloc(90).unwrap();
        t.free(90);
        assert_eq!(t.peak(), 90);
        assert_eq!(t.in_use(), 0);
    }
}
