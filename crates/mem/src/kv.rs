//! A paged (block-granular) KV-cache allocator.
//!
//! The paper attributes memory growth with batch size and sequence length
//! to the KV cache (§3.1/§3.2). The runtime allocates cache space through
//! this block allocator; the paging ablation bench compares it against a
//! contiguous-reservation strategy to show the fragmentation head-room a
//! paged design (vLLM-style) buys on a shared-memory device.

use std::collections::HashMap;
use std::fmt;

/// Identifies one sequence in a batch.
pub type SeqId = u32;

/// Allocation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum KvError {
    /// No free blocks remain.
    OutOfBlocks {
        /// Blocks requested.
        requested: usize,
        /// Blocks free.
        free: usize,
    },
    /// The sequence id is not registered.
    UnknownSeq(SeqId),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::OutOfBlocks { requested, free } => {
                write!(f, "KV cache exhausted: need {requested} blocks, {free} free")
            }
            KvError::UnknownSeq(id) => write!(f, "unknown sequence {id}"),
        }
    }
}

impl std::error::Error for KvError {}

/// Fixed-pool, block-granular KV allocator.
#[derive(Debug, Clone)]
pub struct KvBlockAllocator {
    /// Tokens per block.
    block_tokens: u64,
    /// Bytes per token (model-dependent: all layers' K+V).
    bytes_per_token: u64,
    /// Total blocks in the pool.
    total_blocks: usize,
    free_blocks: Vec<usize>,
    /// Per-sequence: (blocks held, tokens used).
    seqs: HashMap<SeqId, (Vec<usize>, u64)>,
}

impl KvBlockAllocator {
    /// A pool covering `capacity_bytes`, with `block_tokens`-token blocks
    /// for a model storing `bytes_per_token` per cached token.
    pub fn new(capacity_bytes: u64, block_tokens: u64, bytes_per_token: u64) -> Self {
        let block_bytes = block_tokens * bytes_per_token;
        let total_blocks = (capacity_bytes / block_bytes.max(1)) as usize;
        KvBlockAllocator {
            block_tokens,
            bytes_per_token,
            total_blocks,
            free_blocks: (0..total_blocks).rev().collect(),
            seqs: HashMap::new(),
        }
    }

    /// Register a new sequence (no blocks yet).
    pub fn register(&mut self, id: SeqId) {
        self.seqs.entry(id).or_insert_with(|| (Vec::new(), 0));
    }

    /// Blocks that appending `tokens` cached tokens to `id` would newly
    /// take from the pool (0 when the sequence's last block has room).
    ///
    /// Lets a scheduler test an allocation before mutating — preempting
    /// to free space instead of unwinding a half-applied iteration.
    pub fn blocks_needed(&self, id: SeqId, tokens: u64) -> Result<usize, KvError> {
        let (blocks, used) = self.seqs.get(&id).ok_or(KvError::UnknownSeq(id))?;
        let need_blocks = (used + tokens).div_ceil(self.block_tokens) as usize;
        Ok(need_blocks.saturating_sub(blocks.len()))
    }

    /// Append `tokens` cached tokens to a sequence, taking blocks on
    /// demand. Returns the number of blocks newly taken. On
    /// [`KvError::OutOfBlocks`] nothing is allocated (no partial grow).
    pub fn append(&mut self, id: SeqId, tokens: u64) -> Result<usize, KvError> {
        let (blocks, used) = self.seqs.get_mut(&id).ok_or(KvError::UnknownSeq(id))?;
        let need_tokens = *used + tokens;
        let need_blocks = need_tokens.div_ceil(self.block_tokens) as usize;
        let extra = need_blocks.saturating_sub(blocks.len());
        if extra > 0 {
            if extra > self.free_blocks.len() {
                return Err(KvError::OutOfBlocks {
                    requested: extra,
                    free: self.free_blocks.len(),
                });
            }
            for _ in 0..extra {
                blocks.push(self.free_blocks.pop().expect("checked above"));
            }
        }
        *used = need_tokens;
        Ok(extra)
    }

    /// Finish (or preempt) a sequence, returning its blocks to the pool.
    /// Returns the number of blocks freed.
    pub fn release(&mut self, id: SeqId) -> Result<usize, KvError> {
        let (blocks, _) = self.seqs.remove(&id).ok_or(KvError::UnknownSeq(id))?;
        let freed = blocks.len();
        self.free_blocks.extend(blocks);
        Ok(freed)
    }

    /// Shrink the pool to `new_total` blocks, retiring free blocks.
    ///
    /// Models a mid-run capacity loss — a co-tenant claiming memory, or a
    /// fault injector's KV-shrink knob. Only *free* blocks can be
    /// retired: when live sequences hold more than `new_total` blocks the
    /// call fails with [`KvError::OutOfBlocks`] and nothing changes (the
    /// caller must preempt first). Growing (`new_total ≥` current total)
    /// is a no-op.
    pub fn shrink_to(&mut self, new_total: usize) -> Result<(), KvError> {
        if new_total >= self.total_blocks {
            return Ok(());
        }
        let retire = self.total_blocks - new_total;
        if retire > self.free_blocks.len() {
            return Err(KvError::OutOfBlocks { requested: retire, free: self.free_blocks.len() });
        }
        self.free_blocks.truncate(self.free_blocks.len() - retire);
        self.total_blocks = new_total;
        Ok(())
    }

    /// Blocks a live sequence currently holds (`None` for unknown ids).
    pub fn blocks_held(&self, id: SeqId) -> Option<usize> {
        self.seqs.get(&id).map(|(blocks, _)| blocks.len())
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.free_blocks.len()
    }

    /// Total pool blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Blocks currently held by live sequences.
    pub fn used_blocks(&self) -> usize {
        self.total_blocks - self.free_blocks.len()
    }

    /// Bytes reserved (all held blocks).
    pub fn reserved_bytes(&self) -> u64 {
        let held = self.total_blocks - self.free_blocks.len();
        held as u64 * self.block_tokens * self.bytes_per_token
    }

    /// Bytes actually covering cached tokens.
    pub fn used_bytes(&self) -> u64 {
        self.seqs.values().map(|(_, used)| used * self.bytes_per_token).sum()
    }

    /// Internal fragmentation: reserved-but-unused fraction of held blocks
    /// (0 when empty).
    pub fn fragmentation(&self) -> f64 {
        let reserved = self.reserved_bytes();
        if reserved == 0 {
            0.0
        } else {
            1.0 - self.used_bytes() as f64 / reserved as f64
        }
    }

    /// Live sequences.
    pub fn live_seqs(&self) -> usize {
        self.seqs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> KvBlockAllocator {
        // 1 MB pool, 16-token blocks, 1 KB per token → 64 blocks.
        KvBlockAllocator::new(1 << 20, 16, 1024)
    }

    #[test]
    fn pool_size_computed_from_capacity() {
        let a = alloc();
        assert_eq!(a.total_blocks(), 64);
        assert_eq!(a.free_blocks(), 64);
    }

    #[test]
    fn append_takes_blocks_on_demand() {
        let mut a = alloc();
        a.register(1);
        assert_eq!(a.append(1, 10).unwrap(), 1); // 1 block
        assert_eq!(a.free_blocks(), 63);
        assert_eq!(a.append(1, 6).unwrap(), 0); // exactly fills block 1
        assert_eq!(a.free_blocks(), 63);
        assert_eq!(a.append(1, 1).unwrap(), 1); // spills into block 2
        assert_eq!(a.free_blocks(), 62);
        assert_eq!(a.blocks_held(1), Some(2));
        assert_eq!(a.used_blocks(), 2);
    }

    #[test]
    fn blocks_needed_predicts_append_without_mutating() {
        let mut a = alloc();
        a.register(1);
        assert_eq!(a.blocks_needed(1, 17).unwrap(), 2);
        let free = a.free_blocks();
        assert_eq!(a.free_blocks(), free); // pure query
        assert_eq!(a.append(1, 17).unwrap(), 2);
        assert_eq!(a.blocks_needed(1, 15).unwrap(), 0); // room in block 2
        assert_eq!(a.blocks_needed(1, 16).unwrap(), 1);
        assert!(matches!(a.blocks_needed(9, 1), Err(KvError::UnknownSeq(9))));
    }

    #[test]
    fn release_returns_blocks() {
        let mut a = alloc();
        a.register(1);
        a.append(1, 100).unwrap();
        let free_before = a.free_blocks();
        assert_eq!(a.release(1).unwrap(), 7); // ceil(100/16)
        assert_eq!(a.free_blocks(), 64);
        assert!(free_before < 64);
        assert!(matches!(a.release(1), Err(KvError::UnknownSeq(1))));
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut a = alloc();
        a.register(1);
        // 64 blocks × 16 tokens = 1024 tokens capacity.
        a.append(1, 1024).unwrap();
        let err = a.append(1, 1).unwrap_err();
        assert!(matches!(err, KvError::OutOfBlocks { .. }));
    }

    #[test]
    fn fragmentation_bounded_by_one_block_per_seq() {
        let mut a = alloc();
        for id in 0..8 {
            a.register(id);
            a.append(id, 17).unwrap(); // 2 blocks, 15 tokens wasted
        }
        let frag = a.fragmentation();
        let expect = 1.0 - (8.0 * 17.0) / (16.0 * 16.0);
        assert!((frag - expect).abs() < 1e-9, "{frag} vs {expect}");
    }

    #[test]
    fn shrink_retires_free_blocks_only() {
        let mut a = alloc();
        a.register(1);
        a.append(1, 100).unwrap(); // 7 blocks held
        a.shrink_to(10).unwrap();
        assert_eq!(a.total_blocks(), 10);
        assert_eq!(a.free_blocks(), 3);
        assert_eq!(a.used_blocks(), 7);
        // Shrinking below the live footprint fails and changes nothing.
        let err = a.shrink_to(6).unwrap_err();
        assert!(matches!(err, KvError::OutOfBlocks { .. }));
        assert_eq!(a.total_blocks(), 10);
        // Growing is a no-op, not an error.
        a.shrink_to(64).unwrap();
        assert_eq!(a.total_blocks(), 10);
        // The held blocks stay valid across the shrink.
        assert_eq!(a.release(1).unwrap(), 7);
        assert_eq!(a.free_blocks(), 10);
    }

    #[test]
    fn no_block_is_double_owned() {
        let mut a = alloc();
        a.register(1);
        a.register(2);
        a.append(1, 64).unwrap();
        a.append(2, 64).unwrap();
        a.release(1).unwrap();
        a.register(3);
        a.append(3, 64).unwrap();
        // blocks: 64 total, seq2 holds 4, seq3 holds 4.
        assert_eq!(a.free_blocks(), 64 - 8);
        assert_eq!(a.live_seqs(), 2);
    }

    #[test]
    fn batch_of_sequences_fills_pool_fairly() {
        let mut a = alloc();
        for id in 0..32 {
            a.register(id);
        }
        // Each sequence appends 2 blocks' worth: 64 blocks exactly.
        for id in 0..32 {
            a.append(id, 32).unwrap();
        }
        assert_eq!(a.free_blocks(), 0);
        assert!(a.append(0, 1).is_err());
        for id in 0..32 {
            a.release(id).unwrap();
        }
        assert_eq!(a.free_blocks(), 64);
        assert_eq!(a.fragmentation(), 0.0);
    }
}
