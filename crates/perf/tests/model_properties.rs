//! Property-based tests of the performance model's physical invariants.

use edgellm_hw::{DeviceSpec, PowerMode};
use edgellm_models::{Llm, Precision};
use edgellm_perf::PerfModel;
use proptest::prelude::*;

fn any_llm() -> impl Strategy<Value = Llm> {
    prop_oneof![
        Just(Llm::Phi2),
        Just(Llm::Llama31_8b),
        Just(Llm::MistralSmall24b),
        Just(Llm::DeepseekQwen32b),
    ]
}

fn any_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Fp32),
        Just(Precision::Fp16),
        Just(Precision::Int8),
        Just(Precision::Int4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Latency decomposition components are non-negative and sum to total.
    #[test]
    fn breakdown_is_conservative(llm in any_llm(), prec in any_precision(), bs in 1u64..128, no in 1u64..256) {
        let dev = DeviceSpec::orin_agx_64gb();
        let m = PerfModel::new(dev.clone(), llm, prec, dev.max_clocks());
        let b = m.generate(bs, 32, no);
        prop_assert!(b.prefill_s >= 0.0 && b.host_s >= 0.0);
        prop_assert!(b.traffic_s >= 0.0 && b.compute_s >= 0.0);
        prop_assert!((b.total_s() - (b.prefill_s + b.host_s + b.traffic_s + b.compute_s)).abs() < 1e-9);
        prop_assert!(b.total_s().is_finite() && b.total_s() > 0.0);
    }

    /// Throughput per sequence never *increases* when sequences are added
    /// (diminishing returns of batching).
    #[test]
    fn per_sequence_throughput_diminishes(llm in any_llm(), bs in 1u64..64) {
        let dev = DeviceSpec::orin_agx_64gb();
        let m = PerfModel::new(dev.clone(), llm, Precision::Fp16, dev.max_clocks());
        let per_seq = |b: u64| m.throughput_tok_s(b, 32, 64) / b as f64;
        prop_assert!(per_seq(bs * 2) <= per_seq(bs) + 1e-9);
    }

    /// A decode step always costs at least the weight-stream time.
    #[test]
    fn weight_stream_is_a_floor(llm in any_llm(), prec in any_precision(), bs in 1u64..128, ctx in 1u64..2048) {
        let dev = DeviceSpec::orin_agx_64gb();
        let m = PerfModel::new(dev.clone(), llm, prec, dev.max_clocks());
        prop_assert!(m.decode_step_time(bs, ctx) >= m.weight_stream_time());
    }

    /// Step time is monotone in context length (KV + overhead traffic).
    #[test]
    fn step_monotone_in_context(llm in any_llm(), bs in 1u64..64, ctx in 1u64..1024, extra in 1u64..512) {
        let dev = DeviceSpec::orin_agx_64gb();
        let m = PerfModel::new(dev.clone(), llm, Precision::Fp16, dev.max_clocks());
        prop_assert!(m.decode_step_time(bs, ctx + extra) >= m.decode_step_time(bs, ctx));
    }

    /// Any valid power mode's effective bandwidth and compute never exceed
    /// the MAXN values.
    #[test]
    fn throttled_resources_bounded_by_maxn(gpu in 100u32..1301, cpu_tenths in 3u32..22, mem in 500u32..3200) {
        let dev = DeviceSpec::orin_agx_64gb();
        let pm = PowerMode::custom("t", gpu, cpu_tenths as f64 / 10.0, 12, mem);
        prop_assume!(pm.validate(&dev).is_ok());
        let t = PerfModel::new(dev.clone(), Llm::Llama31_8b, Precision::Fp16, pm.clocks);
        let maxn = PerfModel::new(dev.clone(), Llm::Llama31_8b, Precision::Fp16, dev.max_clocks());
        prop_assert!(t.effective_bandwidth() <= maxn.effective_bandwidth() + 1e-6);
        prop_assert!(t.effective_decode_flops() <= maxn.effective_decode_flops() + 1e-6);
        prop_assert!(t.host_per_step() >= maxn.host_per_step() - 1e-12);
    }

    /// Quantized serving never uses more weight traffic than FP32.
    #[test]
    fn fp32_is_the_traffic_ceiling(llm in any_llm(), prec in any_precision()) {
        let dev = DeviceSpec::orin_agx_64gb();
        let q = PerfModel::new(dev.clone(), llm, prec, dev.max_clocks());
        let f = PerfModel::new(dev.clone(), llm, Precision::Fp32, dev.max_clocks());
        prop_assert!(q.weight_stream_time() <= f.weight_stream_time() + 1e-12);
    }
}
