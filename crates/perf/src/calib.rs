//! Calibration constants, fitted offline against the paper's appendix
//! tables (WikiText2 Table 4 batch sweep, Tables 6/7 sequence sweep).
//!
//! # Fitting procedure
//!
//! The latency model (see [`crate::latency`]) has two free per-model
//! constants at the serving precision:
//!
//! * `h` — host/dispatch seconds per decode step, solved exactly from the
//!   `bs=1, sl=96` anchor of Table 4;
//! * `k2` — long-context overhead bytes per cached token beyond
//!   [`CTX_OVERHEAD_THRESHOLD`] tokens, solved exactly from the longest
//!   sequence anchor of Table 6/7 (`bs=32, sl=1024`; `sl=256` for Phi-2
//!   which goes OoM beyond that).
//!
//! Everything else is physics or global: device peaks from the datasheet,
//! fixed efficiency factors, and the per-precision cost multipliers below
//! (anchored on the §3.3 claims: INT8 ≈ +62% latency for Phi-2/Llama,
//! ≈ +2% for Mistral-24B; INT4 slower still with the GPU saturated).
//!
//! With 2 fitted constants against ~12 published measurements per model,
//! the remaining agreement (within ±15% for most cells, worst ±32% on the
//! paper's own noisy Mistral-bs32/DeepQ-bs16 points) is explained by the
//! mechanism, not the fit. EXPERIMENTS.md records the full residual table.

use edgellm_models::{Llm, Precision};

/// Fraction of datasheet DRAM bandwidth a well-formed weight stream
/// achieves (LPDDR5 sequential reads).
pub const BW_EFFICIENCY: f64 = 0.9;

/// Effective prefill compute throughput as a fraction of the FP16 tensor
/// peak (large GEMMs, good tensor-core utilization).
pub const PREFILL_EFF: f64 = 9.0 / 10.6;

/// Effective decode compute throughput as a fraction of the FP16 tensor
/// peak (batched GEMV-shaped work).
pub const DECODE_EFF: f64 = 8.5 / 10.6;

/// Overlap factor between weight streaming and compute within a decode
/// step: `t = max(traffic, compute) + BETA·min(traffic, compute)`.
/// 0 = perfect overlap, 1 = fully serial. 0.5 fits the appendix tables.
pub const OVERLAP_BETA: f64 = 0.5;

/// Context length beyond which the per-cached-token overhead (`k2`)
/// applies. Below this the runtime's fused paths keep attention cheap.
pub const CTX_OVERHEAD_THRESHOLD: u64 = 128;

/// Low-memory-clock penalty: effective bandwidth is
/// `peak·scale / (1 + ALPHA·(1/scale − 1))` — DRAM efficiency degrades
/// beyond the linear clock scaling at low EMC frequencies (latency-bound
/// accesses). ALPHA solved so PM-H (665 MHz) yields the paper's ≈ +370%
/// latency on Llama (§3.4).
pub const MEM_PENALTY_ALPHA: f64 = 0.15;

/// Host dispatch needs few cores: below this many online cores the
/// single-threaded dispatch path starts contending with the OS.
pub const HOST_MIN_CORES: u32 = 2;

/// Per-precision execution cost multipliers (global, model-independent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionCosts {
    /// Multiplier on compute time relative to FP16 tensor-core execution.
    pub compute_mult: f64,
    /// Fraction of the model's INT8 per-layer dispatch overhead incurred.
    pub dispatch_frac: f64,
    /// Fraction of host time during which the GPU stays busy (used by the
    /// utilization model; INT4's "host" time is mostly GPU-side dequant,
    /// hence the paper's 100% GPU utilization under INT4 vs 60% for INT8).
    pub host_gpu_frac: f64,
}

impl PrecisionCosts {
    /// Costs for a storage precision.
    pub fn of(prec: Precision) -> Self {
        match prec {
            // FP32 runs on CUDA cores at half the FP16 tensor rate.
            Precision::Fp32 => {
                PrecisionCosts { compute_mult: 2.0, dispatch_frac: 0.0, host_gpu_frac: 0.4 }
            }
            Precision::Fp16 => {
                PrecisionCosts { compute_mult: 1.0, dispatch_frac: 0.0, host_gpu_frac: 0.4 }
            }
            // LLM.int8(): INT8 tensor cores are ~2× FP16 FLOP-rate but the
            // two-stream outlier decomposition adds per-layer dispatch.
            Precision::Int8 => {
                PrecisionCosts { compute_mult: 0.62, dispatch_frac: 1.0, host_gpu_frac: 0.4 }
            }
            // NF4: dequantization arithmetic dominates; GPU saturated.
            Precision::Int4 => {
                PrecisionCosts { compute_mult: 4.0, dispatch_frac: 0.5, host_gpu_frac: 0.9 }
            }
        }
    }
}

/// Per-model calibrated constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelCalib {
    /// Host/dispatch seconds per decode step at MAXN, serving precision
    /// class FP16 (fitted on the `bs=1` anchor).
    pub host_s: f64,
    /// Long-context overhead, bytes of equivalent traffic per cached token
    /// beyond the threshold (fitted on the longest-sequence anchor).
    pub k2_bytes: f64,
    /// Additional per-layer host/dispatch seconds under INT8 (the
    /// LLM.int8() outlier path; fitted on the §3.3 slowdown claims).
    pub int8_layer_s: f64,
    /// Multiplier on total latency for the LongBench prompt pool relative
    /// to WikiText2 (the ≈ ≤10% dataset effect of Table 5 vs Table 4).
    pub longbench_factor: f64,
}

impl ModelCalib {
    /// Calibration for one of the paper's four models.
    ///
    /// `host_s`/`k2_bytes` provenance: solved from Table 4 `bs=1` and
    /// Table 6/7 longest-sequence rows. `int8_layer_s`: solved so that
    /// INT8 latency at `bs=32, sl=96` is +62% (Phi-2, Llama — §3.3),
    /// +2% (Mistral — §3.3); DeepSeek's serving precision *is* INT8, so
    /// its base host was split assuming a Mistral-like FP16 host of 30 ms.
    /// `longbench_factor`: Table 5 / Table 4 latency ratio at `bs=128`.
    pub fn for_llm(llm: Llm) -> Self {
        match llm {
            Llm::Phi2 => ModelCalib {
                host_s: 26.94e-3,
                k2_bytes: 2.334e6,
                int8_layer_s: 2.32e-3,
                longbench_factor: 0.93,
            },
            Llm::Llama31_8b => ModelCalib {
                host_s: 9.60e-3,
                k2_bytes: 2.654e6,
                int8_layer_s: 4.95e-3,
                longbench_factor: 0.965,
            },
            Llm::MistralSmall24b => ModelCalib {
                host_s: 25.55e-3,
                k2_bytes: 5.163e6,
                int8_layer_s: 4.91e-3,
                longbench_factor: 0.99,
            },
            // DeepSeek is served in INT8: its fitted step host of 483 ms
            // decomposes as 30 ms FP16-class host + 64 layers × 7.08 ms.
            Llm::DeepseekQwen32b => ModelCalib {
                host_s: 30.0e-3,
                k2_bytes: 15.390e6,
                int8_layer_s: 7.08e-3,
                longbench_factor: 0.96,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_has_positive_constants() {
        for llm in Llm::ALL {
            let c = ModelCalib::for_llm(llm);
            assert!(c.host_s > 0.0);
            assert!(c.k2_bytes > 0.0);
            assert!(c.int8_layer_s > 0.0);
            assert!((0.9..=1.0).contains(&c.longbench_factor));
        }
    }

    #[test]
    fn deepq_int8_host_reconstructs_fitted_value() {
        // 30 ms + 64 × 7.08 ms ≈ the 483 ms fitted on Table 4 bs=1.
        let c = ModelCalib::for_llm(Llm::DeepseekQwen32b);
        let total = c.host_s + 64.0 * c.int8_layer_s;
        assert!((total - 0.483).abs() < 0.005, "got {total}");
    }

    #[test]
    fn precision_costs_orderings() {
        let fp16 = PrecisionCosts::of(Precision::Fp16);
        let fp32 = PrecisionCosts::of(Precision::Fp32);
        let int8 = PrecisionCosts::of(Precision::Int8);
        let int4 = PrecisionCosts::of(Precision::Int4);
        assert!(fp32.compute_mult > fp16.compute_mult);
        assert!(int8.compute_mult < fp16.compute_mult, "int8 tensor cores are faster");
        assert!(int4.compute_mult > fp32.compute_mult, "nf4 dequant dominates");
        assert!(int8.dispatch_frac > 0.0 && fp16.dispatch_frac == 0.0);
        assert!(int4.host_gpu_frac > int8.host_gpu_frac, "int4 saturates the GPU");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the invariant
    fn global_constants_sane() {
        assert!((0.0..=1.0).contains(&BW_EFFICIENCY));
        assert!(PREFILL_EFF > DECODE_EFF);
        assert!((0.0..=1.0).contains(&OVERLAP_BETA));
    }
}
