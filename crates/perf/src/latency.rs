//! The latency model: prefill + auto-regressive decode over a device.

use crate::calib::{
    ModelCalib, PrecisionCosts, BW_EFFICIENCY, CTX_OVERHEAD_THRESHOLD, DECODE_EFF, HOST_MIN_CORES,
    MEM_PENALTY_ALPHA, OVERLAP_BETA, PREFILL_EFF,
};
use edgellm_hw::{ClockState, ComputePrecision, DeviceSpec};
use edgellm_models::{flops, Llm, ModelArch, Precision};

/// A latency prediction decomposed into its mechanism components.
/// All values in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Prefill phase (prompt ingestion).
    pub prefill_s: f64,
    /// Total decode host/dispatch time.
    pub host_s: f64,
    /// Total decode weight+KV+overhead traffic time (the memory-bound core).
    pub traffic_s: f64,
    /// Total decode compute time *beyond* what overlaps with traffic.
    pub compute_s: f64,
}

impl LatencyBreakdown {
    /// End-to-end time to last token for the batch.
    pub fn total_s(&self) -> f64 {
        self.prefill_s + self.host_s + self.traffic_s + self.compute_s
    }
}

/// A configured performance model: device + model + precision + clocks.
#[derive(Debug, Clone)]
pub struct PerfModel {
    device: DeviceSpec,
    arch: ModelArch,
    calib: ModelCalib,
    costs: PrecisionCosts,
    precision: Precision,
    clocks: ClockState,
}

impl PerfModel {
    /// Build a model for one of the paper's LLMs.
    pub fn new(device: DeviceSpec, llm: Llm, precision: Precision, clocks: ClockState) -> Self {
        Self::with_calib(device, llm, precision, clocks, ModelCalib::for_llm(llm))
    }

    /// Build a model with explicit calibration constants — the ablation
    /// hook (e.g. zeroing the host term to get a pure roofline).
    pub fn with_calib(
        device: DeviceSpec,
        llm: Llm,
        precision: Precision,
        clocks: ClockState,
        calib: ModelCalib,
    ) -> Self {
        PerfModel {
            arch: llm.arch(),
            calib,
            costs: PrecisionCosts::of(precision),
            precision,
            device,
            clocks,
        }
    }

    /// The architecture being modeled.
    pub fn arch(&self) -> &ModelArch {
        &self.arch
    }

    /// The storage precision being modeled.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The clock state in force.
    pub fn clocks(&self) -> &ClockState {
        &self.clocks
    }

    /// Effective DRAM bandwidth (bytes/s) under the current memory clock,
    /// including the low-frequency latency penalty (see
    /// [`MEM_PENALTY_ALPHA`]).
    pub fn effective_bandwidth(&self) -> f64 {
        let scale = self.clocks.mem_scale(&self.device);
        let peak = self.device.peak_bandwidth_gbps(&self.clocks) * 1e9;
        peak * BW_EFFICIENCY / (1.0 + MEM_PENALTY_ALPHA * (1.0 / scale - 1.0))
    }

    /// Effective decode compute throughput (FLOP/s) under the current GPU
    /// clock, including the per-precision multiplier.
    pub fn effective_decode_flops(&self) -> f64 {
        self.device.peak_compute_flops(ComputePrecision::Fp16, &self.clocks) * DECODE_EFF
            / self.costs.compute_mult
    }

    /// Effective prefill compute throughput (FLOP/s).
    pub fn effective_prefill_flops(&self) -> f64 {
        self.device.peak_compute_flops(ComputePrecision::Fp16, &self.clocks) * PREFILL_EFF
            / self.costs.compute_mult
    }

    /// Host/dispatch seconds per decode step under the current CPU clock
    /// and online-core count.
    pub fn host_per_step(&self) -> f64 {
        let base = self.calib.host_s
            + self.costs.dispatch_frac * self.calib.int8_layer_s * self.arch.layers as f64;
        let cpu = self.clocks.cpu_scale(&self.device);
        let core_penalty = if self.clocks.cores_online < HOST_MIN_CORES {
            HOST_MIN_CORES as f64 / self.clocks.cores_online as f64
        } else {
            1.0
        };
        base / cpu * core_penalty
    }

    /// Time to stream the full weight set once.
    pub fn weight_stream_time(&self) -> f64 {
        self.arch.weight_bytes(self.precision) as f64 / self.effective_bandwidth()
    }

    /// Prefill time for `batch` prompts of `n_in` tokens each: a roofline
    /// of weight streaming against large-GEMM compute, with partial
    /// overlap.
    pub fn prefill_time(&self, batch: u64, n_in: u64) -> f64 {
        let t_w = self.weight_stream_time();
        let t_c = batch as f64 * n_in as f64 * flops::dense_flops_per_token(&self.arch)
            / self.effective_prefill_flops();
        t_w.max(t_c) + OVERLAP_BETA * t_w.min(t_c)
    }

    /// One decode step for `batch` sequences with `ctx` cached tokens each.
    pub fn decode_step_time(&self, batch: u64, ctx: u64) -> f64 {
        let t_w = self.weight_stream_time();
        let t_c =
            batch as f64 * flops::dense_flops_per_token(&self.arch) / self.effective_decode_flops();
        let core = t_w.max(t_c) + OVERLAP_BETA * t_w.min(t_c);
        core + self.host_per_step() + self.context_traffic_time(batch, ctx)
    }

    /// KV + long-context overhead traffic time for one step (crate-public
    /// so the speculation model in [`crate::spec`] bills the per-row
    /// context reads of a verify batch with the same constants).
    pub(crate) fn context_traffic_time(&self, batch: u64, ctx: u64) -> f64 {
        let kv = ctx as f64 * self.arch.kv_bytes_per_token() as f64;
        let overhead = ctx.saturating_sub(CTX_OVERHEAD_THRESHOLD) as f64 * self.calib.k2_bytes;
        batch as f64 * (kv + overhead) / self.effective_bandwidth()
    }

    /// Full generation latency: prefill `n_in` tokens then decode `n_out`
    /// tokens auto-regressively (context grows each step), for a batch.
    /// Returns the mechanism breakdown; `total_s()` is the paper's
    /// time-to-last-token.
    pub fn generate(&self, batch: u64, n_in: u64, n_out: u64) -> LatencyBreakdown {
        let mut b =
            LatencyBreakdown { prefill_s: self.prefill_time(batch, n_in), ..Default::default() };
        let t_w = self.weight_stream_time();
        let t_c =
            batch as f64 * flops::dense_flops_per_token(&self.arch) / self.effective_decode_flops();
        // Attribute the roofline core (max + β·min) to its dominant side.
        let (core_traffic, core_compute) =
            if t_w >= t_c { (t_w, OVERLAP_BETA * t_c) } else { (OVERLAP_BETA * t_w, t_c) };
        b.host_s = self.host_per_step() * n_out as f64;
        b.compute_s = core_compute * n_out as f64;
        let mut traffic = core_traffic * n_out as f64;
        for i in 0..n_out {
            traffic += self.context_traffic_time(batch, n_in + i);
        }
        b.traffic_s = traffic;
        b
    }

    /// Convenience: total latency for the paper's standard workload shape.
    pub fn latency_s(&self, batch: u64, n_in: u64, n_out: u64) -> f64 {
        self.generate(batch, n_in, n_out).total_s()
    }

    /// Token throughput as the paper defines it: all input and output
    /// tokens of the batch divided by the batch latency (§2).
    pub fn throughput_tok_s(&self, batch: u64, n_in: u64, n_out: u64) -> f64 {
        batch as f64 * (n_in + n_out) as f64 / self.latency_s(batch, n_in, n_out)
    }

    /// The LongBench-vs-WikiText2 latency factor for this model.
    pub fn longbench_factor(&self) -> f64 {
        self.calib.longbench_factor
    }

    /// Per-precision cost table in force.
    pub fn costs(&self) -> &PrecisionCosts {
        &self.costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_hw::{PowerMode, PowerModeId};

    fn model(llm: Llm, prec: Precision) -> PerfModel {
        let dev = DeviceSpec::orin_agx_64gb();
        let clocks = dev.max_clocks();
        PerfModel::new(dev, llm, prec, clocks)
    }

    /// Paper Table 4 (WikiText2, MaxN, sl=96=32+64): latency seconds per
    /// (batch, model) at serving precision.
    type LatencyRow = (Llm, Precision, [(u64, f64); 8]);
    const TABLE4_LATENCY: [LatencyRow; 4] = [
        (
            Llm::Phi2,
            Precision::Fp16,
            [
                (1, 3.73),
                (2, 3.95),
                (4, 3.95),
                (8, 3.95),
                (16, 4.09),
                (32, 5.19),
                (64, 7.59),
                (128, 12.85),
            ],
        ),
        (
            Llm::Llama31_8b,
            Precision::Fp16,
            [
                (1, 6.37),
                (2, 6.66),
                (4, 6.87),
                (8, 7.37),
                (16, 8.33),
                (32, 9.96),
                (64, 14.04),
                (128, 21.99),
            ],
        ),
        (
            Llm::MistralSmall24b,
            Precision::Fp16,
            [
                (1, 18.51),
                (2, 18.30),
                (4, 18.74),
                (8, 19.54),
                (16, 21.29),
                (32, 39.12),
                (64, 48.84),
                (128, 66.53),
            ],
        ),
        (
            Llm::DeepseekQwen32b,
            Precision::Int8,
            [
                (1, 43.25),
                (2, 46.97),
                (4, 48.97),
                (8, 47.73),
                (16, 69.81),
                (32, 47.92),
                (64, 61.05),
                (128, 83.69),
            ],
        ),
    ];

    #[test]
    fn table4_latency_within_tolerance() {
        // Mechanistic model vs published table: ±35% per cell (the paper's
        // own tables contain ≥30% non-monotonic noise at some cells), and
        // much tighter on the calibration anchors.
        for (llm, prec, rows) in TABLE4_LATENCY {
            let m = model(llm, prec);
            for (bs, actual) in rows {
                let pred = m.latency_s(bs, 32, 64);
                let rel = (pred - actual).abs() / actual;
                assert!(rel < 0.35, "{llm:?} bs={bs}: pred {pred:.2} vs {actual} ({rel:.2})");
            }
        }
    }

    #[test]
    fn anchors_are_near_exact() {
        for (llm, prec, rows) in TABLE4_LATENCY {
            let m = model(llm, prec);
            let (bs, actual) = rows[0]; // bs=1 anchor
            let pred = m.latency_s(bs, 32, 64);
            assert!((pred - actual).abs() / actual < 0.02, "{llm:?}: {pred} vs {actual}");
        }
    }

    #[test]
    fn throughput_rises_with_batch_size() {
        // Fig 1's headline shape.
        for llm in Llm::ALL {
            let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
            let m = model(llm, prec);
            let mut last = 0.0;
            for bs in [1u64, 2, 4, 8, 16, 32, 64, 128] {
                let tp = m.throughput_tok_s(bs, 32, 64);
                assert!(tp > last, "{llm:?} bs={bs}: {tp} ≤ {last}");
                last = tp;
            }
        }
    }

    #[test]
    fn latency_rises_with_batch_size() {
        let m = model(Llm::Llama31_8b, Precision::Fp16);
        assert!(m.latency_s(128, 32, 64) > 2.0 * m.latency_s(32, 32, 64));
    }

    #[test]
    fn throughput_falls_with_sequence_length() {
        // Fig 2's headline shape: sl=128..1024 at bs=32.
        for llm in Llm::ALL {
            let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
            let m = model(llm, prec);
            let mut last = f64::INFINITY;
            for (ni, no) in [(32u64, 96u64), (64, 192), (128, 384), (256, 768)] {
                let tp = m.throughput_tok_s(32, ni, no);
                assert!(tp < last, "{llm:?} sl={}: {tp} ≥ {last}", ni + no);
                last = tp;
            }
        }
    }

    #[test]
    fn llama_seqlen_sweep_matches_table7() {
        let m = model(Llm::Llama31_8b, Precision::Fp16);
        for ((ni, no), actual) in [(32u64, 96u64), (64, 192), (128, 384), (256, 768)]
            .iter()
            .zip([14.99, 37.23, 100.69, 304.33])
        {
            let pred = m.latency_s(32, *ni, *no);
            let rel = (pred - actual).abs() / actual;
            assert!(rel < 0.20, "sl {}: {pred:.1} vs {actual}", ni + no);
        }
    }

    #[test]
    fn int8_slows_small_models_but_not_mistral() {
        // §3.3: INT8 ≈ +62% latency for Phi-2/Llama, ≈ +2% for Mistral.
        let slowdown = |llm: Llm| {
            let f = model(llm, Precision::Fp16).latency_s(32, 32, 64);
            let q = model(llm, Precision::Int8).latency_s(32, 32, 64);
            q / f - 1.0
        };
        let phi = slowdown(Llm::Phi2);
        let llama = slowdown(Llm::Llama31_8b);
        let mistral = slowdown(Llm::MistralSmall24b);
        assert!((0.4..0.9).contains(&phi), "Phi-2 INT8 slowdown {phi}");
        assert!((0.4..0.9).contains(&llama), "Llama INT8 slowdown {llama}");
        assert!(mistral < 0.10, "Mistral INT8 slowdown {mistral}");
        assert!(phi > mistral && llama > mistral, "small models hurt more");
    }

    #[test]
    fn int4_is_slower_than_int8_and_fp16() {
        for llm in [Llm::Phi2, Llm::Llama31_8b, Llm::MistralSmall24b] {
            let f16 = model(llm, Precision::Fp16).latency_s(32, 32, 64);
            let i8 = model(llm, Precision::Int8).latency_s(32, 32, 64);
            let i4 = model(llm, Precision::Int4).latency_s(32, 32, 64);
            assert!(i4 > i8, "{llm:?}: int4 {i4} ≤ int8 {i8}");
            assert!(i4 > 1.5 * f16, "{llm:?}: int4 {i4} vs fp16 {f16}");
        }
    }

    #[test]
    fn fp32_is_slower_than_fp16() {
        let f32_ = model(Llm::Llama31_8b, Precision::Fp32).latency_s(32, 32, 64);
        let f16 = model(Llm::Llama31_8b, Precision::Fp16).latency_s(32, 32, 64);
        assert!(f32_ > 1.4 * f16, "{f32_} vs {f16}");
    }

    #[test]
    fn power_mode_a_adds_moderate_latency() {
        // §3.4: PM-A (GPU 800 MHz) ⇒ ≈ +26% latency for Llama.
        let dev = DeviceSpec::orin_agx_64gb();
        let maxn = model(Llm::Llama31_8b, Precision::Fp16).latency_s(32, 32, 64);
        let a = PerfModel::new(
            dev,
            Llm::Llama31_8b,
            Precision::Fp16,
            PowerMode::table2(PowerModeId::A).clocks,
        )
        .latency_s(32, 32, 64);
        let rel = a / maxn - 1.0;
        assert!((0.10..0.45).contains(&rel), "PM-A slowdown {rel}");
    }

    #[test]
    fn power_mode_h_dominates_latency_impact() {
        // §3.4: PM-H (mem 665 MHz) ⇒ ≈ +370% latency.
        let dev = DeviceSpec::orin_agx_64gb();
        let mk = |id: PowerModeId| {
            PerfModel::new(
                dev.clone(),
                Llm::Llama31_8b,
                Precision::Fp16,
                PowerMode::table2(id).clocks,
            )
            .latency_s(32, 32, 64)
        };
        let maxn = mk(PowerModeId::MaxN);
        let h = mk(PowerModeId::H);
        let rel = h / maxn - 1.0;
        assert!((2.5..5.0).contains(&rel), "PM-H slowdown {rel}");
        // H is the worst of all modes.
        for id in PowerModeId::ALL {
            assert!(mk(id) <= h + 1e-9, "{id:?} slower than H");
        }
    }

    #[test]
    fn core_count_modes_have_negligible_impact() {
        // §3.4: PM-E (8 cores) and PM-F (4 cores) ≈ MaxN.
        let dev = DeviceSpec::orin_agx_64gb();
        let mk = |id: PowerModeId| {
            PerfModel::new(
                dev.clone(),
                Llm::Llama31_8b,
                Precision::Fp16,
                PowerMode::table2(id).clocks,
            )
            .latency_s(32, 32, 64)
        };
        let maxn = mk(PowerModeId::MaxN);
        assert!((mk(PowerModeId::E) / maxn - 1.0).abs() < 0.01);
        assert!((mk(PowerModeId::F) / maxn - 1.0).abs() < 0.01);
    }

    #[test]
    fn cpu_freq_modes_slow_host_bound_models_more() {
        // §3.4: DeepSeek (INT8, dispatch-heavy) is hit harder by CPU
        // throttling than Llama FP16.
        let dev = DeviceSpec::orin_agx_64gb();
        let slow = |llm: Llm, prec: Precision| {
            let maxn =
                PerfModel::new(dev.clone(), llm, prec, dev.max_clocks()).latency_s(32, 32, 64);
            let d =
                PerfModel::new(dev.clone(), llm, prec, PowerMode::table2(PowerModeId::D).clocks)
                    .latency_s(32, 32, 64);
            d / maxn - 1.0
        };
        let llama = slow(Llm::Llama31_8b, Precision::Fp16);
        let deepq = slow(Llm::DeepseekQwen32b, Precision::Int8);
        assert!(deepq > 3.0 * llama, "DeepQ {deepq} vs Llama {llama}");
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let m = model(Llm::Llama31_8b, Precision::Fp16);
        let b = m.generate(32, 32, 64);
        assert!((b.total_s() - (b.prefill_s + b.host_s + b.traffic_s + b.compute_s)).abs() < 1e-12);
        assert!(b.prefill_s > 0.0 && b.host_s > 0.0 && b.traffic_s > 0.0);
    }

    #[test]
    fn decode_is_memory_bound_at_small_batch() {
        let m = model(Llm::Llama31_8b, Precision::Fp16);
        let b = m.generate(1, 32, 64);
        assert!(b.traffic_s > 5.0 * b.compute_s, "bs=1 decode must be memory-bound");
    }
}
