//! Resource-utilization estimates feeding the power model.
//!
//! The paper observes (§3.3) that INT8 inference leaves the GPU at ≈ 60%
//! utilization (dispatch-bound) while INT4 saturates it at 100% (dequant
//! arithmetic), and that these utilizations drive the power differences of
//! Figs. 4/10. This module derives per-phase utilizations from the latency
//! breakdown the same way `jtop` would report them.

use crate::latency::PerfModel;

/// Fractional utilization of each resource during a phase (0..=1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// GPU busy fraction.
    pub gpu: f64,
    /// CPU busy fraction (of the whole CPU complex).
    pub cpu: f64,
    /// DRAM bandwidth fraction.
    pub mem_bw: f64,
}

impl Utilization {
    fn clamp(self) -> Self {
        Utilization {
            gpu: self.gpu.clamp(0.0, 1.0),
            cpu: self.cpu.clamp(0.0, 1.0),
            mem_bw: self.mem_bw.clamp(0.0, 1.0),
        }
    }
}

impl PerfModel {
    /// Utilization during the decode phase at the given batch and a
    /// representative context length.
    pub fn decode_utilization(&self, batch: u64, ctx: u64) -> Utilization {
        let step = self.decode_step_time(batch, ctx);
        let host = self.host_per_step();
        let busy = step - host; // traffic + compute time: GPU active
        let gpu = (busy + self.costs().host_gpu_frac * host) / step;
        // Host dispatch is single-threaded; add a small background load.
        let cores = self.clocks().cores_online as f64;
        let cpu = (host / step) * (1.5 / cores) + 0.08;
        // Memory bandwidth is saturated during the traffic share.
        let t_w = self.weight_stream_time();
        let mem_bw = (t_w / step + 0.1).min(1.0);
        Utilization { gpu, cpu, mem_bw }.clamp()
    }

    /// Utilization during prefill (compute-heavy, high GPU occupancy).
    pub fn prefill_utilization(&self, batch: u64, n_in: u64) -> Utilization {
        let t = self.prefill_time(batch, n_in);
        let t_w = self.weight_stream_time();
        Utilization { gpu: 0.97, cpu: 0.15, mem_bw: (t_w / t + 0.2).min(1.0) }.clamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_hw::DeviceSpec;
    use edgellm_models::{Llm, Precision};

    fn model(llm: Llm, prec: Precision) -> PerfModel {
        let dev = DeviceSpec::orin_agx_64gb();
        let clocks = dev.max_clocks();
        PerfModel::new(dev, llm, prec, clocks)
    }

    #[test]
    fn utilizations_are_fractions() {
        for llm in Llm::ALL {
            for prec in [Precision::Fp16, Precision::Int8, Precision::Int4] {
                let m = model(llm, prec);
                for u in [m.decode_utilization(32, 64), m.prefill_utilization(32, 32)] {
                    assert!((0.0..=1.0).contains(&u.gpu));
                    assert!((0.0..=1.0).contains(&u.cpu));
                    assert!((0.0..=1.0).contains(&u.mem_bw));
                }
            }
        }
    }

    #[test]
    fn int8_gpu_utilization_near_sixty_percent() {
        // §3.3: "INT8 uses only ≈60% of the GPU".
        let m = model(Llm::Llama31_8b, Precision::Int8);
        let u = m.decode_utilization(32, 64);
        assert!((0.40..0.75).contains(&u.gpu), "INT8 gpu util {}", u.gpu);
    }

    #[test]
    fn int4_saturates_gpu() {
        // §3.3: "INT4 uses 100%".
        let m = model(Llm::Llama31_8b, Precision::Int4);
        let u = m.decode_utilization(32, 64);
        assert!(u.gpu > 0.85, "INT4 gpu util {}", u.gpu);
        let u8 = model(Llm::Llama31_8b, Precision::Int8).decode_utilization(32, 64);
        assert!(u.gpu > u8.gpu);
    }

    #[test]
    fn fp16_decode_is_gpu_heavy() {
        let m = model(Llm::Llama31_8b, Precision::Fp16);
        let u = m.decode_utilization(32, 64);
        assert!(u.gpu > 0.8, "fp16 gpu util {}", u.gpu);
        assert!(u.mem_bw > 0.5, "fp16 decode must stress DRAM, got {}", u.mem_bw);
    }

    #[test]
    fn prefill_gpu_bound() {
        let m = model(Llm::MistralSmall24b, Precision::Fp16);
        let u = m.prefill_utilization(32, 32);
        assert!(u.gpu > 0.9);
        assert!(u.cpu < 0.3);
    }
}
