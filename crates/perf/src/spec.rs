//! Mechanistic cost model for speculative draft-and-verify decoding.
//!
//! The paper's central decode finding (§3.2) is that auto-regressive decode
//! is memory-bandwidth-bound: one step streams the full weight set and does
//! a batch-1 GEMV's worth of compute. Speculative decoding exploits exactly
//! that slack — k drafted tokens are verified in **one** pass that streams
//! the weights once but computes k+1 token rows, so the marginal cost of a
//! verify row is only its compute and context traffic, not another full
//! weight stream.
//!
//! Two layers of model live here:
//!
//! * [`PerfModel`] extensions (`verify_batch_time`, `speculative_speedup`,
//!   `optimal_draft_k`) — the *a-priori* roofline built from the same
//!   calibrated constants as [`PerfModel::decode_step_time`].
//! * [`SpecCalib`] — an *a-posteriori* linear fit `t(m) = a + b·m` to
//!   measured verify-batch times (the `bench_kernels` m=1..8 decode-shape
//!   sweeps), for when real kernel measurements are available.
//!
//! Both share the acceptance mathematics in
//! [`expected_tokens_per_iteration`].

use crate::latency::PerfModel;
use edgellm_models::flops;

use crate::calib::OVERLAP_BETA;

/// Expected tokens emitted per verify iteration when each of the `k` draft
/// tokens is independently accepted with probability `alpha`.
///
/// One token is always emitted (the committed argmax that heads the verify
/// batch); draft token `i` is emitted only if drafts `1..=i` all matched,
/// so
///
/// ```text
/// E[tokens] = 1 + α + α² + … + α^k = (1 − α^{k+1}) / (1 − α)
/// ```
///
/// with the α→1 limit `k + 1`. `alpha` is clamped to `[0, 1]`.
pub fn expected_tokens_per_iteration(k: u64, alpha: f64) -> f64 {
    let a = alpha.clamp(0.0, 1.0);
    if (1.0 - a).abs() < 1e-12 {
        return (k + 1) as f64;
    }
    (1.0 - a.powi(k as i32 + 1)) / (1.0 - a)
}

impl PerfModel {
    /// One speculative verify iteration for `batch` sequences, each
    /// scoring `k + 1` token rows (the committed token plus `k` drafts)
    /// against a context of `ctx` cached tokens.
    ///
    /// The roofline: weights stream **once** (the whole point), compute
    /// scales with the total number of verify rows, the host dispatches
    /// one launch exactly as for a plain decode step, and each verify row
    /// `j` reads the context at its own depth `ctx + j` — rejected rows
    /// are billed too, because the memory system does not know in advance
    /// which drafts will be accepted.
    ///
    /// `verify_batch_time(batch, ctx, 0)` is identical to
    /// [`PerfModel::decode_step_time`]`(batch, ctx)` by construction.
    pub fn verify_batch_time(&self, batch: u64, ctx: u64, k: u64) -> f64 {
        let rows = (k + 1) as f64;
        let t_w = self.weight_stream_time();
        let t_c = batch as f64 * rows * flops::dense_flops_per_token(self.arch())
            / self.effective_decode_flops();
        let core = t_w.max(t_c) + OVERLAP_BETA * t_w.min(t_c);
        let mut traffic = 0.0;
        for j in 0..=k {
            traffic += self.context_traffic_time(batch, ctx + j);
        }
        core + self.host_per_step() + traffic
    }

    /// The cost of the *non*-speculative alternative: `k + 1` sequential
    /// decode steps (context growing one token per step). This is what a
    /// fully-accepted verify batch of k drafts replaces.
    pub fn sequential_steps_time(&self, batch: u64, ctx: u64, k: u64) -> f64 {
        (0..=k).map(|j| self.decode_step_time(batch, ctx + j)).sum()
    }

    /// Best-case amortization headroom of a verify batch: sequential time
    /// over batched time when **every** draft is accepted. This is the
    /// α=1 ceiling on [`PerfModel::speculative_speedup`]; it exceeds 1
    /// exactly when decode is memory-bound enough that k extra rows ride
    /// along with one weight stream.
    pub fn verify_amortization(&self, batch: u64, ctx: u64, k: u64) -> f64 {
        self.sequential_steps_time(batch, ctx, k) / self.verify_batch_time(batch, ctx, k)
    }

    /// Expected decode speedup of speculative decoding with draft length
    /// `k` and per-token acceptance rate `alpha`, relative to plain
    /// one-token-per-step decode at the same `(batch, ctx)` point:
    ///
    /// ```text
    /// speedup = E[tokens/iter](k, α) · t_step / t_verify(k)
    /// ```
    ///
    /// `k = 0` returns exactly 1.0 (speculation off).
    pub fn speculative_speedup(&self, batch: u64, ctx: u64, k: u64, alpha: f64) -> f64 {
        expected_tokens_per_iteration(k, alpha) * self.decode_step_time(batch, ctx)
            / self.verify_batch_time(batch, ctx, k)
    }

    /// The draft length maximizing [`PerfModel::speculative_speedup`] over
    /// `0..=k_max` at this operating point. Returns 0 when speculation
    /// never pays (e.g. α too low for the verify overhead).
    pub fn optimal_draft_k(&self, batch: u64, ctx: u64, alpha: f64, k_max: u64) -> u64 {
        let mut best = (0u64, 1.0f64);
        for k in 1..=k_max {
            let s = self.speculative_speedup(batch, ctx, k, alpha);
            if s > best.1 {
                best = (k, s);
            }
        }
        best.0
    }
}

/// A measured verify-batch cost line `t(m) = base_s + per_row_s · m`,
/// least-squares fit to `(m, seconds)` points from `bench_kernels`'
/// decode-dimension shapes at m = 1..8.
///
/// `base_s` captures everything streamed/dispatched once per iteration
/// (weights, launch overhead); `per_row_s` is the marginal cost of one
/// more verify row. Decode being memory-bound shows up as
/// `per_row_s ≪ base_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecCalib {
    /// Fixed seconds per verify iteration (weight stream + dispatch).
    pub base_s: f64,
    /// Marginal seconds per additional verify row.
    pub per_row_s: f64,
}

impl SpecCalib {
    /// Least-squares fit of `t = a + b·m` to measured `(m, seconds)`
    /// points. With fewer than two distinct `m` values the slope is 0 and
    /// the base is the mean — a flat (maximally optimistic) line.
    /// Negative fitted slopes are clamped to 0: a verify row cannot have
    /// negative marginal cost, and tiny benchmark noise at small m must
    /// not make the model claim speculation is free.
    pub fn fit(points: &[(u64, f64)]) -> SpecCalib {
        assert!(!points.is_empty(), "SpecCalib::fit needs at least one point");
        let n = points.len() as f64;
        let mean_m = points.iter().map(|&(m, _)| m as f64).sum::<f64>() / n;
        let mean_t = points.iter().map(|&(_, t)| t).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|&(m, _)| (m as f64 - mean_m).powi(2)).sum();
        if sxx < 1e-12 {
            return SpecCalib { base_s: mean_t, per_row_s: 0.0 };
        }
        let sxy: f64 = points.iter().map(|&(m, t)| (m as f64 - mean_m) * (t - mean_t)).sum();
        let b = (sxy / sxx).max(0.0);
        let a = (mean_t - b * mean_m).max(0.0);
        SpecCalib { base_s: a, per_row_s: b }
    }

    /// Predicted seconds for one verify iteration scoring `k + 1` rows.
    pub fn verify_time(&self, k: u64) -> f64 {
        self.base_s + self.per_row_s * (k + 1) as f64
    }

    /// Measured-kernel analogue of [`PerfModel::speculative_speedup`]:
    /// expected tokens per iteration over the fitted relative cost of the
    /// verify batch vs one plain step.
    pub fn speedup(&self, k: u64, alpha: f64) -> f64 {
        expected_tokens_per_iteration(k, alpha) * self.verify_time(0) / self.verify_time(k)
    }

    /// The draft length maximizing [`SpecCalib::speedup`] over `0..=k_max`.
    pub fn optimal_k(&self, alpha: f64, k_max: u64) -> u64 {
        let mut best = (0u64, 1.0f64);
        for k in 1..=k_max {
            let s = self.speedup(k, alpha);
            if s > best.1 {
                best = (k, s);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_hw::DeviceSpec;
    use edgellm_models::{Llm, Precision};

    fn phi2() -> PerfModel {
        let dev = DeviceSpec::orin_agx_64gb();
        let clocks = dev.max_clocks();
        PerfModel::new(dev, Llm::Phi2, Precision::Fp16, clocks)
    }

    #[test]
    fn expected_tokens_matches_the_geometric_series() {
        // α=0: only the committed token ever lands.
        assert!((expected_tokens_per_iteration(4, 0.0) - 1.0).abs() < 1e-12);
        // α=1: every draft lands, k+1 tokens per iteration.
        assert!((expected_tokens_per_iteration(4, 1.0) - 5.0).abs() < 1e-12);
        // α=0.5, k=2: 1 + 0.5 + 0.25.
        assert!((expected_tokens_per_iteration(2, 0.5) - 1.75).abs() < 1e-12);
        // Monotone in both k and α.
        for k in 0..8u64 {
            assert!(
                expected_tokens_per_iteration(k + 1, 0.7) > expected_tokens_per_iteration(k, 0.7)
            );
        }
        assert!(expected_tokens_per_iteration(4, 0.9) > expected_tokens_per_iteration(4, 0.6));
        // Out-of-range α is clamped, not propagated.
        assert!((expected_tokens_per_iteration(3, 1.7) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn verify_with_zero_drafts_is_exactly_a_decode_step() {
        let m = phi2();
        for ctx in [32u64, 256, 2048] {
            let a = m.verify_batch_time(1, ctx, 0);
            let b = m.decode_step_time(1, ctx);
            assert!((a - b).abs() < 1e-15, "ctx={ctx}: {a} vs {b}");
        }
    }

    #[test]
    fn verify_batch_amortizes_the_weight_stream() {
        // The memory-bound regime the paper measures: at batch 1 a verify
        // batch of k=4 rows must cost far less than 5 sequential steps,
        // but still more than a single step.
        let m = phi2();
        let one = m.decode_step_time(1, 128);
        let verify = m.verify_batch_time(1, 128, 4);
        let seq = m.sequential_steps_time(1, 128, 4);
        assert!(verify > one, "verify must bill its extra rows");
        assert!(verify < 0.5 * seq, "verify {verify} vs sequential {seq}");
        let amort = m.verify_amortization(1, 128, 4);
        assert!(amort > 2.0 && amort < 5.0, "amortization {amort}");
    }

    #[test]
    fn speedup_exceeds_threshold_at_the_issue_operating_point() {
        // Acceptance criterion shape: α ≥ 0.7, k = 4 on Phi-2 must model
        // ≥ 1.5× decode tokens/s.
        let m = phi2();
        let s = m.speculative_speedup(1, 128, 4, 0.7);
        assert!(s >= 1.5, "Phi-2 α=0.7 k=4 speedup {s}");
        // And speculation off is exactly neutral.
        assert!((m.speculative_speedup(1, 128, 0, 0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_acceptance_makes_speculation_lose() {
        let m = phi2();
        let s = m.speculative_speedup(1, 128, 8, 0.05);
        assert!(s < 1.0, "α=0.05 k=8 should lose: {s}");
        assert_eq!(m.optimal_draft_k(1, 128, 0.0, 8), 0);
    }

    #[test]
    fn optimal_k_grows_with_acceptance() {
        let m = phi2();
        let lo = m.optimal_draft_k(1, 128, 0.3, 8);
        let hi = m.optimal_draft_k(1, 128, 0.95, 8);
        assert!(hi >= lo, "optimal k must not shrink with α: {lo} vs {hi}");
        assert!(hi >= 4, "α=0.95 should want deep drafts, got {hi}");
    }

    #[test]
    fn calib_fit_recovers_a_linear_cost_line() {
        // Synthetic bench points on t = 2ms + 0.1ms·m.
        let pts: Vec<(u64, f64)> =
            [1u64, 2, 4, 8].iter().map(|&m| (m, 2e-3 + 1e-4 * m as f64)).collect();
        let c = SpecCalib::fit(&pts);
        assert!((c.base_s - 2e-3).abs() < 1e-9, "base {}", c.base_s);
        assert!((c.per_row_s - 1e-4).abs() < 1e-9, "slope {}", c.per_row_s);
        assert!((c.verify_time(4) - 2.5e-3).abs() < 1e-9);
        // Memory-bound kernels ⇒ big wins at high α.
        assert!(c.speedup(4, 0.8) > 2.0);
        assert!(c.optimal_k(0.9, 8) >= 4);
    }

    #[test]
    fn calib_fit_degenerate_inputs_stay_sane() {
        // One point: flat line at that cost, speedup = E[tokens].
        let c = SpecCalib::fit(&[(1, 3e-3)]);
        assert_eq!(c.per_row_s, 0.0);
        assert!((c.speedup(4, 1.0) - 5.0).abs() < 1e-12);
        // Noise sloping downward is clamped: never negative marginal cost.
        let c = SpecCalib::fit(&[(1, 3.0e-3), (8, 2.9e-3)]);
        assert!(c.per_row_s >= 0.0);
        assert!(c.verify_time(8) >= c.verify_time(0));
    }
}
