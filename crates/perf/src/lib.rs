//! # edgellm-perf — a calibrated mechanistic latency model for LLM
//! inference on the Jetson Orin AGX
//!
//! The paper measures batched prefill+decode latency of four LLMs under
//! varying batch size, sequence length, quantization and power modes. This
//! crate reproduces those measurements with a *mechanistic* model whose
//! structure mirrors the device behaviour the paper itself identifies:
//!
//! * auto-regressive **decode is memory-bound** (§3.2 / Splitwise \[11\]):
//!   every decode step streams the full weight set once, regardless of
//!   batch size — which is exactly why batching raises throughput;
//! * a **host/dispatch term** per step (Python + kernel-launch time on the
//!   CPU), which is why CPU-frequency power modes (PM-C/D) slow inference
//!   but core-count modes (PM-E/F) do not (§3.4);
//! * **quantized execution adds per-layer dispatch and dequantization
//!   work** (the LLM.int8() two-stream decomposition), which hurts small
//!   models disproportionately and leaves the GPU at ~60% utilization
//!   (§3.3);
//! * a **long-context overhead** per cached token (HF cache rewriting and
//!   attention intermediates), which is why throughput falls with sequence
//!   length (§3.2).
//!
//! Per-model constants are calibrated offline against the paper's appendix
//! Tables 4–7 (see [`calib`] for the provenance of every number); the
//! device peaks come from `edgellm-hw`. Validation tests in this crate and
//! the experiment drivers check predictions against the published tables.

pub mod calib;
pub mod latency;
pub mod spec;
pub mod util;

pub use calib::{ModelCalib, PrecisionCosts};
pub use latency::{LatencyBreakdown, PerfModel};
pub use spec::{expected_tokens_per_iteration, SpecCalib};
pub use util::Utilization;
