//! Sampling a simulated phase timeline the way `jtop` samples a real run.

use crate::trace::PowerTrace;

/// The paper samples power every 2 seconds (§2).
pub const SAMPLE_INTERVAL_S: f64 = 2.0;

/// One execution phase with a (piecewise-constant) power level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Phase duration (s).
    pub duration_s: f64,
    /// Module power during the phase (W).
    pub power_w: f64,
}

/// Sample a timeline of phases every `interval_s`, with a small
/// deterministic jitter (±2%) derived from the seed so that traces are
/// realistic (non-constant) yet reproducible. A final sample is taken at
/// the exact end of the timeline so no tail energy is lost.
pub fn sample_timeline(phases: &[Phase], interval_s: f64, seed: u64) -> PowerTrace {
    let mut trace = PowerTrace::new();
    let total: f64 = phases.iter().map(|p| p.duration_s).sum();
    if total <= 0.0 {
        return trace;
    }
    let power_at = |t: f64| -> f64 {
        let mut acc = 0.0;
        for p in phases {
            acc += p.duration_s;
            if t < acc {
                return p.power_w;
            }
        }
        phases.last().map(|p| p.power_w).unwrap_or(0.0)
    };
    let mut t = 0.0;
    let mut i = 0u64;
    loop {
        let jitter = 1.0 + 0.02 * hash_to_unit(seed, i);
        trace.push(t, power_at(t) * jitter);
        i += 1;
        if t >= total {
            break;
        }
        t = (t + interval_s).min(total);
    }
    trace
}

/// Deterministic hash of (seed, i) to [−1, 1].
fn hash_to_unit(seed: u64, i: u64) -> f64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_full_duration_with_final_sample() {
        let phases = [Phase { duration_s: 3.0, power_w: 20.0 }];
        let t = sample_timeline(&phases, 2.0, 1);
        // Samples at 0, 2, 3.
        assert_eq!(t.len(), 3);
        assert!((t.duration_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn phase_transitions_reflected() {
        let phases = [
            Phase { duration_s: 4.0, power_w: 50.0 }, // prefill spike
            Phase { duration_s: 8.0, power_w: 30.0 }, // decode
        ];
        let t = sample_timeline(&phases, 2.0, 2);
        let s = t.samples();
        assert!(s[0].1 > 45.0 && s[1].1 > 45.0, "early samples in prefill");
        assert!(s[3].1 < 35.0, "later samples in decode");
    }

    #[test]
    fn jitter_is_small_and_deterministic() {
        let phases = [Phase { duration_s: 10.0, power_w: 40.0 }];
        let a = sample_timeline(&phases, 2.0, 7);
        let b = sample_timeline(&phases, 2.0, 7);
        assert_eq!(a, b);
        for &(_, p) in a.samples() {
            assert!((p - 40.0).abs() <= 0.8 + 1e-9, "jitter beyond ±2%: {p}");
        }
        let c = sample_timeline(&phases, 2.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_timeline_gives_empty_trace() {
        assert!(sample_timeline(&[], 2.0, 1).is_empty());
        assert!(sample_timeline(&[Phase { duration_s: 0.0, power_w: 1.0 }], 2.0, 1).is_empty());
    }

    #[test]
    fn short_batches_still_get_sampled() {
        // Batches shorter than the 2 s interval must still yield ≥2 samples
        // (start + end) so energy integration works.
        let t = sample_timeline(&[Phase { duration_s: 0.5, power_w: 25.0 }], 2.0, 3);
        assert!(t.len() >= 2);
    }
}
