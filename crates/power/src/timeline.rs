//! Adapters from power telemetry to Perfetto counter tracks.
//!
//! The paper's figures correlate a `jtop` power log with inference phase
//! timings; these adapters put the same data on a loadable timeline —
//! per-rail samples ([`RailBreakdown`]) as a stacked counter track
//! (SoC/GPU/CPU/DDR, the rails `jtop` reports on Jetson), and a plain
//! [`PowerTrace`] as a single total-power series.

use edgellm_trace::Trace;

use crate::rails::RailBreakdown;
use crate::trace::PowerTrace;

/// Seconds → trace microseconds.
const S_TO_US: f64 = 1e6;

/// Render `(time_s, rail breakdown)` samples as one stacked counter
/// track named `name` under process `pid`.
pub fn record_rail_counters(
    out: &mut Trace,
    pid: u32,
    name: &str,
    samples: &[(f64, RailBreakdown)],
) {
    for &(t_s, b) in samples {
        out.counter(
            pid,
            name,
            t_s * S_TO_US,
            &[("soc_w", b.idle_w), ("gpu_w", b.gpu_w), ("cpu_w", b.cpu_w), ("ddr_w", b.mem_w)],
        );
    }
}

/// Render a total-power [`PowerTrace`] as a single-series counter track
/// named `name` under process `pid`.
pub fn record_power_trace(out: &mut Trace, pid: u32, name: &str, trace: &PowerTrace) {
    for &(t_s, p) in trace.samples() {
        out.counter(pid, name, t_s * S_TO_US, &[("total_w", p)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rail_samples_become_counter_events() {
        let mut t = Trace::new();
        let b = RailBreakdown { idle_w: 8.0, gpu_w: 20.0, cpu_w: 3.0, mem_w: 6.0 };
        record_rail_counters(&mut t, 1, "power_rails_w", &[(0.0, b), (2.0, b)]);
        assert_eq!(t.len(), 2);
        let json = t.to_chrome_json();
        assert!(json.contains("\"gpu_w\":20"));
        assert!(json.contains("\"ph\":\"C\""));
        edgellm_trace::validate_chrome_trace(&json).expect("schema-valid");
    }

    #[test]
    fn power_trace_becomes_total_series() {
        let mut pt = PowerTrace::new();
        pt.push(0.0, 30.0);
        pt.push(2.0, 35.5);
        let mut t = Trace::new();
        record_power_trace(&mut t, 2, "module_w", &pt);
        assert_eq!(t.len(), 2);
        assert!(t.to_chrome_json().contains("\"total_w\":35.5"));
    }
}
