//! Power traces: timestamped samples, as a `jtop` log would contain.

/// A sequence of `(time_s, power_w)` samples at a fixed nominal interval.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerTrace {
    samples: Vec<(f64, f64)>,
}

impl PowerTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample; times must be non-decreasing.
    ///
    /// # Panics
    /// If `t_s` precedes the last sample.
    pub fn push(&mut self, t_s: f64, power_w: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(t_s >= last, "samples must be time-ordered ({t_s} < {last})");
        }
        self.samples.push((t_s, power_w));
    }

    /// The samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration covered.
    pub fn duration_s(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(&(a, _)), Some(&(b, _))) => b - a,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_duration() {
        let mut t = PowerTrace::new();
        t.push(0.0, 10.0);
        t.push(2.0, 12.0);
        t.push(4.0, 11.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.duration_s(), 4.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_travel() {
        let mut t = PowerTrace::new();
        t.push(2.0, 10.0);
        t.push(1.0, 10.0);
    }

    #[test]
    fn empty_trace_has_zero_duration() {
        assert_eq!(PowerTrace::new().duration_s(), 0.0);
        assert!(PowerTrace::new().is_empty());
    }
}
