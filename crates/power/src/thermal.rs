//! A first-order RC thermal model with a throttling governor.
//!
//! The paper's protocol (1 warm-up + 5 short runs) deliberately stays
//! ahead of thermal effects; sustained serving does not get that luxury.
//! This module models the junction temperature of a Jetson module as an
//! RC circuit (`C·dT/dt = P − (T − T_amb)/R`) and a governor that sheds
//! GPU clock when the junction hits its limit — letting the serving
//! studies ask "what does throughput look like after ten minutes?".

/// Thermal parameters of a module + cooling solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Thermal resistance junction→ambient (°C/W).
    pub r_c_per_w: f64,
    /// Thermal time constant (s).
    pub tau_s: f64,
    /// Ambient temperature (°C).
    pub t_ambient_c: f64,
    /// Junction throttle limit (°C).
    pub t_limit_c: f64,
}

impl ThermalModel {
    /// The devkit with its stock active cooler: never throttles inside
    /// the 60 W envelope.
    pub fn orin_agx_active() -> Self {
        ThermalModel { r_c_per_w: 0.55, tau_s: 90.0, t_ambient_c: 25.0, t_limit_c: 95.0 }
    }

    /// A fanless enclosure: throttles under sustained MAXN load.
    pub fn orin_agx_passive() -> Self {
        ThermalModel { r_c_per_w: 1.6, tau_s: 240.0, t_ambient_c: 25.0, t_limit_c: 95.0 }
    }

    /// The steady-state power the cooling solution can reject at the
    /// throttle limit.
    pub fn sustained_power_cap_w(&self) -> f64 {
        (self.t_limit_c - self.t_ambient_c) / self.r_c_per_w
    }

    /// Steady-state junction temperature at a constant power.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.t_ambient_c + power_w * self.r_c_per_w
    }
}

/// Result of a sustained-load simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalTrace {
    /// Junction temperature samples (°C), one per step.
    pub temps_c: Vec<f64>,
    /// Delivered power samples (W), post-governor.
    pub power_w: Vec<f64>,
    /// Fraction of time spent throttled.
    pub throttled_fraction: f64,
    /// Mean delivered power over the run (W) — proportional to sustained
    /// throughput for a power-proportional workload.
    pub mean_power_w: f64,
}

/// Simulate `duration_s` of a workload that *wants* `demand_w` of power,
/// with a governor that sheds load (down to `min_fraction` of demand) to
/// hold the junction at the limit.
pub fn simulate_sustained(
    model: &ThermalModel,
    demand_w: f64,
    duration_s: f64,
    dt_s: f64,
    min_fraction: f64,
) -> ThermalTrace {
    assert!(dt_s > 0.0 && duration_s > 0.0, "time steps must be positive");
    let steps = (duration_s / dt_s).ceil() as usize;
    let mut t = model.t_ambient_c;
    let mut frac = 1.0f64;
    let mut temps = Vec::with_capacity(steps);
    let mut powers = Vec::with_capacity(steps);
    let mut throttled = 0usize;
    for _ in 0..steps {
        let p = demand_w * frac;
        // C·dT/dt = P − (T − T_amb)/R, with C = τ/R.
        let dtemp = (p * model.r_c_per_w - (t - model.t_ambient_c)) / model.tau_s * dt_s;
        t += dtemp;
        // Governor: proportional backoff above the limit, slow recovery.
        if t >= model.t_limit_c {
            frac = (frac * 0.95).max(min_fraction);
            throttled += 1;
        } else if frac < 1.0 {
            frac = (frac * 1.01).min(1.0);
        }
        temps.push(t);
        powers.push(p);
    }
    let mean_power = powers.iter().sum::<f64>() / powers.len().max(1) as f64;
    ThermalTrace {
        temps_c: temps,
        power_w: powers,
        throttled_fraction: throttled as f64 / steps.max(1) as f64,
        mean_power_w: mean_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_cooling_holds_maxn_without_throttling() {
        let m = ThermalModel::orin_agx_active();
        assert!(m.sustained_power_cap_w() > 60.0, "devkit cooler rejects the envelope");
        let tr = simulate_sustained(&m, 48.0, 1800.0, 1.0, 0.3);
        assert_eq!(tr.throttled_fraction, 0.0);
        assert!((tr.mean_power_w - 48.0).abs() < 1e-9);
        let last = *tr.temps_c.last().unwrap();
        assert!((last - m.steady_state_c(48.0)).abs() < 2.0, "settles at steady state");
    }

    #[test]
    fn passive_enclosure_throttles_sustained_maxn() {
        let m = ThermalModel::orin_agx_passive();
        assert!(m.sustained_power_cap_w() < 48.0, "passive case cannot reject MAXN load");
        let tr = simulate_sustained(&m, 48.0, 3600.0, 1.0, 0.3);
        assert!(tr.throttled_fraction > 0.1, "throttled {:.2}", tr.throttled_fraction);
        // Delivered power converges to roughly the sustainable cap.
        let tail: f64 = tr.power_w[tr.power_w.len() - 600..].iter().sum::<f64>() / 600.0;
        let cap = m.sustained_power_cap_w();
        assert!((tail - cap).abs() / cap < 0.15, "tail power {tail:.1} vs cap {cap:.1}");
        // Temperature is regulated near the limit, not past it.
        let t_max = tr.temps_c.iter().cloned().fold(0.0, f64::max);
        assert!(t_max < m.t_limit_c + 3.0, "t_max {t_max}");
    }

    #[test]
    fn temperature_rises_monotonically_to_steady_state_without_governor() {
        let m = ThermalModel::orin_agx_active();
        let tr = simulate_sustained(&m, 30.0, 600.0, 0.5, 1.0);
        for w in tr.temps_c.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "monotone warm-up");
        }
    }

    #[test]
    fn lower_power_modes_run_cooler() {
        // Ties back to the paper's PM study: PM-B's ~22 W fits even the
        // passive enclosure.
        let m = ThermalModel::orin_agx_passive();
        let tr = simulate_sustained(&m, 22.0, 3600.0, 1.0, 0.3);
        assert_eq!(tr.throttled_fraction, 0.0);
        assert!(m.steady_state_c(22.0) < m.t_limit_c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        let m = ThermalModel::orin_agx_active();
        let _ = simulate_sustained(&m, 10.0, 10.0, 0.0, 0.5);
    }
}
