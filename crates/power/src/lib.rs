//! # edgellm-power — rail power modeling, jtop-style sampling, energy
//!
//! The paper logs system power with `jtop` every 2 s, reports the *median*
//! power per batch, and integrates energy with the trapezoidal rule (§2).
//! This crate reproduces the full pipeline:
//!
//! * [`rails`] — a component power model (idle + GPU + CPU + DDR rails)
//!   driven by the clock scales and utilizations the perf model computes;
//!   rail constants are calibrated to the paper's §3.4 power-mode deltas
//!   (PM-A ≈ −28%, PM-B ≈ −51%, PM-H ≈ −52% instantaneous power);
//! * [`trace`] / [`sampler`] — a 2-second sampler over a simulated phase
//!   timeline (prefill spike, steady decode), with deterministic seeded
//!   jitter so integration is exercised on non-constant traces;
//! * [`energy`] — trapezoidal integration and median-power statistics,
//!   exactly the paper's post-processing.

pub mod energy;
pub mod rails;
pub mod sampler;
pub mod thermal;
pub mod timeline;
pub mod trace;

pub use energy::{median_power_w, trapezoid_energy_j};
pub use rails::{LoadProfile, RailBreakdown, RailModel};
pub use sampler::{sample_timeline, Phase};
pub use thermal::{simulate_sustained, ThermalModel, ThermalTrace};
pub use timeline::{record_power_trace, record_rail_counters};
pub use trace::PowerTrace;
