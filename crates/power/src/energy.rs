//! Energy integration and power statistics — the paper's post-processing.

use crate::trace::PowerTrace;
use edgellm_trace::Histogram;

/// Trapezoidal integration of a power trace into joules (§2: "we perform
/// trapezoidal numerical integration over time for a batch with power
/// sampled every 2s").
pub fn trapezoid_energy_j(trace: &PowerTrace) -> f64 {
    let s = trace.samples();
    let mut e = 0.0;
    for w in s.windows(2) {
        let (t0, p0) = w[0];
        let (t1, p1) = w[1];
        e += 0.5 * (p0 + p1) * (t1 - t0);
    }
    e
}

/// Median power across samples (§2: "report the median power usage across
/// batches"). Returns 0 for an empty trace.
///
/// Uses [`Histogram::median_interpolated`] — the paper's convention of
/// averaging the two middle samples on even counts, which differs from
/// the nearest-rank `quantile(0.5)` the scheduler reports use.
pub fn median_power_w(trace: &PowerTrace) -> f64 {
    Histogram::from_samples(trace.samples().iter().map(|&(_, p)| p)).median_interpolated()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{sample_timeline, Phase};

    #[test]
    fn constant_power_integrates_exactly() {
        let mut t = PowerTrace::new();
        t.push(0.0, 30.0);
        t.push(2.0, 30.0);
        t.push(4.0, 30.0);
        assert!((trapezoid_energy_j(&t) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn linear_ramp_integrates_exactly() {
        // Trapezoid rule is exact for piecewise-linear traces.
        let mut t = PowerTrace::new();
        t.push(0.0, 0.0);
        t.push(10.0, 100.0);
        assert!((trapezoid_energy_j(&t) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn median_odd_and_even() {
        let mut t = PowerTrace::new();
        t.push(0.0, 10.0);
        t.push(2.0, 50.0);
        t.push(4.0, 20.0);
        assert_eq!(median_power_w(&t), 20.0);
        let mut t2 = PowerTrace::new();
        t2.push(0.0, 10.0);
        t2.push(2.0, 20.0);
        t2.push(4.0, 30.0);
        t2.push(6.0, 40.0);
        assert_eq!(median_power_w(&t2), 25.0);
    }

    #[test]
    fn empty_trace_yields_zero() {
        assert_eq!(trapezoid_energy_j(&PowerTrace::new()), 0.0);
        assert_eq!(median_power_w(&PowerTrace::new()), 0.0);
    }

    #[test]
    fn sampled_timeline_energy_close_to_analytic() {
        let phases =
            [Phase { duration_s: 5.0, power_w: 50.0 }, Phase { duration_s: 15.0, power_w: 30.0 }];
        let analytic = 5.0 * 50.0 + 15.0 * 30.0;
        let e = trapezoid_energy_j(&sample_timeline(&phases, 2.0, 1));
        // 2 s sampling + phase edges + 2% jitter → within ~8%.
        assert!((e - analytic).abs() / analytic < 0.08, "{e} vs {analytic}");
    }

    #[test]
    fn energy_at_least_idle_floor() {
        // Energy ≥ min-power × duration: a basic physical invariant.
        let phases = [Phase { duration_s: 9.0, power_w: 12.0 }];
        let t = sample_timeline(&phases, 2.0, 2);
        assert!(trapezoid_energy_j(&t) >= 0.95 * 12.0 * 9.0);
    }
}
