//! Component (rail) power model for a Jetson-class module.

use edgellm_hw::{ClockState, DeviceSpec};

/// Utilization inputs for one execution phase, produced by the perf model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadProfile {
    /// GPU busy fraction (jtop-style).
    pub gpu_util: f64,
    /// CPU busy fraction across the complex.
    pub cpu_util: f64,
    /// DRAM bandwidth fraction.
    pub bw_util: f64,
    /// Achieved bandwidth relative to the MAXN effective bandwidth — a
    /// memory-stalled GPU (low ratio) draws less power per busy cycle.
    pub bw_ratio: f64,
}

impl LoadProfile {
    /// An idle profile.
    pub fn idle() -> Self {
        LoadProfile { gpu_util: 0.0, cpu_util: 0.05, bw_util: 0.02, bw_ratio: 1.0 }
    }
}

/// Per-rail power draw in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RailBreakdown {
    /// Always-on SoC + board power.
    pub idle_w: f64,
    /// GPU rail.
    pub gpu_w: f64,
    /// CPU rail.
    pub cpu_w: f64,
    /// DDR rail.
    pub mem_w: f64,
}

impl RailBreakdown {
    /// Total module power.
    pub fn total_w(&self) -> f64 {
        self.idle_w + self.gpu_w + self.cpu_w + self.mem_w
    }
}

/// The rail model. Constants are calibrated so the §3.4 power-mode deltas
/// reproduce (see crate docs); exponents follow the usual `P ∝ f·V²`
/// DVFS behaviour (voltage tracks frequency on Jetson rails).
#[derive(Debug, Clone)]
pub struct RailModel {
    device: DeviceSpec,
    /// Idle/board power (W).
    pub idle_w: f64,
    /// GPU rail at MAXN, fully busy (W).
    pub gpu_max_w: f64,
    /// CPU rail at MAXN, fully busy (W).
    pub cpu_max_w: f64,
    /// DDR rail at MAXN, fully streamed (W).
    pub mem_max_w: f64,
    /// GPU frequency-power exponent.
    pub gpu_exp: f64,
    /// CPU frequency-power exponent.
    pub cpu_exp: f64,
    /// Memory frequency-power exponent.
    pub mem_exp: f64,
}

impl RailModel {
    /// Calibrated rail model for the Orin AGX 64GB (peak 60 W module).
    pub fn orin_agx(device: DeviceSpec) -> Self {
        RailModel {
            device,
            idle_w: 8.0,
            gpu_max_w: 28.0,
            cpu_max_w: 14.0,
            mem_max_w: 12.0,
            gpu_exp: 1.5,
            cpu_exp: 1.8,
            mem_exp: 1.5,
        }
    }

    /// Power draw under the given clocks and load.
    pub fn power(&self, clocks: &ClockState, load: &LoadProfile) -> RailBreakdown {
        let gs = clocks.gpu_scale(&self.device);
        let cs = clocks.cpu_scale(&self.device);
        let ms = clocks.mem_scale(&self.device);
        let core_frac = clocks.cores_online as f64 / self.device.cpu.cores as f64;
        // A bandwidth-starved GPU spends cycles stalled, drawing less than
        // a compute-active one at the same "busy" fraction.
        let stall_factor = 0.35 + 0.65 * load.bw_ratio.clamp(0.0, 1.0);
        RailBreakdown {
            idle_w: self.idle_w,
            gpu_w: self.gpu_max_w * gs.powf(self.gpu_exp) * load.gpu_util * stall_factor,
            cpu_w: self.cpu_max_w
                * cs.powf(self.cpu_exp)
                * core_frac.powf(0.6)
                * (0.12 + 0.88 * load.cpu_util),
            mem_w: self.mem_max_w * ms.powf(self.mem_exp) * (0.3 + 0.7 * load.bw_util),
        }
    }

    /// Total watts, convenience.
    pub fn total_w(&self, clocks: &ClockState, load: &LoadProfile) -> f64 {
        self.power(clocks, load).total_w()
    }

    /// Energy of `dt_s` seconds spent under one load (J) — the
    /// per-iteration accounting primitive for iteration-level schedulers,
    /// where each scheduler step holds a single load profile.
    pub fn energy_j(&self, clocks: &ClockState, load: &LoadProfile, dt_s: f64) -> f64 {
        self.total_w(clocks, load) * dt_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_hw::{PowerMode, PowerModeId};

    fn rails() -> RailModel {
        RailModel::orin_agx(DeviceSpec::orin_agx_64gb())
    }

    fn busy() -> LoadProfile {
        // Representative FP16 decode load (from the perf model).
        LoadProfile { gpu_util: 0.95, cpu_util: 0.1, bw_util: 0.8, bw_ratio: 1.0 }
    }

    fn clocks(id: PowerModeId) -> ClockState {
        PowerMode::table2(id).clocks
    }

    #[test]
    fn maxn_power_in_module_envelope() {
        let p = rails().total_w(&clocks(PowerModeId::MaxN), &busy());
        assert!((30.0..60.0).contains(&p), "MAXN power {p} W");
    }

    #[test]
    fn idle_power_is_small() {
        let p = rails().total_w(&clocks(PowerModeId::MaxN), &LoadProfile::idle());
        assert!((8.0..18.0).contains(&p), "idle {p} W");
    }

    #[test]
    fn pm_a_reduces_power_about_28_percent() {
        let r = rails();
        let maxn = r.total_w(&clocks(PowerModeId::MaxN), &busy());
        let a = r.total_w(&clocks(PowerModeId::A), &busy());
        let saving = 1.0 - a / maxn;
        assert!((0.18..0.40).contains(&saving), "PM-A saving {saving}");
    }

    #[test]
    fn pm_b_reduces_power_about_half() {
        let r = rails();
        let maxn = r.total_w(&clocks(PowerModeId::MaxN), &busy());
        let b = r.total_w(&clocks(PowerModeId::B), &busy());
        let saving = 1.0 - b / maxn;
        assert!((0.40..0.60).contains(&saving), "PM-B saving {saving}");
    }

    #[test]
    fn pm_h_reduces_power_about_half() {
        // PM-H starves the GPU of bandwidth: its rail power must collapse
        // (bw_ratio ≈ 0.09 at 665 MHz).
        let r = rails();
        let maxn = r.total_w(&clocks(PowerModeId::MaxN), &busy());
        let mut load = busy();
        load.bw_ratio = 0.09;
        load.bw_util = 1.0;
        let h = r.total_w(&clocks(PowerModeId::H), &load);
        let saving = 1.0 - h / maxn;
        assert!((0.40..0.65).contains(&saving), "PM-H saving {saving}");
    }

    #[test]
    fn core_count_modes_change_power_little() {
        let r = rails();
        let maxn = r.total_w(&clocks(PowerModeId::MaxN), &busy());
        let f = r.total_w(&clocks(PowerModeId::F), &busy());
        let saving = 1.0 - f / maxn;
        assert!((0.0..0.10).contains(&saving), "PM-F saving {saving}");
    }

    #[test]
    fn higher_gpu_util_draws_more_power() {
        let r = rails();
        let mut lo = busy();
        lo.gpu_util = 0.55; // INT8-style dispatch-bound load
        let hi = busy();
        let p_lo = r.total_w(&clocks(PowerModeId::MaxN), &lo);
        let p_hi = r.total_w(&clocks(PowerModeId::MaxN), &hi);
        assert!(p_hi > p_lo * 1.15, "{p_hi} vs {p_lo}");
    }

    #[test]
    fn energy_is_power_times_time() {
        let r = rails();
        let c = clocks(PowerModeId::MaxN);
        let p = r.total_w(&c, &busy());
        assert!((r.energy_j(&c, &busy(), 2.5) - p * 2.5).abs() < 1e-12);
        assert_eq!(r.energy_j(&c, &busy(), 0.0), 0.0);
    }

    #[test]
    fn rails_sum_to_total() {
        let r = rails();
        let b = r.power(&clocks(PowerModeId::MaxN), &busy());
        assert!((b.total_w() - (b.idle_w + b.gpu_w + b.cpu_w + b.mem_w)).abs() < 1e-12);
        assert!(b.gpu_w > b.cpu_w, "LLM decode is GPU-dominated");
    }
}
