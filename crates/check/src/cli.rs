//! The `edgellm-check` command-line interface.
//!
//! Three subcommands, no external argument-parsing dependency:
//!
//! ```text
//! edgellm-check run --seed N [--count M] [--governor-only] [--prefix-only] [--spec-only]   # fuzz M seeds from N
//! edgellm-check replay --seed N [--requests 0,3] [--faults 1]   # replay a reproducer
//! edgellm-check corpus [--file PATH]          # run the regression corpus
//! ```
//!
//! `run` prints each seed's outcome; on the first violation it invokes
//! the shrinking minimizer and prints the exact `edgellm-check replay`
//! one-liner that reproduces the bug, then exits non-zero. `replay`
//! re-expands the seed, applies the index filters, and re-runs —
//! bit-identical on any host and at any `EDGELLM_THREADS`.

use crate::corpus;
use crate::runner::run_scenario;
use crate::scenario::Scenario;
use crate::shrink::{self, Repro};

const USAGE: &str = "\
edgellm-check — deterministic simulation testing for the serving stack

USAGE:
    edgellm-check run --seed N [--count M] [--governor-only] [--prefix-only] [--spec-only]
    edgellm-check replay --seed N [--requests I,J,...] [--faults I,J,...]
    edgellm-check corpus [--file PATH]

SUBCOMMANDS:
    run      Expand and run `count` scenarios starting at `seed` (default 1).
             On a violation, minimize and print the replay one-liner.
             `--governor-only` skips seeds without an online governor (the
             nightly sweep's governor axis); `--prefix-only` skips seeds
             without the radix prefix-cache dimension; `--spec-only` skips
             seeds without the speculative-decoding dimension (arming the
             spec-accounting oracle on every kept seed).
    replay   Re-run one scenario, optionally filtered to the given request
             and fault-event indices (a minimized reproducer).
    corpus   Run every seed in the regression corpus (default: built-in).

Exit status: 0 if every run is clean or legitimately rejected, 1 on any
invariant violation, 2 on usage errors.";

/// Entry point; returns the process exit code.
pub fn main_with_args(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            2
        }
    }
}

fn dispatch(args: &[String]) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(0)
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Pull `--flag value` out of an argument list.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{flag} requires a value")),
            };
        }
    }
    Ok(None)
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|e| format!("{what} {s:?}: {e}"))
}

/// Parse a `0,3,7`-style index list; the literal `none` (what a
/// minimized repro prints when every item was cut) is the empty list.
fn parse_indices(s: &str, what: &str) -> Result<Vec<usize>, String> {
    if s.trim() == "none" {
        return Ok(Vec::new());
    }
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.trim().parse::<usize>().map_err(|e| format!("{what} {p:?}: {e}")))
        .collect()
}

/// `known` flags take a value; `known_bool` flags stand alone.
fn require_known_flags(args: &[String], known: &[&str], known_bool: &[&str]) -> Result<(), String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if known_bool.contains(&a.as_str()) {
            continue;
        }
        if !known.contains(&a.as_str()) {
            return Err(format!("unexpected argument {a:?}"));
        }
        it.next(); // skip the flag's value
    }
    Ok(())
}

/// Re-run the minimized scenario so the flight recorder holds exactly
/// its event window, then write the dump next to the repro one-liner
/// (`flight-seed-N.txt`, or under `EDGELLM_FLIGHT_DIR` when set). Write
/// errors only warn: the repro line was already printed and the exit
/// code already reflects the violation.
fn dump_flight(seed: u64, min: &Scenario) {
    let _ = run_scenario(min);
    let dir = std::env::var("EDGELLM_FLIGHT_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/flight-seed-{seed}.txt");
    match std::fs::write(&path, edgellm_trace::forensics::flight::dump()) {
        Ok(()) => println!("  flight recorder dumped to {path}"),
        Err(e) => eprintln!("  warning: cannot write flight dump {path}: {e}"),
    }
}

fn cmd_run(args: &[String]) -> Result<i32, String> {
    require_known_flags(
        args,
        &["--seed", "--count"],
        &["--governor-only", "--prefix-only", "--spec-only"],
    )?;
    let seed = parse_u64(&flag_value(args, "--seed")?.ok_or("run requires --seed")?, "--seed")?;
    let count = match flag_value(args, "--count")? {
        Some(v) => parse_u64(&v, "--count")?,
        None => 1,
    };
    let governor_only = args.iter().any(|a| a == "--governor-only");
    let prefix_only = args.iter().any(|a| a == "--prefix-only");
    let spec_only = args.iter().any(|a| a == "--spec-only");
    let mut worst = 0;
    for s in seed..seed.saturating_add(count) {
        let sc = Scenario::from_seed(s);
        if governor_only && sc.governor.is_none() {
            continue;
        }
        if prefix_only && sc.prefix.is_none() {
            continue;
        }
        if spec_only && sc.spec.is_none() {
            continue;
        }
        println!("{}", sc.describe());
        let out = run_scenario(&sc);
        println!("  {out}");
        if out.is_violation() {
            worst = 1;
            let repro = shrink::minimize(s, |cand| run_scenario(cand).is_violation());
            let min = repro.materialize();
            println!(
                "  minimized to {} request(s), {} fault event(s); reproduce with:",
                min.requests.len(),
                min.faults.events().len()
            );
            println!("    {}", repro.command_line());
            dump_flight(s, &min);
        }
    }
    Ok(worst)
}

fn cmd_replay(args: &[String]) -> Result<i32, String> {
    require_known_flags(args, &["--seed", "--requests", "--faults"], &[])?;
    let seed = parse_u64(&flag_value(args, "--seed")?.ok_or("replay requires --seed")?, "--seed")?;
    let keep_requests =
        flag_value(args, "--requests")?.map(|v| parse_indices(&v, "--requests")).transpose()?;
    let keep_faults =
        flag_value(args, "--faults")?.map(|v| parse_indices(&v, "--faults")).transpose()?;
    let repro = Repro { seed, keep_requests, keep_faults };
    let sc = repro.materialize();
    println!("{}", sc.describe());
    let out = run_scenario(&sc);
    println!("{out}");
    println!("digest {:016x}", out.digest());
    Ok(if out.is_violation() { 1 } else { 0 })
}

fn cmd_corpus(args: &[String]) -> Result<i32, String> {
    require_known_flags(args, &["--file"], &[])?;
    let seeds = match flag_value(args, "--file")? {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            corpus::parse_seeds(&text)?
        }
        None => corpus::default_seeds(),
    };
    let mut violated = 0usize;
    for (seed, out) in corpus::run_corpus(&seeds) {
        println!("seed {seed}: {out}");
        if out.is_violation() {
            violated += 1;
            let repro = shrink::minimize(seed, |cand| run_scenario(cand).is_violation());
            println!("  reproduce with: {}", repro.command_line());
            dump_flight(seed, &repro.materialize());
        }
    }
    println!("corpus: {} seeds, {} violated", seeds.len(), violated);
    Ok(if violated > 0 { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn usage_errors_exit_2() {
        assert_eq!(main_with_args(&argv(&["bogus"])), 2);
        assert_eq!(main_with_args(&argv(&["run"])), 2); // missing --seed
        assert_eq!(main_with_args(&argv(&["run", "--seed"])), 2); // missing value
        assert_eq!(main_with_args(&argv(&["run", "--seed", "1", "--what"])), 2);
    }

    #[test]
    fn help_and_clean_runs_exit_0() {
        assert_eq!(main_with_args(&argv(&["--help"])), 0);
        assert_eq!(main_with_args(&argv(&["run", "--seed", "3"])), 0);
        assert_eq!(main_with_args(&argv(&["replay", "--seed", "3"])), 0);
    }

    #[test]
    fn governor_only_filters_ungoverned_seeds() {
        // A window of seeds wide enough to contain both kinds; the
        // filtered run must still exit clean and must not reject the
        // standalone flag.
        assert_eq!(
            main_with_args(&argv(&["run", "--seed", "1", "--count", "6", "--governor-only"])),
            0
        );
    }

    #[test]
    fn prefix_only_filters_cacheless_seeds() {
        assert_eq!(
            main_with_args(&argv(&["run", "--seed", "1", "--count", "8", "--prefix-only"])),
            0
        );
    }

    #[test]
    fn spec_only_filters_nonspeculative_seeds() {
        assert_eq!(
            main_with_args(&argv(&["run", "--seed", "1", "--count", "8", "--spec-only"])),
            0
        );
    }

    #[test]
    fn replay_accepts_index_filters() {
        assert_eq!(
            main_with_args(&argv(&["replay", "--seed", "3", "--requests", "0,1", "--faults", ""])),
            0
        );
        // `none` is what a fully-cut list prints in the repro one-liner.
        assert_eq!(main_with_args(&argv(&["replay", "--seed", "3", "--faults", "none"])), 0);
    }
}
