//! Scenario execution and outcome classification.
//!
//! [`run_scenario`] drives the simulators to completion, applies mid-run
//! knob events at their scheduled instants, and runs every oracle over
//! the post-run audit. The result is one of three outcomes:
//!
//! * [`Outcome::Clean`] — the run drained and every invariant held; the
//!   attached [`RunStats`] carry an order-sensitive digest over the full
//!   telemetry, so two runs can be compared bit-for-bit without keeping
//!   the traces around.
//! * [`Outcome::Rejected`] — the configuration was legitimately refused
//!   (a prompt larger than the KV pool, a model that does not load).
//!   Rejections are *not* failures; the generator deliberately wanders
//!   into them.
//! * [`Outcome::Violated`] — an invariant broke. This is always a bug.

use crate::oracles::{self, Violation};
use crate::scenario::{policy, Scenario, Shape};
use edgellm_core::serve::ServeAudit;
use edgellm_core::ServeSim;
use edgellm_fleet::{FaultKind, FleetSim};
use edgellm_governor::{Governor, GovernorAudit};
use edgellm_hw::PowerModeRegistry;

/// Order-sensitive FNV-1a over the run's observable telemetry. Stable
/// across processes, hosts, and thread counts — the simulators are
/// single-threaded by construction.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn audit(&mut self, a: &ServeAudit) {
        self.u64(a.submitted as u64);
        self.u64(a.preemptions as u64);
        self.u64(a.served_output_tokens);
        self.u64(a.kv_blocks_allocated);
        self.u64(a.kv_blocks_freed);
        // Prefix-cache counters fold in only when live: cache-off runs
        // (every pre-prefix seed) keep their digests bit-identical.
        if a.kv_cache_hit_tokens > 0 {
            self.u64(a.kv_cache_hit_tokens);
        }
        if a.kv_blocks_cow > 0 {
            self.u64(a.kv_blocks_cow);
        }
        // Speculation counters likewise fold in only when live, so every
        // spec-off seed keeps its pre-speculation digest bit-identical.
        if a.spec_drafted > 0 {
            self.u64(a.spec_drafted);
            self.u64(a.spec_accepted);
            self.u64(a.spec_rolled_back);
        }
        self.f64(a.energy_j);
        for c in &a.completions {
            self.u64(c.rid);
            self.f64(c.ttft_s);
            self.f64(c.latency_s);
            self.u64(c.output_tokens);
        }
        for &(t, rid) in &a.cancelled {
            self.f64(t);
            self.u64(rid);
        }
        for it in &a.trace {
            self.f64(it.t_s);
            self.f64(it.dt_s);
            self.f64(it.power_w);
            self.u64(it.kv_blocks_used as u64);
            self.u64(it.tokens);
        }
    }

    fn governor(&mut self, g: &GovernorAudit) {
        self.u64(g.decisions.len() as u64);
        for c in &g.decisions {
            self.f64(c.t_s);
            self.u64(c.from as u64);
            self.u64(c.to as u64);
        }
    }
}

/// Aggregate statistics of a clean run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Requests completed (devices + cloud).
    pub completed: usize,
    /// Requests cancelled by fault injection.
    pub cancelled: usize,
    /// Requests lost (fleet dark, no cloud) — conserved, but never placed.
    pub lost: usize,
    /// KV-pressure preemptions across all devices.
    pub preemptions: usize,
    /// Fault/thermal re-routes (fleet runs).
    pub reroutes: usize,
    /// Total energy (J).
    pub energy_j: f64,
    /// Run makespan (s).
    pub makespan_s: f64,
    /// Prompt tokens served from the radix prefix cache (all devices).
    pub cache_hit_tokens: u64,
    /// Draft tokens proposed by speculative decode (all devices).
    pub spec_drafted: u64,
    /// Draft tokens accepted by verification (all devices).
    pub spec_accepted: u64,
    /// Order-sensitive digest over the full telemetry.
    pub digest: u64,
}

/// What happened when a scenario ran.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Drained; every invariant held.
    Clean(RunStats),
    /// The configuration was legitimately refused (not a bug).
    Rejected(String),
    /// At least one invariant broke (always a bug).
    Violated(Vec<Violation>),
}

impl Outcome {
    /// Whether this outcome is an invariant violation.
    pub fn is_violation(&self) -> bool {
        matches!(self, Outcome::Violated(_))
    }

    /// A comparison digest: clean runs hash their telemetry, rejections
    /// hash the message, violations hash the violation list.
    pub fn digest(&self) -> u64 {
        match self {
            Outcome::Clean(s) => s.digest,
            Outcome::Rejected(msg) => {
                let mut d = Digest::new();
                for b in msg.bytes() {
                    d.u64(b as u64);
                }
                d.0
            }
            Outcome::Violated(vs) => {
                let mut d = Digest::new();
                for v in vs {
                    for b in v.oracle.bytes().chain(v.detail.bytes()) {
                        d.u64(b as u64);
                    }
                }
                d.0
            }
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Clean(s) => {
                write!(
                    f,
                    "clean: {} completed, {} cancelled, {} lost, {} preemptions, {} reroutes, \
                     {:.1} J over {:.1} s",
                    s.completed,
                    s.cancelled,
                    s.lost,
                    s.preemptions,
                    s.reroutes,
                    s.energy_j,
                    s.makespan_s,
                )?;
                if s.cache_hit_tokens > 0 {
                    write!(f, ", {} cache-hit tokens", s.cache_hit_tokens)?;
                }
                if s.spec_drafted > 0 {
                    write!(f, ", spec {}/{} accepted", s.spec_accepted, s.spec_drafted)?;
                }
                write!(f, " (digest {:016x})", s.digest)
            }
            Outcome::Rejected(msg) => write!(f, "rejected: {msg}"),
            Outcome::Violated(vs) => {
                write!(f, "VIOLATED ({}):", vs.len())?;
                for v in vs {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
        }
    }
}

/// Run a scenario to completion and classify the outcome.
pub fn run_scenario(sc: &Scenario) -> Outcome {
    // Scenario boundary for the always-on flight recorder: a violation's
    // dump then covers exactly the offending run's event window.
    edgellm_trace::forensics::flight::clear();
    match &sc.shape {
        Shape::Single(_) => run_single(sc),
        Shape::Fleet { .. } => run_fleet(sc),
    }
}

fn run_single(sc: &Scenario) -> Outcome {
    let spec = match &sc.shape {
        Shape::Single(m) => m,
        Shape::Fleet { .. } => unreachable!("caller matched"),
    };
    let device = spec.device();
    let run_cfg = spec.run_cfg();
    let prompts: std::collections::HashMap<u64, Vec<u32>> = sc.prompts().into_iter().collect();
    let mut sim =
        match ServeSim::new_with_prompts(spec.serve, &device, &run_cfg, &sc.requests, &prompts) {
            Ok(s) => s,
            Err(e) => return Outcome::Rejected(e.to_string()),
        };
    let mut gov = sc.governor.map(|g| {
        Governor::new(g.policy(spec), &device, run_cfg.llm, run_cfg.precision, &run_cfg.power_mode)
    });
    let registry = PowerModeRegistry::stock_for(device.clone());
    let events = sc.faults.events();
    let mut fi = 0usize;
    loop {
        let next_step = sim.next_event_s();
        let next_fault = events.get(fi).map(|e| e.t_s);
        match (next_step, next_fault) {
            (None, None) => break,
            // Knobs fire first at ties, mirroring the fleet's event order.
            (Some(t), Some(ft)) if ft <= t => {
                apply_knob(&mut sim, &registry, events[fi].kind, events[fi].t_s);
                resync_after_flip(&sc.shape, &sim, &mut gov, events[fi].kind);
                fi += 1;
            }
            (Some(t), _) => {
                let stepped = match &mut gov {
                    Some(g) => sim.step_governed(t, g),
                    None => sim.step(t),
                };
                if let Err(e) = stepped {
                    return Outcome::Rejected(e.to_string());
                }
            }
            (None, Some(_)) => {
                // Drained before the knob's instant: late cancels and
                // shrinks are no-ops, but still fire for determinism.
                apply_knob(&mut sim, &registry, events[fi].kind, events[fi].t_s);
                resync_after_flip(&sc.shape, &sim, &mut gov, events[fi].kind);
                fi += 1;
            }
        }
    }
    let audit = sim.audit();
    let gov_audit = gov.as_ref().map(|g| g.audit());
    let mut violations = oracles::check_serve(&audit, &sc.requests);
    if let Some(ga) = &gov_audit {
        oracles::check_governor(ga, &audit.trace, &mut violations);
    }
    if !violations.is_empty() {
        return Outcome::Violated(violations);
    }
    let mut d = Digest::new();
    d.audit(&audit);
    if let Some(ga) = &gov_audit {
        d.governor(ga);
    }
    Outcome::Clean(RunStats {
        completed: audit.completions.len(),
        cancelled: audit.cancelled.len(),
        lost: 0,
        preemptions: audit.preemptions,
        reroutes: 0,
        energy_j: audit.energy_j,
        makespan_s: sim.now(),
        cache_hit_tokens: audit.kv_cache_hit_tokens,
        spec_drafted: audit.spec_drafted,
        spec_accepted: audit.spec_accepted,
        digest: d.0,
    })
}

/// After a scripted power flip, re-base the single-device governor on
/// the simulation's actual mode (the fleet does the equivalent inside
/// its own `power_flip`).
fn resync_after_flip(shape: &Shape, sim: &ServeSim, gov: &mut Option<Governor>, kind: FaultKind) {
    let (Some(g), FaultKind::PowerFlip { .. }) = (gov.as_mut(), kind) else {
        return;
    };
    let Shape::Single(spec) = shape else {
        unreachable!("single-device knob path");
    };
    let run_cfg = spec.run_cfg();
    g.resync(&spec.device(), run_cfg.llm, run_cfg.precision, sim.power_mode());
}

/// Apply one knob event to a directly-driven [`ServeSim`]. Outages are
/// fleet-level concepts and are never generated for single scenarios;
/// they no-op here for robustness under shrinking. `t_s` is the knob's
/// scheduled instant: a power flip idles the device up to it first so
/// the pre-flip stretch is billed at the old mode's power (exact
/// energy splitting).
fn apply_knob(sim: &mut ServeSim, registry: &PowerModeRegistry, kind: FaultKind, t_s: f64) {
    match kind {
        FaultKind::KvShrink { permille } => {
            let total = sim.kv_total_blocks();
            let target = ((total as u64 * permille as u64) / 1000).max(1) as usize;
            if target < total {
                sim.shrink_kv_pool(target);
            }
        }
        FaultKind::PowerFlip { index } => {
            let idx = index as usize % registry.len().max(1);
            let mode = registry.iter().nth(idx).expect("index in range").clone();
            sim.set_power_mode_at(&mode, t_s).expect("stock mode validates on its own device");
        }
        FaultKind::Cancel { rid } => {
            sim.cancel(rid);
        }
        FaultKind::ClockSkew { ahead_ms } => {
            let now = sim.now();
            sim.skip_to(now + ahead_ms as f64 / 1000.0);
        }
        FaultKind::Down | FaultKind::Up => {}
    }
}

fn run_fleet(sc: &Scenario) -> Outcome {
    let (members, policy_idx) = match &sc.shape {
        Shape::Fleet { members, policy, .. } => (members, *policy),
        Shape::Single(_) => unreachable!("caller matched"),
    };
    let devices: Vec<_> = members
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let mut d = m.fleet_device(format!("dev-{i}"));
            if let Some(g) = &sc.governor {
                d = d.governed(g.policy(m));
            }
            d
        })
        .collect();
    let cfg = sc.fleet_config().expect("fleet shape");
    let sim = match FleetSim::new(devices, policy(policy_idx), cfg, &sc.requests) {
        Ok(s) => s.with_prompts(sc.prompts()),
        Err(e) => return Outcome::Rejected(e.to_string()),
    };
    let audit = match sim.run_audited() {
        Ok(a) => a,
        Err(e) => return Outcome::Rejected(e.to_string()),
    };
    let mut violations = oracles::check_fleet(&audit, &sc.requests);
    for (i, ga) in audit.governors.iter().enumerate() {
        if let Some(ga) = ga {
            oracles::check_governor(ga, &audit.devices[i].trace, &mut violations);
        }
    }
    if !violations.is_empty() {
        return Outcome::Violated(violations);
    }
    let mut d = Digest::new();
    for dev in &audit.devices {
        d.audit(dev);
    }
    for ga in audit.governors.iter().flatten() {
        d.governor(ga);
    }
    for &(t, _) in &audit.router_log {
        d.f64(t);
    }
    let r = &audit.report;
    Outcome::Clean(RunStats {
        completed: r.completed,
        cancelled: r.cancelled,
        lost: r.lost,
        preemptions: r.preemptions,
        reroutes: r.reroutes,
        energy_j: r.energy_j,
        makespan_s: r.makespan_s,
        cache_hit_tokens: audit.devices.iter().map(|a| a.kv_cache_hit_tokens).sum(),
        spec_drafted: audit.devices.iter().map(|a| a.spec_drafted).sum(),
        spec_accepted: audit.devices.iter().map(|a| a.spec_accepted).sum(),
        digest: d.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn same_seed_same_digest() {
        for seed in [0u64, 3, 11, 29] {
            let a = run_scenario(&Scenario::from_seed(seed));
            let b = run_scenario(&Scenario::from_seed(seed));
            assert_eq!(a.digest(), b.digest(), "seed {seed}");
        }
    }

    #[test]
    fn smoke_seed_matrix_is_clean() {
        // The PR-gate matrix: no seed in 0..16, nor any of the
        // governor-active, prefix-cache, or speculation smoke seeds, may
        // violate an invariant.
        for seed in (0..16u64)
            .chain(crate::corpus::GOVERNOR_SMOKE_SEEDS)
            .chain(crate::corpus::PREFIX_SMOKE_SEEDS)
            .chain(crate::corpus::SPEC_SMOKE_SEEDS)
        {
            let out = run_scenario(&Scenario::from_seed(seed));
            assert!(!out.is_violation(), "seed {seed}: {out}");
        }
    }
}
