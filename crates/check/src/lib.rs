//! # edgellm-check — deterministic simulation testing for the serving stack
//!
//! A FoundationDB/TigerBeetle-style harness that drives the single-device
//! serving simulator ([`ServeSim`](edgellm_core::ServeSim)) and the fleet
//! co-simulator ([`FleetSim`](edgellm_fleet::FleetSim)) end-to-end from a
//! single 64-bit seed:
//!
//! * [`scenario`] expands a seed into a complete scenario — workload
//!   (arrival process, prompt/output shapes drawn via `edgellm-corpus`),
//!   device/fleet topology, a fault plan (outages, KV shrinks, power
//!   flips, cancellations, clock skew), and — each on roughly a third of
//!   seeds — an online power-mode governor (ladder, energy-budget or
//!   thermal policy), the radix prefix cache with a shared system
//!   prompt, and speculative draft-and-verify decode (fixed or
//!   adaptive k, with the spec-accounting oracle armed);
//! * [`runner`] executes the scenario and classifies the outcome:
//!   [`Outcome::Clean`], a legitimate [`Outcome::Rejected`] configuration
//!   (e.g. a prompt larger than the KV pool), or [`Outcome::Violated`]
//!   with the failing invariants;
//! * [`oracles`] holds the invariant library — token conservation, KV
//!   accounting, request conservation across preemption and re-routing,
//!   energy = ∫ power, monotone event ordering, trace well-nestedness,
//!   governor dwell-floor and energy-budget contracts — reused by the
//!   workspace's property tests;
//! * [`shrink`] greedily minimizes a failing scenario to a small
//!   reproducer replayable from a printed one-liner;
//! * [`corpus`] runs the checked-in regression corpus of seeds.
//!
//! Everything downstream of the seed is deterministic: same seed, same
//! scenario, same outcome digest — across processes and regardless of
//! `EDGELLM_THREADS` (the simulators are single-threaded by design; the
//! thread knob only shards tensor kernels).
//!
//! ```
//! use edgellm_check::{runner, scenario::Scenario};
//!
//! let sc = Scenario::from_seed(3);
//! let a = runner::run_scenario(&sc);
//! let b = runner::run_scenario(&Scenario::from_seed(3));
//! assert_eq!(a.digest(), b.digest(), "same seed, same outcome");
//! assert!(!a.is_violation());
//! ```

pub mod cli;
pub mod corpus;
pub mod oracles;
pub mod runner;
pub mod scenario;
pub mod shrink;
pub mod workload;

pub use oracles::Violation;
pub use runner::{run_scenario, Outcome};
pub use scenario::Scenario;
pub use shrink::{minimize, Repro};
