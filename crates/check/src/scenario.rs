//! Seed → scenario expansion.
//!
//! A [`Scenario`] is everything one check run needs, fully materialized
//! and fully determined by its 64-bit seed: the request trace, the
//! device or fleet topology, and the fault plan. Materializing (rather
//! than re-deriving lazily) is what makes shrinking simple — the
//! minimizer filters the request and fault-event vectors by index, and a
//! reproducer is just `seed + kept indices`.

use crate::workload::{self, ArrivalShape};
use edgellm_core::serve::ServeConfig;
use edgellm_core::{CloudEndpoint, Request, RunConfig};
use edgellm_fleet::routing::{
    EnergyGreedy, JoinShortestQueue, LeastKvPressure, RoundRobin, RoutingPolicy, SloAware,
};
use edgellm_fleet::{FaultPlan, FleetConfig, FleetDevice};
use edgellm_governor::{
    EnergyBudget, GovernorPolicy, HystereticLadder, ModeLadder, SloSpec, ThermalHeadroom,
};
use edgellm_hw::DeviceSpec;
use edgellm_models::{Llm, Precision};
use edgellm_power::ThermalModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Device/precision combinations known to load the model — the generator
/// only picks configurations whose *construction* is valid, so any
/// [`Outcome::Rejected`](crate::Outcome::Rejected) mid-run is a genuine
/// workload-level rejection (e.g. a prompt exceeding a shrunken pool).
type DeviceCtor = fn() -> DeviceSpec;
const COMBOS: &[(DeviceCtor, Precision)] = &[
    (DeviceSpec::orin_agx_64gb, Precision::Fp16),
    (DeviceSpec::orin_agx_64gb, Precision::Int8),
    (DeviceSpec::orin_agx_64gb, Precision::Int4),
    (DeviceSpec::orin_nx_16gb, Precision::Int4),
    (DeviceSpec::xavier_agx_32gb, Precision::Int4),
];

/// One member of a generated scenario (single-device scenarios have
/// exactly one).
#[derive(Debug, Clone)]
pub struct MemberSpec {
    /// Index into the device/precision combo table.
    pub combo: usize,
    /// Scheduler configuration (chunked/blocking, KV cap).
    pub serve: ServeConfig,
    /// Aggressive-enclosure thermal model, when present.
    pub thermal: Option<ThermalModel>,
}

impl MemberSpec {
    /// The member's device spec.
    pub fn device(&self) -> DeviceSpec {
        COMBOS[self.combo].0()
    }

    /// The member's run configuration (MaxN-equivalent stock mode).
    pub fn run_cfg(&self) -> RunConfig {
        let (dev, precision) = (COMBOS[self.combo].0(), COMBOS[self.combo].1);
        RunConfig::new(Llm::Llama31_8b, precision).power_mode(edgellm_hw::PowerMode::maxn_for(&dev))
    }

    /// Build the fleet-member wrapper.
    pub fn fleet_device(&self, name: String) -> FleetDevice {
        let mut d = FleetDevice::new(self.device(), self.run_cfg()).named(name).serve(self.serve);
        if let Some(t) = self.thermal {
            d = d.thermal(t);
        }
        d
    }
}

/// Routing policies the generator can pick (index-addressed so the
/// choice is a plain integer in the seed stream).
pub fn policy(idx: usize) -> Box<dyn RoutingPolicy> {
    match idx % 5 {
        0 => Box::new(RoundRobin::default()),
        1 => Box::new(JoinShortestQueue),
        2 => Box::new(LeastKvPressure),
        3 => Box::new(EnergyGreedy::default()),
        _ => Box::new(SloAware::new(20.0)),
    }
}

/// Online power-mode governor attached to a scenario (the single
/// device, or every fleet member). Parameters are stored in
/// device-relative terms — the budget cap is a multiple of the floor
/// rung's peak power — so one spec is feasible on every generated
/// device/precision combo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GovernorSpec {
    /// Hysteretic SLO ladder defending the given targets.
    Ladder {
        /// TTFT target (s).
        ttft_s: f64,
        /// TBT target (s).
        tbt_s: f64,
    },
    /// Energy-budget enforcer. `cap_w = floor-rung peak × cap_factor`
    /// (always > the floor's peak, so the floor is always feasible);
    /// burst reserve is `burst_s` seconds at the cap line.
    Budget {
        /// Cap as a multiple of the floor rung's peak power (> 1).
        cap_factor: f64,
        /// Burst reserve, in seconds at the cap line.
        burst_s: f64,
    },
    /// Thermal-headroom governor defending `margin_c` below the trip
    /// limit (the member's enclosure model, or the passive-AGX default).
    Thermal {
        /// Headroom kept below the trip limit (°C).
        margin_c: f64,
    },
}

impl GovernorSpec {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            GovernorSpec::Ladder { .. } => "ladder",
            GovernorSpec::Budget { .. } => "budget",
            GovernorSpec::Thermal { .. } => "thermal",
        }
    }

    /// Materialize the policy for one member.
    pub fn policy(&self, member: &MemberSpec) -> Box<dyn GovernorPolicy> {
        match *self {
            GovernorSpec::Ladder { ttft_s, tbt_s } => {
                Box::new(HystereticLadder::new(SloSpec { ttft_s, tbt_s }))
            }
            GovernorSpec::Budget { cap_factor, burst_s } => {
                let run_cfg = member.run_cfg();
                let ladder = ModeLadder::stock(&member.device(), run_cfg.llm, run_cfg.precision);
                let cap_w = ladder.rung(0).cost.peak_power_w * cap_factor;
                Box::new(EnergyBudget::new(cap_w).burst(burst_s * cap_w))
            }
            GovernorSpec::Thermal { margin_c } => {
                let model = member.thermal.unwrap_or_else(ThermalModel::orin_agx_passive);
                Box::new(ThermalHeadroom::new(model, margin_c))
            }
        }
    }
}

/// The prefix-cache dimension: when drawn, every member serves with the
/// radix prefix cache enabled and a slice of the trace carries one
/// shared system prompt, so admissions after the first reuse its cached
/// blocks. Parameters are stored, not re-derived, so shrinking keeps the
/// prompt assignment stable while requests are filtered out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixSpec {
    /// Percentage of requests carrying the shared system prompt (0–100).
    pub shared_pct: u32,
    /// Length of the shared system prompt, in tokens.
    pub system_tokens: u64,
    /// Salt mixed into the prompt's token ids and the per-request
    /// membership hash, so different seeds share different prompts.
    pub salt: u32,
}

impl PrefixSpec {
    /// Whether request `rid` carries the shared system prompt
    /// (deterministic splitmix64 membership hash — no stream draws, so
    /// the assignment survives request filtering during shrinking).
    pub fn shares_prompt(&self, rid: u64) -> bool {
        let mut x = rid ^ ((self.salt as u64) << 32 | 0x9e37_79b9);
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 31;
        (x % 100) < self.shared_pct as u64
    }

    /// The shared system prompt's token ids.
    pub fn system_prompt(&self) -> Vec<u32> {
        (0..self.system_tokens).map(|i| self.salt.wrapping_add(i as u32)).collect()
    }
}

/// The speculative-decoding dimension: when drawn, every member serves
/// with draft-and-verify decode armed at the given draft depth and
/// synthetic acceptance rate. Stored as parameters (not a materialized
/// config) so shrinking and replay keep the draw stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecSpec {
    /// Draft depth (tokens drafted per verify pass), ≥ 1.
    pub k: u64,
    /// Synthetic per-token acceptance probability (0–1).
    pub alpha: f64,
    /// Whether the adaptive-k controller is armed (k becomes a ceiling).
    pub adaptive: bool,
}

impl SpecSpec {
    /// Apply this dimension to a member's serve config.
    pub fn apply(&self, serve: ServeConfig) -> ServeConfig {
        if self.adaptive {
            serve.with_adaptive_speculation(self.k, self.alpha)
        } else {
            serve.with_speculation(self.k, self.alpha)
        }
    }
}

/// Scenario topology: one steppable device, or a routed fleet.
#[derive(Debug, Clone)]
pub enum Shape {
    /// One [`ServeSim`](edgellm_core::ServeSim) driven directly; fault
    /// events apply as mid-run knobs (Down/Up are never generated).
    Single(MemberSpec),
    /// A [`FleetSim`](edgellm_fleet::FleetSim) over 2–3 members.
    Fleet {
        /// The members, in fleet index order.
        members: Vec<MemberSpec>,
        /// Routing policy index (see [`policy`]).
        policy: usize,
        /// Whether a cloud endpoint absorbs spillover.
        cloud: bool,
        /// SLO deadline for attainment accounting (s).
        slo_s: f64,
    },
}

/// A fully materialized check scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed that produced it.
    pub seed: u64,
    /// Arrival regime (for display).
    pub arrivals: ArrivalShape,
    /// The request trace, ids `0..n`.
    pub requests: Vec<Request>,
    /// Scripted faults/knobs, in firing order.
    pub faults: FaultPlan,
    /// Topology.
    pub shape: Shape,
    /// Online power-mode governor (attached to every device), when the
    /// seed drew one.
    pub governor: Option<GovernorSpec>,
    /// Prefix-cache dimension (cache-enabled members + shared system
    /// prompt), when the seed drew one.
    pub prefix: Option<PrefixSpec>,
    /// Speculative-decoding dimension (draft-and-verify serve on every
    /// member), when the seed drew one.
    pub spec: Option<SpecSpec>,
}

fn member_spec(rng: &mut StdRng) -> MemberSpec {
    let combo = rng.gen_range(0usize..COMBOS.len());
    let mut serve = if rng.gen_range(0u32..5) == 0 {
        ServeConfig::blocking(rng.gen_range(2usize..=16))
    } else {
        ServeConfig::chunked(rng.gen_range(2usize..=16)).chunk_tokens(rng.gen_range(4u64..=64))
    };
    // Half the scenarios run under deliberate KV pressure: a pool of
    // 1–24 sequences' worth of 160-token shapes.
    if rng.gen_range(0u32..2) == 0 {
        let kv_per_token = Llm::Llama31_8b.arch().kv_bytes_per_token();
        let seqs = rng.gen_range(1u64..=24);
        serve = serve.kv_pool_cap(seqs * 160 * kv_per_token);
    }
    let thermal = if rng.gen_range(0u32..6) == 0 {
        Some(ThermalModel { r_c_per_w: 2.0, tau_s: 5.0, t_ambient_c: 25.0, t_limit_c: 62.0 })
    } else {
        None
    };
    MemberSpec { combo, serve, thermal }
}

/// Generate the fault plan: outages (fleet only) plus mid-run knobs.
fn fault_plan(rng: &mut StdRng, requests: &[Request], n_devices: usize, fleet: bool) -> FaultPlan {
    let horizon = requests.last().map_or(10.0, |r| r.arrival_s) + 20.0;
    let mut plan = FaultPlan::none();
    if fleet {
        for _ in 0..rng.gen_range(0u32..=2) {
            let dev = rng.gen_range(0usize..n_devices);
            let down = rng.gen_range(0.0..horizon * 0.7);
            let up = down + rng.gen_range(0.1..horizon * 0.5);
            plan = plan.outage(dev, down, up);
        }
    }
    for _ in 0..rng.gen_range(0u32..=3) {
        let dev = rng.gen_range(0usize..n_devices);
        let t = rng.gen_range(0.0..horizon);
        match rng.gen_range(0u32..4) {
            0 => plan = plan.kv_shrink(dev, t, rng.gen_range(100u16..=900)),
            1 => plan = plan.power_flip(dev, t, rng.gen_range(0u8..=8)),
            2 => {
                let r = &requests[rng.gen_range(0..requests.len())];
                // Cancel strictly after arrival so the request exists.
                let t = r.arrival_s + rng.gen_range(0.01..5.0);
                plan = plan.cancel(t, r.id);
            }
            _ => plan = plan.clock_skew(dev, t, rng.gen_range(50u32..=2000)),
        }
    }
    plan
}

/// The governor dimension, drawn *after* every other draw in
/// [`Scenario::from_seed`] so pre-governor seeds keep their requests,
/// topology, and fault plans verbatim. Roughly a third of seeds run
/// governed.
fn governor_spec(rng: &mut StdRng) -> Option<GovernorSpec> {
    if rng.gen_range(0u32..3) != 0 {
        return None;
    }
    Some(match rng.gen_range(0u32..3) {
        0 => GovernorSpec::Ladder {
            ttft_s: rng.gen_range(5.0..30.0),
            tbt_s: rng.gen_range(0.3..1.5),
        },
        1 => GovernorSpec::Budget {
            cap_factor: rng.gen_range(1.15..1.8),
            burst_s: rng.gen_range(1.0..4.0),
        },
        _ => GovernorSpec::Thermal { margin_c: rng.gen_range(4.0..12.0) },
    })
}

/// The speculation dimension, drawn *after* the prefix draw (previously
/// the final dimension) so every earlier seed keeps its requests,
/// topology, faults, governor, and prefix draw verbatim. Roughly a third
/// of seeds serve speculatively.
fn spec_spec(rng: &mut StdRng) -> Option<SpecSpec> {
    if rng.gen_range(0u32..3) != 0 {
        return None;
    }
    Some(SpecSpec {
        k: rng.gen_range(1u64..=8),
        alpha: rng.gen_range(0.05..0.95),
        adaptive: rng.gen_range(0u32..2) == 0,
    })
}

/// The prefix-cache dimension, drawn *after* the governor draw (which
/// was itself the last pre-prefix dimension) so every earlier seed keeps
/// its requests, topology, faults, and governor verbatim. Roughly a
/// third of seeds serve with the radix prefix cache on.
fn prefix_spec(rng: &mut StdRng) -> Option<PrefixSpec> {
    if rng.gen_range(0u32..3) != 0 {
        return None;
    }
    Some(PrefixSpec {
        shared_pct: rng.gen_range(25u32..=90),
        system_tokens: rng.gen_range(24u64..=192),
        salt: rng.gen_range(0u32..=u32::MAX),
    })
}

impl Scenario {
    /// Expand `seed` into a complete scenario. Deterministic: the same
    /// seed always yields the same scenario, on any host.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = workload::pick_shape(&mut rng);
        let n = rng.gen_range(4usize..=32);
        let requests = workload::generate(&mut rng, n, arrivals).requests;
        let mut sc = if rng.gen_range(0u32..10) < 4 {
            let spec = member_spec(&mut rng);
            let faults = fault_plan(&mut rng, &requests, 1, false);
            Scenario {
                seed,
                arrivals,
                requests,
                faults,
                shape: Shape::Single(spec),
                governor: None,
                prefix: None,
                spec: None,
            }
        } else {
            let n_devices = rng.gen_range(2usize..=3);
            let members: Vec<MemberSpec> = (0..n_devices).map(|_| member_spec(&mut rng)).collect();
            let policy = rng.gen_range(0usize..5);
            let cloud = rng.gen_range(0u32..3) == 0;
            let slo_s = rng.gen_range(10.0..40.0);
            let faults = fault_plan(&mut rng, &requests, n_devices, true);
            Scenario {
                seed,
                arrivals,
                requests,
                faults,
                shape: Shape::Fleet { members, policy, cloud, slo_s },
                governor: None,
                prefix: None,
                spec: None,
            }
        };
        sc.governor = governor_spec(&mut rng);
        sc.prefix = prefix_spec(&mut rng);
        sc.spec = spec_spec(&mut rng);
        // Apply the drawn serve-config dimensions to every member.
        // Applied after all draws, so the seed stream is untouched.
        if sc.prefix.is_some() || sc.spec.is_some() {
            let prefix = sc.prefix.is_some();
            let spec = sc.spec;
            let apply = |m: &mut MemberSpec| {
                if prefix {
                    m.serve = m.serve.with_prefix_cache();
                }
                if let Some(s) = spec {
                    m.serve = s.apply(m.serve);
                }
            };
            match &mut sc.shape {
                Shape::Single(m) => apply(m),
                Shape::Fleet { members, .. } => {
                    for m in members {
                        apply(m);
                    }
                }
            }
        }
        sc
    }

    /// Prompt token ids by request id: requests the [`PrefixSpec`]
    /// membership hash selects carry the shared system prompt (the
    /// simulator pads past it with per-request synthetic tokens, so
    /// suffixes diverge naturally). Empty when the seed drew no prefix
    /// dimension.
    pub fn prompts(&self) -> Vec<(u64, Vec<u32>)> {
        let Some(p) = self.prefix else {
            return Vec::new();
        };
        let system = p.system_prompt();
        self.requests
            .iter()
            .filter(|r| r.input_tokens > 0 && p.shares_prompt(r.id))
            .map(|r| (r.id, system.clone()))
            .collect()
    }

    /// The fleet config for a fleet-shaped scenario.
    pub fn fleet_config(&self) -> Option<FleetConfig> {
        match &self.shape {
            Shape::Single(_) => None,
            Shape::Fleet { cloud, slo_s, .. } => Some(FleetConfig {
                slo_latency_s: *slo_s,
                cloud: cloud.then(CloudEndpoint::datacenter),
                faults: self.faults.clone(),
            }),
        }
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        let topo = match &self.shape {
            Shape::Single(m) => format!("single[{}]", m.device().name),
            Shape::Fleet { members, policy, cloud, .. } => format!(
                "fleet[{} devices, policy {}{}]",
                members.len(),
                policy,
                if *cloud { ", cloud" } else { "" }
            ),
        };
        let gov = match &self.governor {
            Some(g) => format!(", governor {}", g.name()),
            None => String::new(),
        };
        let prefix = match &self.prefix {
            Some(p) => format!(", prefix {}%×{}tok", p.shared_pct, p.system_tokens),
            None => String::new(),
        };
        let spec = match &self.spec {
            Some(s) => format!(
                ", spec k={} α={:.2}{}",
                s.k,
                s.alpha,
                if s.adaptive { " adaptive" } else { "" }
            ),
            None => String::new(),
        };
        format!(
            "seed {}: {:?} × {} requests, {} fault events, {}{}{}{}",
            self.seed,
            self.arrivals,
            self.requests.len(),
            self.faults.events().len(),
            topo,
            gov,
            prefix,
            spec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        for seed in [0u64, 1, 7, 42, 0xDEAD_BEEF] {
            let a = Scenario::from_seed(seed);
            let b = Scenario::from_seed(seed);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.describe(), b.describe());
        }
    }

    #[test]
    fn seeds_cover_both_shapes_and_some_faults() {
        let mut single = 0;
        let mut fleet = 0;
        let mut faulted = 0;
        for seed in 0..40u64 {
            let sc = Scenario::from_seed(seed);
            match sc.shape {
                Shape::Single(_) => single += 1,
                Shape::Fleet { .. } => fleet += 1,
            }
            if !sc.faults.events().is_empty() {
                faulted += 1;
            }
        }
        assert!(single > 5, "single-device scenarios generated: {single}");
        assert!(fleet > 5, "fleet scenarios generated: {fleet}");
        assert!(faulted > 10, "fault plans generated: {faulted}");
    }

    #[test]
    fn spec_dimension_is_drawn_and_applied_to_every_member() {
        let mut armed = 0;
        for seed in 0..60u64 {
            let sc = Scenario::from_seed(seed);
            let Some(s) = sc.spec else { continue };
            armed += 1;
            assert!((1..=8).contains(&s.k));
            assert!((0.05..0.95).contains(&s.alpha));
            let check = |m: &MemberSpec| {
                let spec = m.serve.spec.expect("member serves speculatively");
                assert_eq!(spec.k, s.k);
                assert_eq!(spec.adaptive, s.adaptive);
            };
            match &sc.shape {
                Shape::Single(m) => check(m),
                Shape::Fleet { members, .. } => members.iter().for_each(check),
            }
        }
        assert!(armed > 5, "spec scenarios generated: {armed}");
    }

    #[test]
    fn cancel_events_target_known_requests_after_arrival() {
        for seed in 0..60u64 {
            let sc = Scenario::from_seed(seed);
            for ev in sc.faults.events() {
                if let edgellm_fleet::FaultKind::Cancel { rid } = ev.kind {
                    let r = sc.requests.iter().find(|r| r.id == rid).expect("known rid");
                    assert!(ev.t_s > r.arrival_s, "cancel after arrival");
                }
            }
        }
    }
}
