//! Greedy failure minimization (delta debugging over the scenario).
//!
//! When a seed violates an invariant, the raw scenario is usually far
//! larger than the bug needs: dozens of requests, a handful of fault
//! events. [`minimize`] runs ddmin-style greedy reduction over the
//! request list and then the fault-event list — try dropping a chunk,
//! keep the cut if the violation survives, halve the chunk size when a
//! full sweep removes nothing — and returns a [`Repro`]: the seed plus
//! the surviving indices. Replaying a repro re-expands the seed and
//! filters, so the reproducer is a one-liner, not a serialized blob.
//!
//! The evaluation function is a parameter (not hard-wired to
//! [`run_scenario`](crate::runner::run_scenario)) so the reduction logic
//! itself is unit-testable against synthetic predicates.

use crate::scenario::Scenario;
use edgellm_fleet::FaultPlan;

/// A minimized reproducer: the seed plus the indices (into the seed's
/// canonical request/fault vectors) that the failure still needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// Seed to re-expand.
    pub seed: u64,
    /// Indices into the scenario's canonical request list; `None` keeps
    /// everything.
    pub keep_requests: Option<Vec<usize>>,
    /// Indices into the scenario's canonical fault-event list; `None`
    /// keeps everything.
    pub keep_faults: Option<Vec<usize>>,
}

impl Repro {
    /// The whole scenario, unshrunk.
    pub fn full(seed: u64) -> Self {
        Repro { seed, keep_requests: None, keep_faults: None }
    }

    /// Re-expand the seed and filter down to the kept indices.
    pub fn materialize(&self) -> Scenario {
        let sc = Scenario::from_seed(self.seed);
        apply(&sc, self.keep_requests.as_deref(), self.keep_faults.as_deref())
    }

    /// The replay one-liner. An empty kept list (the minimizer cut
    /// everything) renders as the literal `none` so the command stays a
    /// valid, copy-pastable shell line.
    pub fn command_line(&self) -> String {
        let mut s = format!("edgellm-check replay --seed {}", self.seed);
        if let Some(reqs) = &self.keep_requests {
            s.push_str(&format!(" --requests {}", csv(reqs)));
        }
        if let Some(faults) = &self.keep_faults {
            s.push_str(&format!(" --faults {}", csv(faults)));
        }
        s
    }
}

fn csv(xs: &[usize]) -> String {
    if xs.is_empty() {
        return "none".into();
    }
    xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
}

/// Filter a scenario down to the kept request/fault indices (`None`
/// keeps everything). Fault events referencing cancelled requests are
/// left in place — a cancel whose target request was dropped is a no-op,
/// which the reduction loop exploits to cut requests independently.
pub fn apply(
    sc: &Scenario,
    keep_requests: Option<&[usize]>,
    keep_faults: Option<&[usize]>,
) -> Scenario {
    let mut out = sc.clone();
    if let Some(keep) = keep_requests {
        out.requests = keep.iter().filter_map(|&i| sc.requests.get(i).copied()).collect();
    }
    if let Some(keep) = keep_faults {
        let events = sc.faults.events();
        out.faults =
            FaultPlan::from_events(keep.iter().filter_map(|&i| events.get(i).copied()).collect());
    }
    out
}

/// One ddmin pass over an index list: greedily drop chunks (largest
/// first) while `still_fails` holds, halving granularity until single
/// elements have been tried. Returns the surviving indices.
fn ddmin(full: &[usize], mut still_fails: impl FnMut(&[usize]) -> bool) -> Vec<usize> {
    let mut kept: Vec<usize> = full.to_vec();
    let mut chunk = (kept.len() / 2).max(1);
    while !kept.is_empty() {
        let mut removed_any = false;
        let mut start = 0usize;
        while start < kept.len() {
            let end = (start + chunk).min(kept.len());
            let candidate: Vec<usize> = kept
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= end)
                .map(|(_, &v)| v)
                .collect();
            if still_fails(&candidate) {
                kept = candidate;
                removed_any = true;
                // Do not advance: the chunk at `start` is new content.
            } else {
                start = end;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        } else {
            chunk = chunk.min(kept.len().max(1));
        }
    }
    kept
}

/// Greedily minimize a failing scenario. `fails` must return `true` when
/// the (filtered) scenario still exhibits the failure; it is called many
/// times, always on deterministic inputs. Requests are reduced first
/// (they dominate runtime), then fault events.
pub fn minimize(seed: u64, fails: impl Fn(&Scenario) -> bool) -> Repro {
    let sc = Scenario::from_seed(seed);
    debug_assert!(fails(&sc), "minimize called on a non-failing scenario");
    let all_requests: Vec<usize> = (0..sc.requests.len()).collect();
    let kept_requests = ddmin(&all_requests, |keep| fails(&apply(&sc, Some(keep), None)));
    let all_faults: Vec<usize> = (0..sc.faults.events().len()).collect();
    let kept_faults =
        ddmin(&all_faults, |keep| fails(&apply(&sc, Some(&kept_requests), Some(keep))));
    Repro {
        seed,
        keep_requests: (kept_requests.len() < sc.requests.len()).then_some(kept_requests),
        keep_faults: (kept_faults.len() < sc.faults.events().len()).then_some(kept_faults),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A seed whose scenario has enough requests and faults to shrink.
    fn rich_seed() -> u64 {
        (0..200u64)
            .find(|&s| {
                let sc = Scenario::from_seed(s);
                sc.requests.len() >= 10 && sc.faults.events().len() >= 2
            })
            .expect("a rich scenario in the first 200 seeds")
    }

    #[test]
    fn minimizer_isolates_a_single_culprit_request() {
        let seed = rich_seed();
        let sc = Scenario::from_seed(seed);
        let culprit = sc.requests[sc.requests.len() / 2].id;
        // Synthetic predicate: "fails" iff the culprit request survives.
        let repro = minimize(seed, |s| s.requests.iter().any(|r| r.id == culprit));
        let min = repro.materialize();
        assert_eq!(min.requests.len(), 1, "exactly the culprit remains");
        assert_eq!(min.requests[0].id, culprit);
        assert!(min.faults.events().is_empty(), "irrelevant faults dropped");
    }

    #[test]
    fn minimizer_keeps_a_required_pair() {
        let seed = rich_seed();
        let sc = Scenario::from_seed(seed);
        let (a, b) = (sc.requests[0].id, sc.requests[sc.requests.len() - 1].id);
        let repro = minimize(seed, |s| {
            s.requests.iter().any(|r| r.id == a) && s.requests.iter().any(|r| r.id == b)
        });
        let min = repro.materialize();
        assert_eq!(min.requests.len(), 2, "both halves of the pair survive");
    }

    #[test]
    fn repro_round_trips_through_the_command_line_shape() {
        let repro =
            Repro { seed: 42, keep_requests: Some(vec![0, 3, 7]), keep_faults: Some(vec![1]) };
        assert_eq!(
            repro.command_line(),
            "edgellm-check replay --seed 42 --requests 0,3,7 --faults 1"
        );
        let cut_all = Repro { seed: 42, keep_requests: Some(vec![5]), keep_faults: Some(vec![]) };
        assert_eq!(
            cut_all.command_line(),
            "edgellm-check replay --seed 42 --requests 5 --faults none"
        );
        let full = Repro::full(9);
        assert_eq!(full.command_line(), "edgellm-check replay --seed 9");
        assert_eq!(full.materialize().requests, Scenario::from_seed(9).requests);
    }
}
