//! `edgellm-check` — deterministic simulation testing from the shell.
//!
//! See [`edgellm_check::cli`] for the subcommands. The binary is a thin
//! shim so the whole CLI stays unit-testable in-process.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(edgellm_check::cli::main_with_args(&args));
}
