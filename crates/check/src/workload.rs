//! Seeded workload generation: the request traces the harness throws at
//! the simulators.
//!
//! Three arrival regimes cover the scheduling space — steady Poisson
//! traffic, bursty clustered arrivals with exact timestamp ties, and an
//! adversarial mix (zero-length prompts, a giant prompt, everything at
//! t=0). Prompt lengths are drawn either from a real BPE-tokenized
//! [`PromptPool`] (built once per process
//! from a synthetic WikiText2-like corpus) or from a Zipf-skewed
//! synthetic distribution, so the shapes look like the paper's workloads
//! rather than uniform noise.

use edgellm_core::Request;
use edgellm_corpus::{BpeTokenizer, CorpusKind, PromptPool, SyntheticCorpus, Zipf};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::OnceLock;

/// Prompt-length samples from a real tokenized pool, built once per
/// process (BPE training is the expensive part; every scenario shares
/// it). The pool itself is seeded, so the lengths are process-invariant.
fn corpus_lengths() -> &'static Vec<u64> {
    static LENGTHS: OnceLock<Vec<u64>> = OnceLock::new();
    LENGTHS.get_or_init(|| {
        let corpus = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 8_000, 71);
        let tok = BpeTokenizer::train(&corpus.text, 300);
        let pool = PromptPool::build(&corpus, &tok, 16);
        pool.prompts().iter().map(|p| (p.len() as u64).clamp(1, 512)).collect()
    })
}

/// How arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalShape {
    /// Independent exponential gaps (steady traffic).
    Poisson,
    /// A few clustered bursts with exact timestamp ties inside each.
    Bursty,
    /// Everything at t=0 plus degenerate shapes (zero prompts, one
    /// giant prompt) — the schedule most likely to trip edge cases.
    Adversarial,
}

/// A generated request trace plus the knobs that shaped it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The trace, ids `0..n`, sorted by `(arrival, id)`.
    pub requests: Vec<Request>,
    /// Arrival regime used.
    pub shape: ArrivalShape,
}

/// Draw one prompt length: corpus-sampled, Zipf-skewed, or degenerate.
fn prompt_len(rng: &mut StdRng) -> u64 {
    match rng.gen_range(0u32..10) {
        0 => 0, // zero-length prompt
        1..=4 => {
            let lens = corpus_lengths();
            lens[rng.gen_range(0..lens.len())]
        }
        5..=8 => {
            // Zipf-ranked bucket → length: most prompts short, a few long.
            static ZIPF_N: usize = 64;
            let z = Zipf::new(ZIPF_N, 1.1);
            let rank = z.sample(rng);
            (8 * (rank as u64 + 1)).min(512)
        }
        _ => rng.gen_range(256u64..=1024), // long prompt
    }
}

/// Draw one output length (occasionally zero: a prefill-only request).
fn output_len(rng: &mut StdRng) -> u64 {
    match rng.gen_range(0u32..12) {
        0 => 0,
        1..=8 => rng.gen_range(8u64..=96),
        _ => rng.gen_range(96u64..=256),
    }
}

/// Generate a trace of `n` requests under the given arrival shape.
pub fn generate(rng: &mut StdRng, n: usize, shape: ArrivalShape) -> Workload {
    let mut requests = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for id in 0..n as u64 {
        let arrival_s = match shape {
            ArrivalShape::Poisson => {
                let rate = 2.0;
                let u: f64 = rng.gen_range(1e-12..1.0);
                t += -u.ln() / rate;
                t
            }
            ArrivalShape::Bursty => {
                // New burst instant every ~4 requests; ties inside.
                if id % 4 == 0 {
                    t += rng.gen_range(0.5..4.0);
                }
                t
            }
            ArrivalShape::Adversarial => 0.0,
        };
        let (input_tokens, output_tokens) = if shape == ArrivalShape::Adversarial && id == 0 {
            (rng.gen_range(512u64..=1536), rng.gen_range(1u64..=32)) // the giant prompt
        } else {
            (prompt_len(rng), output_len(rng))
        };
        requests.push(Request { id, arrival_s, input_tokens, output_tokens });
    }
    // At least one token of real work in the trace, or the run is vacuous.
    if requests.iter().all(|r| r.input_tokens + r.output_tokens == 0) {
        requests[0].output_tokens = 1;
    }
    Workload { requests, shape }
}

/// Pick an arrival shape from the stream.
pub fn pick_shape(rng: &mut StdRng) -> ArrivalShape {
    match rng.gen_range(0u32..10) {
        0..=5 => ArrivalShape::Poisson,
        6..=8 => ArrivalShape::Bursty,
        _ => ArrivalShape::Adversarial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn same_stream_same_workload() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let wa = generate(&mut a, 20, ArrivalShape::Poisson);
        let wb = generate(&mut b, 20, ArrivalShape::Poisson);
        assert_eq!(wa.requests, wb.requests);
    }

    #[test]
    fn arrivals_are_sorted_and_ids_stable() {
        let mut rng = StdRng::seed_from_u64(4);
        for shape in [ArrivalShape::Poisson, ArrivalShape::Bursty, ArrivalShape::Adversarial] {
            let w = generate(&mut rng, 30, shape);
            assert_eq!(w.requests.len(), 30);
            for (i, r) in w.requests.iter().enumerate() {
                assert_eq!(r.id, i as u64);
            }
            for pair in w.requests.windows(2) {
                assert!(pair[1].arrival_s >= pair[0].arrival_s, "{shape:?} arrivals sorted");
            }
        }
    }

    #[test]
    fn adversarial_trace_contains_ties_at_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = generate(&mut rng, 10, ArrivalShape::Adversarial);
        assert!(w.requests.iter().all(|r| r.arrival_s == 0.0));
    }
}
