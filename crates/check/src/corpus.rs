//! The checked-in regression corpus of seeds.
//!
//! `corpus/seeds.txt` is the harness's own regression net: every seed in
//! it must run [`Outcome::Clean`]. The file is compiled in via
//! `include_str!`, so the corpus travels with the binary — CI and the
//! `check_corpus` integration test run the same list. Sweeps that find
//! and fix a violation append the offending seed so the bug class stays
//! covered.

use crate::runner::{run_scenario, Outcome};
use crate::scenario::Scenario;

/// The checked-in seed list (`corpus/seeds.txt`), verbatim.
pub const DEFAULT_SEEDS: &str = include_str!("../corpus/seeds.txt");

/// Governor-active seeds appended to the PR-gate smoke matrix: each one
/// expands with an online power-mode governor attached (ladder, budget
/// and thermal policies across single-device and fleet shapes) and must
/// run clean — the governor oracles (`governor-dwell`, `governor-budget`)
/// are live on every one. Kept as a named constant so the smoke tests
/// and the CI gate extend the 0..16 matrix by exactly this set.
pub const GOVERNOR_SMOKE_SEEDS: [u64; 4] = [33, 51, 90, 104];

/// Prefix-cache-active seeds appended to the PR-gate smoke matrix: each
/// one expands with the radix prefix cache enabled on every member and
/// a shared system prompt threaded through the trace, must run clean
/// with the kv-sharing and kv-refcount oracles armed, and must record a
/// nonzero cache hit rate (the `prefix_smoke_seeds_hit_the_cache` test
/// pins that). Covers single-device, fleet, governed, and
/// preemption-under-cache shapes.
pub const PREFIX_SMOKE_SEEDS: [u64; 4] = [2, 5, 12, 43];

/// Speculation-active seeds appended to the PR-gate smoke matrix: each
/// one expands with draft-and-verify decode armed on every member and
/// must run clean with the `spec-accounting` oracle live. Covers
/// single-device adaptive-k under KV-pressure preemption (4), fixed-k
/// fleet (10), speculation composed with the prefix cache and a cloud
/// spillover (12), and adaptive-k under an online governor (39).
pub const SPEC_SMOKE_SEEDS: [u64; 4] = [4, 10, 12, 39];

/// Parse a seeds file: one seed per line, `#` starts a comment, blank
/// lines ignored. Malformed lines are an error, not silently skipped —
/// a typo'd seed silently dropped would shrink the regression net.
pub fn parse_seeds(text: &str) -> Result<Vec<u64>, String> {
    let mut seeds = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let seed = line
            .parse::<u64>()
            .map_err(|e| format!("seeds line {}: {:?}: {}", lineno + 1, raw.trim(), e))?;
        seeds.push(seed);
    }
    Ok(seeds)
}

/// The default corpus, parsed. Panics only if the checked-in file is
/// malformed, which the unit tests catch first.
pub fn default_seeds() -> Vec<u64> {
    parse_seeds(DEFAULT_SEEDS).expect("checked-in corpus parses")
}

/// Run every seed and pair it with its outcome.
pub fn run_corpus(seeds: &[u64]) -> Vec<(u64, Outcome)> {
    seeds.iter().map(|&s| (s, run_scenario(&Scenario::from_seed(s)))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_in_corpus_parses_and_is_nonempty() {
        let seeds = default_seeds();
        assert!(seeds.len() >= 16, "corpus has at least the smoke matrix");
        let mut sorted = seeds.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "no duplicate seeds");
    }

    #[test]
    fn parser_handles_comments_and_rejects_garbage() {
        assert_eq!(parse_seeds("# only comments\n\n  \n").unwrap(), Vec::<u64>::new());
        assert_eq!(parse_seeds("7 # trailing\n12\n").unwrap(), vec![7, 12]);
        assert!(parse_seeds("7\nnot-a-seed\n").is_err());
    }

    #[test]
    fn governor_smoke_seeds_are_governed_varied_and_in_corpus() {
        let seeds = default_seeds();
        let mut policies = Vec::new();
        for &s in &GOVERNOR_SMOKE_SEEDS {
            assert!(seeds.contains(&s), "governor smoke seed {s} belongs in the corpus file");
            let sc = Scenario::from_seed(s);
            let g = sc.governor.expect("governor smoke seed expands with a governor");
            if !policies.contains(&std::mem::discriminant(&g)) {
                policies.push(std::mem::discriminant(&g));
            }
        }
        assert!(policies.len() >= 3, "smoke seeds cover ladder, budget and thermal policies");
    }

    #[test]
    fn prefix_smoke_seeds_hit_the_cache() {
        let seeds = default_seeds();
        let mut shapes = (false, false); // (single, fleet)
        for &s in &PREFIX_SMOKE_SEEDS {
            assert!(seeds.contains(&s), "prefix smoke seed {s} belongs in the corpus file");
            let sc = Scenario::from_seed(s);
            assert!(sc.prefix.is_some(), "prefix smoke seed {s} expands with the cache on");
            assert!(!sc.prompts().is_empty(), "seed {s} threads a shared prompt");
            match sc.shape {
                crate::scenario::Shape::Single(_) => shapes.0 = true,
                crate::scenario::Shape::Fleet { .. } => shapes.1 = true,
            }
            match run_scenario(&sc) {
                Outcome::Clean(stats) => {
                    assert!(stats.cache_hit_tokens > 0, "seed {s} must record real cache reuse")
                }
                out => panic!("prefix smoke seed {s} must be clean: {out}"),
            }
        }
        assert!(shapes.0 && shapes.1, "smoke seeds cover single and fleet shapes");
    }

    #[test]
    fn spec_smoke_seeds_draft_and_accept() {
        let seeds = default_seeds();
        let mut shapes = (false, false); // (single, fleet)
        let mut adaptive = (false, false); // (fixed, adaptive)
        for &s in &SPEC_SMOKE_SEEDS {
            assert!(seeds.contains(&s), "spec smoke seed {s} belongs in the corpus file");
            let sc = Scenario::from_seed(s);
            let spec = sc.spec.expect("spec smoke seed expands with speculation armed");
            if spec.adaptive {
                adaptive.1 = true;
            } else {
                adaptive.0 = true;
            }
            match sc.shape {
                crate::scenario::Shape::Single(_) => shapes.0 = true,
                crate::scenario::Shape::Fleet { .. } => shapes.1 = true,
            }
            match run_scenario(&sc) {
                Outcome::Clean(stats) => {
                    assert!(stats.spec_drafted > 0, "seed {s} must actually draft");
                    assert!(stats.spec_accepted > 0, "seed {s} must land some drafts");
                    assert!(stats.spec_accepted <= stats.spec_drafted, "seed {s} over-accepts");
                }
                out => panic!("spec smoke seed {s} must be clean: {out}"),
            }
        }
        assert!(shapes.0 && shapes.1, "smoke seeds cover single and fleet shapes");
        assert!(adaptive.0 && adaptive.1, "smoke seeds cover fixed and adaptive k");
    }

    #[test]
    fn entire_corpus_runs_clean() {
        for (seed, out) in run_corpus(&default_seeds()) {
            assert!(matches!(out, Outcome::Clean(_)), "corpus seed {seed} must be clean: {out}");
        }
    }
}
