//! The invariant library: what must hold after *any* run, under *any*
//! fault plan.
//!
//! Each oracle takes the post-run accounting — a
//! [`ServeAudit`] for one device, a
//! [`FleetAudit`] for a co-simulated fleet —
//! and returns the violations it found. Oracles never assert: the harness
//! (and the workspace property tests re-pointed here) decide what a
//! violation means. The catalog matches the failure modes the fault
//! injector can provoke:
//!
//! * **token conservation** — every completed request delivered exactly
//!   the output it asked for, once; recompute after preemption must not
//!   double-count.
//! * **KV accounting** — usage never exceeds pool capacity at any
//!   iteration; a drained device holds zero blocks and has returned every
//!   block it took.
//! * **request conservation** — completed + cancelled + still-queued
//!   equals submitted per device; completed + lost + cancelled equals
//!   submitted fleet-wide; no request completes twice across re-routing.
//! * **energy = ∫ power** — the energy integral equals the sum of
//!   per-iteration `power × dt` within float tolerance.
//! * **monotone events** — iteration timestamps never rewind and spans
//!   never overlap (well-nestedness); per request, `0 ≤ ttft ≤ latency`.
//! * **governor contracts** — applied mode changes respect the
//!   min-dwell/hysteresis floor, and an energy-budget policy never lets
//!   the deficit outrun its burst reserve plus the control loop's
//!   reaction slack (via the `edgellm-governor` verifiers, so the check
//!   harness and the experiments assert the same thing).

use edgellm_core::serve::ServeAudit;
use edgellm_core::{IterationTrace, Request};
use edgellm_fleet::FleetAudit;
use edgellm_governor::{verify_budget, verify_min_dwell, GovernorAudit};
use std::collections::{HashMap, HashSet};

/// Relative tolerance for the energy-integral oracle: the integral and
/// the trace sum are produced by the same additions in a different
/// association order, so only accumulated rounding separates them.
pub const ENERGY_RTOL: f64 = 1e-9;

/// One failed invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which oracle fired (stable, grep-able name).
    pub oracle: &'static str,
    /// Human-readable specifics: ids, counts, timestamps.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

fn violation(out: &mut Vec<Violation>, oracle: &'static str, detail: String) {
    out.push(Violation { oracle, detail });
}

/// Every invariant that must hold for a single device's finished (or
/// snapshot) state. `expected` maps request id → originally requested
/// output tokens, covering every request this device could have seen;
/// pass an empty slice to skip per-request shape checks (e.g. fleet
/// members, where another device may own the request).
pub fn check_serve(audit: &ServeAudit, expected: &[Request]) -> Vec<Violation> {
    let mut v = Vec::new();
    token_conservation(audit, expected, &mut v);
    kv_accounting(audit, &mut v);
    kv_sharing(audit, &mut v);
    request_conservation(audit, &mut v);
    energy_integral(audit, &mut v);
    monotone_events(audit, &mut v);
    spec_accounting(audit, &mut v);
    v
}

/// Speculative-decoding accounting on one device. Trivially true with
/// speculation off (all counters zero):
///
/// * every drafted token was either accepted or rolled back, exactly
///   once: `drafted == accepted + rolled_back`;
/// * rollback work is visible to the KV ledger — a run that rolled
///   tokens back must also have freed or truncated blocks at some point,
///   so `rolled_back > 0` with `allocated == 0` is impossible.
pub fn spec_accounting(audit: &ServeAudit, out: &mut Vec<Violation>) {
    if audit.spec_drafted != audit.spec_accepted + audit.spec_rolled_back {
        violation(
            out,
            "spec-accounting",
            format!(
                "{}: {} drafted != {} accepted + {} rolled back",
                audit.label, audit.spec_drafted, audit.spec_accepted, audit.spec_rolled_back
            ),
        );
    }
    if audit.spec_rolled_back > 0 && audit.kv_blocks_allocated == 0 {
        violation(
            out,
            "spec-accounting",
            format!(
                "{}: {} tokens rolled back but no KV blocks were ever allocated",
                audit.label, audit.spec_rolled_back
            ),
        );
    }
}

/// Token conservation on one device: served totals match completion
/// records, and each completion delivered exactly what was asked.
pub fn token_conservation(audit: &ServeAudit, expected: &[Request], out: &mut Vec<Violation>) {
    let by_id: HashMap<u64, u64> = expected.iter().map(|r| (r.id, r.output_tokens)).collect();
    let sum: u64 = audit.completions.iter().map(|c| c.output_tokens).sum();
    if sum != audit.served_output_tokens {
        violation(
            out,
            "token-conservation",
            format!(
                "{}: completion records sum to {} output tokens, counter says {}",
                audit.label, sum, audit.served_output_tokens
            ),
        );
    }
    for c in &audit.completions {
        if let Some(&want) = by_id.get(&c.rid) {
            if c.output_tokens != want {
                violation(
                    out,
                    "token-conservation",
                    format!(
                        "{}: request {} asked for {} output tokens, got {}",
                        audit.label, c.rid, want, c.output_tokens
                    ),
                );
            }
        } else if !by_id.is_empty() {
            violation(
                out,
                "token-conservation",
                format!("{}: completion for unknown request {}", audit.label, c.rid),
            );
        }
    }
}

/// KV accounting on one device: capacity respected at every iteration,
/// and — once drained — every block returned.
pub fn kv_accounting(audit: &ServeAudit, out: &mut Vec<Violation>) {
    for (i, it) in audit.trace.iter().enumerate() {
        if it.kv_blocks_used > it.kv_blocks_total {
            violation(
                out,
                "kv-capacity",
                format!(
                    "{}: iteration {} at t={:.6}s holds {} of {} blocks",
                    audit.label, i, it.t_s, it.kv_blocks_used, it.kv_blocks_total
                ),
            );
        }
    }
    if audit.queue_depth == 0 {
        // Drained: every block a sequence held is back — only the prefix
        // cache may still park blocks (zero with the cache off, making
        // this exactly the pre-cache check).
        if audit.kv_blocks_in_use != audit.kv_blocks_cached {
            violation(
                out,
                "kv-leak",
                format!(
                    "{}: drained but {} blocks held vs {} cached",
                    audit.label, audit.kv_blocks_in_use, audit.kv_blocks_cached
                ),
            );
        }
        if audit.kv_blocks_allocated != audit.kv_blocks_freed + audit.kv_blocks_cached as u64 {
            violation(
                out,
                "kv-leak",
                format!(
                    "{}: drained but allocated {} blocks vs freed {} + {} cached",
                    audit.label,
                    audit.kv_blocks_allocated,
                    audit.kv_blocks_freed,
                    audit.kv_blocks_cached
                ),
            );
        }
    } else if audit.kv_blocks_freed > audit.kv_blocks_allocated {
        violation(
            out,
            "kv-leak",
            format!(
                "{}: freed {} blocks but only allocated {}",
                audit.label, audit.kv_blocks_freed, audit.kv_blocks_allocated
            ),
        );
    }
}

/// Prefix-sharing accounting on one device. Three contracts, all
/// trivially true with the cache off:
///
/// * the paged allocator's refcount self-check is clean — a freed block
///   is never referenced by a sequence or the radix tree, and every
///   refcount equals its holder count;
/// * blocks are conserved with shared blocks counted exactly once:
///   `allocated == freed + in_use` at any snapshot (a block shared by
///   ten sequences left the free list once and returns once);
/// * cache metrics stay inside their envelopes — cached blocks are a
///   subset of held blocks, and copy-on-write allocations are a subset
///   of all allocations.
pub fn kv_sharing(audit: &ServeAudit, out: &mut Vec<Violation>) {
    for detail in &audit.kv_integrity {
        violation(out, "kv-refcount", format!("{}: {}", audit.label, detail));
    }
    if audit.kv_blocks_allocated != audit.kv_blocks_freed + audit.kv_blocks_in_use as u64 {
        violation(
            out,
            "kv-sharing",
            format!(
                "{}: allocated {} != freed {} + {} in use (shared block counted twice?)",
                audit.label,
                audit.kv_blocks_allocated,
                audit.kv_blocks_freed,
                audit.kv_blocks_in_use
            ),
        );
    }
    if audit.kv_blocks_cached > audit.kv_blocks_in_use {
        violation(
            out,
            "kv-sharing",
            format!(
                "{}: {} cached blocks exceed {} held",
                audit.label, audit.kv_blocks_cached, audit.kv_blocks_in_use
            ),
        );
    }
    if audit.kv_blocks_cow > audit.kv_blocks_allocated {
        violation(
            out,
            "kv-sharing",
            format!(
                "{}: {} COW allocations exceed {} total allocations",
                audit.label, audit.kv_blocks_cow, audit.kv_blocks_allocated
            ),
        );
    }
}

/// Request conservation on one device: nothing lost, nothing served
/// twice.
pub fn request_conservation(audit: &ServeAudit, out: &mut Vec<Violation>) {
    let accounted = audit.completions.len() + audit.cancelled.len() + audit.queue_depth;
    if accounted != audit.submitted {
        violation(
            out,
            "request-conservation",
            format!(
                "{}: {} submitted but {} completed + {} cancelled + {} queued = {}",
                audit.label,
                audit.submitted,
                audit.completions.len(),
                audit.cancelled.len(),
                audit.queue_depth,
                accounted
            ),
        );
    }
    let mut seen = HashSet::new();
    for c in &audit.completions {
        if !seen.insert(c.rid) {
            violation(
                out,
                "request-conservation",
                format!("{}: request {} completed more than once", audit.label, c.rid),
            );
        }
    }
}

/// Energy = ∫ power: the device's energy integral must equal the sum of
/// its per-iteration `power × dt` within float tolerance.
pub fn energy_integral(audit: &ServeAudit, out: &mut Vec<Violation>) {
    let from_trace: f64 = audit.trace.iter().map(|it| it.power_w * it.dt_s).sum();
    let tol = ENERGY_RTOL * (1.0 + audit.energy_j.abs() + from_trace.abs());
    if (from_trace - audit.energy_j).abs() > tol {
        violation(
            out,
            "energy-integral",
            format!(
                "{}: energy counter {:.9} J vs trace integral {:.9} J",
                audit.label, audit.energy_j, from_trace
            ),
        );
    }
}

/// Monotone, well-nested event ordering: iteration spans never rewind or
/// overlap, and each completion has `0 ≤ ttft ≤ latency`.
pub fn monotone_events(audit: &ServeAudit, out: &mut Vec<Violation>) {
    let mut prev_end = 0.0f64;
    for (i, it) in audit.trace.iter().enumerate() {
        if it.dt_s < 0.0 {
            violation(
                out,
                "monotone-events",
                format!("{}: iteration {} has negative dt {:.9}", audit.label, i, it.dt_s),
            );
        }
        let start = it.t_s - it.dt_s;
        if start < prev_end - 1e-9 {
            violation(
                out,
                "trace-nesting",
                format!(
                    "{}: iteration {} starts at {:.9}s before previous end {:.9}s",
                    audit.label, i, start, prev_end
                ),
            );
        }
        prev_end = prev_end.max(it.t_s);
    }
    for c in &audit.completions {
        if c.ttft_s < 0.0 || c.latency_s < 0.0 || c.ttft_s > c.latency_s + 1e-9 {
            violation(
                out,
                "monotone-events",
                format!(
                    "{}: request {} ttft {:.6}s / latency {:.6}s out of order",
                    audit.label, c.rid, c.ttft_s, c.latency_s
                ),
            );
        }
    }
    for w in audit.cancelled.windows(2) {
        if w[1].0 < w[0].0 {
            violation(
                out,
                "monotone-events",
                format!("{}: cancellation log rewinds at t={:.6}s", audit.label, w[1].0),
            );
        }
    }
}

/// Governor invariants over one governed device's run: the
/// min-dwell/hysteresis contract on the decision log, and — when the
/// policy meters energy — the budget-never-exceeded contract against
/// the device's iteration trace.
pub fn check_governor(gov: &GovernorAudit, trace: &[IterationTrace], out: &mut Vec<Violation>) {
    if let Err(detail) = verify_min_dwell(gov) {
        violation(out, "governor-dwell", format!("policy {}: {}", gov.policy, detail));
    }
    if let Err(detail) = verify_budget(gov, trace) {
        violation(out, "governor-budget", format!("policy {}: {}", gov.policy, detail));
    }
}

/// Every invariant that must hold for a finished fleet run: each member's
/// device-level invariants, plus the cross-device ones — fleet-wide
/// request conservation with loss and cancellation folded in, no
/// double-served request across re-routing, router-log causality, and
/// fleet energy covering the sum of member integrals.
pub fn check_fleet(audit: &FleetAudit, requests: &[Request]) -> Vec<Violation> {
    let mut v = Vec::new();
    for d in &audit.devices {
        // Re-routing means any member may see any request; shapes are
        // still checked against the full trace.
        token_conservation(d, requests, &mut v);
        kv_accounting(d, &mut v);
        kv_sharing(d, &mut v);
        energy_integral(d, &mut v);
        monotone_events(d, &mut v);
        spec_accounting(d, &mut v);
    }
    let r = &audit.report;
    if r.completed + r.lost + r.cancelled != r.submitted {
        violation(
            &mut v,
            "request-conservation",
            format!(
                "fleet: {} submitted but {} completed + {} lost + {} cancelled",
                r.submitted, r.completed, r.lost, r.cancelled
            ),
        );
    }
    if r.submitted != requests.len() {
        violation(
            &mut v,
            "request-conservation",
            format!("fleet: report says {} submitted, trace has {}", r.submitted, requests.len()),
        );
    }
    let mut seen = HashSet::new();
    for d in &audit.devices {
        for c in &d.completions {
            if !seen.insert(c.rid) {
                violation(
                    &mut v,
                    "request-conservation",
                    format!("fleet: request {} completed on more than one device", c.rid),
                );
            }
        }
    }
    let device_energy: f64 = audit.devices.iter().map(|d| d.energy_j).sum();
    if r.energy_j < device_energy - ENERGY_RTOL * (1.0 + device_energy) {
        violation(
            &mut v,
            "energy-integral",
            format!(
                "fleet: report energy {:.9} J below device sum {:.9} J",
                r.energy_j, device_energy
            ),
        );
    }
    router_causality(audit, requests, &mut v);
    v
}

/// Router-log causality. The log records the router's *observations*,
/// and observations of device-local events (a thermal trip is detected
/// at the end of an iteration that overlaps other fleet events) may
/// legitimately arrive out of global time order — so the log is not
/// required to be globally monotone. What must hold:
///
/// * every submitted request gets at least one placement decision
///   (routed, held, or offloaded), and only known requests appear;
/// * no request is placed before it arrives;
/// * per device, down/up marks strictly alternate starting with down —
///   a device never drops out twice without recovering in between.
pub fn router_causality(audit: &FleetAudit, requests: &[Request], out: &mut Vec<Violation>) {
    use edgellm_fleet::RouterMark;
    let arrival: HashMap<u64, f64> = requests.iter().map(|r| (r.id, r.arrival_s)).collect();
    let mut placed: HashSet<u64> = HashSet::new();
    let mut down: HashMap<usize, bool> = HashMap::new();
    for &(t, mark) in &audit.router_log {
        if !t.is_finite() || t < 0.0 {
            violation(out, "router-causality", format!("fleet: mark at invalid time {t:?}"));
        }
        match mark {
            RouterMark::Routed { rid, .. }
            | RouterMark::Held { rid }
            | RouterMark::Offloaded { rid } => match arrival.get(&rid) {
                Some(&arr) => {
                    if t < arr - 1e-9 {
                        violation(
                            out,
                            "router-causality",
                            format!(
                                "fleet: request {rid} placed at t={t:.6}s before arrival {arr:.6}s"
                            ),
                        );
                    }
                    placed.insert(rid);
                }
                None => violation(
                    out,
                    "router-causality",
                    format!("fleet: placement mark for unknown request {rid}"),
                ),
            },
            RouterMark::DeviceDown { device, .. } => {
                let was_down = down.insert(device, true);
                if was_down == Some(true) {
                    violation(
                        out,
                        "router-causality",
                        format!("fleet: device {device} went down twice without recovering"),
                    );
                }
            }
            RouterMark::DeviceUp { device } => {
                let was_down = down.insert(device, false);
                if was_down != Some(true) {
                    violation(
                        out,
                        "router-causality",
                        format!("fleet: device {device} came up without being down"),
                    );
                }
            }
            _ => {}
        }
    }
    for r in requests {
        if !placed.contains(&r.id) {
            violation(
                out,
                "router-causality",
                format!("fleet: request {} never received a placement decision", r.id),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_core::serve::Completion;

    fn clean_audit() -> ServeAudit {
        ServeAudit {
            label: "test".into(),
            submitted: 1,
            completions: vec![Completion {
                rid: 0,
                arrival_s: 0.0,
                ttft_s: 0.5,
                latency_s: 2.0,
                output_tokens: 8,
            }],
            cancelled: Vec::new(),
            trace: Vec::new(),
            kv_blocks_allocated: 3,
            kv_blocks_freed: 3,
            kv_blocks_in_use: 0,
            kv_blocks_total: 10,
            kv_cache_hit_tokens: 0,
            kv_blocks_cow: 0,
            kv_blocks_cached: 0,
            kv_integrity: Vec::new(),
            queue_depth: 0,
            energy_j: 0.0,
            preemptions: 0,
            served_output_tokens: 8,
            spec_drafted: 0,
            spec_accepted: 0,
            spec_rolled_back: 0,
        }
    }

    fn req(id: u64, output: u64) -> Request {
        Request { id, arrival_s: 0.0, input_tokens: 4, output_tokens: output }
    }

    #[test]
    fn clean_audit_passes_all_oracles() {
        assert!(check_serve(&clean_audit(), &[req(0, 8)]).is_empty());
    }

    #[test]
    fn short_changed_tokens_fire_conservation() {
        let audit = clean_audit();
        let v = check_serve(&audit, &[req(0, 16)]);
        assert!(v.iter().any(|x| x.oracle == "token-conservation"), "{v:?}");
    }

    #[test]
    fn leaked_kv_blocks_fire_kv_leak() {
        let mut audit = clean_audit();
        audit.kv_blocks_freed = 2;
        audit.kv_blocks_in_use = 1;
        let v = check_serve(&audit, &[req(0, 8)]);
        assert_eq!(v.iter().filter(|x| x.oracle == "kv-leak").count(), 2, "{v:?}");
    }

    #[test]
    fn cached_blocks_survive_a_drain_without_firing_kv_leak() {
        // A drained device with a warm prefix cache legitimately parks
        // blocks: in_use == cached and allocated == freed + cached.
        let mut audit = clean_audit();
        audit.kv_blocks_freed = 1;
        audit.kv_blocks_in_use = 2;
        audit.kv_blocks_cached = 2;
        audit.kv_cache_hit_tokens = 32;
        assert!(check_serve(&audit, &[req(0, 8)]).is_empty());
    }

    #[test]
    fn refcount_self_check_failures_fire_kv_refcount() {
        let mut audit = clean_audit();
        audit.kv_integrity = vec!["block 3 refcount 2 != 1 holders".into()];
        let v = check_serve(&audit, &[req(0, 8)]);
        assert!(v.iter().any(|x| x.oracle == "kv-refcount"), "{v:?}");
    }

    #[test]
    fn double_counted_shared_block_fires_kv_sharing() {
        // A shared block freed once per holder would push freed past
        // allocated − in_use.
        let mut audit = clean_audit();
        audit.queue_depth = 1; // not drained: only the sharing identity sees it
        audit.kv_blocks_freed = 2;
        audit.kv_blocks_in_use = 2;
        let v = check_serve(&audit, &[req(0, 8)]);
        assert!(v.iter().any(|x| x.oracle == "kv-sharing"), "{v:?}");
    }

    #[test]
    fn cache_exceeding_held_blocks_fires_kv_sharing() {
        let mut audit = clean_audit();
        audit.queue_depth = 1;
        audit.kv_blocks_in_use = 0;
        audit.kv_blocks_cached = 1;
        let v = check_serve(&audit, &[req(0, 8)]);
        assert!(v.iter().any(|x| x.oracle == "kv-sharing"), "{v:?}");
    }

    #[test]
    fn vanished_request_fires_conservation() {
        let mut audit = clean_audit();
        audit.submitted = 2;
        let v = check_serve(&audit, &[req(0, 8), req(1, 8)]);
        assert!(v.iter().any(|x| x.oracle == "request-conservation"), "{v:?}");
    }

    #[test]
    fn duplicated_completion_fires_conservation() {
        let mut audit = clean_audit();
        audit.submitted = 2;
        audit.completions.push(audit.completions[0]);
        audit.served_output_tokens = 16;
        let v = check_serve(&audit, &[req(0, 8), req(1, 8)]);
        assert!(v.iter().any(|x| x.detail.contains("more than once")), "{v:?}");
    }

    #[test]
    fn inverted_ttft_fires_monotone() {
        let mut audit = clean_audit();
        audit.completions[0].ttft_s = 3.0; // past latency 2.0
        let v = check_serve(&audit, &[req(0, 8)]);
        assert!(v.iter().any(|x| x.oracle == "monotone-events"), "{v:?}");
    }

    #[test]
    fn governor_oracles_fire_on_flapping_and_sustained_overrun() {
        use edgellm_core::IterPhase;
        use edgellm_governor::{BudgetAudit, ModeChange};
        let change =
            |t_s: f64, from: usize, to: usize| ModeChange { t_s, from, to, mode: "m".to_string() };
        let gov = |decisions: Vec<ModeChange>, budget: Option<BudgetAudit>| GovernorAudit {
            policy: "test".to_string(),
            min_dwell_s: 1.0,
            rung_names: vec!["low".into(), "high".into()],
            initial: 1,
            decisions,
            budget,
        };
        let mut v = Vec::new();
        check_governor(&gov(vec![change(0.0, 1, 0), change(0.2, 0, 1)], None), &[], &mut v);
        assert!(v.iter().any(|x| x.oracle == "governor-dwell"), "{v:?}");
        let budget = BudgetAudit {
            cap_w: 10.0,
            burst_j: 5.0,
            engaged_t_s: 0.0,
            engaged_energy_j: 0.0,
            ceiling_peak_w: 30.0,
        };
        let sustained: Vec<IterationTrace> = (1..=5)
            .map(|k| IterationTrace {
                t_s: k as f64,
                dt_s: 1.0,
                phase: IterPhase::Decode,
                decoding: 1,
                prefilling: 0,
                kv_blocks_used: 1,
                kv_blocks_total: 4,
                power_w: 30.0,
                tokens: 1,
            })
            .collect();
        let mut v = Vec::new();
        check_governor(&gov(Vec::new(), Some(budget)), &sustained, &mut v);
        assert!(v.iter().any(|x| x.oracle == "governor-budget"), "{v:?}");
        let mut v = Vec::new();
        check_governor(&gov(vec![change(0.0, 1, 0)], None), &sustained, &mut v);
        assert!(v.is_empty(), "clean governed run raises nothing: {v:?}");
    }

    #[test]
    fn unbalanced_spec_counters_fire_spec_accounting() {
        // Clean speculative run: drafted partitions into accepted +
        // rolled back, and rollback rode on real KV allocations.
        let mut audit = clean_audit();
        audit.spec_drafted = 12;
        audit.spec_accepted = 9;
        audit.spec_rolled_back = 3;
        assert!(check_serve(&audit, &[req(0, 8)]).is_empty());
        // A drafted token that vanished (neither accepted nor rolled
        // back) breaks the partition.
        audit.spec_rolled_back = 2;
        let v = check_serve(&audit, &[req(0, 8)]);
        assert!(v.iter().any(|x| x.oracle == "spec-accounting"), "{v:?}");
        // Rollback without any KV allocation ever is impossible.
        let mut audit = clean_audit();
        audit.spec_drafted = 2;
        audit.spec_rolled_back = 2;
        audit.kv_blocks_allocated = 0;
        audit.kv_blocks_freed = 0;
        let v = check_serve(&audit, &[req(0, 8)]);
        assert!(v.iter().any(|x| x.oracle == "spec-accounting"), "{v:?}");
    }

    #[test]
    fn energy_counter_drift_fires_integral() {
        let mut audit = clean_audit();
        audit.energy_j = 1.0; // trace is empty → integral is 0
        let v = check_serve(&audit, &[req(0, 8)]);
        assert!(v.iter().any(|x| x.oracle == "energy-integral"), "{v:?}");
    }
}
