//! A Bengio-style n-gram MLP language model with manual backpropagation.
//!
//! `P(t | t₋ₙ…t₋₁)` through: concatenated token embeddings → hidden GELU
//! layer → vocabulary logits. Small enough to *train* on a laptop CPU in
//! seconds yet structured enough to show real quantization-induced
//! perplexity degradation — the vehicle for reproducing the paper's
//! Table 3 (see DESIGN.md §1).

use crate::adam::Adam;
use crate::linear::Linear;
use crate::loss::{cross_entropy, nll_only};
use crate::scorer::CausalScorer;
use edgellm_tensor::matmul::{matmul_nn, matmul_tn};
use edgellm_tensor::ops::{gelu_grad, gelu_inplace};
use edgellm_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters of an [`MlpLm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpLmConfig {
    /// Vocabulary size (match the tokenizer).
    pub vocab: usize,
    /// Context window in tokens (the n in n-gram).
    pub context: usize,
    /// Embedding width.
    pub d_emb: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl MlpLmConfig {
    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.vocab * self.d_emb
            + (self.context * self.d_emb + 1) * self.hidden
            + (self.hidden + 1) * self.vocab
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainReport {
    /// Mean loss over the first 20 steps (nats).
    pub initial_loss: f64,
    /// Mean loss over the final 20 steps (nats).
    pub final_loss: f64,
    /// Steps executed.
    pub steps: usize,
}

/// The model. Embeddings and both linear layers are f32 while training;
/// [`crate::quantize::to_precision`] produces quantized copies.
#[derive(Debug, Clone)]
pub struct MlpLm {
    /// Configuration.
    pub cfg: MlpLmConfig,
    /// `(vocab × d_emb)` token embeddings.
    pub emb: Matrix,
    /// Hidden projection `(hidden × context·d_emb)`.
    pub fc1: Linear,
    /// Output projection `(vocab × hidden)`.
    pub fc2: Linear,
}

impl MlpLm {
    /// Fresh randomly-initialized model.
    pub fn new(cfg: MlpLmConfig) -> Self {
        MlpLm {
            cfg,
            emb: Matrix::rand_normal(cfg.vocab, cfg.d_emb, 0.02, cfg.seed),
            fc1: Linear::new(cfg.context * cfg.d_emb, cfg.hidden, cfg.seed ^ 0xA5A5),
            fc2: Linear::new(cfg.hidden, cfg.vocab, cfg.seed ^ 0x5A5A),
        }
    }

    /// Gather the concatenated-context embedding matrix `(B × context·d)`.
    /// Contexts shorter than the window are left-padded with token 0.
    fn gather(&self, contexts: &[&[u32]]) -> Matrix {
        let (n, d) = (self.cfg.context, self.cfg.d_emb);
        let mut x = Matrix::zeros(contexts.len(), n * d);
        let emb = self.emb.dequant_view();
        for (r, ctx) in contexts.iter().enumerate() {
            let row = x.row_mut(r);
            let take = ctx.len().min(n);
            let pad = n - take;
            for slot in 0..n {
                let tok = if slot < pad { 0 } else { ctx[ctx.len() - take + (slot - pad)] };
                let e = emb.row(tok as usize % self.cfg.vocab);
                row[slot * d..(slot + 1) * d].copy_from_slice(e);
            }
        }
        x
    }

    /// Logits for a batch of contexts.
    pub fn logits_batch(&self, contexts: &[&[u32]]) -> Matrix {
        let x = self.gather(contexts);
        let mut z1 = self.fc1.forward(&x);
        gelu_inplace(z1.as_mut_slice());
        self.fc2.forward(&z1)
    }

    /// Train on a token stream with Adam. `(contexts, targets)` pairs are
    /// sampled uniformly from the stream with the given seed.
    ///
    /// # Panics
    /// If the stream is shorter than `context + 1` tokens or the model has
    /// been quantized.
    pub fn train(
        &mut self,
        tokens: &[u32],
        steps: usize,
        batch: usize,
        lr: f32,
        seed: u64,
    ) -> TrainReport {
        let n = self.cfg.context;
        assert!(tokens.len() > n, "stream too short to form one example");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(lr);
        let s_emb = opt.register(self.emb.len());
        let s_w1 = opt.register(self.fc1.weights_f32().len());
        let s_b1 = opt.register(self.fc1.out_features());
        let s_w2 = opt.register(self.fc2.weights_f32().len());
        let s_b2 = opt.register(self.fc2.out_features());

        let mut first = Vec::new();
        let mut last = Vec::new();
        for step in 0..steps {
            // Sample a minibatch of (context, target) positions.
            let positions: Vec<usize> =
                (0..batch).map(|_| rng.gen_range(n..tokens.len())).collect();
            let contexts: Vec<&[u32]> = positions.iter().map(|&p| &tokens[p - n..p]).collect();
            let targets: Vec<u32> = positions.iter().map(|&p| tokens[p]).collect();

            // ---- forward ----
            let x = self.gather(&contexts); // (B × n·d)
            let z1 = self.fc1.forward(&x); // (B × h), pre-activation
            let mut a = z1.clone();
            gelu_inplace(a.as_mut_slice());
            let logits = self.fc2.forward(&a); // (B × V)
            let (loss, dlogits) = cross_entropy(&logits, &targets);

            // ---- backward ----
            // fc2: dW2 = dlogitsᵀ·a, db2 = Σ rows, da = dlogits·W2.
            let dw2 = matmul_tn(&dlogits, &a);
            let db2 = col_sums(&dlogits);
            let mut da = matmul_nn(&dlogits, self.fc2.weights_f32());
            // gelu backward: dz1 = da ⊙ gelu'(z1).
            for (g, z) in da.as_mut_slice().iter_mut().zip(z1.as_slice()) {
                *g *= gelu_grad(*z);
            }
            let dz1 = da;
            // fc1: dW1 = dz1ᵀ·x, db1, dx = dz1·W1.
            let dw1 = matmul_tn(&dz1, &x);
            let db1 = col_sums(&dz1);
            let dx = matmul_nn(&dz1, self.fc1.weights_f32());
            // Embedding scatter-add.
            let mut demb = Matrix::zeros(self.cfg.vocab, self.cfg.d_emb);
            let d = self.cfg.d_emb;
            for (r, ctx) in contexts.iter().enumerate() {
                let take = ctx.len().min(n);
                let pad = n - take;
                for slot in 0..n {
                    let tok = if slot < pad { 0 } else { ctx[ctx.len() - take + (slot - pad)] }
                        as usize
                        % self.cfg.vocab;
                    let src = &dx.row(r)[slot * d..(slot + 1) * d];
                    let dst = demb.row_mut(tok);
                    for (o, s) in dst.iter_mut().zip(src) {
                        *o += s;
                    }
                }
            }

            // ---- update ----
            opt.tick();
            opt.step(s_emb, &mut self.emb, &demb);
            opt.step(s_w1, self.fc1.weights_f32_mut(), &dw1);
            opt.step_vec(s_b1, self.fc1.bias.as_mut().expect("bias"), db1.as_slice());
            opt.step(s_w2, self.fc2.weights_f32_mut(), &dw2);
            opt.step_vec(s_b2, self.fc2.bias.as_mut().expect("bias"), db2.as_slice());

            if step < 20 {
                first.push(loss);
            }
            if step + 20 >= steps {
                last.push(loss);
            }
        }
        TrainReport { initial_loss: mean(&first), final_loss: mean(&last), steps }
    }

    /// Teacher-forced mean NLL (nats/token) over a stream, batched.
    pub fn avg_nll(&self, tokens: &[u32]) -> f64 {
        let n = self.cfg.context;
        if tokens.len() <= n {
            return f64::NAN;
        }
        let mut total = 0.0f64;
        let mut count = 0usize;
        const CHUNK: usize = 256;
        let mut pos = n;
        while pos < tokens.len() {
            let end = (pos + CHUNK).min(tokens.len());
            let contexts: Vec<&[u32]> = (pos..end).map(|p| &tokens[p - n..p]).collect();
            let targets: Vec<u32> = (pos..end).map(|p| tokens[p]).collect();
            let logits = self.logits_batch(&contexts);
            total += nll_only(&logits, &targets) * targets.len() as f64;
            count += targets.len();
            pos = end;
        }
        total / count as f64
    }

    /// exp(mean NLL): perplexity over a stream.
    pub fn perplexity(&self, tokens: &[u32]) -> f64 {
        self.avg_nll(tokens).exp()
    }
}

impl CausalScorer for MlpLm {
    fn vocab_size(&self) -> usize {
        self.cfg.vocab
    }

    fn nll_at(&self, window: &[u32], pos: usize) -> f64 {
        let n = self.cfg.context;
        let start = pos.saturating_sub(n);
        let logits = self.logits_batch(&[&window[start..pos]]);
        nll_only(&logits, &[window[pos]])
    }

    fn nll_span(&self, window: &[u32], start: usize) -> Vec<f64> {
        let n = self.cfg.context;
        let mut out = Vec::with_capacity(window.len() - start);
        const CHUNK: usize = 256;
        let mut pos = start;
        while pos < window.len() {
            let end = (pos + CHUNK).min(window.len());
            let contexts: Vec<&[u32]> =
                (pos..end).map(|p| &window[p.saturating_sub(n)..p]).collect();
            let targets: Vec<u32> = (pos..end).map(|p| window[p]).collect();
            let logits = self.logits_batch(&contexts);
            for (r, &t) in targets.iter().enumerate() {
                let ls = edgellm_tensor::ops::log_softmax(logits.row(r));
                out.push(-ls[t as usize] as f64);
            }
            pos = end;
        }
        out
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        f64::NAN
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn col_sums(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, m.cols);
    for r in 0..m.rows {
        edgellm_tensor::ops::add_inplace(out.row_mut(0), m.row(r));
    }
    out
}

/// Internal helper so `gather` can work with either f32 or a dequantized
/// embedding copy (quantized models materialize once).
trait DequantView {
    fn dequant_view(&self) -> &Matrix;
}
impl DequantView for Matrix {
    fn dequant_view(&self) -> &Matrix {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> MlpLmConfig {
        MlpLmConfig { vocab: 32, context: 3, d_emb: 8, hidden: 16, seed: 1 }
    }

    /// Periodic stream: token i+1 follows token i (mod 8) — perfectly
    /// learnable by a context model.
    fn periodic_stream(len: usize) -> Vec<u32> {
        (0..len).map(|i| (i % 8) as u32).collect()
    }

    #[test]
    fn param_count_formula() {
        let c = tiny_cfg();
        assert_eq!(c.param_count(), 32 * 8 + (3 * 8 + 1) * 16 + (16 + 1) * 32);
    }

    #[test]
    fn training_reduces_loss_on_learnable_stream() {
        let mut m = MlpLm::new(tiny_cfg());
        let stream = periodic_stream(2000);
        let report = m.train(&stream, 300, 32, 3e-3, 7);
        assert!(
            report.final_loss < report.initial_loss * 0.5,
            "loss {} -> {}",
            report.initial_loss,
            report.final_loss
        );
        // A periodic stream is fully predictable: perplexity near 1.
        let ppl = m.perplexity(&stream);
        assert!(ppl < 2.0, "perplexity {ppl}");
    }

    #[test]
    fn untrained_model_is_near_uniform() {
        let m = MlpLm::new(tiny_cfg());
        let stream = periodic_stream(500);
        let ppl = m.perplexity(&stream);
        assert!((16.0..48.0).contains(&ppl), "ppl {ppl} should be near vocab 32");
    }

    #[test]
    fn scorer_span_matches_pointwise() {
        let m = MlpLm::new(tiny_cfg());
        let w: Vec<u32> = (0..40).map(|i| (i * 7 % 32) as u32).collect();
        let span = m.nll_span(&w, 5);
        for (i, &v) in span.iter().enumerate() {
            let p = m.nll_at(&w, 5 + i);
            assert!((v - p).abs() < 1e-5, "pos {i}: {v} vs {p}");
        }
    }

    #[test]
    fn short_context_is_left_padded_not_panicking() {
        let m = MlpLm::new(tiny_cfg());
        let logits = m.logits_batch(&[&[5u32][..]]);
        assert_eq!((logits.rows, logits.cols), (1, 32));
    }

    #[test]
    fn bigger_models_fit_better() {
        // Capacity ordering on a structured stream — the Table 3 backbone.
        let stream: Vec<u32> = (0..4000).map(|i| ((i * i + i / 3) % 24) as u32).collect();
        let mut small =
            MlpLm::new(MlpLmConfig { vocab: 32, context: 3, d_emb: 4, hidden: 4, seed: 2 });
        let mut large =
            MlpLm::new(MlpLmConfig { vocab: 32, context: 3, d_emb: 16, hidden: 48, seed: 2 });
        small.train(&stream, 400, 32, 3e-3, 3);
        large.train(&stream, 400, 32, 3e-3, 3);
        let (ps, pl) = (small.perplexity(&stream), large.perplexity(&stream));
        assert!(pl < ps, "large {pl} should beat small {ps}");
    }
}
